// Reproduces paper Fig. 6a: inference throughput (img/s) per ILSVRC
// Validation subset at batch 8 on the CPU (Caffe-MKL), GPU (Caffe-cuDNN)
// and the 8-stick multi-VPU NCSw target.
//
// Paper anchors: CPU 44.0, GPU 74.2, VPU (multi) 77.2 img/s.
#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig6a_throughput",
                "Fig. 6a — throughput per validation subset (batch 8)");
  cli.add_int("images", 10000, "images per subset (paper: 10000)");
  cli.add_int("subsets", 5, "number of subsets (paper: 5)");
  cli.add_int("batch", 8, "batch size / active VPU chips");
  cli.add_int("devices", 8, "NCS sticks in the testbed");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  core::experiments::TimingSettings s;
  s.images_per_subset = cli.get_int("images");
  s.subsets = static_cast<int>(cli.get_int("subsets"));
  s.batch = static_cast<int>(cli.get_int("batch"));
  s.devices = static_cast<int>(cli.get_int("devices"));

  const auto rows = core::experiments::fig6a(s);

  util::Table table(
      "Fig. 6a: Inference performance per subset / " +
      std::to_string(s.batch) + "x input (batch), images/s");
  table.set_header({"Subset", "CPU", "GPU", "VPU (Multi)", "CPU sd(ms)",
                    "GPU sd(ms)", "VPU sd(ms)"});
  util::RunningStats cpu, gpu, vpu;
  for (const auto& r : rows) {
    table.add_row({r.subset, util::Table::num(r.cpu, 1),
                   util::Table::num(r.gpu, 1), util::Table::num(r.vpu, 1),
                   util::Table::num(r.cpu_sd, 3), util::Table::num(r.gpu_sd, 3),
                   util::Table::num(r.vpu_sd, 3)});
    cpu.add(r.cpu);
    gpu.add(r.gpu);
    vpu.add(r.vpu);
  }
  table.add_row({"mean", util::Table::num(cpu.mean(), 1),
                 util::Table::num(gpu.mean(), 1),
                 util::Table::num(vpu.mean(), 1), "", "", ""});
  bench::emit(table, cli);

  std::cout << "\npaper: CPU 44.0 | GPU 74.2 | VPU (multi, 8 sticks) 77.2 "
               "img/s; CPU is ~40.7% slower than the multi-VPU\n";
  const double cpu_gap = (vpu.mean() - cpu.mean()) / vpu.mean() * 100.0;
  std::cout << "measured: CPU " << util::Table::num(cpu.mean(), 1) << " | GPU "
            << util::Table::num(gpu.mean(), 1) << " | VPU "
            << util::Table::num(vpu.mean(), 1) << " img/s; CPU is "
            << util::Table::num(cpu_gap, 1) << "% slower\n";

  bench::BenchReport report("fig6a_throughput");
  report.config("images", s.images_per_subset);
  report.config("subsets", static_cast<std::int64_t>(s.subsets));
  report.config("batch", static_cast<std::int64_t>(s.batch));
  report.config("devices", static_cast<std::int64_t>(s.devices));
  report.anchor("cpu_img_per_s", "img/s", 44.0, cpu.mean());
  report.anchor("gpu_img_per_s", "img/s", 74.2, gpu.mean());
  report.anchor("vpu_img_per_s", "img/s", 77.2, vpu.mean());
  report.value("cpu_gap_vs_vpu_pct", cpu_gap);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
