// Ablation A5 — scheduling policy. The paper "follows a simple static
// scheduling (i.e., round-robin)" across the sticks, which is optimal
// when the sticks are identical. This ablation degrades one stick (a
// hard-throttled unit running at half clock) and compares static
// round-robin against a dynamic least-loaded policy: with round-robin the
// whole group waits for the slow stick's equal share; least-loaded routes
// work around it.
#include "bench_common.h"
#include "core/model.h"
#include "core/vpu_target.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ablation_scheduler",
                "A5 — round-robin vs least-loaded with one slow stick");
  cli.add_int("images", 2000, "images per measurement");
  cli.add_int("devices", 8, "NCS sticks");
  cli.add_double("slow-factor", 2.0, "clock division of the degraded stick");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const int devices = static_cast<int>(cli.get_int("devices"));
  const std::int64_t images = cli.get_int("images");
  const double slow = cli.get_double("slow-factor");
  auto bundle = core::ModelBundle::googlenet_reference();

  struct Case {
    const char* label;
    core::Scheduling policy;
    int degraded;
  };
  const Case cases[] = {
      {"round-robin, identical sticks (paper)", core::Scheduling::kRoundRobin,
       -1},
      {"round-robin, one stick at half clock",
       core::Scheduling::kRoundRobin, 0},
      {"least-loaded, one stick at half clock",
       core::Scheduling::kLeastLoaded, 0},
      {"least-loaded, identical sticks", core::Scheduling::kLeastLoaded, -1},
  };

  util::Table table("A5: scheduling policy (" + std::to_string(devices) +
                    " sticks, images/s)");
  table.set_header({"Configuration", "Throughput", "vs paper baseline"});
  double baseline = 0.0;
  int case_idx = 0;
  for (const auto& c : cases) {
    core::VpuTargetConfig cfg;
    cfg.devices = devices;
    cfg.scheduling = c.policy;
    cfg.degraded_device = c.degraded;
    cfg.degraded_factor = slow;
    // Each case restarts the simulated clock; namespace its lanes so one
    // trace file shows the cases side by side instead of overlaid.
    util::tracer().set_lane_prefix("case" + std::to_string(case_idx++) + " ");
    core::VpuTarget vpu(bundle, cfg);
    const double tput = vpu.run_timed(images, devices).throughput();
    if (baseline == 0.0) baseline = tput;
    table.add_row({c.label, util::Table::num(tput, 1),
                   util::Table::num(tput / baseline * 100, 0) + "%"});
  }
  bench::emit(table, cli);

  std::cout << "\nconclusion: static round-robin is fine on the paper's "
               "homogeneous testbed, but one degraded stick drags the "
               "whole group to its pace; a least-loaded queue recovers "
               "most of the loss (future-work territory the paper's "
               "Section III design anticipates).\n";
  bench::finalize(cli);
  return 0;
}
