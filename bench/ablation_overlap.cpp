// Ablation A1 — why the NCAPI's non-blocking LoadTensor/GetResult split
// matters (paper Section II-B / Fig. 4): compares the paper's overlapped
// multi-VPU runner against a hypothetical blocking "inference()" driver
// in which the host waits for each result before issuing the next input
// to ANY stick. Without overlap, adding sticks buys nothing.
#include "bench_common.h"
#include "core/model.h"
#include "core/vpu_target.h"
#include "mvnc/mvnc.h"

namespace {

using namespace ncsw;

// Blocking driver: one global host cursor across all sticks. Configures
// its own simulated host.
double blocking_throughput(const core::ModelBundle& bundle,
                           std::int64_t images, int devices) {
  mvnc::HostConfig host;
  host.devices = devices;
  mvnc::host_reset(host);

  std::vector<void*> devs, graphs;
  for (int d = 0; d < devices; ++d) {
    char name[64];
    if (mvnc::mvncGetDeviceName(d, name, sizeof(name)) != mvnc::MVNC_OK) {
      throw std::runtime_error("ablation: enumeration failed");
    }
    void* dh = nullptr;
    if (mvnc::mvncOpenDevice(name, &dh) != mvnc::MVNC_OK) {
      throw std::runtime_error("ablation: open failed");
    }
    void* gh = nullptr;
    if (mvnc::mvncAllocateGraph(
            dh, &gh, bundle.graph_blob.data(),
            static_cast<unsigned int>(bundle.graph_blob.size())) !=
        mvnc::MVNC_OK) {
      throw std::runtime_error("ablation: allocate failed");
    }
    devs.push_back(dh);
    graphs.push_back(gh);
  }
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(bundle.compiled_f16.input_bytes()), 0);
  double cursor = 0.0;
  for (void* g : graphs) {
    cursor = std::max(cursor, mvnc::host_time(g).value_or(0.0));
  }
  const double t0 = cursor;
  for (std::int64_t i = 0; i < images; ++i) {
    void* g = graphs[static_cast<std::size_t>(i % graphs.size())];
    mvnc::set_host_time(g, cursor);  // host blocked until previous result
    mvnc::mvncLoadTensor(g, input.data(),
                         static_cast<unsigned int>(input.size()), nullptr);
    void* out;
    unsigned int len;
    mvnc::mvncGetResult(g, &out, &len, nullptr);
    cursor = mvnc::last_ticket(g)->result_ready;
  }
  const double seconds = cursor - t0;
  for (void* g : graphs) mvnc::mvncDeallocateGraph(g);
  for (void* d : devs) mvnc::mvncCloseDevice(d);
  return static_cast<double>(images) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("ablation_overlap",
                "A1 — overlapped vs blocking multi-VPU driving");
  cli.add_int("images", 2000, "images per measurement");
  cli.add_int("devices", 8, "NCS sticks");
  ncsw::bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  ncsw::bench::setup(cli);

  const int devices = static_cast<int>(cli.get_int("devices"));
  const std::int64_t images = cli.get_int("images");
  auto bundle = core::ModelBundle::googlenet_reference();

  // Paper's overlapped runner at 1 and N sticks. With --trace, the two
  // drivers land on prefixed lanes so one Perfetto view shows the
  // overlapped timelines staggered across sticks and the blocking ones
  // strictly serialised.
  util::tracer().set_lane_prefix("overlap-on ");
  double single = 0.0, overlapped = 0.0;
  {
    core::VpuTargetConfig cfg;
    cfg.devices = devices;
    core::VpuTarget vpu(bundle, cfg);
    single =
        vpu.run_timed(std::max<std::int64_t>(64, images / 8), 1).throughput();
    overlapped = vpu.run_timed(images, devices).throughput();
  }

  // Hypothetical blocking driver on a fresh host.
  util::tracer().set_lane_prefix("overlap-off ");
  const double blocking = blocking_throughput(*bundle, images, devices);
  util::tracer().set_lane_prefix("");

  util::Table table("A1: load/get overlap ablation (images/s)");
  table.set_header({"Driver", "Sticks", "Throughput", "Speedup vs 1 stick"});
  table.add_row({"single stick (baseline)", "1", util::Table::num(single, 1),
                 "1.0"});
  table.add_row({"blocking inference()", std::to_string(devices),
                 util::Table::num(blocking, 1),
                 util::Table::num(blocking / single, 2)});
  table.add_row({"overlapped load/get (paper)", std::to_string(devices),
                 util::Table::num(overlapped, 1),
                 util::Table::num(overlapped / single, 2)});
  ncsw::bench::emit(table, cli);

  std::cout << "\nconclusion: without the MPI-like non-blocking split, "
               "eight sticks perform like one; the overlap is what buys "
               "the near-ideal scaling of Fig. 6b.\n";

  ncsw::bench::BenchReport report("ablation_overlap");
  report.config("images", images);
  report.config("devices", static_cast<std::int64_t>(devices));
  report.value("single_stick_img_per_s", single);
  report.value("blocking_img_per_s", blocking);
  report.value("overlapped_img_per_s", overlapped);
  report.value("blocking_speedup_x", blocking / single);
  report.value("overlapped_speedup_x", overlapped / single);
  ncsw::bench::write_report(report, cli);
  ncsw::bench::finalize(cli);
  return 0;
}
