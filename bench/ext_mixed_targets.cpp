// Extension E12 — heterogeneous node throughput. The paper's Section III
// closes with: "some applications might choose to run a specific subset
// of inputs on a GPU, and at the same time another subset on two
// different groups that connect to several VPUs". This bench plans a
// proportional partition of one validation subset across CPU + GPU + the
// VPU group and reports the aggregate throughput and per-Watt figure of
// the whole node.
#include "bench_common.h"
#include "core/application.h"
#include "core/host_target.h"
#include "core/vpu_target.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ext_mixed_targets",
                "E12 — partition one subset across CPU + GPU + VPU group");
  cli.add_int("images", 10000, "images to partition");
  cli.add_int("devices", 8, "NCS sticks in the VPU group");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const std::int64_t images = cli.get_int("images");
  auto bundle = core::ModelBundle::googlenet_reference();
  auto cpu = core::make_cpu_target(bundle);
  auto gpu = core::make_gpu_target(bundle);
  core::VpuTargetConfig vcfg;
  vcfg.devices = static_cast<int>(cli.get_int("devices"));
  core::VpuTarget vpu(bundle, vcfg);

  // Measure each target's standalone batch-8 throughput...
  std::vector<core::Target*> targets{cpu.get(), gpu.get(), &vpu};
  std::vector<double> tputs;
  for (auto* t : targets) {
    tputs.push_back(t->run_timed(800, 8).throughput());
  }
  // ...then split the subset so all three finish together.
  const auto shares = core::plan_partition(images, tputs);

  util::Table table("E12: heterogeneous partition of " +
                    std::to_string(images) + " images");
  table.set_header({"target", "standalone img/s", "share", "time (s)",
                    "TDP (W)"});
  double makespan = 0.0, node_tdp = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double seconds = 0.0;
    if (shares[i] > 0) {
      seconds = targets[i]->run_timed(shares[i], 8).seconds;
    }
    makespan = std::max(makespan, seconds);
    node_tdp += targets[i]->tdp_w(8);
    table.add_row({targets[i]->short_name(), util::Table::num(tputs[i], 1),
                   std::to_string(shares[i]), util::Table::num(seconds, 1),
                   util::Table::num(targets[i]->tdp_w(8), 1)});
  }
  bench::emit(table, cli);

  const double combined = static_cast<double>(images) / makespan;
  const double best_single = *std::max_element(tputs.begin(), tputs.end());
  std::cout << "\nnode aggregate: " << util::Table::num(combined, 1)
            << " img/s at " << util::Table::num(node_tdp, 0)
            << " W total TDP ("
            << util::Table::num(combined / node_tdp, 2) << " img/W) — "
            << util::Table::num(combined / best_single, 2)
            << "x the best single target; the partition keeps every "
               "engine busy and all three finish within "
            << util::Table::num(makespan, 1) << " s.\n";
  bench::finalize(cli);
  return 0;
}
