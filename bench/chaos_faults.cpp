// Chaos harness — graceful degradation of the self-healing multi-VPU
// runtime under deterministic fault injection. Two experiments:
//
//  1. Storm sweep: for each stick count and per-stick fault rate, a
//     scripted Poisson storm of transient faults (USB errors/stalls,
//     busy storms, result stalls, forced throttling) hits the fleet and
//     the retained throughput vs the fault-free baseline is recorded —
//     the graceful-degradation curve.
//  2. Hot-replug: one stick detaches mid-run and reattaches later; the
//     runner must complete every image (replaying in-flight ones) and
//     re-admit the recovered stick. `detach.images_lost` must be 0 —
//     CI asserts it.
//
// Everything runs on the simulated clock from a scripted FaultPlan, so
// the whole chaos suite is reproducible bit-for-bit.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/model.h"
#include "core/vpu_target.h"
#include "util/metrics.h"

namespace {

std::string rate_label(double rate) {
  // "0.5" -> "r0p5" (report keys avoid '.' inside a segment).
  std::string s = ncsw::util::Table::num(rate, rate < 1.0 ? 1 : 0);
  for (auto& c : s) {
    if (c == '.') c = 'p';
  }
  return "r" + s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("chaos_faults",
                "graceful degradation under deterministic fault injection");
  cli.add_int("images", 400, "images per measurement");
  cli.add_int("devices", 8, "largest stick count in the sweep");
  cli.add_int("seed", 42, "fault-plan seed");
  cli.add_double("watchdog", 0.25, "GetResult watchdog budget (sim s)");
  cli.add_double("mean-fault-s", 0.02, "mean fault-window duration (sim s)");
  cli.add_double("detach-at", 1.0, "detach start of the hot-replug case");
  cli.add_double("detach-for", 1.5, "detach duration of the hot-replug case");
  bench::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos_faults: %s\n", e.what());
    return 2;
  }
  auto usage_error = [](const char* what) {
    std::fprintf(stderr, "chaos_faults: %s\n", what);
    return 2;
  };
  if (cli.get_int("images") < 1) {
    return usage_error("--images must be >= 1");
  }
  if (cli.get_int("devices") < 1) {
    return usage_error("--devices must be >= 1");
  }
  if (cli.get_int("seed") < 0) {
    return usage_error("--seed must be >= 0");
  }
  if (!(cli.get_double("watchdog") > 0.0)) {
    return usage_error("--watchdog must be > 0 (simulated seconds)");
  }
  if (!(cli.get_double("mean-fault-s") > 0.0)) {
    return usage_error("--mean-fault-s must be > 0 (simulated seconds)");
  }
  if (cli.get_double("detach-at") < 0.0) {
    return usage_error("--detach-at must be >= 0 (simulated seconds)");
  }
  if (!(cli.get_double("detach-for") > 0.0)) {
    return usage_error("--detach-for must be > 0 (simulated seconds)");
  }
  bench::setup(cli);

  const std::int64_t images = cli.get_int("images");
  const int max_devices = static_cast<int>(cli.get_int("devices"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double watchdog = cli.get_double("watchdog");
  const double mean_fault = cli.get_double("mean-fault-s");
  auto bundle = core::ModelBundle::googlenet_reference();

  bench::BenchReport report("chaos_faults");
  report.config("images", images);
  report.config("devices", static_cast<std::int64_t>(max_devices));
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("watchdog_s", watchdog);
  report.config("mean_fault_s", mean_fault);

  auto make_config = [&](int n) {
    core::VpuTargetConfig cfg;
    cfg.devices = n;
    cfg.health.watchdog_s = watchdog;
    return cfg;
  };

  // --- 1. storm sweep: stick count x per-stick fault rate -------------
  const double rates[] = {0.0, 0.5, 1.0, 2.0, 4.0};
  std::vector<int> stick_counts;
  for (int n : {2, 4, 8}) {
    if (n <= max_devices) stick_counts.push_back(n);
  }
  if (stick_counts.empty() || stick_counts.back() != max_devices) {
    stick_counts.push_back(max_devices);
  }

  util::Table table("chaos: retained throughput under fault storms (" +
                    std::to_string(images) + " images)");
  table.set_header({"Sticks", "Faults/s/stick", "img/s", "Retained",
                    "Replayed", "Lost", "Recoveries"});
  int cell = 0;
  for (int n : stick_counts) {
    double baseline = 0.0;
    for (double rate : rates) {
      auto cfg = make_config(n);
      // Past the cliff (every stick quarantined at once) the run reports
      // lost images instead of throwing: that tail is the curve's point.
      cfg.allow_partial = true;
      // 600 s of scripted storm comfortably covers the longest cell.
      cfg.faults = sim::FaultPlan::scripted_storm(
          seed + static_cast<std::uint64_t>(cell++), n, rate, 600.0,
          mean_fault);
      // Each cell is an independent fleet restarting the simulated clock;
      // namespace its lanes so one trace file holds the whole sweep
      // without overlaying cells on top of each other.
      util::tracer().set_lane_prefix("d" + std::to_string(n) + " " +
                                     rate_label(rate) + " ");
      core::VpuTarget vpu(bundle, cfg);
      const auto run = vpu.run_timed(images, n);
      const double tput = run.throughput();
      if (rate == 0.0) baseline = tput;
      const double retained = baseline > 0.0 ? tput / baseline : 0.0;
      const std::string key =
          "curve.d" + std::to_string(n) + "." + rate_label(rate);
      report.value(key + ".img_per_s", tput);
      report.value(key + ".throughput_retained", retained);
      report.value(key + ".images_replayed",
                   static_cast<double>(run.images_replayed));
      report.value(key + ".images_lost",
                   static_cast<double>(run.images_lost));
      report.value(key + ".sticks_recovered",
                   static_cast<double>(run.sticks_recovered));
      table.add_row({std::to_string(n), util::Table::num(rate, 1),
                     util::Table::num(tput, 1),
                     util::Table::num(retained * 100, 0) + "%",
                     std::to_string(run.images_replayed),
                     std::to_string(run.images_lost),
                     std::to_string(run.sticks_recovered)});
    }
  }
  bench::emit(table, cli);

  // --- 2. hot-replug: detach one stick mid-run, reattach later --------
  const int n = max_devices;
  const int victim = n > 3 ? 3 : n - 1;
  const double detach_at = cli.get_double("detach-at");
  const double detach_for = cli.get_double("detach-for");
  report.config("detach_device", static_cast<std::int64_t>(victim));
  report.config("detach_at_s", detach_at);
  report.config("detach_for_s", detach_for);

  double clean_tput = 0.0;
  {
    util::tracer().set_lane_prefix("replug-baseline ");
    core::VpuTarget vpu(bundle, make_config(n));
    clean_tput = vpu.run_timed(images, n).throughput();
  }
  auto& reg = util::metrics();
  const std::string dev = "core.health.dev" + std::to_string(victim);
  const auto replugs_before = reg.counter(dev + ".replug_recoveries").value();
  const auto gone_before = reg.counter(dev + ".gone").value();

  auto cfg = make_config(n);
  cfg.faults.add(victim, sim::FaultKind::kDetach, detach_at, detach_for);
  util::tracer().set_lane_prefix("replug ");
  core::VpuTarget vpu(bundle, cfg);
  const auto run = vpu.run_timed(images, n);

  util::Table detach_table("chaos: hot-replug (stick " +
                           std::to_string(victim) + " off the bus " +
                           util::Table::num(detach_at, 1) + "s-" +
                           util::Table::num(detach_at + detach_for, 1) + "s)");
  detach_table.set_header({"Metric", "Value"});
  detach_table.add_row({"images completed", std::to_string(run.images)});
  detach_table.add_row({"images lost", std::to_string(run.images_lost)});
  detach_table.add_row({"images replayed", std::to_string(run.images_replayed)});
  detach_table.add_row({"sticks recovered", std::to_string(run.sticks_recovered)});
  detach_table.add_row(
      {"throughput retained",
       util::Table::num(clean_tput > 0.0 ? run.throughput() / clean_tput * 100
                                         : 0.0,
                        0) +
           "%"});
  bench::emit(detach_table, cli);

  report.value("detach.images_completed", static_cast<double>(run.images));
  report.value("detach.images_lost", static_cast<double>(run.images_lost));
  report.value("detach.images_replayed",
               static_cast<double>(run.images_replayed));
  report.value("detach.sticks_recovered",
               static_cast<double>(run.sticks_recovered));
  report.value("detach.throughput_retained",
               clean_tput > 0.0 ? run.throughput() / clean_tput : 0.0);
  report.value("detach.replug_recoveries",
               static_cast<double>(
                   reg.counter(dev + ".replug_recoveries").value() -
                   replugs_before));
  report.value("detach.gone_events",
               static_cast<double>(reg.counter(dev + ".gone").value() -
                                   gone_before));

  std::cout << "\nconclusion: transient storms cost retries, not images — "
               "throughput degrades smoothly with fault rate; a detached "
               "stick is quarantined, its in-flight images replay on the "
               "survivors, and after reattachment the runner re-allocates "
               "the graph and re-admits it (images lost: "
            << run.images_lost << ").\n";

  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
