// Reproduces the paper's Section IV testbed inventory as a table: each
// target device with its TDP and its measured single-input / batch-8
// characteristics, plus the Myriad 2 datasheet numbers of Section II.
#include "bench_common.h"
#include "core/host_target.h"
#include "core/vpu_target.h"
#include "myriad/myriad.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("table_testbed", "Section IV testbed characteristics");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  auto bundle = core::ModelBundle::googlenet_reference();
  auto cpu = core::make_cpu_target(bundle);
  auto gpu = core::make_gpu_target(bundle);
  core::VpuTargetConfig vcfg;
  vcfg.devices = 8;
  core::VpuTarget vpu(bundle, vcfg);

  util::Table table("Testbed devices (GoogLeNet, ILSVRC-2012 geometry)");
  table.set_header({"Target", "Device", "TDP (W)", "1-input (ms)",
                    "batch-8 (img/s)"});
  auto row = [&](core::Target& t) {
    const double single = t.run_timed(200, 1).seconds * 1e3 / 200.0;
    const double batch8 = t.run_timed(1600, 8).throughput();
    table.add_row({t.short_name(), t.name(),
                   util::Table::num(t.tdp_w(8), 1),
                   util::Table::num(single, 1),
                   util::Table::num(batch8, 1)});
  };
  row(*cpu);
  row(*gpu);
  row(vpu);
  bench::emit(table, cli);

  // Myriad 2 datasheet block (paper Section II-A).
  myriad::Myriad2 chip;
  util::Table arch("Myriad 2 VPU (MA2450) architecture summary");
  arch.set_header({"Property", "Value"});
  arch.add_row({"SHAVE vector processors",
                std::to_string(chip.config().num_shaves)});
  arch.add_row({"Nominal frequency",
                util::Table::num(chip.config().clock_hz / 1e6, 0) + " MHz"});
  arch.add_row({"Peak FP16",
                util::Table::num(
                    2.0 * chip.peak_macs_per_s(graphc::Precision::kFP16) / 1e9,
                    1) +
                    " GFLOP/s (sustained-MAC basis)"});
  arch.add_row({"CMX scratchpad", "2 MB (16 x 128 KB)"});
  arch.add_row({"Global memory", "4 GB LPDDR3"});
  arch.add_row({"Chip TDP",
                util::Table::num(myriad::TdpConstants::kMyriad2ChipW, 1) +
                    " W"});
  arch.add_row({"NCS stick peak",
                util::Table::num(myriad::TdpConstants::kNcsStickW, 1) + " W"});
  std::cout << "\n" << arch.to_string();
  bench::finalize(cli);
  return 0;
}
