// Serving extension — open-loop load generation against the serve
// frontend. The figure benches are closed-loop (the next image is issued
// the moment the previous one finishes, so the system is never
// overloaded); this harness instead offers a Poisson arrival stream at a
// configurable rate and measures what a *service* built on the paper's
// targets delivers: tail latency (p50/p95/p99), goodput, and how much
// work admission control sheds. Each solo target is driven with the same
// arrival trace as the heterogeneous CPU + GPU + multi-VPU dispatcher,
// so the table reads as "what does adding the VPU group to the node buy
// an online service". The mixed phase is then replayed from the same
// seed with fresh targets to demonstrate byte-determinism.
#include <cstdio>

#include "bench_common.h"
#include "core/host_target.h"
#include "core/vpu_target.h"
#include "serve/arrivals.h"
#include "serve/server.h"

namespace {

using namespace ncsw;

std::vector<serve::Request> make_trace(std::int64_t n, double rate,
                                       std::uint64_t seed) {
  serve::PoissonArrivals arrivals(rate, seed);
  std::vector<serve::Request> trace;
  trace.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_s = arrivals.next();
    trace.push_back(std::move(req));
  }
  return trace;
}

/// Full-precision fingerprint of everything the replay must reproduce.
std::string fingerprint(const serve::ServeReport& r) {
  char buf[160];
  std::string fp;
  std::snprintf(buf, sizeof(buf), "%lld/%lld/%lld/%.17g/%.17g/%.17g/%.17g",
                static_cast<long long>(r.completed),
                static_cast<long long>(r.rejected),
                static_cast<long long>(r.dropped), r.p50_ms, r.p95_ms,
                r.p99_ms, r.last_complete_s);
  fp = buf;
  for (const auto& t : r.targets) {
    std::snprintf(buf, sizeof(buf), "|%s:%lld/%lld/%.17g", t.label.c_str(),
                  static_cast<long long>(t.batches),
                  static_cast<long long>(t.images), t.busy_s);
    fp += buf;
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("serve_loadgen",
                "open-loop Poisson load against the serving frontend: "
                "solo targets vs the heterogeneous dispatcher");
  cli.add_int("requests", 4000, "requests per phase");
  cli.add_int("devices", 8, "NCS sticks in the VPU group");
  cli.add_double("rate", 0.0,
                 "offered load (req/s); 0 = 0.9x the node's calibrated "
                 "aggregate throughput");
  cli.add_int("seed", 42, "arrival-process seed");
  cli.add_int("queue", 32, "admission queue capacity");
  cli.add_int("batch", 8, "max dispatch batch");
  cli.add_double("timeout-ms", 50.0, "partial-batch flush timeout");
  cli.add_double("deadline-ms", 250.0,
                 "queue deadline before a request is dropped (0 = never)");
  cli.add_int("window", 2,
              "in-flight submissions per target (the async pipeline depth; "
              "1 = the PR5 blocking dispatcher)");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get_int("window") < 1) {
    std::fprintf(stderr,
                 "serve_loadgen: --window must be >= 1 (got %lld); the "
                 "dispatcher needs at least one in-flight submission per "
                 "target\n",
                 static_cast<long long>(cli.get_int("window")));
    return 2;
  }
  bench::setup(cli);

  const std::int64_t requests = cli.get_int("requests");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto bundle = core::ModelBundle::googlenet_reference();
  core::VpuTargetConfig vcfg;
  vcfg.devices = static_cast<int>(cli.get_int("devices"));

  serve::ServerConfig scfg;
  scfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  scfg.max_batch = static_cast<int>(cli.get_int("batch"));
  scfg.batch_timeout_s = cli.get_double("timeout-ms") * 1e-3;
  if (cli.get_double("deadline-ms") > 0.0) {
    scfg.queue_deadline_s = cli.get_double("deadline-ms") * 1e-3;
  }
  scfg.inflight_window = static_cast<int>(cli.get_int("window"));

  // Calibrate each engine's standalone batch-8 throughput (fresh targets;
  // the phases below re-create their own so every phase starts from the
  // same deterministic state).
  double rate = cli.get_double("rate");
  std::vector<double> calib;
  {
    util::tracer().set_lane_prefix("calib ");
    auto cpu = core::make_cpu_target(bundle);
    auto gpu = core::make_gpu_target(bundle);
    core::VpuTarget vpu(bundle, vcfg);
    for (core::Target* t :
         std::vector<core::Target*>{cpu.get(), gpu.get(), &vpu}) {
      calib.push_back(t->run_timed(800, 8).throughput());
    }
  }
  const double node_sum = calib[0] + calib[1] + calib[2];
  if (rate <= 0.0) rate = 0.9 * node_sum;
  const double best_single_tput =
      *std::max_element(calib.begin(), calib.end());

  struct Phase {
    std::string name;
    serve::ServeReport report;
  };
  std::vector<Phase> phases;
  std::string mixed_fp, replay_fp;
  double mixed_goodput = 0.0, best_solo_goodput = 0.0;
  double mixed_p99 = 0.0, mixed_fast_p99 = 0.0;

  // "cpu" / "gpu" / "vpu" solo, then "mixed", a "replay" of mixed, and
  // "mixed-fast" — the same targets and trace with the host targets
  // opted into the fast tier (docs/performance.md), so the table shows
  // what the fused/quantized kernels buy an online service end to end.
  const std::vector<std::string> phase_names{
      "solo-cpu", "solo-gpu", "solo-vpu", "mixed", "replay", "mixed-fast"};
  for (const auto& name : phase_names) {
    util::tracer().set_lane_prefix(name + " ");
    auto cpu = core::make_cpu_target(bundle);
    auto gpu = core::make_gpu_target(bundle);
    core::VpuTarget vpu(bundle, vcfg);
    std::vector<core::Target*> targets;
    if (name == "solo-cpu") targets = {cpu.get()};
    if (name == "solo-gpu") targets = {gpu.get()};
    if (name == "solo-vpu") targets = {&vpu};
    if (name == "mixed" || name == "replay" || name == "mixed-fast") {
      targets = {cpu.get(), gpu.get(), &vpu};
    }
    if (name == "mixed-fast") {
      cpu->set_fast(true);
      gpu->set_fast(true);
    }
    serve::Server server(targets, scfg);
    const auto trace = make_trace(requests, rate, seed);
    Phase phase{name, server.run(trace)};
    if (name == "mixed") {
      mixed_fp = fingerprint(phase.report);
      mixed_goodput = phase.report.goodput();
      mixed_p99 = phase.report.p99_ms;
    } else if (name == "replay") {
      replay_fp = fingerprint(phase.report);
    } else if (name == "mixed-fast") {
      mixed_fast_p99 = phase.report.p99_ms;
    } else {
      best_solo_goodput = std::max(best_solo_goodput, phase.report.goodput());
    }
    phases.push_back(std::move(phase));
  }
  util::tracer().set_lane_prefix("");
  const bool replay_identical = mixed_fp == replay_fp;

  util::Table table("serve: " + std::to_string(requests) +
                    " req at " + util::Table::num(rate, 1) + " req/s (seed " +
                    std::to_string(seed) + ")");
  table.set_header({"phase", "completed", "rejected", "dropped",
                    "goodput (req/s)", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (const auto& [name, r] : phases) {
    table.add_row({name, std::to_string(r.completed),
                   std::to_string(r.rejected), std::to_string(r.dropped),
                   util::Table::num(r.goodput(), 1),
                   util::Table::num(r.p50_ms, 1),
                   util::Table::num(r.p95_ms, 1),
                   util::Table::num(r.p99_ms, 1)});
  }
  bench::emit(table, cli);

  const double vs_best = mixed_goodput / best_solo_goodput;
  const double fast_p99_cut_ms = mixed_p99 - mixed_fast_p99;
  std::cout << "\nheterogeneous dispatch sustains "
            << util::Table::num(mixed_goodput, 1) << " req/s goodput — "
            << util::Table::num(vs_best, 2)
            << "x the best solo target under the same offered load; replay "
            << (replay_identical ? "is" : "IS NOT")
            << " bit-identical; the fast host tier cuts p99 by "
            << util::Table::num(fast_p99_cut_ms, 1) << " ms ("
            << util::Table::num(mixed_p99, 1) << " -> "
            << util::Table::num(mixed_fast_p99, 1) << ").\n";

  bench::BenchReport report("serve_loadgen");
  report.config("requests", requests);
  report.config("devices", static_cast<std::int64_t>(vcfg.devices));
  report.config("rate_req_per_s", rate);
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("queue_capacity", static_cast<std::int64_t>(scfg.queue_capacity));
  report.config("max_batch", static_cast<std::int64_t>(scfg.max_batch));
  report.config("batch_timeout_ms", scfg.batch_timeout_s * 1e3);
  report.config("inflight_window",
                static_cast<std::int64_t>(scfg.inflight_window));
  report.config("queue_deadline_ms",
                std::isfinite(scfg.queue_deadline_s)
                    ? scfg.queue_deadline_s * 1e3
                    : 0.0);
  report.value("node_aggregate_tput", node_sum);
  report.value("best_single_tput", best_single_tput);
  for (const auto& [name, r] : phases) {
    report.value(name + ".offered", static_cast<double>(r.offered));
    report.value(name + ".completed", static_cast<double>(r.completed));
    report.value(name + ".rejected", static_cast<double>(r.rejected));
    report.value(name + ".dropped", static_cast<double>(r.dropped));
    report.value(name + ".drops.deadline",
                 static_cast<double>(r.dropped_deadline));
    report.value(name + ".drops.inflight",
                 static_cast<double>(r.dropped_inflight));
    report.value(name + ".drops.failover",
                 static_cast<double>(r.dropped_failover));
    report.value(name + ".goodput", r.goodput());
    report.value(name + ".p50_ms", r.p50_ms);
    report.value(name + ".p95_ms", r.p95_ms);
    report.value(name + ".p99_ms", r.p99_ms);
    report.value(name + ".max_queue_depth",
                 static_cast<double>(r.max_queue_depth));
    // Pipeline depth actually reached per target: how much of the
    // in-flight window the dispatcher used (1 everywhere reproduces the
    // PR5 blocking dispatcher).
    for (std::size_t i = 0; i < r.targets.size(); ++i) {
      const auto& t = r.targets[i];
      report.value(name + ".inflight.target" + std::to_string(i) + ".window",
                   static_cast<double>(t.window));
      report.value(name + ".inflight.target" + std::to_string(i) + ".max",
                   static_cast<double>(t.max_inflight));
    }
  }
  report.value("mixed_vs_best_solo", vs_best);
  report.value("replay_identical", replay_identical ? 1.0 : 0.0);
  report.value("fast_p99_cut_ms", fast_p99_cut_ms);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return replay_identical ? 0 : 1;
}
