// Ablation A4 — thermal throttling under sustained load. The paper's
// throughput/Watt analysis uses TDP and assumes the stick sustains its
// nominal speed indefinitely; a real NCS is a sealed USB stick whose
// junction temperature rises under back-to-back inference. This bench
// runs a long burst and reports throughput per time window for three
// cooling scenarios, using the NCSDK thermal device options.
#include "bench_common.h"
#include "core/model.h"
#include "mvnc/mvnc.h"
#include "mvnc/sim_host.h"

namespace {

using namespace ncsw;

struct WindowRow {
  double t_end_s;
  double throughput;
  double temp_c;
  const char* level;
};

std::vector<WindowRow> sustained_run(const ncs::NcsConfig& ncs_cfg,
                                     int inferences, int windows) {
  mvnc::HostConfig host;
  host.devices = 1;
  host.ncs = ncs_cfg;
  mvnc::host_reset(host);
  char name[64];
  mvnc::mvncGetDeviceName(0, name, sizeof(name));
  void* dev = nullptr;
  mvnc::mvncOpenDevice(name, &dev);
  auto bundle = core::ModelBundle::googlenet_reference();
  void* graph = nullptr;
  mvnc::mvncAllocateGraph(dev, &graph, bundle->graph_blob.data(),
                          static_cast<unsigned int>(bundle->graph_blob.size()));
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(bundle->compiled_f16.input_bytes()), 0);

  std::vector<WindowRow> rows;
  const int per_window = inferences / windows;
  ncs::NcsDevice* device = mvnc::device_of(dev);
  double window_start = mvnc::host_time(graph).value_or(0.0);
  for (int w = 0; w < windows; ++w) {
    for (int i = 0; i < per_window; ++i) {
      mvnc::mvncLoadTensor(graph, input.data(),
                           static_cast<unsigned int>(input.size()), nullptr);
      void* out;
      unsigned int len;
      mvnc::mvncGetResult(graph, &out, &len, nullptr);
    }
    const double now = mvnc::last_ticket(graph)->result_ready;
    const char* level = "none";
    switch (device->throttle_level()) {
      case ncs::ThrottleLevel::kSoft:
        level = "SOFT";
        break;
      case ncs::ThrottleLevel::kHard:
        level = "HARD";
        break;
      default:
        break;
    }
    rows.push_back({now, per_window / (now - window_start),
                    device->temperature_c(), level});
    window_start = now;
  }
  mvnc::mvncDeallocateGraph(graph);
  mvnc::mvncCloseDevice(dev);
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("ablation_thermal",
                "A4 — sustained-load throttling on one stick");
  cli.add_int("inferences", 3000, "back-to-back inferences");
  cli.add_int("windows", 6, "reporting windows");
  ncsw::bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  ncsw::bench::setup(cli);

  const int n = static_cast<int>(cli.get_int("inferences"));
  const int windows = static_cast<int>(cli.get_int("windows"));

  struct Scenario {
    const char* label;
    double resistance;
    double tau;
  };
  const Scenario scenarios[] = {
      {"free air (paper testbed, default)", 18.0, 95.0},
      {"enclosed chassis (poor airflow)", 45.0, 20.0},
      {"heatsinked / forced air", 8.0, 60.0},
  };

  int scenario_idx = 0;
  for (const auto& sc : scenarios) {
    ncs::NcsConfig cfg;
    cfg.thermal.resistance_c_per_w = sc.resistance;
    cfg.thermal.time_constant_s = sc.tau;
    // Each scenario restarts the simulated clock; namespace its lanes so
    // the scenarios sit side by side in one trace instead of overlaying.
    util::tracer().set_lane_prefix("sc" + std::to_string(scenario_idx++) +
                                   " ");
    const auto rows = sustained_run(cfg, n, windows);

    util::Table table(std::string("A4: ") + sc.label);
    table.set_header({"t (s)", "img/s", "temp (°C)", "throttle"});
    for (const auto& r : rows) {
      table.add_row({util::Table::num(r.t_end_s, 0),
                     util::Table::num(r.throughput, 2),
                     util::Table::num(r.temp_c, 1), r.level});
    }
    std::cout << table.to_string() << "\n";
  }
  std::cout << "conclusion: in free air the stick stabilises below the "
               "70 °C soft limit and the paper's steady-state numbers "
               "hold; in a sealed chassis sustained inference throttles "
               "hard and throughput drops ~2x — worth knowing before "
               "packing 8+ sticks into an HPC node.\n";
  ncsw::bench::finalize(cli);
  return 0;
}
