// Reproduces paper Fig. 7b: absolute top-1 confidence difference between
// the CPU (FP32) and VPU (FP16) implementations per subset, after
// filtering out the top-1 miss-predictions.
//
// Paper anchor: 0.44% mean absolute difference (sub-percent everywhere).
#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig7b_confidence",
                "Fig. 7b — CPU(FP32) vs VPU(FP16) confidence difference");
  cli.add_int("images", 400,
              "images per subset (functional inference; paper: 10000)");
  cli.add_int("subsets", 5, "number of subsets");
  cli.add_int("classes", 50, "synthetic classes");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  core::experiments::ErrorSettings s;
  s.images_per_subset = cli.get_int("images");
  s.data.subsets = static_cast<int>(cli.get_int("subsets"));
  s.data.num_classes = static_cast<int>(cli.get_int("classes"));

  const auto rows = core::experiments::fig7(s);

  util::Table table(
      "Fig. 7b: Abs. confidence difference per subset, CPU (FP32) vs VPU "
      "(FP16), top-1 misses filtered");
  table.set_header({"Subset", "Images", "Abs. diff"});
  util::RunningStats diff;
  for (const auto& r : rows) {
    table.add_row({r.subset, std::to_string(r.images),
                   util::Table::num(r.conf_diff * 100, 3) + "%"});
    diff.add(r.conf_diff);
  }
  table.add_row({"mean", "", util::Table::num(diff.mean() * 100, 3) + "%"});
  bench::emit(table, cli);

  std::cout << "\npaper:    0.44% average confidence difference\n"
            << "measured: " << util::Table::num(diff.mean() * 100, 3)
            << "% (sub-percent, same conclusion: FP16 does not "
               "meaningfully perturb the network output)\n";

  bench::BenchReport report("fig7b_confidence");
  report.config("images", s.images_per_subset);
  report.config("subsets", static_cast<std::int64_t>(s.data.subsets));
  report.config("classes", static_cast<std::int64_t>(s.data.num_classes));
  report.anchor("mean_abs_conf_diff_pct", "%", 0.44, diff.mean() * 100);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
