// Reproduces paper Fig. 6b: normalised inference-performance scaling per
// batch size. Each device is normalised to its own single-input latency
// (paper baselines: CPU 26.0 ms, GPU 25.9 ms, VPU 100.7 ms); the number
// of active VPU chips is coupled to the batch size.
//
// Paper anchors at batch 8: CPU 1.147x, GPU 1.925x, VPU ~7.8x.
#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig6b_scaling",
                "Fig. 6b — normalised performance scaling per batch size");
  cli.add_int("images", 10000, "images per measurement (paper: one subset)");
  cli.add_int("devices", 8, "NCS sticks available");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const auto result = core::experiments::fig6b(
      cli.get_int("images"), {1, 2, 4, 8},
      static_cast<int>(cli.get_int("devices")));

  util::Table table("Fig. 6b: Relative inference performance per batch size");
  table.set_header({"Batch", "CPU", "GPU", "VPU (Multi)"});
  for (const auto& r : result.rows) {
    table.add_row({std::to_string(r.batch), util::Table::num(r.cpu, 2),
                   util::Table::num(r.gpu, 2), util::Table::num(r.vpu, 2)});
  }
  bench::emit(table, cli);

  std::cout << "\nsingle-input baselines (ms/inference):\n"
            << "  paper:    CPU 26.0 | GPU 25.9 | VPU 100.7\n"
            << "  measured: CPU " << util::Table::num(result.cpu_base_ms, 1)
            << " | GPU " << util::Table::num(result.gpu_base_ms, 1)
            << " | VPU " << util::Table::num(result.vpu_base_ms, 1) << "\n"
            << "paper at batch 8: CPU +14.7% (1.1x) | GPU +92.5% (1.9x) | "
               "VPU close to 8x\n";

  bench::BenchReport report("fig6b_scaling");
  report.config("images", cli.get_int("images"));
  report.config("devices", cli.get_int("devices"));
  report.anchor("cpu_base_ms", "ms", 26.0, result.cpu_base_ms);
  report.anchor("gpu_base_ms", "ms", 25.9, result.gpu_base_ms);
  report.anchor("vpu_base_ms", "ms", 100.7, result.vpu_base_ms);
  for (const auto& r : result.rows) {
    if (r.batch == 8) {
      report.anchor("cpu_scaling_b8", "x", 1.147, r.cpu);
      report.anchor("gpu_scaling_b8", "x", 1.925, r.gpu);
      report.anchor("vpu_scaling_b8", "x", 7.8, r.vpu);
    }
  }
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
