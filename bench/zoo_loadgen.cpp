// Multi-tenant model-zoo serving benchmark: M zoo models contending for
// K sticks through the residency-managed graph cache.
//
// The paper's deployments dedicate the fleet to one network; a
// multi-tenant node instead hosts a zoo whose working set exceeds the
// sticks' LPDDR, so every request may pay a graph swap before it runs.
// This harness offers one Poisson tenant mix (zipf-skewed across the
// zoo, tagged with SLO classes) to three placement policies on fresh
// fleets:
//
//   static     — model m pinned to stick m % K, the offline partition a
//                zoo without a residency layer would hard-code. The hot
//                pair of tenants collides on one stick and thrashes it
//                while the other stick idles: the baseline.
//   lru        — evict the least-recently-used stick (swap-cost blind).
//   cost-aware — GreedyDual scoring: evict cold AND cheap-to-reload
//                victims, priced by the fleet's calibrated per-model
//                dealloc+alloc cost.
//
// then replays cost-aware from the same seed on a fresh fleet to
// demonstrate byte-determinism. Reported per phase: goodput, hit rate,
// swap count + stall time, and per-SLO-class tail latency.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/stick_fleet.h"
#include "serve/arrivals.h"
#include "serve/zoo_serve.h"
#include "util/rng.h"

namespace {

using namespace ncsw;

/// The zoo, in fleet model-index order. Index 0/2 form the hot pair:
/// under static pinning with 2 sticks both land on stick 0.
const std::vector<std::string> kZooNames = {"googlenet", "alexnet",
                                            "squeezenet", "tiny"};

std::vector<serve::ZooRequest> make_trace(std::int64_t n, double rate,
                                          std::uint64_t seed) {
  serve::PoissonArrivals arrivals(rate, seed);
  util::Xoshiro256 mix(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<serve::ZooRequest> trace;
  trace.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::ZooRequest req;
    req.id = i;
    req.arrival_s = arrivals.next();
    // Zipf-skewed tenant mix: two hot tenants carry 96% of the load
    // (48% googlenet + 48% squeezenet), the cold tail the rest. The
    // tail is what separates the policies: alexnet's blob is by far
    // the costliest to swap back in.
    const double u = mix.uniform();
    req.model = u < 0.48 ? 0 : u < 0.96 ? 2 : u < 0.98 ? 1 : 3;
    // SLO classes: 20% interactive, 60% standard, 20% batch.
    const double c = mix.uniform();
    req.slo = c < 0.20   ? serve::SloClass::kInteractive
              : c < 0.80 ? serve::SloClass::kStandard
                         : serve::SloClass::kBatch;
    trace.push_back(req);
  }
  return trace;
}

/// Full-precision fingerprint of everything the replay must reproduce.
std::string fingerprint(const serve::ZooReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%lld/%lld/%lld/%lld/%lld/%lld/%lld/%.17g/%.17g/%.17g/%.17g/"
                "%.17g",
                static_cast<long long>(r.completed),
                static_cast<long long>(r.rejected),
                static_cast<long long>(r.dropped),
                static_cast<long long>(r.hits),
                static_cast<long long>(r.misses),
                static_cast<long long>(r.swaps),
                static_cast<long long>(r.installs), r.swap_stall_s, r.p50_ms,
                r.p95_ms, r.p99_ms, r.last_complete_s);
  std::string fp = buf;
  for (const auto& cs : r.classes) {
    std::snprintf(buf, sizeof(buf), "|%lld/%lld/%.17g",
                  static_cast<long long>(cs.offered),
                  static_cast<long long>(cs.completed), cs.p99_ms);
    fp += buf;
  }
  return fp;
}

std::vector<core::ZooModel> make_zoo() {
  std::vector<core::ZooModel> zoo;
  for (const auto& name : kZooNames) {
    zoo.push_back({name, core::ModelBundle::zoo_reference(name)});
  }
  return zoo;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("zoo_loadgen",
                "multi-tenant model-zoo serving with stick-resident graph "
                "caching: static vs lru vs cost-aware placement");
  cli.add_int("requests", 2000, "requests per phase");
  cli.add_int("devices", 2, "sticks in the fleet");
  cli.add_double("rate", 0.0,
                 "offered load (req/s); 0 = 1.5x the fleet's calibrated "
                 "hot-model throughput (saturating)");
  cli.add_int("seed", 42, "arrival/mix seed");
  cli.add_int("queue", 96, "shared admission queue capacity");
  cli.add_int("batch", 4, "max same-model requests folded into one ticket");
  cli.add_double("deadline-ms", 0.0,
                 "queue deadline before a request is dropped (0 = never)");
  cli.add_double("hysteresis-ms", 0.0,
                 "minimum residency before a graph may be evicted again");
  bench::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "zoo_loadgen: %s\n", e.what());
    return 2;
  }
  if (cli.get_int("devices") < 1) {
    std::fprintf(stderr, "zoo_loadgen: --devices must be >= 1\n");
    return 2;
  }
  if (cli.get_int("requests") < 1) {
    std::fprintf(stderr, "zoo_loadgen: --requests must be >= 1\n");
    return 2;
  }
  if (cli.get_int("queue") < 1) {
    std::fprintf(stderr, "zoo_loadgen: --queue must be >= 1\n");
    return 2;
  }
  if (cli.get_int("batch") < 1) {
    std::fprintf(stderr, "zoo_loadgen: --batch must be >= 1\n");
    return 2;
  }
  if (cli.get_double("rate") < 0.0 || cli.get_double("deadline-ms") < 0.0 ||
      cli.get_double("hysteresis-ms") < 0.0) {
    std::fprintf(stderr,
                 "zoo_loadgen: --rate, --deadline-ms and --hysteresis-ms "
                 "must be >= 0\n");
    return 2;
  }
  bench::setup(cli);

  const std::int64_t requests = cli.get_int("requests");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto zoo = make_zoo();
  core::StickFleetConfig fcfg;
  fcfg.devices = static_cast<int>(cli.get_int("devices"));

  serve::ZooConfig zcfg;
  zcfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  zcfg.max_batch = static_cast<int>(cli.get_int("batch"));
  if (cli.get_double("deadline-ms") > 0.0) {
    zcfg.queue_deadline_s = cli.get_double("deadline-ms") * 1e-3;
  }
  zcfg.residency.min_residency_s = cli.get_double("hysteresis-ms") * 1e-3;

  // Calibrate the hot model's single-stick throughput (a throwaway
  // fleet: every phase below re-creates its own so each starts from the
  // same deterministic host state) and derive a saturating default rate.
  double rate = cli.get_double("rate");
  double hot_tput = 0.0;
  std::vector<double> swap_costs;
  {
    util::tracer().set_lane_prefix("calib ");
    core::StickFleet fleet(zoo, fcfg);
    hot_tput = fleet.stick(0).run_timed(8, 1).throughput();
    for (int m = 0; m < fleet.models(); ++m) {
      swap_costs.push_back(fleet.swap_in_cost_s(m));
    }
  }
  if (rate <= 0.0) rate = 1.5 * fcfg.devices * hot_tput;

  struct Phase {
    std::string name;
    serve::Placement placement;
    serve::ZooReport report;
  };
  std::vector<Phase> phases{
      {"static", serve::Placement::kStatic, {}},
      {"lru", serve::Placement::kLru, {}},
      {"cost-aware", serve::Placement::kCostAware, {}},
      {"replay", serve::Placement::kCostAware, {}},
  };
  std::string cost_fp, replay_fp;
  for (auto& phase : phases) {
    util::tracer().set_lane_prefix(phase.name + " ");
    core::StickFleet fleet(zoo, fcfg);
    serve::ZooConfig cfg = zcfg;
    cfg.residency.placement = phase.placement;
    serve::ZooServer server(fleet, cfg);
    const auto trace = make_trace(requests, rate, seed);
    phase.report = server.run(trace);
    if (phase.name == "cost-aware") cost_fp = fingerprint(phase.report);
    if (phase.name == "replay") replay_fp = fingerprint(phase.report);
  }
  util::tracer().set_lane_prefix("");
  const bool replay_identical = cost_fp == replay_fp;

  const auto& rs = phases[0].report;
  const auto& rc = phases[2].report;
  const double cost_vs_static =
      rs.goodput() > 0.0 ? rc.goodput() / rs.goodput() : 0.0;
  const double lru_vs_static =
      rs.goodput() > 0.0 ? phases[1].report.goodput() / rs.goodput() : 0.0;

  util::Table table("zoo: " + std::to_string(requests) + " req, " +
                    std::to_string(fcfg.devices) + " sticks x " +
                    std::to_string(static_cast<int>(zoo.size())) +
                    " models at " + util::Table::num(rate, 1) +
                    " req/s (seed " + std::to_string(seed) + ")");
  table.set_header({"placement", "completed", "rejected", "dropped",
                    "hit rate", "swaps", "stall (s)", "goodput (req/s)",
                    "p99 (ms)"});
  for (const auto& phase : phases) {
    const auto& r = phase.report;
    table.add_row({phase.name, std::to_string(r.completed),
                   std::to_string(r.rejected), std::to_string(r.dropped),
                   util::Table::num(r.hit_rate(), 3),
                   std::to_string(r.swaps),
                   util::Table::num(r.swap_stall_s, 2),
                   util::Table::num(r.goodput(), 1),
                   util::Table::num(r.p99_ms, 1)});
  }
  bench::emit(table, cli);

  std::cout << "\ncost-aware residency sustains "
            << util::Table::num(rc.goodput(), 1) << " req/s goodput — "
            << util::Table::num(cost_vs_static, 2)
            << "x the static pinning (lru: "
            << util::Table::num(lru_vs_static, 2) << "x) with "
            << rc.swaps << " swaps vs " << rs.swaps << "; replay "
            << (replay_identical ? "is" : "IS NOT") << " bit-identical.\n";

  bench::BenchReport report("zoo_loadgen");
  report.config("requests", requests);
  report.config("devices", static_cast<std::int64_t>(fcfg.devices));
  report.config("models", static_cast<std::int64_t>(zoo.size()));
  report.config("rate_req_per_s", rate);
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("queue_capacity",
                static_cast<std::int64_t>(zcfg.queue_capacity));
  report.config("max_batch", static_cast<std::int64_t>(zcfg.max_batch));
  report.config("deadline_ms", cli.get_double("deadline-ms"));
  report.config("hysteresis_ms", cli.get_double("hysteresis-ms"));
  report.value("hot_model_tput", hot_tput);
  for (std::size_t m = 0; m < swap_costs.size(); ++m) {
    report.value("swap_cost_s." + kZooNames[m], swap_costs[m]);
  }
  for (const auto& phase : phases) {
    const auto& r = phase.report;
    const std::string p = phase.name;
    report.value(p + ".offered", static_cast<double>(r.offered));
    report.value(p + ".accepted", static_cast<double>(r.accepted));
    report.value(p + ".completed", static_cast<double>(r.completed));
    report.value(p + ".rejected", static_cast<double>(r.rejected));
    report.value(p + ".dropped", static_cast<double>(r.dropped));
    report.value(p + ".hit_rate", r.hit_rate());
    report.value(p + ".swaps", static_cast<double>(r.swaps));
    report.value(p + ".swap_stall_s", r.swap_stall_s);
    report.value(p + ".installs", static_cast<double>(r.installs));
    report.value(p + ".evicts", static_cast<double>(r.evicts));
    report.value(p + ".resident", static_cast<double>(r.resident));
    report.value(p + ".goodput", r.goodput());
    report.value(p + ".p50_ms", r.p50_ms);
    report.value(p + ".p95_ms", r.p95_ms);
    report.value(p + ".p99_ms", r.p99_ms);
    for (std::size_t c = 0; c < serve::kSloClassCount; ++c) {
      const auto& cs = r.classes[c];
      const std::string key =
          p + ".class." + serve::slo_class_name(
                              static_cast<serve::SloClass>(c));
      report.value(key + ".offered", static_cast<double>(cs.offered));
      report.value(key + ".completed", static_cast<double>(cs.completed));
      report.value(key + ".rejected", static_cast<double>(cs.rejected));
      report.value(key + ".dropped", static_cast<double>(cs.dropped));
      report.value(key + ".p99_ms", cs.p99_ms);
    }
    for (const auto& ms : r.models) {
      report.value(p + ".model." + ms.name + ".offered",
                   static_cast<double>(ms.offered));
      report.value(p + ".model." + ms.name + ".completed",
                   static_cast<double>(ms.completed));
      report.value(p + ".model." + ms.name + ".swaps_in",
                   static_cast<double>(ms.swaps_in));
    }
  }
  report.value("cost_vs_static", cost_vs_static);
  report.value("lru_vs_static", lru_vs_static);
  report.value("replay_identical", replay_identical ? 1.0 : 0.0);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return replay_identical ? 0 : 1;
}
