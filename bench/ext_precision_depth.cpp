// Extension E11 — where FP16 error comes from (the layer-level story
// behind Fig. 7b): mean per-layer |FP32 - FP16| activation divergence as
// a function of network depth, averaged over images, plus the fraction of
// top-1 flips. Shows divergence growing through the conv stack and being
// squashed by softmax — why the paper sees only 0.4% confidence deltas.
#include <map>

#include "bench_common.h"
#include "core/model.h"
#include "nn/executor.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ext_precision_depth",
                "E11 — FP16 divergence by layer depth");
  cli.add_int("images", 24, "images to average over");
  cli.add_int("classes", 30, "synthetic classes");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  dataset::DatasetConfig data_cfg;
  data_cfg.num_classes = static_cast<int>(cli.get_int("classes"));
  const dataset::SyntheticImageNet data(data_cfg);
  auto bundle = core::ModelBundle::tiny_functional(data, {32, 0});
  const auto& graph = bundle->graph;

  std::vector<util::RunningStats> per_layer(
      static_cast<std::size_t>(graph.size()));
  int flips = 0;
  const int images = static_cast<int>(cli.get_int("images"));
  nn::ExecOptions opts;
  opts.keep_all_activations = true;

  for (int i = 0; i < images; ++i) {
    const auto input =
        data.preprocess(data.sample(0, i).image, bundle->input_size());
    const auto rf =
        nn::run_forward(graph, bundle->weights_f32, input, opts);
    const auto rh = nn::run_forward(
        graph, bundle->weights_f16,
        tensor::tensor_cast<fp16::half>(input), opts);
    for (int id = 0; id < graph.size(); ++id) {
      per_layer[id].add(tensor::max_abs_diff(rf.activations[id],
                                             rh.activations[id]));
    }
    const auto pf = nn::run_probabilities(graph, bundle->weights_f32, input);
    const auto ph =
        nn::run_probabilities(graph, bundle->weights_f16,
                              tensor::tensor_cast<fp16::half>(input));
    if (nn::argmax_per_item(pf)[0] != nn::argmax_per_item(ph)[0]) ++flips;
  }

  util::Table table("E11: max |FP32 - FP16| activation divergence by layer "
                    "(mean over " + std::to_string(images) + " images)");
  table.set_header({"depth", "layer", "kind", "mean max|diff|",
                    "worst image"});
  for (int id = 0; id < graph.size(); ++id) {
    const auto& layer = graph.layer(id);
    // Only report layers that transform data (skip ReLU echoes for
    // brevity) plus the output.
    if (layer.kind == nn::LayerKind::kReLU && id != graph.output_id()) {
      continue;
    }
    table.add_row({std::to_string(id), layer.name,
                   nn::layer_kind_name(layer.kind),
                   util::Table::num(per_layer[id].mean(), 5),
                   util::Table::num(per_layer[id].max(), 5)});
  }
  bench::emit(table, cli);

  std::cout << "\ntop-1 flips from FP16: " << flips << "/" << images
            << " images — divergence accumulates through conv/LRN, the "
               "global average pool averages much of it away, and softmax "
               "renormalisation leaves sub-percent confidence deltas "
               "(paper Fig. 7b: 0.44%).\n";
  bench::finalize(cli);
  return 0;
}
