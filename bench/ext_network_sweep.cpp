// Extension E8 — cross-network sweep (in the spirit of the paper's
// ref. [37], Pena et al., "Benchmarking of CNNs for low-cost, low-power
// robotics applications", which profiles several CNNs on the same
// stick): latency, throughput, energy and img/W for every network in the
// zoo on one simulated NCS, next to the CPU/GPU reference models scaled
// by each network's MAC count.
#include <cstdio>

#include "bench_common.h"
#include "devices/host_models.h"
#include "graphc/compiler.h"
#include "myriad/myriad.h"
#include "ncs/device.h"
#include "nn/zoo.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ext_network_sweep",
                "E8 — every zoo network on one stick vs CPU/GPU");
  bench::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ext_network_sweep: %s\n", e.what());
    return 2;
  }
  bench::setup(cli);

  const auto cpu = devices::make_cpu_model();
  const auto gpu = devices::make_gpu_model();
  myriad::Myriad2 chip;

  util::Table table("E8: network sweep (batch 1, per image)");
  table.set_header({"network", "MMACs", "params(M)", "VPU ms", "VPU img/s",
                    "VPU mJ", "VPU img/W*", "CPU ms", "GPU ms"});
  for (const auto& name : nn::network_zoo_names()) {
    const auto graph = nn::build_named_network(name);
    const auto compiled = graphc::compile(graph, graphc::Precision::kFP16);
    const auto profile = chip.execute(compiled);
    const double vpu_ms = profile.total_s * 1e3;
    const double params_m =
        static_cast<double>(compiled.total_weight_bytes()) / 2.0 / 1e6;
    table.add_row(
        {name,
         util::Table::num(static_cast<double>(compiled.total_macs()) / 1e6,
                          0),
         util::Table::num(params_m, 2), util::Table::num(vpu_ms, 1),
         util::Table::num(1e3 / vpu_ms, 1),
         util::Table::num(profile.energy_j * 1e3, 1),
         util::Table::num(1e3 / vpu_ms / myriad::TdpConstants::kNcsStickW, 2),
         util::Table::num(cpu.per_image_s(1, compiled.total_macs()) * 1e3, 1),
         util::Table::num(gpu.per_image_s(1, compiled.total_macs()) * 1e3,
                          1)});
  }
  bench::emit(table, cli);
  std::cout << "\n(*) img/W against the 2.5 W stick rating; the CPU/GPU "
               "columns are the calibrated Caffe models scaled by MACs.\n"
               "shape: SqueezeNet's 4x fewer MACs buy ~3x lower stick "
               "latency; AlexNet's huge FC layers are DMA-bound so its "
               "latency is GoogLeNet-class despite fewer MACs.\n";
  bench::finalize(cli);
  return 0;
}
