// Extension E9 — general-purpose GEMM offload (the paper's Section VII
// future work, reproducing the shape of Ionica & Gregg's Myriad DGEMM
// results): Gflops and Gflops/W for CMX-tiled GEMM on the simulated
// Myriad 2, FP16 and FP32, against the calibrated Xeon reference.
#include "bench_common.h"
#include "devices/host_models.h"
#include "mdk/mdk.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ext_dgemm_offload",
                "E9 — CMX-tiled GEMM on the VPU: Gflops and Gflops/W");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  mdk::MdkContext ctx;

  // Host comparator: effective GFLOP/s of the calibrated Caffe-MKL model
  // (GoogLeNet GFLOPs / single-image latency) at 80 W TDP. GEMM is the
  // friendliest case for MKL, so credit it 1.6x the conv-net figure.
  const auto cpu = devices::make_cpu_model();
  const double cpu_gflops = 2.0 *
                            static_cast<double>(devices::googlenet_macs()) /
                            cpu.per_image_s(1) / 1e9 * 1.6;
  const double cpu_gflops_per_w = cpu_gflops / cpu.tdp_w();

  util::Table table("E9: GEMM offload (square matrices)");
  table.set_header({"N", "precision", "tile", "Gflops", "W", "Gflops/W",
                    "SHAVE util"});
  for (std::int64_t n : {256, 512, 1024, 2048, 4096}) {
    for (auto prec : {graphc::Precision::kFP16, graphc::Precision::kFP32}) {
      const auto plan = ctx.plan_gemm(n, n, n, prec);
      const auto stats = ctx.simulate_gemm(plan);
      table.add_row({std::to_string(n), graphc::precision_name(prec),
                     std::to_string(plan.tile_m) + "x" +
                         std::to_string(plan.tile_n) + "x" +
                         std::to_string(plan.tile_k),
                     util::Table::num(stats.gflops, 1),
                     util::Table::num(stats.avg_power_w, 2),
                     util::Table::num(stats.gflops_per_w, 1),
                     util::Table::num(stats.shave_utilization * 100, 0) +
                         "%"});
    }
  }
  bench::emit(table, cli);

  std::cout << "\nhost comparator: Xeon E5-2609v2 pair ~"
            << util::Table::num(cpu_gflops, 0) << " GFLOP/s at 80 W TDP = "
            << util::Table::num(cpu_gflops_per_w, 1) << " Gflops/W\n"
            << "shape (Ionica & Gregg, IEEE Micro'15): the Myriad sustains "
               "an order of magnitude better Gflops/W on tiled GEMM than a "
               "server CPU, at ~1 W absolute draw.\n";
  bench::finalize(cli);
  return 0;
}
