// Reproduces paper Fig. 8b: inference throughput per batch size with the
// multi-VPU curve continued past the 8 physically available sticks. The
// paper *projects* the 16-chip point assuming the observed scaling holds;
// here the 9-16 stick region is actually simulated (more root ports on
// the host model) and flagged "projected" to match the paper's dashed
// line.
//
// Paper anchors: CPU max 44.5, GPU max 79.9, VPU 153.0 img/s @16 chips
// (3.4x CPU, 1.9x GPU).
#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig8b_projection",
                "Fig. 8b — projected throughput per batch size (1-16)");
  cli.add_int("images", 10000, "images per measurement");
  cli.add_int("devices", 8, "physically available sticks (beyond = dashed)");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const auto rows = core::experiments::fig8b(
      cli.get_int("images"), {1, 2, 4, 8, 16},
      static_cast<int>(cli.get_int("devices")));

  util::Table table("Fig. 8b: Projected inference performance (images/s)");
  table.set_header({"Batch", "CPU", "GPU", "VPU (Multi)", ""});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.batch), util::Table::num(r.cpu, 1),
                   util::Table::num(r.gpu, 1), util::Table::num(r.vpu, 1),
                   r.vpu_projected ? "(projected)" : ""});
  }
  bench::emit(table, cli);

  const auto& last = rows.back();
  std::cout << "\npaper: CPU max 44.5 | GPU max 79.9 | VPU 153.0 img/s @16 "
               "chips (3.4x CPU, 1.9x GPU)\n"
            << "measured @16: CPU " << util::Table::num(last.cpu, 1)
            << " | GPU " << util::Table::num(last.gpu, 1) << " | VPU "
            << util::Table::num(last.vpu, 1) << " img/s ("
            << util::Table::num(last.vpu / last.cpu, 1) << "x CPU, "
            << util::Table::num(last.vpu / last.gpu, 1) << "x GPU)\n";

  bench::BenchReport report("fig8b_projection");
  report.config("images", cli.get_int("images"));
  report.config("devices", cli.get_int("devices"));
  report.anchor("cpu_max_img_per_s", "img/s", 44.5, last.cpu);
  report.anchor("gpu_max_img_per_s", "img/s", 79.9, last.gpu);
  report.anchor("vpu_16chip_img_per_s", "img/s", 153.0, last.vpu);
  report.value("vpu_vs_cpu_x", last.vpu / last.cpu);
  report.value("vpu_vs_gpu_x", last.vpu / last.gpu);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
