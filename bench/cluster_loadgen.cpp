// Cluster extension — goodput/p99 vs node count under node-level chaos.
//
// serve_loadgen measures what one heterogeneous node delivers; this
// harness scales the same open-loop Poisson trace across a cluster of
// serve nodes behind the consistent-hash router (src/cluster) and then
// kills a node mid-run. The sweep reads as three claims:
//
//   n1 -> n3      adding replicated nodes buys near-linear goodput
//   n3 -> n3-kill a scripted mid-run node crash costs throughput but
//                 loses ZERO accepted requests: everything queued or in
//                 flight on the dead node is replayed to a live replica
//   replay        the kill phase re-run from the same seed with fresh
//                 targets is byte-identical — chaos is deterministic
//
// Node 0 owns {cpu, gpu, vpu-group}; nodes 1..2 own {cpu, gpu} (the
// simulated host allows one VPU fleet at a time). Every phase offers
// the same arrival trace, so the table is an apples-to-apples sweep.
#include <cstdio>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "core/host_target.h"
#include "core/vpu_target.h"
#include "serve/arrivals.h"

namespace {

using namespace ncsw;

std::vector<serve::Request> make_trace(std::int64_t n, double rate,
                                       std::uint64_t seed) {
  serve::PoissonArrivals arrivals(rate, seed);
  std::vector<serve::Request> trace;
  trace.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    serve::Request req;
    req.id = i;
    req.arrival_s = arrivals.next();
    trace.push_back(std::move(req));
  }
  return trace;
}

/// Full-precision fingerprint of everything the replay must reproduce:
/// cluster totals, tail latencies, and per-node serving rollups.
std::string fingerprint(const cluster::ClusterReport& r) {
  char buf[240];
  std::string fp;
  std::snprintf(
      buf, sizeof(buf),
      "%lld/%lld/%lld/%lld/%lld/%lld/%lld/%.17g/%.17g/%.17g/%.17g",
      static_cast<long long>(r.completed),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.dropped_deadline),
      static_cast<long long>(r.requests_lost),
      static_cast<long long>(r.requests_replayed),
      static_cast<long long>(r.requests_hedged),
      static_cast<long long>(r.duplicate_completions), r.p50_ms, r.p95_ms,
      r.p99_ms, r.last_complete_s);
  fp = buf;
  for (const auto& n : r.nodes) {
    std::snprintf(buf, sizeof(buf), "|%s:%lld/%lld/%lld/%lld/%.17g",
                  n.health.c_str(), static_cast<long long>(n.routed),
                  static_cast<long long>(n.evicted),
                  static_cast<long long>(n.serve.completed),
                  static_cast<long long>(n.serve.dropped),
                  n.serve.last_complete_s);
    fp += buf;
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("cluster_loadgen",
                "open-loop Poisson load across a replicated multi-node "
                "cluster with a scripted mid-run node kill");
  cli.add_int("requests", 3000, "requests per phase");
  cli.add_int("devices", 8, "NCS sticks in node 0's VPU group");
  cli.add_double("rate", 0.0,
                 "offered load (req/s); 0 = 0.9x the 3-node cluster's "
                 "calibrated aggregate throughput");
  cli.add_int("seed", 42, "arrival-process seed");
  cli.add_int("queue", 32, "per-node admission queue capacity");
  cli.add_int("batch", 8, "max dispatch batch");
  cli.add_double("timeout-ms", 50.0, "partial-batch flush timeout");
  cli.add_double("deadline-ms", 0.0,
                 "per-node queue deadline before a request is dropped "
                 "(0 = never; a kill then sheds nothing)");
  cli.add_int("window", 2, "in-flight submissions per target");
  cli.add_int("replication", 2, "replicas per model");
  cli.add_int("models", 8, "model catalogue size");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get_int("window") < 1) {
    std::fprintf(stderr,
                 "cluster_loadgen: --window must be >= 1 (got %lld); the "
                 "dispatcher needs at least one in-flight submission per "
                 "target\n",
                 static_cast<long long>(cli.get_int("window")));
    return 2;
  }
  if (cli.get_int("replication") < 1) {
    std::fprintf(stderr,
                 "cluster_loadgen: --replication must be >= 1 (got %lld)\n",
                 static_cast<long long>(cli.get_int("replication")));
    return 2;
  }
  bench::setup(cli);

  const std::int64_t requests = cli.get_int("requests");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto bundle = core::ModelBundle::googlenet_reference();
  core::VpuTargetConfig vcfg;
  vcfg.devices = static_cast<int>(cli.get_int("devices"));

  cluster::ClusterConfig ccfg;
  ccfg.node.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
  ccfg.node.max_batch = static_cast<int>(cli.get_int("batch"));
  ccfg.node.batch_timeout_s = cli.get_double("timeout-ms") * 1e-3;
  if (cli.get_double("deadline-ms") > 0.0) {
    ccfg.node.queue_deadline_s = cli.get_double("deadline-ms") * 1e-3;
  }
  ccfg.node.inflight_window = static_cast<int>(cli.get_int("window"));
  ccfg.replication = static_cast<int>(cli.get_int("replication"));
  ccfg.models = static_cast<int>(cli.get_int("models"));

  // Calibrate each engine's standalone batch-8 throughput (fresh
  // targets; every phase below re-creates its own so each starts from
  // the same deterministic state).
  double rate = cli.get_double("rate");
  double cpu_tput = 0.0, gpu_tput = 0.0, vpu_tput = 0.0;
  {
    util::tracer().set_lane_prefix("calib ");
    auto cpu = core::make_cpu_target(bundle);
    auto gpu = core::make_gpu_target(bundle);
    core::VpuTarget vpu(bundle, vcfg);
    cpu_tput = cpu->run_timed(800, 8).throughput();
    gpu_tput = gpu->run_timed(800, 8).throughput();
    vpu_tput = vpu.run_timed(800, 8).throughput();
  }
  // Aggregate capacity of the 3-node cluster: one full node plus two
  // cpu+gpu nodes.
  const double cluster_sum = 3.0 * (cpu_tput + gpu_tput) + vpu_tput;
  if (rate <= 0.0) rate = 0.9 * cluster_sum;

  const auto trace = make_trace(requests, rate, seed);
  const double span_s = trace.empty() ? 0.0 : trace.back().arrival_s;
  // The scripted chaos: node 1 drops off the cluster for the middle
  // quarter of the arrival window and rejoins through health probes.
  const double kill_start_s = 0.35 * span_s;
  const double kill_duration_s = 0.25 * span_s;

  struct Phase {
    std::string name;
    cluster::ClusterReport report;
  };
  std::vector<Phase> phases;
  std::string kill_fp, replay_fp;

  const std::vector<std::string> phase_names{"n1", "n2", "n3", "n3-kill",
                                             "replay"};
  for (const auto& name : phase_names) {
    util::tracer().set_lane_prefix(name + " ");
    int n_nodes = 3;
    if (name == "n1") n_nodes = 1;
    if (name == "n2") n_nodes = 2;

    // Fresh targets per phase: node 0 is the full heterogeneous node,
    // the rest are cpu+gpu hosts.
    auto cpu0 = core::make_cpu_target(bundle);
    auto gpu0 = core::make_gpu_target(bundle);
    core::VpuTarget vpu0(bundle, vcfg);
    auto cpu1 = core::make_cpu_target(bundle);
    auto gpu1 = core::make_gpu_target(bundle);
    auto cpu2 = core::make_cpu_target(bundle);
    auto gpu2 = core::make_gpu_target(bundle);
    std::vector<std::vector<core::Target*>> node_targets;
    node_targets.push_back({cpu0.get(), gpu0.get(), &vpu0});
    if (n_nodes > 1) node_targets.push_back({cpu1.get(), gpu1.get()});
    if (n_nodes > 2) node_targets.push_back({cpu2.get(), gpu2.get()});

    cluster::ClusterConfig cfg = ccfg;
    cfg.faults = sim::FaultPlan();
    if (name == "n3-kill" || name == "replay") {
      cfg.faults.add(/*device=*/1, sim::FaultKind::kNodeCrash, kill_start_s,
                     kill_duration_s);
    }
    cluster::Cluster cl(std::move(node_targets), cfg);
    Phase phase{name, cl.run(trace)};
    if (name == "n3-kill") kill_fp = fingerprint(phase.report);
    if (name == "replay") replay_fp = fingerprint(phase.report);
    phases.push_back(std::move(phase));
  }
  util::tracer().set_lane_prefix("");
  const bool replay_identical = kill_fp == replay_fp;

  const auto& n1 = phases[0].report;
  const auto& n3 = phases[2].report;
  const auto& kill = phases[3].report;
  const double n3_vs_n1 =
      n1.goodput() > 0.0 ? n3.goodput() / n1.goodput() : 0.0;
  const double chaos_retained =
      n3.goodput() > 0.0 ? kill.goodput() / n3.goodput() : 0.0;

  util::Table table("cluster: " + std::to_string(requests) + " req at " +
                    util::Table::num(rate, 1) + " req/s (seed " +
                    std::to_string(seed) + ", kill node 1 at " +
                    util::Table::num(kill_start_s, 2) + "s)");
  table.set_header({"phase", "completed", "rejected", "lost", "replayed",
                    "goodput (req/s)", "p50 (ms)", "p99 (ms)"});
  for (const auto& [name, r] : phases) {
    table.add_row({name, std::to_string(r.completed),
                   std::to_string(r.rejected),
                   std::to_string(r.requests_lost),
                   std::to_string(r.requests_replayed),
                   util::Table::num(r.goodput(), 1),
                   util::Table::num(r.p50_ms, 1),
                   util::Table::num(r.p99_ms, 1)});
  }
  bench::emit(table, cli);

  std::cout << "\n3 nodes sustain " << util::Table::num(n3.goodput(), 1)
            << " req/s goodput (" << util::Table::num(n3_vs_n1, 2)
            << "x one node); killing a node mid-run keeps "
            << util::Table::num(100.0 * chaos_retained, 1)
            << "% of it, replays " << kill.requests_replayed
            << " stranded requests and loses " << kill.requests_lost
            << "; replay " << (replay_identical ? "is" : "IS NOT")
            << " bit-identical.\n";

  bench::BenchReport report("cluster_loadgen");
  report.config("requests", requests);
  report.config("devices", static_cast<std::int64_t>(vcfg.devices));
  report.config("rate_req_per_s", rate);
  report.config("seed", static_cast<std::int64_t>(seed));
  report.config("queue_capacity",
                static_cast<std::int64_t>(ccfg.node.queue_capacity));
  report.config("max_batch", static_cast<std::int64_t>(ccfg.node.max_batch));
  report.config("inflight_window",
                static_cast<std::int64_t>(ccfg.node.inflight_window));
  report.config("queue_deadline_ms",
                std::isfinite(ccfg.node.queue_deadline_s)
                    ? ccfg.node.queue_deadline_s * 1e3
                    : 0.0);
  report.config("replication", static_cast<std::int64_t>(ccfg.replication));
  report.config("models", static_cast<std::int64_t>(ccfg.models));
  report.config("kill_start_s", kill_start_s);
  report.config("kill_duration_s", kill_duration_s);
  report.value("cluster_aggregate_tput", cluster_sum);
  for (const auto& [name, r] : phases) {
    report.value(name + ".offered", static_cast<double>(r.offered));
    report.value(name + ".completed", static_cast<double>(r.completed));
    report.value(name + ".rejected", static_cast<double>(r.rejected));
    // Cluster-level terminal deadline drops (a copy may deadline out on
    // one node while a hedge completes elsewhere; this counts requests,
    // the per-node drops.* below count copies).
    report.value(name + ".dropped_deadline",
                 static_cast<double>(r.dropped_deadline));
    report.value(name + ".requests_lost",
                 static_cast<double>(r.requests_lost));
    report.value(name + ".requests_replayed",
                 static_cast<double>(r.requests_replayed));
    report.value(name + ".requests_hedged",
                 static_cast<double>(r.requests_hedged));
    report.value(name + ".requests_spilled",
                 static_cast<double>(r.requests_spilled));
    report.value(name + ".duplicate_completions",
                 static_cast<double>(r.duplicate_completions));
    report.value(name + ".node_kills", static_cast<double>(r.node_kills));
    report.value(name + ".node_rejoins",
                 static_cast<double>(r.node_rejoins));
    report.value(name + ".goodput", r.goodput());
    report.value(name + ".p50_ms", r.p50_ms);
    report.value(name + ".p95_ms", r.p95_ms);
    report.value(name + ".p99_ms", r.p99_ms);
    // serve.drops broken out by reason, summed over the nodes.
    std::int64_t d_deadline = 0, d_inflight = 0, d_failover = 0;
    for (const auto& node : r.nodes) {
      d_deadline += node.serve.dropped_deadline;
      d_inflight += node.serve.dropped_inflight;
      d_failover += node.serve.dropped_failover;
    }
    report.value(name + ".drops.deadline", static_cast<double>(d_deadline));
    report.value(name + ".drops.inflight", static_cast<double>(d_inflight));
    report.value(name + ".drops.failover", static_cast<double>(d_failover));
    if (r.failover_ms.count() > 0) {
      report.value(name + ".failover_ms.mean", r.failover_ms.mean());
      report.value(name + ".failover_ms.max", r.failover_ms.max());
      report.value(name + ".failover_count",
                   static_cast<double>(r.failover_ms.count()));
    }
  }
  report.value("n3_vs_n1", n3_vs_n1);
  report.value("chaos_goodput_retained", chaos_retained);
  report.value("replay_identical", replay_identical ? 1.0 : 0.0);
  bench::write_report(report, cli);
  bench::finalize(cli);

  const bool ok = replay_identical && kill.requests_lost == 0 &&
                  kill.requests_replayed > 0;
  return ok ? 0 : 1;
}
