// Google-benchmark microbenchmarks of the substrate layers: FP16
// conversion, GEMM, convolution, the event engine, USB reservation, the
// dataset generator and functional inference. These measure *this host's*
// real performance (unlike the figure harnesses, which report simulated
// device time).
#include <benchmark/benchmark.h>

#include "dataset/synthetic.h"
#include "half/half.h"
#include "imgproc/ppm.h"
#include "mvnc/mvnc.h"
#include "mvnc/sim_host.h"
#include "nn/executor.h"
#include "nn/googlenet.h"
#include "mdk/mdk.h"
#include "sim/engine.h"
#include "sipp/filters.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace {

using ncsw::fp16::half;

void BM_HalfFromFloat(benchmark::State& state) {
  ncsw::util::Xoshiro256 rng(1);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float x : xs) acc += ncsw::fp16::float_to_half_bits(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HalfFromFloat);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<std::uint16_t> bits(4096);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint16_t>(i * 16 + 1);
  }
  for (auto _ : state) {
    float acc = 0;
    for (auto b : bits) acc += ncsw::fp16::half_bits_to_float(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HalfToFloat);

void BM_GemmF32(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<float> a(n * n, 0.5f), b(n * n, 0.25f), c(n * n);
  for (auto _ : state) {
    ncsw::tensor::gemm_f32(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmF16(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<half> a(n * n, half(0.5f)), b(n * n, half(0.25f)), c(n * n);
  for (auto _ : state) {
    ncsw::tensor::gemm_f16(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmF16)->Arg(64)->Arg(128);

void BM_Conv3x3(benchmark::State& state) {
  using namespace ncsw::nn;
  ncsw::tensor::TensorF in(ncsw::tensor::Shape{1, 16, 32, 32}, 0.5f);
  LayerParams<float> p;
  p.w = ncsw::tensor::TensorF(ncsw::tensor::Shape{32, 16, 3, 3}, 0.01f);
  p.b = ncsw::tensor::TensorF(ncsw::tensor::Shape{1, 32, 1, 1});
  ncsw::tensor::TensorF out;
  for (auto _ : state) {
    kernels::conv2d(in, p, ConvParams{32, 3, 1, 1}, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv3x3);

void BM_TinyGoogLeNetForward(benchmark::State& state) {
  using namespace ncsw::nn;
  const Graph g = build_tiny_googlenet({32, 50});
  const WeightsF w = init_msra(g, 1);
  ncsw::tensor::TensorF in(ncsw::tensor::Shape{1, 3, 32, 32}, 0.1f);
  for (auto _ : state) {
    auto result = run_forward(g, w, in);
    benchmark::DoNotOptimize(result.output.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyGoogLeNetForward);

void BM_TinyGoogLeNetForwardFp16(benchmark::State& state) {
  using namespace ncsw::nn;
  const Graph g = build_tiny_googlenet({32, 50});
  const WeightsH w = to_fp16(init_msra(g, 1));
  ncsw::tensor::Tensor<half> in(ncsw::tensor::Shape{1, 3, 32, 32},
                                half(0.1f));
  for (auto _ : state) {
    auto result = run_forward(g, w, in);
    benchmark::DoNotOptimize(result.output.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TinyGoogLeNetForwardFp16);

void BM_SimEngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    ncsw::sim::Engine engine;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule(static_cast<double>(i % 97) * 1e-6, [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEngineEvents);

void BM_IntervalReserve(benchmark::State& state) {
  for (auto _ : state) {
    ncsw::sim::IntervalResource r("bench");
    double t = 0;
    for (int i = 0; i < 10000; ++i) {
      t = r.reserve(t, 1e-4) + 5e-5;
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_IntervalReserve);

void BM_Myriad2ExecuteGoogLeNet(benchmark::State& state) {
  const auto compiled = ncsw::graphc::compile(ncsw::nn::build_googlenet(),
                                              ncsw::graphc::Precision::kFP16);
  ncsw::myriad::Myriad2 chip;
  for (auto _ : state) {
    auto profile = chip.execute(compiled);
    benchmark::DoNotOptimize(profile.total_s);
  }
}
BENCHMARK(BM_Myriad2ExecuteGoogLeNet);

void BM_MvncTimedRoundTrip(benchmark::State& state) {
  ncsw::mvnc::HostConfig host;
  host.devices = 1;
  ncsw::mvnc::host_reset(host);
  char name[64];
  ncsw::mvnc::mvncGetDeviceName(0, name, sizeof(name));
  void* dev = nullptr;
  ncsw::mvnc::mvncOpenDevice(name, &dev);
  const auto blob = ncsw::graphc::serialize(ncsw::graphc::compile(
      ncsw::nn::build_googlenet(), ncsw::graphc::Precision::kFP16));
  void* graph = nullptr;
  ncsw::mvnc::mvncAllocateGraph(dev, &graph, blob.data(),
                                static_cast<unsigned int>(blob.size()));
  std::vector<std::uint8_t> input(224 * 224 * 3 * 2, 0);
  for (auto _ : state) {
    ncsw::mvnc::mvncLoadTensor(graph, input.data(),
                               static_cast<unsigned int>(input.size()),
                               nullptr);
    void* out;
    unsigned int len;
    ncsw::mvnc::mvncGetResult(graph, &out, &len, nullptr);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  ncsw::mvnc::mvncDeallocateGraph(graph);
  ncsw::mvnc::mvncCloseDevice(dev);
}
BENCHMARK(BM_MvncTimedRoundTrip);

void BM_DatasetSample(benchmark::State& state) {
  ncsw::dataset::DatasetConfig cfg;
  cfg.num_classes = 50;
  cfg.image_size = 48;
  const ncsw::dataset::SyntheticImageNet data(cfg);
  int i = 0;
  for (auto _ : state) {
    auto s = data.sample(0, i++ % cfg.images_per_subset);
    benchmark::DoNotOptimize(s.image.pixels().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DatasetSample);

void BM_PpmRoundTrip(benchmark::State& state) {
  ncsw::dataset::SyntheticImageNet data;
  const auto img = data.prototype(0);
  for (auto _ : state) {
    auto bytes = ncsw::imgproc::encode_ppm(img);
    auto back = ncsw::imgproc::decode_ppm(bytes);
    benchmark::DoNotOptimize(back.pixels().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PpmRoundTrip);

void BM_MdkPlanAndSimulateGemm(benchmark::State& state) {
  ncsw::mdk::MdkContext ctx;
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    const auto plan =
        ctx.plan_gemm(n, n, n, ncsw::graphc::Precision::kFP16);
    const auto stats = ctx.simulate_gemm(plan);
    benchmark::DoNotOptimize(stats.gflops);
  }
}
BENCHMARK(BM_MdkPlanAndSimulateGemm)->Arg(512)->Arg(2048);

void BM_SippHarrisVga(benchmark::State& state) {
  ncsw::sipp::Plane frame(640, 480);
  for (std::size_t i = 0; i < frame.data.size(); ++i) {
    frame.data[i] = static_cast<float>(i % 255);
  }
  for (auto _ : state) {
    auto resp = ncsw::sipp::harris_response(frame);
    benchmark::DoNotOptimize(resp.data.data());
  }
  state.SetItemsProcessed(state.iterations() * 640 * 480);
}
BENCHMARK(BM_SippHarrisVga);

void BM_GraphPackageRoundTrip(benchmark::State& state) {
  const auto g = ncsw::nn::build_tiny_googlenet({32, 20});
  const auto w = ncsw::nn::to_fp16(ncsw::nn::init_msra(g, 1));
  const auto compiled =
      ncsw::graphc::compile(g, ncsw::graphc::Precision::kFP16);
  for (auto _ : state) {
    const auto blob = ncsw::graphc::serialize_package(compiled, &g, &w);
    auto pkg = ncsw::graphc::deserialize_package(blob);
    benchmark::DoNotOptimize(pkg.compiled.num_outputs);
  }
}
BENCHMARK(BM_GraphPackageRoundTrip);

}  // namespace

BENCHMARK_MAIN();
