// Reproduces paper Fig. 7a: top-1 inference error per validation subset
// on the CPU (FP32) and VPU (FP16) implementations.
//
// The paper runs the pre-trained BVLC GoogLeNet over 5 x 10000 ILSVRC
// images; here the functional TinyGoogLeNet (same module structure, FP32
// master weights + FP16 conversion for the stick) runs over the
// calibrated synthetic dataset, whose difficulty was tuned once so FP32
// error lands near the paper's 32%.
//
// Paper anchors: CPU (FP32) 32.01%, VPU (FP16) 31.92% — a 0.09% gap.
#include "bench_common.h"
#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig7a_top1_error",
                "Fig. 7a — top-1 error per subset, FP32 vs FP16");
  cli.add_int("images", 400,
              "images per subset (functional inference; paper: 10000)");
  cli.add_int("subsets", 5, "number of subsets");
  cli.add_int("classes", 50, "synthetic classes");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  core::experiments::ErrorSettings s;
  s.images_per_subset = cli.get_int("images");
  s.data.subsets = static_cast<int>(cli.get_int("subsets"));
  s.data.num_classes = static_cast<int>(cli.get_int("classes"));

  const auto rows = core::experiments::fig7(s);

  util::Table table("Fig. 7a: Top-1 inference error per subset");
  table.set_header({"Subset", "Images", "CPU (FP32)", "VPU (FP16)"});
  util::RunningStats cpu, vpu;
  for (const auto& r : rows) {
    table.add_row({r.subset, std::to_string(r.images),
                   util::Table::num(r.cpu_error * 100, 2) + "%",
                   util::Table::num(r.vpu_error * 100, 2) + "%"});
    cpu.add(r.cpu_error);
    vpu.add(r.vpu_error);
  }
  table.add_row({"mean", "", util::Table::num(cpu.mean() * 100, 2) + "%",
                 util::Table::num(vpu.mean() * 100, 2) + "%"});
  bench::emit(table, cli);

  std::cout << "\npaper:    CPU 32.01% | VPU 31.92% (0.09% apart — FP16 "
               "precision is not a factor)\n"
            << "measured: CPU " << util::Table::num(cpu.mean() * 100, 2)
            << "% | VPU " << util::Table::num(vpu.mean() * 100, 2)
            << "% (delta "
            << util::Table::num((vpu.mean() - cpu.mean()) * 100, 2) << "%)\n";

  bench::BenchReport report("fig7a_top1_error");
  report.config("images", s.images_per_subset);
  report.config("subsets", static_cast<std::int64_t>(s.data.subsets));
  report.config("classes", static_cast<std::int64_t>(s.data.num_classes));
  report.anchor("cpu_top1_error_pct", "%", 32.01, cpu.mean() * 100);
  report.anchor("vpu_top1_error_pct", "%", 31.92, vpu.mean() * 100);
  report.value("fp16_delta_pct", (vpu.mean() - cpu.mean()) * 100);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
