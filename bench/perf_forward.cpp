// Wall-clock performance of the host inference engine (not a paper
// figure): images/s of the functional TinyGoogLeNet forward pass for
// FP32 and FP16, on the pre-PR reference kernels (the recorded
// baseline), on the cache-tuned kernels at 1 and N threads, and on the
// opt-in fast tier (fused conv+bias+ReLU, direct 3x3/1x1 convolution,
// int8 FC, affinity-pinned chunking; docs/performance.md). The
// reference/optimised cells are bit-identical and differ only in time;
// the fast cells forfeit bit-identity, so the report also records their
// top-1 agreement and mean confidence delta against the bit-identical
// path (the paper's fig7 FP16-vs-FP32 methodology).
//
// The report (BENCH_perf_forward.json) is the one ncsw-bench-v1 report
// on the *wall* clock: values record img/s per cell, the speedup ratios
// and per-layer milliseconds of the optimised configuration. With
// --trace the profiled passes emit one "host" span per layer, so
// ncsw_profile-style viewers show where the time went.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/model.h"
#include "dataset/synthetic.h"
#include "nn/executor.h"
#include "nn/quant.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Cell {
  std::string name;      // e.g. "fp16 opt tN"
  double img_per_s = 0;
  double seconds = 0;
  std::int64_t images = 0;
};

// Deterministic input batch (same fill as the golden tests, so every
// timed cell computes the exact same tensors).
template <typename T>
ncsw::tensor::Tensor<T> make_input(const ncsw::nn::Graph& graph,
                                   std::int64_t batch) {
  const auto shape =
      graph.layer(graph.input_id()).out_shape.with_batch(batch);
  ncsw::tensor::TensorF in(shape);
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    in[i] = 0.01f * static_cast<float>(i % 97) - 0.3f;
  }
  return ncsw::tensor::tensor_cast<T>(in);
}

template <typename T>
Cell time_cell(const std::string& name, const ncsw::nn::Graph& graph,
               const ncsw::nn::Weights<T>& weights,
               const ncsw::tensor::Tensor<T>& input,
               const ncsw::nn::ExecOptions& opts, std::int64_t images) {
  // Warmup: grows the workspaces and faults in the weights.
  (void)ncsw::nn::run_forward(graph, weights, input, opts);
  Cell cell;
  cell.name = name;
  const auto t0 = Clock::now();
  while (cell.images < images) {
    (void)ncsw::nn::run_forward(graph, weights, input, opts);
    cell.images += input.shape().n;
  }
  cell.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  cell.img_per_s =
      cell.seconds > 0 ? static_cast<double>(cell.images) / cell.seconds : 0;
  return cell;
}

// Fast-vs-reference digest tolerance (the fig7 methodology): top-1
// agreement fraction and mean |confidence delta| at the reference
// prediction, over a deterministic image set.
struct Agreement {
  double top1 = 0;
  double mean_conf_delta = 0;
};

template <typename T>
Agreement measure_agreement(const ncsw::nn::Graph& graph,
                            const ncsw::nn::Weights<T>& weights,
                            const ncsw::dataset::SyntheticImageNet& data,
                            const ncsw::nn::ExecOptions& base,
                            const ncsw::nn::ExecOptions& fast,
                            std::int64_t items) {
  // Dataset images, not arbitrary tensors: the class-prototype samples
  // produce confident predictions, so top-1 agreement measures whether
  // the fast tier preserves decisions. On unstructured noise the logits
  // are near-uniform and any rounding difference flips the argmax,
  // which measures nothing.
  const auto shape =
      graph.layer(graph.input_id()).out_shape.with_batch(items);
  const int input_size = static_cast<int>(shape.h);
  ncsw::tensor::TensorF in(shape);
  for (std::int64_t i = 0; i < items; ++i) {
    const auto sample = data.sample(static_cast<int>(i) % data.subsets(),
                                    static_cast<int>(i) / data.subsets());
    const auto img = data.preprocess(sample.image, input_size);
    std::copy(img.data(), img.data() + img.numel(), in.batch_ptr(i));
  }
  const auto input = ncsw::tensor::tensor_cast<T>(in);
  const auto p_base = ncsw::nn::run_probabilities(graph, weights, input, base);
  const auto p_fast = ncsw::nn::run_probabilities(graph, weights, input, fast);
  Agreement a;
  for (std::size_t b = 0; b < p_base.size(); ++b) {
    const auto top_base = ncsw::nn::top_k(p_base[b], 1)[0];
    const auto top_fast = ncsw::nn::top_k(p_fast[b], 1)[0];
    if (top_base.first == top_fast.first) a.top1 += 1.0;
    a.mean_conf_delta +=
        std::abs(static_cast<double>(top_base.second) -
                 static_cast<double>(
                     p_fast[b][static_cast<std::size_t>(top_base.first)]));
  }
  const double n = static_cast<double>(p_base.size());
  a.top1 /= n;
  a.mean_conf_delta /= n;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("perf_forward",
                "host engine wall-clock throughput (FP32/FP16, reference "
                "vs optimised vs fast kernels, 1..N threads)");
  cli.add_int("images", 200, "images per timed cell");
  cli.add_int("batch", 1, "batch size per forward pass");
  cli.add_int("threads", 0,
              "thread count for the threaded cells (0 = auto: "
              "$NCSW_THREADS, else hardware concurrency)");
  bench::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_forward: %s\n", e.what());
    return 2;
  }
  if (cli.get_int("threads") < 0) {
    std::fprintf(stderr,
                 "perf_forward: --threads must be >= 0 (got %" PRId64
                 "); 0 means auto\n",
                 cli.get_int("threads"));
    return 2;
  }
  bench::setup(cli);

  const std::int64_t images = cli.get_int("images");
  const std::int64_t batch = std::max<std::int64_t>(cli.get_int("batch"), 1);
  const int threads = nn::resolve_threads(static_cast<int>(cli.get_int("threads")));

  // Small dataset config: the class prototypes fit the classifier, the
  // timed inputs are deterministic tensors, and the agreement check runs
  // on dataset samples.
  dataset::DatasetConfig dc;
  dc.images_per_subset = 32;
  dataset::SyntheticImageNet data(dc);
  const auto bundle = core::ModelBundle::tiny_functional(data);
  const auto in_f32 = make_input<float>(bundle->graph, batch);
  const auto in_f16 = make_input<fp16::half>(bundle->graph, batch);

  // Fast-tier weights: the graph-load-time quantization pass, run once
  // outside the timed loops (as HostTarget::set_fast does).
  const auto quant_f32 = nn::quantize_weights(bundle->graph, bundle->weights_f32);
  const auto quant_f16 = nn::quantize_weights(bundle->graph, bundle->weights_f16);

  nn::ExecOptions ref_opts;
  ref_opts.reference_kernels = true;
  nn::ExecOptions opt_t1;
  opt_t1.threads = 1;
  nn::ExecOptions opt_tn;
  opt_tn.threads = threads;
  nn::ExecOptions fast32_t1 = opt_t1;
  fast32_t1.fast = true;
  fast32_t1.quant = &quant_f32;
  nn::ExecOptions fast32_tn = opt_tn;
  fast32_tn.fast = true;
  fast32_tn.quant = &quant_f32;
  nn::ExecOptions fast16_t1 = opt_t1;
  fast16_t1.fast = true;
  fast16_t1.quant = &quant_f16;
  nn::ExecOptions fast16_tn = opt_tn;
  fast16_tn.fast = true;
  fast16_tn.quant = &quant_f16;

  std::vector<Cell> cells;
  cells.push_back(time_cell<float>("fp32 ref t1", bundle->graph,
                                   bundle->weights_f32, in_f32, ref_opts,
                                   images));
  cells.push_back(time_cell<float>("fp32 opt t1", bundle->graph,
                                   bundle->weights_f32, in_f32, opt_t1,
                                   images));
  cells.push_back(time_cell<float>("fp32 opt tN", bundle->graph,
                                   bundle->weights_f32, in_f32, opt_tn,
                                   images));
  cells.push_back(time_cell<fp16::half>("fp16 ref t1", bundle->graph,
                                        bundle->weights_f16, in_f16, ref_opts,
                                        images));
  cells.push_back(time_cell<fp16::half>("fp16 opt t1", bundle->graph,
                                        bundle->weights_f16, in_f16, opt_t1,
                                        images));
  cells.push_back(time_cell<fp16::half>("fp16 opt tN", bundle->graph,
                                        bundle->weights_f16, in_f16, opt_tn,
                                        images));
  cells.push_back(time_cell<float>("fp32 fast t1", bundle->graph,
                                   bundle->weights_f32, in_f32, fast32_t1,
                                   images));
  cells.push_back(time_cell<float>("fp32 fast tN", bundle->graph,
                                   bundle->weights_f32, in_f32, fast32_tn,
                                   images));
  cells.push_back(time_cell<fp16::half>("fp16 fast t1", bundle->graph,
                                        bundle->weights_f16, in_f16, fast16_t1,
                                        images));
  cells.push_back(time_cell<fp16::half>("fp16 fast tN", bundle->graph,
                                        bundle->weights_f16, in_f16, fast16_tn,
                                        images));

  const double fp32_base = cells[0].img_per_s;
  const double fp16_base = cells[3].img_per_s;

  util::Table table("perf_forward: host forward pass, wall clock (batch " +
                    std::to_string(batch) + ", N = " +
                    std::to_string(threads) + " threads)");
  table.set_header({"Cell", "img/s", "ms/img", "speedup vs ref t1"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const bool is_f32 = c.name.compare(0, 4, "fp32") == 0;
    const double base = is_f32 ? fp32_base : fp16_base;
    table.add_row({c.name, util::Table::num(c.img_per_s, 1),
                   util::Table::num(1000.0 / std::max(c.img_per_s, 1e-9), 3),
                   util::Table::num(base > 0 ? c.img_per_s / base : 0, 2)});
  }
  bench::emit(table, cli);

  // Digest tolerance of the fast tier vs the bit-identical path.
  const auto agree_f32 = measure_agreement<float>(
      bundle->graph, bundle->weights_f32, data, opt_t1, fast32_t1, 64);
  const auto agree_f16 = measure_agreement<fp16::half>(
      bundle->graph, bundle->weights_f16, data, opt_t1, fast16_t1, 64);

  // Profiled pass (per-layer wall milliseconds) on the optimised
  // threaded configuration; with --trace this also emits "host" spans.
  nn::ExecOptions prof = opt_tn;
  prof.profile_layers = true;
  const auto prof_f32 =
      nn::run_forward(bundle->graph, bundle->weights_f32, in_f32, prof);
  const auto prof_f16 =
      nn::run_forward(bundle->graph, bundle->weights_f16, in_f16, prof);

  bench::BenchReport report("perf_forward");
  report.set_clock("wall");
  report.config("images", images);
  report.config("batch", batch);
  report.config("threads", static_cast<std::int64_t>(threads));
  report.config("hardware_concurrency",
                static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  // Machine/fast-tier context so perf trajectories across machines stay
  // interpretable: core count, worker->CPU pinning of the fast pool, and
  // the quantization configuration the fast cells ran with.
  report.config("cores",
                static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  report.config("pinning", nn::kernels::fast_pool().affinity_layout());
  report.config("quant",
                "int8 symmetric per-channel (fc), fp32 conv panels; " +
                    std::to_string(quant_f32.size()) + " layers");
  const char* keys[] = {"fp32.ref.t1.img_per_s",  "fp32.opt.t1.img_per_s",
                        "fp32.opt.tN.img_per_s",  "fp16.ref.t1.img_per_s",
                        "fp16.opt.t1.img_per_s",  "fp16.opt.tN.img_per_s",
                        "fp32.fast.t1.img_per_s", "fp32.fast.tN.img_per_s",
                        "fp16.fast.t1.img_per_s", "fp16.fast.tN.img_per_s"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.value(keys[i], cells[i].img_per_s);
  }
  report.value("fp32.speedup_opt_t1_x",
               fp32_base > 0 ? cells[1].img_per_s / fp32_base : 0);
  report.value("fp32.speedup_total_x",
               fp32_base > 0 ? cells[2].img_per_s / fp32_base : 0);
  report.value("fp16.speedup_opt_t1_x",
               fp16_base > 0 ? cells[4].img_per_s / fp16_base : 0);
  report.value("fp16.speedup_total_x",
               fp16_base > 0 ? cells[5].img_per_s / fp16_base : 0);
  // Fast tier: speedups are measured against the *optimised* tier (the
  // bit-identical path users get by default), not the pre-PR reference.
  const double opt32_t1 = cells[1].img_per_s;
  const double opt16_t1 = cells[4].img_per_s;
  report.value("fp32.fast.speedup_vs_opt_t1_x",
               opt32_t1 > 0 ? cells[6].img_per_s / opt32_t1 : 0);
  report.value("fp32.fast.speedup_total_x",
               opt32_t1 > 0 ? cells[7].img_per_s / opt32_t1 : 0);
  report.value("fp16.fast.speedup_vs_opt_t1_x",
               opt16_t1 > 0 ? cells[8].img_per_s / opt16_t1 : 0);
  report.value("fp16.fast.speedup_total_x",
               opt16_t1 > 0 ? cells[9].img_per_s / opt16_t1 : 0);
  report.value("fp32.fast.top1_agreement", agree_f32.top1);
  report.value("fp32.fast.mean_conf_delta", agree_f32.mean_conf_delta);
  report.value("fp16.fast.top1_agreement", agree_f16.top1);
  report.value("fp16.fast.mean_conf_delta", agree_f16.mean_conf_delta);
  for (int id = 1; id < bundle->graph.size(); ++id) {
    const auto& name = bundle->graph.layer(id).name;
    report.value("fp32.layer_ms." + name,
                 prof_f32.layer_seconds[static_cast<std::size_t>(id)] * 1e3);
    report.value("fp16.layer_ms." + name,
                 prof_f16.layer_seconds[static_cast<std::size_t>(id)] * 1e3);
  }
  bench::write_report(report, cli);

  std::cout << "\nfp16 total speedup (opt tN vs ref t1): "
            << util::Table::num(
                   fp16_base > 0 ? cells[5].img_per_s / fp16_base : 0, 2)
            << "x; fast tier (t1 vs opt t1): "
            << util::Table::num(
                   opt16_t1 > 0 ? cells[8].img_per_s / opt16_t1 : 0, 2)
            << "x at top-1 agreement "
            << util::Table::num(agree_f16.top1, 3) << "\n";
  bench::finalize(cli);
  return 0;
}
