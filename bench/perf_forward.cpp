// Wall-clock performance of the host inference engine (not a paper
// figure): images/s of the functional TinyGoogLeNet forward pass for
// FP32 and FP16, on the pre-PR reference kernels (the recorded baseline)
// and on the cache-tuned kernels at 1 and N threads. Outputs are
// bit-identical across all six cells (docs/performance.md), so the cells
// differ only in time.
//
// The report (BENCH_perf_forward.json) is the one ncsw-bench-v1 report
// on the *wall* clock: values record img/s per cell, the speedup ratios
// and per-layer milliseconds of the optimised configuration. With
// --trace the profiled passes emit one "host" span per layer, so
// ncsw_profile-style viewers show where the time went.
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "bench_common.h"
#include "core/model.h"
#include "dataset/synthetic.h"
#include "nn/executor.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Cell {
  std::string name;      // e.g. "fp16 opt tN"
  double img_per_s = 0;
  double seconds = 0;
  std::int64_t images = 0;
};

// Deterministic input batch (same fill as the golden tests, so every
// timed cell computes the exact same tensors).
template <typename T>
ncsw::tensor::Tensor<T> make_input(const ncsw::nn::Graph& graph,
                                   std::int64_t batch) {
  const auto shape =
      graph.layer(graph.input_id()).out_shape.with_batch(batch);
  ncsw::tensor::TensorF in(shape);
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    in[i] = 0.01f * static_cast<float>(i % 97) - 0.3f;
  }
  return ncsw::tensor::tensor_cast<T>(in);
}

template <typename T>
Cell time_cell(const std::string& name, const ncsw::nn::Graph& graph,
               const ncsw::nn::Weights<T>& weights,
               const ncsw::tensor::Tensor<T>& input,
               const ncsw::nn::ExecOptions& opts, std::int64_t images) {
  // Warmup: grows the workspaces and faults in the weights.
  (void)ncsw::nn::run_forward(graph, weights, input, opts);
  Cell cell;
  cell.name = name;
  const auto t0 = Clock::now();
  while (cell.images < images) {
    (void)ncsw::nn::run_forward(graph, weights, input, opts);
    cell.images += input.shape().n;
  }
  cell.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  cell.img_per_s =
      cell.seconds > 0 ? static_cast<double>(cell.images) / cell.seconds : 0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("perf_forward",
                "host engine wall-clock throughput (FP32/FP16, reference "
                "vs optimised kernels, 1..N threads)");
  cli.add_int("images", 200, "images per timed cell");
  cli.add_int("batch", 1, "batch size per forward pass");
  cli.add_int("threads", 0,
              "thread count for the threaded cells (0 = auto: "
              "$NCSW_THREADS, else hardware concurrency)");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const std::int64_t images = cli.get_int("images");
  const std::int64_t batch = std::max<std::int64_t>(cli.get_int("batch"), 1);
  const int threads = nn::resolve_threads(static_cast<int>(cli.get_int("threads")));

  // Small dataset config: only the class prototypes matter (they fit the
  // classifier); the timed inputs are synthetic deterministic tensors.
  dataset::DatasetConfig dc;
  dc.images_per_subset = 32;
  dataset::SyntheticImageNet data(dc);
  const auto bundle = core::ModelBundle::tiny_functional(data);
  const auto in_f32 = make_input<float>(bundle->graph, batch);
  const auto in_f16 = make_input<fp16::half>(bundle->graph, batch);

  nn::ExecOptions ref_opts;
  ref_opts.reference_kernels = true;
  nn::ExecOptions opt_t1;
  opt_t1.threads = 1;
  nn::ExecOptions opt_tn;
  opt_tn.threads = threads;

  std::vector<Cell> cells;
  cells.push_back(time_cell<float>("fp32 ref t1", bundle->graph,
                                   bundle->weights_f32, in_f32, ref_opts,
                                   images));
  cells.push_back(time_cell<float>("fp32 opt t1", bundle->graph,
                                   bundle->weights_f32, in_f32, opt_t1,
                                   images));
  cells.push_back(time_cell<float>("fp32 opt tN", bundle->graph,
                                   bundle->weights_f32, in_f32, opt_tn,
                                   images));
  cells.push_back(time_cell<fp16::half>("fp16 ref t1", bundle->graph,
                                        bundle->weights_f16, in_f16, ref_opts,
                                        images));
  cells.push_back(time_cell<fp16::half>("fp16 opt t1", bundle->graph,
                                        bundle->weights_f16, in_f16, opt_t1,
                                        images));
  cells.push_back(time_cell<fp16::half>("fp16 opt tN", bundle->graph,
                                        bundle->weights_f16, in_f16, opt_tn,
                                        images));

  const double fp32_base = cells[0].img_per_s;
  const double fp16_base = cells[3].img_per_s;

  util::Table table("perf_forward: host forward pass, wall clock (batch " +
                    std::to_string(batch) + ", N = " +
                    std::to_string(threads) + " threads)");
  table.set_header({"Cell", "img/s", "ms/img", "speedup vs ref t1"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double base = i < 3 ? fp32_base : fp16_base;
    table.add_row({c.name, util::Table::num(c.img_per_s, 1),
                   util::Table::num(1000.0 / std::max(c.img_per_s, 1e-9), 3),
                   util::Table::num(base > 0 ? c.img_per_s / base : 0, 2)});
  }
  bench::emit(table, cli);

  // Profiled pass (per-layer wall milliseconds) on the optimised
  // threaded configuration; with --trace this also emits "host" spans.
  nn::ExecOptions prof = opt_tn;
  prof.profile_layers = true;
  const auto prof_f32 =
      nn::run_forward(bundle->graph, bundle->weights_f32, in_f32, prof);
  const auto prof_f16 =
      nn::run_forward(bundle->graph, bundle->weights_f16, in_f16, prof);

  bench::BenchReport report("perf_forward");
  report.set_clock("wall");
  report.config("images", images);
  report.config("batch", batch);
  report.config("threads", static_cast<std::int64_t>(threads));
  report.config("hardware_concurrency",
                static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  const char* keys[] = {"fp32.ref.t1.img_per_s", "fp32.opt.t1.img_per_s",
                        "fp32.opt.tN.img_per_s", "fp16.ref.t1.img_per_s",
                        "fp16.opt.t1.img_per_s", "fp16.opt.tN.img_per_s"};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.value(keys[i], cells[i].img_per_s);
  }
  report.value("fp32.speedup_opt_t1_x",
               fp32_base > 0 ? cells[1].img_per_s / fp32_base : 0);
  report.value("fp32.speedup_total_x",
               fp32_base > 0 ? cells[2].img_per_s / fp32_base : 0);
  report.value("fp16.speedup_opt_t1_x",
               fp16_base > 0 ? cells[4].img_per_s / fp16_base : 0);
  report.value("fp16.speedup_total_x",
               fp16_base > 0 ? cells[5].img_per_s / fp16_base : 0);
  for (int id = 1; id < bundle->graph.size(); ++id) {
    const auto& name = bundle->graph.layer(id).name;
    report.value("fp32.layer_ms." + name,
                 prof_f32.layer_seconds[static_cast<std::size_t>(id)] * 1e3);
    report.value("fp16.layer_ms." + name,
                 prof_f16.layer_seconds[static_cast<std::size_t>(id)] * 1e3);
  }
  bench::write_report(report, cli);

  std::cout << "\nfp16 total speedup (opt tN vs ref t1): "
            << util::Table::num(
                   fp16_base > 0 ? cells[5].img_per_s / fp16_base : 0, 2)
            << "x\n";
  bench::finalize(cli);
  return 0;
}
