// Shared helpers for the figure-reproduction harnesses: uniform table
// printing and optional CSV emission.
#pragma once

#include <iostream>
#include <string>

#include "util/cli.h"
#include "util/table.h"

namespace ncsw::bench {

/// Print the table to stdout; write CSV too when --csv was given.
inline void emit(const util::Table& table, const util::Cli& cli) {
  std::cout << table.to_string() << std::flush;
  const std::string csv = cli.get_string("csv");
  if (!csv.empty()) {
    util::write_file(csv, table.to_csv());
    std::cout << "(csv written to " << csv << ")\n";
  }
}

/// Register the flags every harness shares.
inline void add_common_flags(util::Cli& cli) {
  cli.add_string("csv", "", "also write the table as CSV to this path");
}

}  // namespace ncsw::bench
