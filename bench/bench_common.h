// Shared helpers for the figure-reproduction harnesses: uniform table
// printing, optional CSV emission, machine-readable bench reports
// (BENCH_<name>.json, schema "ncsw-bench-v1") and simulated-clock trace
// capture (--trace out.json, viewable in Perfetto). Schemas are
// documented in docs/architecture.md.
#pragma once

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "check/protocol.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"
#include "util/trace.h"

namespace ncsw::bench {

/// Print the table to stdout; write CSV too when --csv was given.
inline void emit(const util::Table& table, const util::Cli& cli) {
  std::cout << table.to_string() << std::flush;
  const std::string csv = cli.get_string("csv");
  if (!csv.empty()) {
    util::write_file(csv, table.to_csv());
    std::cout << "(csv written to " << csv << ")\n";
  }
}

/// Register the flags every harness shares.
inline void add_common_flags(util::Cli& cli) {
  cli.add_string("csv", "", "also write the table as CSV to this path");
  cli.add_string("json", "",
                 "machine-readable report path (default BENCH_<name>.json; "
                 "'none' disables)");
  cli.add_string("trace", "",
                 "write a simulated-clock Chrome trace (Perfetto) here");
  cli.add_bool("trace-layers", false,
               "include one span per network layer in the trace");
  cli.add_string("check", "",
                 "NCAPI protocol verifier: off | log | strict (default: "
                 "$NCSW_CHECK, else off)");
}

/// Arm the tracer according to --trace/--trace-layers. Call after
/// cli.parse() and before any simulated work.
inline void setup(const util::Cli& cli) {
  auto& t = util::tracer();
  t.reset();
  if (!cli.get_string("trace").empty()) {
    t.set_detail(cli.get_bool("trace-layers") ? util::TraceDetail::kLayers
                                              : util::TraceDetail::kSpans);
    t.set_enabled(true);
  }
  // --check overrides the process default that HostConfig::check ==
  // kDefault resolves through (the environment keeps deciding when the
  // flag is absent).
  const std::string check = cli.get_string("check");
  if (!check.empty()) {
    check::set_default_mode(check::parse_check_mode(check));
  }
}

/// Write the trace file if one was requested. Call once all simulated
/// work is done.
inline void finalize(const util::Cli& cli) {
  const std::string path = cli.get_string("trace");
  if (path.empty()) return;
  auto& t = util::tracer();
  t.write(path);
  std::cout << "(trace with " << t.size() << " events written to " << path
            << "; open in Perfetto / chrome://tracing)\n";
  t.set_enabled(false);
}

/// Machine-readable result of one harness run (schema "ncsw-bench-v1"):
/// the bench name, the configuration it ran with, paper-anchor
/// comparisons and free-form measured values. Timing is simulated unless
/// the harness marks the report set_clock("wall") (bench/perf_forward).
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Clock the report's timings were taken on: "simulated" (default) or
  /// "wall" for host-side performance harnesses. The rule, which CI
  /// enforces by sweeping the bench sources: every figure/ablation
  /// harness runs on the simulated clock and must NOT call this; a
  /// harness that times real host execution (bench/perf_forward is the
  /// only one) must call set_clock("wall") so report consumers never
  /// compare wall seconds against simulated seconds.
  void set_clock(std::string clock) { clock_ = std::move(clock); }

  /// Record a configuration knob (shows up under "config").
  void config(const std::string& key, std::int64_t v) {
    config_.emplace_back(key, util::JsonWriter::number(static_cast<double>(v)));
  }
  void config(const std::string& key, double v) {
    config_.emplace_back(key, util::JsonWriter::number(v));
  }
  void config(const std::string& key, const std::string& v) {
    config_.emplace_back(key, "\"" + util::JsonWriter::escape(v) + "\"");
  }

  /// Compare a measured value against its paper anchor; ratio is
  /// measured/paper (null when the paper value is zero).
  void anchor(const std::string& metric, const std::string& unit, double paper,
              double measured) {
    anchors_.push_back({metric, unit, paper, measured});
  }

  /// Record an extra measured value (shows up under "values").
  void value(const std::string& key, double v) {
    values_.emplace_back(key, util::JsonWriter::number(v));
  }
  void value(const std::string& key, const std::string& v) {
    values_.emplace_back(key, "\"" + util::JsonWriter::escape(v) + "\"");
  }

  /// Serialise the report as JSON.
  std::string to_json() const {
    util::JsonWriter w;
    w.begin_object();
    w.key("schema").value("ncsw-bench-v1");
    w.key("bench").value(bench_);
    w.key("clock").value(clock_);
    w.key("config").begin_object();
    for (const auto& [k, v] : config_) w.key(k).raw(v);
    w.end_object();
    w.key("anchors").begin_array();
    for (const auto& a : anchors_) {
      w.begin_object();
      w.key("metric").value(a.metric);
      w.key("unit").value(a.unit);
      w.key("paper").value(a.paper);
      w.key("measured").value(a.measured);
      if (a.paper != 0.0) {
        w.key("ratio").value(a.measured / a.paper);
      } else {
        w.key("ratio").null();
      }
      w.end_object();
    }
    w.end_array();
    w.key("values").begin_object();
    for (const auto& [k, v] : values_) w.key(k).raw(v);
    w.end_object();
    w.end_object();
    return w.str();
  }

 private:
  struct Anchor {
    std::string metric;
    std::string unit;
    double paper;
    double measured;
  };

  std::string bench_;
  std::string clock_ = "simulated";
  std::vector<std::pair<std::string, std::string>> config_;  // key, raw JSON
  std::vector<Anchor> anchors_;
  std::vector<std::pair<std::string, std::string>> values_;  // key, raw JSON
};

/// Write the report unless --json=none; default path BENCH_<name>.json.
inline void write_report(const BenchReport& report, const util::Cli& cli) {
  std::string path = cli.get_string("json");
  if (path == "none") return;
  if (path.empty()) path = "BENCH_" + cli.program() + ".json";
  util::write_file(path, report.to_json() + "\n");
  std::cout << "(report written to " << path << ")\n";
}

}  // namespace ncsw::bench
