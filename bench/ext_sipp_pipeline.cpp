// Extension E10 — the SIPP hardware filter pipeline (paper Section II-A):
// prices the denoise -> tone-map -> Harris vision front-end on the
// hardware filter units against the same chain in SHAVE software, per
// frame size, and demonstrates the combined mode the paper describes
// (SIPP preprocessing + SHAVE inference on the same chip).
#include "bench_common.h"
#include "graphc/compiler.h"
#include "myriad/myriad.h"
#include "nn/zoo.h"
#include "sipp/pipeline.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ext_sipp_pipeline",
                "E10 — SIPP hardware filters vs SHAVE software");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  auto pipeline = sipp::make_vision_frontend();
  myriad::MyriadConfig chip;

  util::Table table("E10: vision front-end (denoise + tone map + Harris)");
  table.set_header({"frame", "SIPP ms", "Mpix/s", "SIPP mW", "SHAVE-SW ms",
                    "HW speedup"});
  struct Size {
    int w, h;
    const char* label;
  };
  for (const Size s : {Size{320, 240, "QVGA"}, Size{640, 480, "VGA"},
                       Size{1280, 720, "720p"}, Size{1920, 1080, "1080p"}}) {
    sipp::Plane frame(s.w, s.h);
    for (std::size_t i = 0; i < frame.data.size(); ++i) {
      frame.data[i] = static_cast<float>(i % 251);
    }
    sipp::SippStats stats;
    pipeline.run(frame, &stats);
    const double sw_s = pipeline.shave_software_time_s(s.w, s.h, chip);
    table.add_row({std::string(s.label) + " " + std::to_string(s.w) + "x" +
                       std::to_string(s.h),
                   util::Table::num(stats.time_s * 1e3, 3),
                   util::Table::num(stats.mpixels_per_s, 0),
                   util::Table::num(stats.avg_power_w * 1e3, 0),
                   util::Table::num(sw_s * 1e3, 3),
                   util::Table::num(sw_s / stats.time_s, 1) + "x"});
  }
  bench::emit(table, cli);

  // Combined mode: SIPP preprocesses the next frame while the SHAVEs run
  // inference on the current one — both fit the chip's power envelope.
  myriad::Myriad2 sim(chip);
  const auto profile = sim.execute(graphc::compile(
      nn::build_named_network("googlenet"), graphc::Precision::kFP16));
  sipp::Plane vga(640, 480);
  sipp::SippStats stats;
  pipeline.run(vga, &stats);
  std::cout << "\ncombined mode: GoogLeNet inference "
            << util::Table::num(profile.total_s * 1e3, 1)
            << " ms on the SHAVEs while SIPP preprocesses a VGA frame in "
            << util::Table::num(stats.time_s * 1e3, 2)
            << " ms (" << util::Table::num(stats.avg_power_w * 1e3, 0)
            << " mW extra) — preprocessing rides along for free, as the "
               "paper's architecture section promises.\n";
  bench::finalize(cli);
  return 0;
}
