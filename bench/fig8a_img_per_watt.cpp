// Reproduces paper Fig. 8a: throughput per Watt of TDP (Eq. 1) per batch
// size on CPU, GPU and the multi-VPU configuration. The number of active
// VPU sticks is coupled to the batch size, so VPU TDP = 2.5 W x batch.
//
// Paper anchors: VPU 3.97 img/W @1 stick; CPU 0.55, GPU 0.93 img/W @8.
// Also reports the simulator's *measured* average stick power as an
// extension the paper lists as future work.
#include "bench_common.h"
#include "core/experiments.h"
#include "core/model.h"
#include "myriad/myriad.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("fig8a_img_per_watt",
                "Fig. 8a — throughput per Watt (Eq. 1) per batch size");
  cli.add_int("images", 10000, "images per measurement");
  cli.add_int("devices", 8, "NCS sticks available");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const auto rows = core::experiments::fig8a(
      cli.get_int("images"), {1, 2, 4, 8},
      static_cast<int>(cli.get_int("devices")));

  util::Table table("Fig. 8a: Throughput-TDP comparison (images/Watt)");
  table.set_header({"Batch", "CPU", "GPU", "VPU (Multi)"});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.batch), util::Table::num(r.cpu, 2),
                   util::Table::num(r.gpu, 2), util::Table::num(r.vpu, 2)});
  }
  bench::emit(table, cli);

  std::cout << "\npaper: VPU 3.97 img/W @1; CPU 0.55 and GPU 0.93 img/W "
               "@8 — VPU over 3x higher throughput/Watt\n";

  // Extension: the paper notes "actual power measurements would be
  // required in future work". The chip simulator integrates its power
  // islands, so report the measured average draw next to the TDP.
  myriad::Myriad2 chip;
  const auto bundle = core::ModelBundle::googlenet_reference();
  const auto profile = chip.execute(bundle->compiled_f16);
  std::cout << "extension — simulated power during GoogLeNet inference: "
            << "chip avg " << util::Table::num(profile.avg_power_w, 2)
            << " W (TDP 0.9 W), energy "
            << util::Table::num(profile.energy_j * 1e3, 1)
            << " mJ per inference\n";

  bench::BenchReport report("fig8a_img_per_watt");
  report.config("images", cli.get_int("images"));
  report.config("devices", cli.get_int("devices"));
  for (const auto& r : rows) {
    if (r.batch == 1) report.anchor("vpu_img_per_w_b1", "img/W", 3.97, r.vpu);
    if (r.batch == 8) {
      report.anchor("cpu_img_per_w_b8", "img/W", 0.55, r.cpu);
      report.anchor("gpu_img_per_w_b8", "img/W", 0.93, r.gpu);
    }
  }
  report.value("sim_chip_avg_power_w", profile.avg_power_w);
  report.value("sim_energy_mj_per_inference", profile.energy_j * 1e3);
  bench::write_report(report, cli);
  bench::finalize(cli);
  return 0;
}
