// Ablation A2 — the USB attachment topology (paper Fig. 5): the paper
// connects 6 sticks through two USB 3.0 hubs and 2 directly. This bench
// sweeps topologies to show (a) the paper's mixed topology loses nothing
// against all-dedicated root ports on USB 3.0, and (b) why it would NOT
// have worked on USB 2.0, where the shared uplink saturates.
#include "bench_common.h"
#include "core/model.h"
#include "core/vpu_target.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("ablation_usb", "A2 — USB topology ablation (8 sticks)");
  cli.add_int("images", 2000, "images per measurement");
  cli.add_int("devices", 8, "NCS sticks");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::setup(cli);

  const int devices = static_cast<int>(cli.get_int("devices"));
  const std::int64_t images = cli.get_int("images");
  auto bundle = core::ModelBundle::googlenet_reference();

  struct Case {
    const char* label;
    mvnc::HostConfig::Topology topology;
  };
  const Case cases[] = {
      {"paper: 2x USB3 hub (3+3) + 2 root ports",
       mvnc::HostConfig::Topology::kPaperTestbed},
      {"all sticks on dedicated USB3 root ports",
       mvnc::HostConfig::Topology::kAllDirect},
      {"all sticks behind ONE USB3 hub",
       mvnc::HostConfig::Topology::kSingleHubUsb3},
      {"all sticks behind ONE USB2 hub",
       mvnc::HostConfig::Topology::kSingleHubUsb2},
  };

  util::Table table("A2: USB topology ablation (images/s, " +
                    std::to_string(devices) + " sticks)");
  table.set_header({"Topology", "Throughput", "1-stick latency (ms)"});
  int case_idx = 0;
  for (const auto& c : cases) {
    core::VpuTargetConfig cfg;
    cfg.devices = devices;
    cfg.topology = c.topology;
    // Each topology restarts the simulated clock; namespace its lanes so
    // one trace file shows the cases side by side instead of overlaid.
    util::tracer().set_lane_prefix("topo" + std::to_string(case_idx++) + " ");
    core::VpuTarget vpu(bundle, cfg);
    const double single_ms = vpu.run_timed(64, 1).seconds * 1e3 / 64.0;
    const double tput = vpu.run_timed(images, devices).throughput();
    table.add_row({c.label, util::Table::num(tput, 1),
                   util::Table::num(single_ms, 1)});
  }
  bench::emit(table, cli);

  std::cout
      << "\nconclusion: on USB 3.0 the GoogLeNet input (294 KB FP16) is "
         "~1 ms, so hub sharing is invisible next to the ~100 ms "
         "execution — the paper's mixed topology is as good as dedicated "
         "ports. On a USB 2.0 uplink the same transfer takes ~9 ms and "
         "eight sticks saturate the shared link.\n";
  bench::finalize(cli);
  return 0;
}
