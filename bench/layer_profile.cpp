// Per-layer execution profile of GoogLeNet on the simulated Myriad 2,
// exposed exactly the way the NCAPI does it (the MVNC_TIME_TAKEN graph
// option the paper's Section II-B describes). Prints the slowest layers
// and per-kind aggregates.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/model.h"
#include "core/vpu_target.h"
#include "myriad/myriad.h"

int main(int argc, char** argv) {
  using namespace ncsw;
  util::Cli cli("layer_profile",
                "per-layer VPU execution times via the NCAPI profiling "
                "option");
  cli.add_int("top", 15, "how many of the slowest layers to list");
  bench::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "layer_profile: %s\n", e.what());
    return 2;
  }
  if (cli.get_int("top") < 1) {
    std::fprintf(stderr,
                 "layer_profile: --top must be >= 1 (got %" PRId64 ")\n",
                 cli.get_int("top"));
    return 2;
  }
  bench::setup(cli);

  auto bundle = core::ModelBundle::googlenet_reference();

  // Through the NCAPI (TIME_TAKEN) ...
  core::VpuTargetConfig cfg;
  cfg.devices = 1;
  core::VpuTarget vpu(bundle, cfg);
  const auto ncapi_times = vpu.layer_times_ms();

  // ... and the chip simulator's richer record for the same graph.
  myriad::Myriad2 chip;
  const auto profile = chip.execute(bundle->compiled_f16);

  struct Row {
    std::size_t idx;
    double ms;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < ncapi_times.size(); ++i) {
    rows.push_back({i, static_cast<double>(ncapi_times[i])});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ms > b.ms; });

  const auto top = static_cast<std::size_t>(cli.get_int("top"));
  util::Table table("Slowest GoogLeNet layers on the Myriad 2 (NCAPI "
                    "MVNC_TIME_TAKEN)");
  table.set_header({"Layer", "Kind", "ms", "compute ms", "DMA ms", "tiles",
                    "SHAVE util"});
  for (std::size_t i = 0; i < std::min(top, rows.size()); ++i) {
    const auto& lp = profile.layers[rows[i].idx];
    table.add_row({lp.name, nn::layer_kind_name(lp.kind),
                   util::Table::num(rows[i].ms, 3),
                   util::Table::num(lp.compute_s * 1e3, 3),
                   util::Table::num(lp.dma_s * 1e3, 3),
                   std::to_string(lp.tiles),
                   util::Table::num(lp.shave_utilization * 100, 0) + "%"});
  }
  bench::emit(table, cli);

  // Per-kind aggregate.
  std::map<std::string, double> by_kind;
  for (const auto& lp : profile.layers) {
    by_kind[nn::layer_kind_name(lp.kind)] += lp.time_s * 1e3;
  }
  util::Table agg("Time by layer kind");
  agg.set_header({"Kind", "total ms", "share"});
  for (const auto& [kind, ms] : by_kind) {
    agg.add_row({kind, util::Table::num(ms, 2),
                 util::Table::num(ms / (profile.total_s * 1e3) * 100, 1) +
                     "%"});
  }
  std::cout << "\n" << agg.to_string();
  std::cout << "\ntotal on-chip execution: "
            << util::Table::num(profile.total_s * 1e3, 2)
            << " ms | simulated events: " << profile.sim_events
            << " | avg power: " << util::Table::num(profile.avg_power_w, 2)
            << " W\n";
  bench::finalize(cli);
  return 0;
}
