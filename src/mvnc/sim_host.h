// Simulation host behind the mvnc API: owns the USB topology and the
// simulated sticks, and provides the C++-side extensions the benchmark
// harnesses need (functional networks, virtual-time control, tickets).
//
// A real NCSDK discovers sticks from the kernel's USB enumeration; here
// the test/benchmark configures the host explicitly, then the mvnc calls
// behave exactly like the paper's Listing 1.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "check/protocol.h"
#include "mvnc/mvnc.h"
#include "ncs/device.h"
#include "ncs/usb.h"
#include "nn/executor.h"
#include "sim/fault.h"

namespace ncsw::mvnc {

/// Host configuration.
struct HostConfig {
  int devices = 1;
  /// Stick parameters (chip calibration, FIFO depth, gaps).
  ncs::NcsConfig ncs;
  /// Topology builder selector.
  enum class Topology { kPaperTestbed, kSingleHubUsb3, kSingleHubUsb2, kAllDirect } topology =
      Topology::kPaperTestbed;
  /// Optional heterogeneity: stick `degraded_device` (when >= 0) runs its
  /// chip at clock / `degraded_factor` — a stick hard-throttled in a hot
  /// enclosure, or an older silicon revision. Used by the scheduler
  /// ablation.
  int degraded_device = -1;
  double degraded_factor = 2.0;
  /// Scripted fault windows keyed to the simulated clock (transient USB
  /// errors and stalls, busy storms, result stalls, forced throttling,
  /// detach/reattach). Empty by default: fault-free behaviour is
  /// byte-identical to a host without fault injection.
  sim::FaultPlan faults;
  /// NCAPI protocol verifier mode (see check/protocol.h): kOff disables
  /// checking entirely (byte-identical output), kLog records violations
  /// into check.violation.* counters and trace instants, kStrict
  /// additionally throws check::ProtocolViolation at the offending call.
  /// kDefault resolves through check::set_default_mode() / $NCSW_CHECK.
  check::CheckMode check = check::CheckMode::kDefault;
};

/// (Re)initialise the global simulated host. Any previously returned
/// device/graph handle becomes invalid (calls on them return MVNC_GONE).
void host_reset(const HostConfig& config);

/// Monotonic counter bumped by every host_reset. A holder of device or
/// graph handles records the generation at setup and must stop using —
/// including closing/deallocating — its handles once it changes: the
/// addresses may since have been reused by another host's handles.
std::uint64_t host_generation();

/// Current number of simulated sticks (0 when the host was never set up).
int host_device_count();

/// Access the underlying topology for utilisation reporting (throws when
/// the host is not configured).
ncs::UsbTopology& host_topology();

/// Attach a functional network to a graph handle: subsequent LoadTensor
/// calls will actually run `graph` with `weights` on the FP16 payload and
/// GetResult returns real class probabilities. Both pointers must outlive
/// the graph handle. Pass nullptrs to detach. Returns false on a bad
/// handle or when the functional graph's input size does not match the
/// compiled graph.
bool set_functional_network(void* graphHandle, const nn::Graph* graph,
                            const nn::WeightsH* weights);

/// Ticket (simulated timing) of the most recent GetResult on the handle.
std::optional<ncs::InferenceTicket> last_ticket(void* graphHandle);

/// Advance the handle's host-time cursor to at least `t` (used by the
/// multi-VPU runner to model thread spawn staggering).
bool set_host_time(void* graphHandle, double t);

/// mvncAllocateGraph with an explicit host-side epoch: the blob transfer
/// chains on max(host_time_s, the device's allocation cursor) instead of
/// the cursor alone. Used by graph-swapping callers (core::StickFleet)
/// so a swap allocated after inferences ran lands *after* them on the
/// device timeline — the allocation cursor only advances on allocations
/// and would otherwise time-travel the swap behind retired work.
mvncStatus allocate_graph_at(void* deviceHandle, void** graphHandle,
                             const void* graphFile,
                             unsigned int graphFileLength,
                             double host_time_s);

/// Current host-time cursor of the handle (simulated seconds).
std::optional<double> host_time(void* graphHandle);

/// Override the inter-op host gap for this handle (thread management
/// cost between successive inferences; see NcsConfig::inter_op_gap_s).
bool set_inter_op_gap(void* graphHandle, double gap_s);

/// Watchdog budget for mvncGetResult on this handle (simulated seconds):
/// when the result would land later than `timeout_s` after the call,
/// GetResult returns MVNC_TIMEOUT instead of blocking and the inference
/// stays queued for a later retry. Default: infinity (block forever, the
/// NCSDK behaviour). Returns false on a bad handle or negative timeout.
bool set_watchdog(void* graphHandle, double timeout_s);

/// Hot-replug a stick that a scripted detach window took off the bus:
/// once the window has passed at simulated time `t`, the stick
/// re-enumerates and its firmware boots again. Returns the ready time,
/// or nullopt while the stick is still detached (or was never detached /
/// was permanently unplugged). The device handle stays valid; graph
/// handles on the stick are stale and must be re-allocated.
std::optional<double> replug_device(void* deviceHandle, double t);

/// The underlying simulated device of a device handle (nullptr on a bad
/// handle) — for tests and power accounting.
ncs::NcsDevice* device_of(void* deviceHandle);

/// The underlying device of a *graph* handle (nullptr on a bad handle).
ncs::NcsDevice* graph_device(void* graphHandle);

/// Results retrievable on the handle right now: inferences issued with
/// LoadTensor whose GetResult has not happened yet. -1 on a bad handle.
/// Drain loops should consult this instead of probing GetResult until it
/// fails — a GetResult with nothing outstanding is a protocol violation.
int pending_results(void* graphHandle);

}  // namespace ncsw::mvnc
