#include "mvnc/mvnc.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "check/protocol.h"
#include "mvnc/sim_host.h"
#include "tensor/tensor.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::mvnc {

namespace {

struct GraphState;

struct DeviceState {
  std::unique_ptr<ncs::NcsDevice> device;
  bool handle_open = false;  // an mvncOpenDevice handle exists
  std::vector<GraphState*> graphs;  // guarded by g_mutex
};

struct GraphState {
  // Shared ownership keeps the stick alive for API calls that fetched
  // this graph before a concurrent host_reset tore the device down.
  std::shared_ptr<DeviceState> dev;
  graphc::CompiledGraph compiled;
  const nn::Graph* func_graph = nullptr;
  const nn::WeightsH* func_weights = nullptr;
  // Functional payload embedded in a v2 graph file (owned by the handle).
  std::optional<nn::Graph> owned_graph;
  std::optional<nn::WeightsH> owned_weights;

  std::mutex mutex;
  bool dead = false;           // deallocated/closed; guarded by mutex
  double host_clock = 0.0;     // simulated host-time cursor for this handle
  double inter_op_gap = 0.0;   // host gap after each retrieved result
  // GetResult watchdog budget (infinity = block forever, NCSDK default).
  double watchdog_s = std::numeric_limits<double>::infinity();

  struct Pending {
    std::vector<ncsw::fp16::half> output;
    void* user = nullptr;
  };
  std::deque<Pending> pending;              // parallel to the device FIFO
  std::vector<ncsw::fp16::half> last_output;
  std::optional<ncs::InferenceTicket> last_ticket;
};

struct HostState {
  std::unique_ptr<ncs::UsbTopology> topology;
  std::vector<std::shared_ptr<DeviceState>> devices;
  // Handle -> owner maps. Lookups hand out shared_ptr copies so a state
  // object stays alive for a call racing a CloseDevice/DeallocateGraph/
  // host_reset on another thread; such a call then observes `dead` (or a
  // missing map entry) instead of freed memory.
  std::unordered_map<void*, std::shared_ptr<DeviceState>> device_handles;
  std::unordered_map<void*, std::shared_ptr<GraphState>> graph_handles;
};

std::mutex g_mutex;
HostState g_host;
std::atomic<std::uint64_t> g_generation{0};

std::shared_ptr<DeviceState> as_device(void* handle) {
  const auto it = g_host.device_handles.find(handle);
  return it == g_host.device_handles.end() ? nullptr : it->second;
}

std::shared_ptr<GraphState> as_graph(void* handle) {
  const auto it = g_host.graph_handles.find(handle);
  return it == g_host.graph_handles.end() ? nullptr : it->second;
}

void destroy_graph_locked(void* handle, const std::shared_ptr<GraphState>& g) {
  if (g->dev) {
    auto& vec = g->dev->graphs;
    vec.erase(std::remove(vec.begin(), vec.end(), g.get()), vec.end());
  }
  {
    std::lock_guard glock(g->mutex);
    g->dead = true;
  }
  g_host.graph_handles.erase(handle);
}

}  // namespace

// ---------------------------------------------------------------------------
// sim_host.h
// ---------------------------------------------------------------------------

void host_reset(const HostConfig& config) {
  check::verifier().configure(config.check);
  std::lock_guard lock(g_mutex);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  // Invalidate outstanding graph handles; shared_ptrs held by calls
  // racing this reset keep the objects alive until those calls return.
  for (auto& [handle, g] : g_host.graph_handles) {
    std::lock_guard glock(g->mutex);
    g->dead = true;
  }
  g_host.graph_handles.clear();
  g_host.device_handles.clear();
  g_host.devices.clear();
  g_host.topology.reset();
  if (config.devices <= 0) return;

  switch (config.topology) {
    case HostConfig::Topology::kPaperTestbed:
      g_host.topology = std::make_unique<ncs::UsbTopology>(
          ncs::UsbTopology::paper_testbed(config.devices));
      break;
    case HostConfig::Topology::kSingleHubUsb3:
      g_host.topology = std::make_unique<ncs::UsbTopology>(
          ncs::UsbTopology::single_hub(config.devices, ncs::usb3_link()));
      break;
    case HostConfig::Topology::kSingleHubUsb2:
      g_host.topology = std::make_unique<ncs::UsbTopology>(
          ncs::UsbTopology::single_hub(config.devices, ncs::usb2_link()));
      break;
    case HostConfig::Topology::kAllDirect:
      g_host.topology = std::make_unique<ncs::UsbTopology>(
          ncs::UsbTopology::all_direct(config.devices, ncs::usb3_link()));
      break;
  }
  for (int d = 0; d < config.devices; ++d) {
    ncs::NcsConfig dev_cfg = config.ncs;
    if (d == config.degraded_device && config.degraded_factor > 1.0) {
      dev_cfg.chip.clock_hz /= config.degraded_factor;
    }
    auto state = std::make_shared<DeviceState>();
    state->device = std::make_unique<ncs::NcsDevice>(
        d, g_host.topology->channel_for(d), dev_cfg);
    if (!config.faults.empty()) {
      state->device->set_fault_timeline(config.faults.timeline_for(d));
    }
    g_host.devices.push_back(std::move(state));
  }
}

std::uint64_t host_generation() {
  return g_generation.load(std::memory_order_relaxed);
}

int host_device_count() {
  std::lock_guard lock(g_mutex);
  return static_cast<int>(g_host.devices.size());
}

ncs::UsbTopology& host_topology() {
  std::lock_guard lock(g_mutex);
  if (!g_host.topology) throw std::logic_error("mvnc host not configured");
  return *g_host.topology;
}

bool set_functional_network(void* graphHandle, const nn::Graph* graph,
                            const nn::WeightsH* weights) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) return false;
  if ((graph == nullptr) != (weights == nullptr)) return false;
  if (graph) {
    const auto in_shape = graph->layer(graph->input_id()).out_shape;
    if (in_shape.numel() != g->compiled.input_shape.numel()) return false;
  }
  std::lock_guard glock(g->mutex);
  g->func_graph = graph;
  g->func_weights = weights;
  return true;
}

std::optional<ncs::InferenceTicket> last_ticket(void* graphHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) return std::nullopt;
  std::lock_guard glock(g->mutex);
  return g->last_ticket;
}

bool set_host_time(void* graphHandle, double t) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) return false;
  std::lock_guard glock(g->mutex);
  g->host_clock = std::max(g->host_clock, t);
  return true;
}

std::optional<double> host_time(void* graphHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) return std::nullopt;
  std::lock_guard glock(g->mutex);
  return g->host_clock;
}

bool set_inter_op_gap(void* graphHandle, double gap_s) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g || gap_s < 0) return false;
  std::lock_guard glock(g->mutex);
  g->inter_op_gap = gap_s;
  return true;
}

bool set_watchdog(void* graphHandle, double timeout_s) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g || timeout_s < 0) return false;
  std::lock_guard glock(g->mutex);
  g->watchdog_s = timeout_s;
  check::verifier().on_watchdog(graphHandle, timeout_s, g->host_clock);
  return true;
}

std::optional<double> replug_device(void* deviceHandle, double t) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<DeviceState> d = as_device(deviceHandle);
  if (!d) return std::nullopt;
  const std::optional<double> ready = d->device->replug(t);
  if (ready) check::verifier().on_replug(deviceHandle, *ready);
  return ready;
}

ncs::NcsDevice* device_of(void* deviceHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<DeviceState> d = as_device(deviceHandle);
  return d ? d->device.get() : nullptr;
}

ncs::NcsDevice* graph_device(void* graphHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  return g && g->dev ? g->dev->device.get() : nullptr;
}

int pending_results(void* graphHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) return -1;
  std::lock_guard glock(g->mutex);
  return static_cast<int>(g->pending.size());
}

// ---------------------------------------------------------------------------
// mvnc.h — the NCAPI surface
// ---------------------------------------------------------------------------

mvncStatus mvncGetDeviceName(int index, char* name, unsigned int nameSize) {
  if (!name || nameSize == 0) return MVNC_INVALID_PARAMETERS;
  std::lock_guard lock(g_mutex);
  if (index < 0 || index >= static_cast<int>(g_host.devices.size())) {
    return MVNC_DEVICE_NOT_FOUND;
  }
  const std::string n =
      g_host.devices[static_cast<std::size_t>(index)]->device->name();
  if (n.size() + 1 > nameSize) return MVNC_INVALID_PARAMETERS;
  std::memcpy(name, n.c_str(), n.size() + 1);
  return MVNC_OK;
}

mvncStatus mvncOpenDevice(const char* name, void** deviceHandle) {
  if (!name || !deviceHandle) return MVNC_INVALID_PARAMETERS;
  std::lock_guard lock(g_mutex);
  for (auto& state : g_host.devices) {
    if (state->device->name() == name) {
      if (state->handle_open) {
        check::verifier().on_open(state.get(), state->device->id(),
                                  MVNC_BUSY, 0.0);
        return MVNC_BUSY;
      }
      if (!state->device->is_open()) {
        state->device->open(0.0);
      }
      state->handle_open = true;
      g_host.device_handles.emplace(state.get(), state);
      *deviceHandle = state.get();
      check::verifier().on_open(state.get(), state->device->id(), MVNC_OK,
                                0.0);
      return MVNC_OK;
    }
  }
  return MVNC_DEVICE_NOT_FOUND;
}

mvncStatus mvncCloseDevice(void* deviceHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<DeviceState> d = as_device(deviceHandle);
  if (!d) {
    check::verifier().on_close(deviceHandle, MVNC_INVALID_PARAMETERS, 0.0);
    return MVNC_INVALID_PARAMETERS;
  }
  // Graph handles on this device become invalid.
  for (GraphState* g : std::vector<GraphState*>(d->graphs)) {
    if (const auto owned = as_graph(g)) destroy_graph_locked(g, owned);
  }
  d->handle_open = false;
  g_host.device_handles.erase(deviceHandle);
  check::verifier().on_close(deviceHandle, MVNC_OK, 0.0);
  return MVNC_OK;
}

mvncStatus allocate_graph_at(void* deviceHandle, void** graphHandle,
                             const void* graphFile,
                             unsigned int graphFileLength,
                             double host_time_s) {
  if (!graphHandle || !graphFile || graphFileLength == 0) {
    return MVNC_INVALID_PARAMETERS;
  }
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<DeviceState> d = as_device(deviceHandle);
  if (!d) {
    check::verifier().on_allocate(deviceHandle, nullptr, 0,
                                  MVNC_INVALID_PARAMETERS, 0.0);
    return MVNC_INVALID_PARAMETERS;
  }

  const auto* bytes = static_cast<const std::uint8_t*>(graphFile);
  graphc::GraphPackage package;
  try {
    package = graphc::deserialize_package(
        std::vector<std::uint8_t>(bytes, bytes + graphFileLength));
  } catch (const std::exception&) {
    return MVNC_UNSUPPORTED_GRAPH_FILE;
  }
  if (package.compiled.precision != graphc::Precision::kFP16) {
    // The stick executes FP16 graphs only.
    return MVNC_UNSUPPORTED_GRAPH_FILE;
  }

  auto g = std::make_shared<GraphState>();
  g->dev = d;
  try {
    const double ready =
        d->device->allocate_graph(package.compiled, host_time_s);
    g->host_clock = ready;
  } catch (const ncs::OutOfDeviceMemory&) {
    return MVNC_OUT_OF_MEMORY;
  } catch (const std::exception&) {
    return MVNC_ERROR;
  }
  g->compiled = std::move(package.compiled);
  if (package.functional) {
    // The graph file shipped its network + weights: execute functionally.
    g->owned_graph = std::move(package.net);
    g->owned_weights = std::move(package.weights);
    g->func_graph = &*g->owned_graph;
    g->func_weights = &*g->owned_weights;
  }
  GraphState* raw = g.get();
  d->graphs.push_back(raw);
  g_host.graph_handles.emplace(raw, std::move(g));
  *graphHandle = raw;
  check::verifier().on_allocate(deviceHandle, raw,
                                d->device->config().fifo_depth, MVNC_OK,
                                raw->host_clock);
  return MVNC_OK;
}

mvncStatus mvncAllocateGraph(void* deviceHandle, void** graphHandle,
                             const void* graphFile,
                             unsigned int graphFileLength) {
  return allocate_graph_at(deviceHandle, graphHandle, graphFile,
                           graphFileLength, 0.0);
}

mvncStatus mvncDeallocateGraph(void* graphHandle) {
  std::lock_guard lock(g_mutex);
  const std::shared_ptr<GraphState> g = as_graph(graphHandle);
  if (!g) {
    check::verifier().on_deallocate(graphHandle, MVNC_INVALID_PARAMETERS,
                                    0.0);
    return MVNC_INVALID_PARAMETERS;
  }
  double t = 0.0;
  {
    std::lock_guard glock(g->mutex);
    t = g->host_clock;
  }
  destroy_graph_locked(graphHandle, g);
  check::verifier().on_deallocate(graphHandle, MVNC_OK, t);
  return MVNC_OK;
}

mvncStatus mvncLoadTensor(void* graphHandle, const void* inputTensor,
                          unsigned int inputTensorLength, void* userParam) {
  std::shared_ptr<GraphState> g;
  {
    std::lock_guard lock(g_mutex);
    g = as_graph(graphHandle);
  }
  if (!g || !inputTensor) {
    check::verifier().on_load(graphHandle, MVNC_INVALID_PARAMETERS, 0.0);
    return MVNC_INVALID_PARAMETERS;
  }

  std::lock_guard glock(g->mutex);
  if (g->dead) {
    // The handle was deallocated between the lookup and here.
    check::verifier().on_load(graphHandle, MVNC_INVALID_PARAMETERS,
                              g->host_clock);
    return MVNC_INVALID_PARAMETERS;
  }
  const auto expected =
      static_cast<unsigned int>(g->compiled.input_bytes());
  if (inputTensorLength != expected) return MVNC_INVALID_PARAMETERS;
  if (g->dev->device->is_open() && !g->dev->device->has_graph()) {
    // The firmware rebooted (detach + hot replug) and lost the graph;
    // the handle is stale and must be re-allocated. While the stick is
    // still off the bus the call maps to MVNC_GONE below instead.
    check::verifier().on_load(graphHandle, MVNC_INVALID_PARAMETERS,
                              g->host_clock);
    return MVNC_INVALID_PARAMETERS;
  }

  static util::Counter& m_loads =
      util::metrics().counter("mvnc.load_tensor.calls");
  static util::Counter& m_busy = util::metrics().counter("mvnc.busy");
  m_loads.add(1);
  const double issued_at = g->host_clock;
  std::optional<ncs::InferenceTicket> ticket;
  try {
    ticket = g->dev->device->load_tensor(g->host_clock, userParam);
  } catch (const ncs::TransientUsbError&) {
    // Scripted transient transfer fault: nothing was queued; the caller
    // may retry once the window has passed (advance the host clock).
    util::metrics().counter("mvnc.transient_errors").add(1);
    check::verifier().on_load(graphHandle, MVNC_ERROR, g->host_clock);
    return MVNC_ERROR;
  } catch (const ncs::DeviceUnplugged&) {
    g->pending.clear();
    check::verifier().on_load(graphHandle, MVNC_GONE, g->host_clock);
    return MVNC_GONE;
  }
  if (!ticket) {
    m_busy.add(1);
    check::verifier().on_load(graphHandle, MVNC_BUSY, g->host_clock);
    return MVNC_BUSY;
  }
  g->host_clock = ticket->input_done;
  auto& tr = util::tracer();
  if (tr.enabled()) {
    // The API-call lifecycle on the host lane: issue -> input transferred
    // (the non-blocking half of Listing 1's split).
    tr.complete(
        "mvnc", "LoadTensor",
        tr.lane("dev" + std::to_string(g->dev->device->id()) + " host"),
        issued_at, ticket->input_done,
        {util::TraceArg::num("seq", static_cast<std::int64_t>(ticket->seq))});
  }

  GraphState::Pending pending;
  pending.user = userParam;
  if (g->func_graph && g->func_weights) {
    // Execute the functional FP16 network on the payload.
    const auto in_shape =
        g->func_graph->layer(g->func_graph->input_id()).out_shape;
    tensor::TensorH input(in_shape);
    std::memcpy(input.data(), inputTensor, inputTensorLength);
    auto result = nn::run_forward(*g->func_graph, *g->func_weights, input);
    pending.output.assign(result.output.data(),
                          result.output.data() + result.output.numel());
  } else {
    pending.output.assign(
        static_cast<std::size_t>(g->compiled.num_outputs),
        ncsw::fp16::half{});
  }
  g->pending.push_back(std::move(pending));
  check::verifier().on_load(graphHandle, MVNC_OK, g->host_clock);
  return MVNC_OK;
}

mvncStatus mvncGetResult(void* graphHandle, void** outputData,
                         unsigned int* outputDataLength, void** userParam) {
  std::shared_ptr<GraphState> g;
  {
    std::lock_guard lock(g_mutex);
    g = as_graph(graphHandle);
  }
  if (!g || !outputData || !outputDataLength) {
    check::verifier().on_get(graphHandle, MVNC_INVALID_PARAMETERS, 0.0);
    return MVNC_INVALID_PARAMETERS;
  }

  std::lock_guard glock(g->mutex);
  if (g->dead) {
    // The handle was deallocated between the lookup and here.
    check::verifier().on_get(graphHandle, MVNC_INVALID_PARAMETERS,
                             g->host_clock);
    return MVNC_INVALID_PARAMETERS;
  }
  if (g->pending.empty()) {
    check::verifier().on_get(graphHandle, MVNC_NO_DATA, g->host_clock);
    return MVNC_NO_DATA;
  }
  static util::Counter& m_gets =
      util::metrics().counter("mvnc.get_result.calls");
  m_gets.add(1);
  const double wait_from = g->host_clock;
  std::optional<ncs::InferenceTicket> ticket;
  try {
    ticket = g->dev->device->get_result(g->host_clock, g->watchdog_s);
  } catch (const ncs::DeviceTimeout& timeout) {
    // Watchdog expired: the host stops waiting, the inference stays
    // queued on the stick, and a later GetResult can still retrieve it.
    g->host_clock = timeout.gave_up_at;
    util::metrics().counter("mvnc.timeouts").add(1);
    auto& tr = util::tracer();
    if (tr.enabled()) {
      tr.complete(
          "mvnc", "GetResult(timeout)",
          tr.lane("dev" + std::to_string(g->dev->device->id()) + " host"),
          wait_from, timeout.gave_up_at);
    }
    check::verifier().on_get(graphHandle, MVNC_TIMEOUT, g->host_clock);
    return MVNC_TIMEOUT;
  } catch (const ncs::DeviceUnplugged&) {
    g->pending.clear();  // in-flight results died with the link
    check::verifier().on_get(graphHandle, MVNC_GONE, g->host_clock);
    return MVNC_GONE;
  }
  if (!ticket) return MVNC_ERROR;  // FIFO desync: should be impossible

  GraphState::Pending pending = std::move(g->pending.front());
  g->pending.pop_front();
  g->host_clock = ticket->result_ready + g->inter_op_gap;
  auto& tr = util::tracer();
  if (tr.enabled()) {
    // Host blocked from the call until the output landed (the blocking
    // half of the split).
    tr.complete(
        "mvnc", "GetResult",
        tr.lane("dev" + std::to_string(g->dev->device->id()) + " host"),
        wait_from, ticket->result_ready,
        {util::TraceArg::num("seq", static_cast<std::int64_t>(ticket->seq))});
  }
  g->last_ticket = *ticket;
  g->last_output = std::move(pending.output);

  *outputData = g->last_output.data();
  *outputDataLength = static_cast<unsigned int>(
      g->last_output.size() * sizeof(ncsw::fp16::half));
  if (userParam) *userParam = pending.user;
  check::verifier().on_get(graphHandle, MVNC_OK, g->host_clock);
  return MVNC_OK;
}

mvncStatus mvncGetGraphOption(void* graphHandle, int option, void* data,
                              unsigned int* dataLength) {
  std::shared_ptr<GraphState> g;
  {
    std::lock_guard lock(g_mutex);
    g = as_graph(graphHandle);
  }
  if (!g || !data || !dataLength) return MVNC_INVALID_PARAMETERS;

  std::lock_guard glock(g->mutex);
  if (g->dead) return MVNC_INVALID_PARAMETERS;
  switch (option) {
    case MVNC_TIME_TAKEN: {
      // Stale after a detach + replug: the firmware lost the graph (and
      // with it the layer profile) until the host re-allocates.
      if (!g->dev->device->has_graph()) return MVNC_INVALID_PARAMETERS;
      const auto& profile = g->dev->device->profile();
      const unsigned int needed = static_cast<unsigned int>(
          profile.layers.size() * sizeof(float));
      if (*dataLength < needed) return MVNC_INVALID_PARAMETERS;
      auto* out = static_cast<float*>(data);
      for (std::size_t i = 0; i < profile.layers.size(); ++i) {
        out[i] = static_cast<float>(profile.layers[i].time_s * 1e3);
      }
      *dataLength = needed;
      return MVNC_OK;
    }
    case MVNC_DEBUG_INFO: {
      char buf[160];
      const int len = std::snprintf(
          buf, sizeof(buf), "net=%s layers=%zu macs=%lld exec_ms=%.3f",
          g->compiled.net_name.c_str(), g->compiled.layers.size(),
          static_cast<long long>(g->compiled.total_macs()),
          g->dev->device->profile().total_s * 1e3);
      if (len < 0 || *dataLength < static_cast<unsigned int>(len) + 1) {
        return MVNC_INVALID_PARAMETERS;
      }
      std::memcpy(data, buf, static_cast<std::size_t>(len) + 1);
      *dataLength = static_cast<unsigned int>(len) + 1;
      return MVNC_OK;
    }
    default:
      return MVNC_INVALID_PARAMETERS;
  }
}

mvncStatus mvncGetDeviceOption(void* deviceHandle, int option, void* data,
                               unsigned int* dataLength) {
  std::shared_ptr<DeviceState> d;
  {
    std::lock_guard lock(g_mutex);
    d = as_device(deviceHandle);
  }
  if (!d || !data || !dataLength) return MVNC_INVALID_PARAMETERS;
  ncs::NcsDevice& dev = *d->device;

  switch (option) {
    case MVNC_TEMP_LIM_LOWER:
    case MVNC_TEMP_LIM_HIGHER: {
      if (*dataLength < sizeof(float)) return MVNC_INVALID_PARAMETERS;
      const auto [lower, higher] = dev.temp_limits();
      const float value = static_cast<float>(
          option == MVNC_TEMP_LIM_LOWER ? lower : higher);
      *static_cast<float*>(data) = value;
      *dataLength = sizeof(float);
      return MVNC_OK;
    }
    case MVNC_THERMAL_STATS: {
      const auto history = dev.thermal_history();
      const auto needed =
          static_cast<unsigned int>(history.size() * sizeof(float));
      if (*dataLength < needed) return MVNC_INVALID_PARAMETERS;
      std::memcpy(data, history.data(), needed);
      *dataLength = needed;
      return MVNC_OK;
    }
    case MVNC_OPTIMISATION_LIST: {
      const char kOpts[] = "fp16 im2col-gemm cmx-tiling overlap-dma";
      if (*dataLength < sizeof(kOpts)) return MVNC_INVALID_PARAMETERS;
      std::memcpy(data, kOpts, sizeof(kOpts));
      *dataLength = sizeof(kOpts);
      return MVNC_OK;
    }
    default:
      return MVNC_INVALID_PARAMETERS;
  }
}

mvncStatus mvncSetDeviceOption(void* deviceHandle, int option,
                               const void* data, unsigned int dataLength) {
  std::shared_ptr<DeviceState> d;
  {
    std::lock_guard lock(g_mutex);
    d = as_device(deviceHandle);
  }
  if (!d || !data) return MVNC_INVALID_PARAMETERS;
  ncs::NcsDevice& dev = *d->device;

  switch (option) {
    case MVNC_TEMP_LIM_LOWER:
    case MVNC_TEMP_LIM_HIGHER: {
      if (dataLength != sizeof(float)) return MVNC_INVALID_PARAMETERS;
      float value;
      std::memcpy(&value, data, sizeof(float));
      auto [lower, higher] = dev.temp_limits();
      (option == MVNC_TEMP_LIM_LOWER ? lower : higher) = value;
      try {
        dev.set_temp_limits(lower, higher);
      } catch (const std::exception&) {
        return MVNC_INVALID_PARAMETERS;
      }
      return MVNC_OK;
    }
    default:
      return MVNC_INVALID_PARAMETERS;
  }
}

}  // namespace ncsw::mvnc
