// Neural Compute API (NCAPI v1) — simulator-backed clone.
//
// Mirrors the C interface of the Movidius Neural Compute SDK the paper
// programs against (Listing 1): open a stick by name, allocate a compiled
// graph, then drive inference with the non-blocking LoadTensor /
// blocking GetResult pair. Status codes and option ids follow the NCSDK
// v1 header. The backing devices are simulated NcsDevice instances
// configured through mvnc/sim_host.h.
#pragma once

#include <cstddef>

namespace ncsw::mvnc {

/// NCSDK v1 status codes.
enum mvncStatus : int {
  MVNC_OK = 0,
  MVNC_BUSY = -1,
  MVNC_ERROR = -2,
  MVNC_OUT_OF_MEMORY = -3,
  MVNC_DEVICE_NOT_FOUND = -4,
  MVNC_INVALID_PARAMETERS = -5,
  MVNC_TIMEOUT = -6,
  MVNC_MVCMD_NOT_FOUND = -7,
  MVNC_NO_DATA = -8,
  MVNC_GONE = -9,
  MVNC_UNSUPPORTED_GRAPH_FILE = -10,
  MVNC_MYRIAD_ERROR = -11,
};

/// Graph options (mvncGetGraphOption).
enum mvncGraphOptions : int {
  MVNC_ITERATIONS = 0,
  MVNC_NETWORK_THROTTLE = 1,
  MVNC_DONT_BLOCK = 2,
  MVNC_TIME_TAKEN = 1000,   ///< float[] of per-layer times, milliseconds
  MVNC_DEBUG_INFO = 1001,   ///< char[] diagnostic string
};

/// Device options (mvncGetDeviceOption).
enum mvncDeviceOptions : int {
  MVNC_TEMP_LIM_LOWER = 1,
  MVNC_TEMP_LIM_HIGHER = 2,
  MVNC_BACKOFF_TIME_NORMAL = 3,
  MVNC_THERMAL_STATS = 1000,
  MVNC_OPTIMISATION_LIST = 1001,
};

/// Enumerate sticks: copies the zero-terminated name of device `index`
/// into `name` (capacity `nameSize`). MVNC_DEVICE_NOT_FOUND past the end.
mvncStatus mvncGetDeviceName(int index, char* name, unsigned int nameSize);

/// Open a stick by name: boots the firmware. `deviceHandle` receives an
/// opaque handle.
mvncStatus mvncOpenDevice(const char* name, void** deviceHandle);

/// Close a stick; invalidates its graph handles.
mvncStatus mvncCloseDevice(void* deviceHandle);

/// Upload a compiled graph file (graphc::serialize output) to the stick.
mvncStatus mvncAllocateGraph(void* deviceHandle, void** graphHandle,
                             const void* graphFile,
                             unsigned int graphFileLength);

/// Release a graph.
mvncStatus mvncDeallocateGraph(void* graphHandle);

/// Queue one inference. `inputTensor` is FP16 data of exactly the graph's
/// input size; returns as soon as the transfer completes and execution is
/// queued on the SHAVE array (non-blocking w.r.t. execution). MVNC_BUSY
/// when the device FIFO is full.
mvncStatus mvncLoadTensor(void* graphHandle, const void* inputTensor,
                          unsigned int inputTensorLength, void* userParam);

/// Block until the oldest queued inference finishes; returns a pointer to
/// the FP16 output (valid until the next GetResult / DeallocateGraph) and
/// the userParam passed to the matching LoadTensor. MVNC_NO_DATA when
/// nothing is queued.
mvncStatus mvncGetResult(void* graphHandle, void** outputData,
                         unsigned int* outputDataLength, void** userParam);

/// Query a graph option (MVNC_TIME_TAKEN, MVNC_DEBUG_INFO).
/// `dataLength` is in/out: capacity in, bytes written out.
mvncStatus mvncGetGraphOption(void* graphHandle, int option, void* data,
                              unsigned int* dataLength);

/// Query a device option:
///  - MVNC_TEMP_LIM_LOWER / MVNC_TEMP_LIM_HIGHER: one float (°C),
///  - MVNC_THERMAL_STATS: float[] of recent junction temperatures,
///  - MVNC_OPTIMISATION_LIST: char[] description string.
/// `dataLength` is in/out as for graph options.
mvncStatus mvncGetDeviceOption(void* deviceHandle, int option, void* data,
                               unsigned int* dataLength);

/// Set a device option: MVNC_TEMP_LIM_LOWER / MVNC_TEMP_LIM_HIGHER take
/// one float (°C); the pair must keep lower < higher.
mvncStatus mvncSetDeviceOption(void* deviceHandle, int option,
                               const void* data, unsigned int dataLength);

}  // namespace ncsw::mvnc
