#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "check/serve_check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::cluster {

const char* request_state_name(RequestState s) {
  switch (s) {
    case RequestState::kCompleted: return "completed";
    case RequestState::kRejected: return "rejected";
    case RequestState::kDeadline: return "deadline";
    case RequestState::kLost: return "lost";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cluster-side lifetime of one request id across all of its copies
/// (the original, failover replays, and hedge duplicates).
struct Ledger {
  serve::Request req;        ///< payload for replays / hedges
  int live = 0;              ///< copies currently queued or in flight
  int replays = 0;
  int hedges = 0;
  int last_node = -1;        ///< node holding the newest copy
  bool completed = false;    ///< first completion already delivered
  bool terminal = false;     ///< rejected / deadline-dropped, no retry
  RequestState state = RequestState::kLost;
  double finish_s = -1.0;
  int node = -1;             ///< completing node
  double evicted_s = -1.0;   ///< last failover eviction time
};

/// A request termination reported by a node session, queued for
/// processing after the session call returns (observer callbacks must
/// not re-enter the session).
struct FinEvent {
  serve::Request req;
  serve::Outcome outcome = serve::Outcome::kCompleted;
  serve::DropReason reason = serve::DropReason::kNone;
  double at_s = 0.0;
  int node = -1;
};

/// An armed hedge: fires when a dispatched copy's promised completion
/// has slipped by hedge_slack_s. `seq` breaks fire-time ties in
/// arming order, keeping the replay deterministic.
struct HedgeTimer {
  double fire_s = 0.0;
  std::int64_t seq = 0;
  std::int64_t id = 0;
  int node = -1;  ///< node the armed copy was dispatched on

  bool operator>(const HedgeTimer& o) const noexcept {
    if (fire_s != o.fire_s) return fire_s > o.fire_s;
    return seq > o.seq;
  }
};

/// A request awaiting failover replay; `evicted_s` feeds the failover
/// latency rollup when the replayed copy completes.
struct ReplayItem {
  serve::Request req;
  double evicted_s = 0.0;
};

}  // namespace

Cluster::Cluster(std::vector<std::vector<core::Target*>> node_targets,
                 ClusterConfig config)
    : config_(config), node_targets_(std::move(node_targets)) {
  if (node_targets_.empty()) {
    throw std::invalid_argument("Cluster: no nodes");
  }
  if (config_.models < 1) {
    throw std::invalid_argument("Cluster: models must be >= 1");
  }
  if (config_.max_hedges < 0) {
    throw std::invalid_argument("Cluster: max_hedges must be >= 0");
  }
  if (!(config_.residency_load_s >= 0.0)) {
    throw std::invalid_argument("Cluster: bad residency_load_s");
  }
  if (!(config_.node_prior_tput > 0.0)) {
    throw std::invalid_argument("Cluster: node_prior_tput must be > 0");
  }
  if (!(config_.node_gain > 0.0) || config_.node_gain > 1.0) {
    throw std::invalid_argument("Cluster: node_gain must be in (0, 1]");
  }
  config_.replication = std::max(
      1, std::min(config_.replication,
                  static_cast<int>(node_targets_.size())));
  config_.node.trace_requests = config_.trace_requests;
}

ClusterReport Cluster::run(const std::vector<serve::Request>& requests) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!std::isfinite(requests[i].arrival_s) ||
        (i > 0 && requests[i].arrival_s < requests[i - 1].arrival_s)) {
      throw std::invalid_argument(
          "Cluster::run: arrivals must be finite and sorted");
    }
  }

  const int n_nodes = static_cast<int>(node_targets_.size());
  ClusterReport report;
  HashRing ring(n_nodes, config_.vnodes, config_.ring_seed);

  // The serving verifier (check/serve_check.h) shadows the ledger:
  // first-completion-wins delivery, live-copy counts, and end-of-run
  // conservation. Every hook is a no-op in kOff mode.
  auto& sv = check::serve_verifier();
  sv.on_cluster_begin();

  auto& reg = util::metrics();
  util::Counter& m_offered = reg.counter("cluster.offered");
  util::Counter& m_completed = reg.counter("cluster.completed");
  util::Counter& m_rejected = reg.counter("cluster.rejected");
  util::Counter& m_replays = reg.counter("cluster.replays");
  util::Counter& m_hedges = reg.counter("cluster.hedges");
  util::Counter& m_duplicates = reg.counter("cluster.duplicates");
  util::Counter& m_kills = reg.counter("cluster.node_kills");
  util::Counter& m_rejoins = reg.counter("cluster.node_rejoins");
  util::Counter& m_parked = reg.counter("cluster.parked");
  util::Counter& m_spills = reg.counter("cluster.spills");
  util::Gauge& g_up = reg.gauge("cluster.nodes_up");

  auto& tr = util::tracer();
  int sched_lane = -1, event_lane = -1;
  if (tr.enabled()) {
    sched_lane = tr.lane("cluster sched");
    event_lane = tr.lane("cluster events");
  }
  auto instant = [&](const char* name, double t) {
    if (tr.enabled() && event_lane >= 0) {
      tr.instant("cluster", name, event_lane, t);
    }
  };

  // ---- shared event state (filled by observers, drained between
  // session calls; observers never re-enter a session) ----
  std::map<std::int64_t, Ledger> ledger;
  std::deque<FinEvent> fins;
  std::deque<ReplayItem> replays;
  std::deque<ReplayItem> parked;
  std::priority_queue<HedgeTimer, std::vector<HedgeTimer>,
                      std::greater<HedgeTimer>>
      hedges;
  std::int64_t hedge_seq = 0;

  /// Per-node runtime state around its serve::Session.
  struct NodeState {
    std::unique_ptr<serve::Session> session;
    std::unique_ptr<core::StickHealth> health;
    sim::FaultTimeline timeline;
    std::vector<sim::FaultEvent> fault_starts;  ///< node windows, sorted
    std::size_t fault_cursor = 0;
    bool up = true;
    bool rejoin_pending = false;  ///< probe passed; reloading graphs
    double ready_s = kInf;
    double tput_est = 0.0;
    bool observed = false;
    int resident_models = 0;
    NodeReport stats;
  };
  std::vector<NodeState> nodes(static_cast<std::size_t>(n_nodes));

  struct NodeObserver : serve::Session::Observer {
    int node = -1;
    NodeState* ns = nullptr;
    std::deque<FinEvent>* fins = nullptr;
    std::priority_queue<HedgeTimer, std::vector<HedgeTimer>,
                        std::greater<HedgeTimer>>* hedges = nullptr;
    std::map<std::int64_t, Ledger>* ledger = nullptr;
    std::int64_t* hedge_seq = nullptr;
    double hedge_slack_s = 0.0;
    int max_hedges = 0;
    double gain = 0.25;

    void on_dispatched(const serve::Request& req, double /*dispatch_s*/,
                       double promised_complete_s) override {
      Ledger& led = (*ledger)[req.id];
      led.last_node = node;
      // Arm a hedge against the *promised* completion: if the node
      // wedges, the observed completion slips past this timer and the
      // duplicate fires; if the promise holds, the timer is a no-op.
      if (hedge_slack_s > 0.0 && led.hedges < max_hedges) {
        hedges->push({promised_complete_s + hedge_slack_s, (*hedge_seq)++,
                      req.id, node});
      }
    }
    void on_batch_completed(int /*target*/, double dispatch_s,
                            double complete_s,
                            std::int64_t completed) override {
      // Node-granularity feedback: the same clearing-rate EWMA the
      // dispatcher runs per target, lifted to the node. Dispatch-to-
      // observed-completion, so a wedge slip sinks the estimate.
      const double dur = complete_s - dispatch_s;
      if (dur > 0.0) {
        const double obs = static_cast<double>(completed) / dur;
        if (!ns->observed) {
          ns->tput_est = obs;
          ns->observed = true;
        } else {
          ns->tput_est = (1.0 - gain) * ns->tput_est + gain * obs;
        }
      }
      ns->health->on_success();
    }
    void on_finished(const serve::Request& req, serve::Outcome outcome,
                     serve::DropReason reason, double at_s) override {
      fins->push_back({req, outcome, reason, at_s, node});
    }
  };
  std::vector<NodeObserver> observers(static_cast<std::size_t>(n_nodes));

  for (int i = 0; i < n_nodes; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    NodeState& ns = nodes[ui];
    NodeObserver& ob = observers[ui];
    ob.node = i;
    ob.ns = &ns;
    ob.fins = &fins;
    ob.hedges = &hedges;
    ob.ledger = &ledger;
    ob.hedge_seq = &hedge_seq;
    ob.hedge_slack_s = config_.hedge_slack_s;
    ob.max_hedges = config_.max_hedges;
    ob.gain = config_.node_gain;

    ns.timeline = config_.faults.timeline_for(i);
    for (const auto& ev : ns.timeline.events()) {
      if (ev.kind == sim::FaultKind::kNodeCrash ||
          ev.kind == sim::FaultKind::kNodeWedge) {
        ns.fault_starts.push_back(ev);
      }
    }
    ns.health = std::make_unique<core::StickHealth>(i, config_.node_health);
    ns.tput_est = config_.node_prior_tput;
    // Wedge windows slip every completion promised inside them to the
    // window's end — the node accepts work but delivers none meanwhile.
    const sim::FaultTimeline tl = ns.timeline;
    ns.session = std::make_unique<serve::Session>(
        node_targets_[ui], config_.node, "n" + std::to_string(i), &ob,
        [tl](double t) {
          return tl.clear_of(sim::FaultKind::kNodeWedge, t);
        });
  }
  g_up.set(static_cast<double>(n_nodes));

  // ---- model catalogue -> replica preference lists ----
  std::unordered_map<std::string, std::vector<int>> prefs_of;
  auto prefs_for = [&](const std::string& model) -> const std::vector<int>& {
    auto it = prefs_of.find(model);
    if (it == prefs_of.end()) {
      auto prefs =
          ring.preference(HashRing::hash_key(model), config_.replication);
      for (const int n : prefs) {
        ++nodes[static_cast<std::size_t>(n)].resident_models;
      }
      it = prefs_of.emplace(model, std::move(prefs)).first;
    }
    return it->second;
  };
  auto model_of = [&](const serve::Request& req) {
    return req.tag.empty()
               ? "m" + std::to_string(req.id % static_cast<std::int64_t>(
                                                   config_.models))
               : req.tag;
  };
  // Pre-warm the default catalogue so rejoin residency costs are known
  // up front and independent of arrival order.
  for (int m = 0; m < config_.models; ++m) {
    prefs_for("m" + std::to_string(m));
  }

  auto eligible = [&](int n) {
    const NodeState& ns = nodes[static_cast<std::size_t>(n)];
    return ns.up && ns.health->schedulable();
  };
  // Route within the replica set: unobserved nodes first (explore),
  // then the least expected wait (queued + in-flight work over the
  // node's clearing-rate estimate); ties keep ring preference order.
  // Capacity is judged per class: a node whose queue has room but whose
  // class quota for this request is exhausted does not count.
  auto pick_node = [&](const std::vector<int>& prefs, bool need_capacity,
                       serve::SloClass slo) {
    int best = -1;
    bool best_unobs = false;
    double best_wait = kInf;
    for (const int n : prefs) {
      if (!eligible(n)) continue;
      const NodeState& ns = nodes[static_cast<std::size_t>(n)];
      if (need_capacity && !ns.session->has_capacity_for(slo)) continue;
      const bool unobs = !ns.observed;
      const double backlog = static_cast<double>(ns.session->queue_depth() +
                                                 ns.session->inflight());
      const double wait = backlog / ns.tput_est;
      if (best < 0 || (unobs && !best_unobs) ||
          (unobs == best_unobs && wait < best_wait)) {
        best = n;
        best_unobs = unobs;
        best_wait = wait;
      }
    }
    return best;
  };

  // Overflow routing off the ring: the replica set is capacity-blind,
  // so when all replicas of a model are saturated (or down) a request
  // may run on any healthy node; that node warms the model and counts
  // as resident from then on (it pays the graph re-load on rejoin).
  std::vector<int> all_nodes(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) all_nodes[static_cast<std::size_t>(i)] = i;
  std::set<std::pair<int, std::string>> spill_resident;
  auto pick_spill = [&](const std::string& model, bool need_capacity,
                        serve::SloClass slo, double t) {
    if (!config_.spill) return -1;
    const int n = pick_node(all_nodes, need_capacity, slo);
    if (n < 0) return -1;
    if (spill_resident.emplace(n, model).second) {
      ++nodes[static_cast<std::size_t>(n)].resident_models;
    }
    ++report.requests_spilled;
    m_spills.add(1);
    instant("spill", t);
    return n;
  };

  double now = 0.0;

  // Failover: every request a dead or quarantined node was holding is
  // re-offered to a live replica (force = the replica must not bounce
  // it) or parked until a replica rejoins. Zero requests lost.
  auto evict_node = [&](int n, double t) {
    NodeState& ns = nodes[static_cast<std::size_t>(n)];
    auto evicted = ns.session->evict_all(t);
    ns.stats.evicted += static_cast<std::int64_t>(evicted.size());
    for (auto& req : evicted) {
      Ledger& led = ledger[req.id];
      --led.live;
      if (sv.enabled()) sv.on_ledger_live(req.id, led.live, t);
      if (!led.completed && !led.terminal) {
        led.evicted_s = t;
        replays.push_back({std::move(req), t});
      }
    }
  };

  // Process queued terminations and failover replays until quiescent.
  // Replaying into a session can surface further terminations (the
  // deadline sweep runs on admission), so loop to a fixed point.
  auto drain = [&](double t) {
    while (!fins.empty() || !replays.empty()) {
      while (!fins.empty()) {
        FinEvent ev = std::move(fins.front());
        fins.pop_front();
        Ledger& led = ledger[ev.req.id];
        --led.live;
        if (sv.enabled()) sv.on_ledger_live(ev.req.id, led.live, t);
        switch (ev.outcome) {
          case serve::Outcome::kCompleted:
            if (!led.completed) {
              if (sv.enabled()) {
                sv.on_ledger_deliver(ev.req.id, ev.node, ev.at_s);
              }
              led.completed = true;
              led.state = RequestState::kCompleted;
              led.finish_s = ev.at_s;
              led.node = ev.node;
              ++report.completed;
              m_completed.add(1);
              const double ms = (ev.at_s - ev.req.arrival_s) * 1e3;
              report.latency_ms.add(ms);
              if (led.evicted_s >= 0.0) {
                report.failover_ms.add((ev.at_s - led.evicted_s) * 1e3);
              }
              report.last_complete_s =
                  std::max(report.last_complete_s, ev.at_s);
            } else {
              ++report.duplicate_completions;
              m_duplicates.add(1);
            }
            break;
          case serve::Outcome::kRejected:
            // Only speculative copies route without force; the
            // original stays live, so nothing terminal happens here.
            break;
          case serve::Outcome::kDropped:
            if (ev.reason == serve::DropReason::kDeadline) {
              // Policy drop, not a fault: the request aged out. It is
              // terminal once no other copy can still complete it.
              if (!led.completed && !led.terminal && led.live <= 0) {
                led.terminal = true;
                led.state = RequestState::kDeadline;
                led.finish_s = ev.at_s;
                ++report.dropped_deadline;
              }
            } else if (!led.completed && !led.terminal) {
              // Lost in flight or abandoned by a failing target:
              // replay it like an eviction.
              led.evicted_s = ev.at_s;
              replays.push_back({ev.req, ev.at_s});
            }
            break;
        }
      }
      while (!replays.empty()) {
        ReplayItem item = std::move(replays.front());
        replays.pop_front();
        Ledger& led = ledger[item.req.id];
        if (led.completed || led.terminal || led.live > 0) continue;
        const std::string model = model_of(item.req);
        int n = pick_node(prefs_for(model), /*need_capacity=*/false,
                          item.req.slo);
        if (n < 0) {
          n = pick_spill(model, /*need_capacity=*/false, item.req.slo, t);
        }
        if (n < 0) {
          parked.push_back(std::move(item));
          m_parked.add(1);
          instant("park", t);
          continue;
        }
        ++led.replays;
        ++led.live;
        ++report.requests_replayed;
        m_replays.add(1);
        instant("replay", t);
        nodes[static_cast<std::size_t>(n)].session->offer(item.req, t,
                                                          /*force=*/true);
      }
    }
  };

  auto unpark_all = [&](double t) {
    while (!parked.empty()) {
      replays.push_back(std::move(parked.front()));
      parked.pop_front();
    }
    drain(t);
  };

  auto nodes_up = [&] {
    int n = 0;
    for (const auto& ns : nodes) n += ns.up ? 1 : 0;
    return n;
  };

  // A node's whole session failed (every target dead): permanent loss
  // of the node; strand nothing.
  auto node_failed = [&](int n, double t) {
    NodeState& ns = nodes[static_cast<std::size_t>(n)];
    ns.up = false;
    ns.rejoin_pending = false;
    ns.ready_s = kInf;
    ns.health->on_gone(t);
    while (ns.health->state() != core::HealthState::kDead) {
      ns.health->on_probe_failure(t);
    }
    ++report.nodes_dead;
    g_up.set(static_cast<double>(nodes_up()));
    evict_node(n, t);
    drain(t);
  };

  std::size_t next_arrival = 0;

  enum class Ev {
    kNone,
    kComplete,
    kDrop,
    kFault,
    kProbe,
    kReady,
    kHedge,
    kArrive,
    kFlush
  };
  for (;;) {
    // Gather the next event time per class; within a class ties go to
    // the lowest node index (strict <), and across classes the listed
    // priority below — completions retire work before faults or drops
    // reroute it, probes/rejoins restore capacity before hedges and
    // arrivals claim it, flushes batch up whatever remains.
    double t_complete = kInf, t_drop = kInf, t_fault = kInf, t_probe = kInf,
           t_ready = kInf, t_flush = kInf;
    int n_complete = -1, n_drop = -1, n_fault = -1, n_probe = -1,
        n_ready = -1, n_flush = -1;
    for (int i = 0; i < n_nodes; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const NodeState& ns = nodes[ui];
      const double tc = ns.session->next_complete_s();
      if (tc < t_complete) { t_complete = tc; n_complete = i; }
      const double td = ns.session->next_drop_s();
      if (td < t_drop) { t_drop = td; n_drop = i; }
      if (ns.fault_cursor < ns.fault_starts.size()) {
        const double tf = ns.fault_starts[ns.fault_cursor].start;
        if (tf < t_fault) { t_fault = tf; n_fault = i; }
      }
      if (ns.health->state() == core::HealthState::kQuarantined) {
        const double tp = ns.health->next_probe_time();
        if (tp < t_probe) { t_probe = tp; n_probe = i; }
      }
      if (ns.rejoin_pending && ns.ready_s < t_ready) {
        t_ready = ns.ready_s;
        n_ready = i;
      }
      const double tl = ns.session->next_flush_s();
      if (tl < t_flush) { t_flush = tl; n_flush = i; }
    }
    const double t_hedge = hedges.empty() ? kInf : hedges.top().fire_s;
    const double t_arrive = next_arrival < requests.size()
                                ? requests[next_arrival].arrival_s
                                : kInf;

    Ev ev = Ev::kNone;
    double t = kInf;
    if (t_complete < t) { t = t_complete; ev = Ev::kComplete; }
    if (t_drop < t) { t = t_drop; ev = Ev::kDrop; }
    if (t_fault < t) { t = t_fault; ev = Ev::kFault; }
    if (t_probe < t) { t = t_probe; ev = Ev::kProbe; }
    if (t_ready < t) { t = t_ready; ev = Ev::kReady; }
    if (t_hedge < t) { t = t_hedge; ev = Ev::kHedge; }
    if (t_arrive < t) { t = t_arrive; ev = Ev::kArrive; }
    if (t_flush < t) { t = t_flush; ev = Ev::kFlush; }
    if (ev == Ev::kNone) break;
    if (config_.tie_break) {
      // Determinism fuzzing (check/schedfuzz.h): collect every
      // (class, node) pair due at exactly t — including same-class ties
      // on higher node indices the production scan above never
      // surfaces — and let the hook pick one; the loop re-evaluates
      // after each event. Index 0 reproduces the fixed order.
      std::vector<serve::LoopEvent> tied;
      auto tied_nodes = [&](serve::LoopEventKind kind, auto&& time_of) {
        for (int i = 0; i < n_nodes; ++i) {
          if (time_of(nodes[static_cast<std::size_t>(i)]) == t) {
            tied.push_back({kind, i, t});
          }
        }
      };
      tied_nodes(serve::LoopEventKind::kComplete, [](const NodeState& ns) {
        return ns.session->next_complete_s();
      });
      tied_nodes(serve::LoopEventKind::kDrop, [](const NodeState& ns) {
        return ns.session->next_drop_s();
      });
      tied_nodes(serve::LoopEventKind::kFault, [](const NodeState& ns) {
        return ns.fault_cursor < ns.fault_starts.size()
                   ? ns.fault_starts[ns.fault_cursor].start
                   : kInf;
      });
      tied_nodes(serve::LoopEventKind::kProbe, [](const NodeState& ns) {
        return ns.health->state() == core::HealthState::kQuarantined
                   ? ns.health->next_probe_time()
                   : kInf;
      });
      tied_nodes(serve::LoopEventKind::kReady, [](const NodeState& ns) {
        return ns.rejoin_pending ? ns.ready_s : kInf;
      });
      if (t_hedge == t) {
        tied.push_back({serve::LoopEventKind::kHedge, hedges.top().node, t});
      }
      if (t_arrive == t) {
        tied.push_back({serve::LoopEventKind::kArrive, -1, t});
      }
      tied_nodes(serve::LoopEventKind::kFlush, [](const NodeState& ns) {
        return ns.session->next_flush_s();
      });
      const serve::LoopEvent pick =
          tied[config_.tie_break(t, tied) % tied.size()];
      switch (pick.kind) {
        case serve::LoopEventKind::kComplete:
          ev = Ev::kComplete; n_complete = pick.node; break;
        case serve::LoopEventKind::kDrop:
          ev = Ev::kDrop; n_drop = pick.node; break;
        case serve::LoopEventKind::kFault:
          ev = Ev::kFault; n_fault = pick.node; break;
        case serve::LoopEventKind::kProbe:
          ev = Ev::kProbe; n_probe = pick.node; break;
        case serve::LoopEventKind::kReady:
          ev = Ev::kReady; n_ready = pick.node; break;
        case serve::LoopEventKind::kHedge:
          ev = Ev::kHedge; break;
        case serve::LoopEventKind::kArrive:
          ev = Ev::kArrive; break;
        case serve::LoopEventKind::kFlush:
          ev = Ev::kFlush; n_flush = pick.node; break;
      }
    }
    now = std::max(now, t);

    switch (ev) {
      case Ev::kComplete: {
        auto& ns = nodes[static_cast<std::size_t>(n_complete)];
        try {
          ns.session->on_complete(now);
        } catch (...) {
          node_failed(n_complete, now);
          break;
        }
        drain(now);
        break;
      }
      case Ev::kDrop:
        nodes[static_cast<std::size_t>(n_drop)].session->on_drop(now);
        drain(now);
        break;
      case Ev::kFault: {
        NodeState& ns = nodes[static_cast<std::size_t>(n_fault)];
        const sim::FaultEvent fe = ns.fault_starts[ns.fault_cursor++];
        if (fe.kind == sim::FaultKind::kNodeCrash) {
          ns.up = false;
          ns.rejoin_pending = false;
          ns.ready_s = kInf;
          ns.health->on_gone(now);
          ++ns.stats.crashes;
          ++report.node_kills;
          m_kills.add(1);
          g_up.set(static_cast<double>(nodes_up()));
          instant("kill", now);
          evict_node(n_fault, now);
          drain(now);
        } else {  // kNodeWedge: state change is implicit — promised
                  // completions slip via the session's completion map,
                  // and hedges below quarantine the node if it lingers.
          ++ns.stats.wedges;
          ++report.node_wedges;
          instant("wedge", now);
        }
        break;
      }
      case Ev::kProbe: {
        NodeState& ns = nodes[static_cast<std::size_t>(n_probe)];
        const bool still_faulted =
            ns.timeline.active(sim::FaultKind::kNodeCrash, now) != nullptr ||
            ns.timeline.active(sim::FaultKind::kNodeWedge, now) != nullptr;
        if (still_faulted) {
          ns.health->on_probe_failure(now);
          if (ns.health->state() == core::HealthState::kDead) {
            ++report.nodes_dead;
            instant("dead", now);
          }
        } else {
          const bool replug = ns.health->needs_replug();
          ns.health->on_probe_success();
          if (replug) {
            // Crash recovery: the node's resident graphs re-load
            // before it takes traffic again.
            ns.rejoin_pending = true;
            ns.ready_s = now + static_cast<double>(ns.resident_models) *
                                   config_.residency_load_s;
            instant("probe-ok", now);
          } else {
            // Wedge quarantine lift: graphs never left; back in the
            // schedule immediately.
            instant("requalified", now);
            unpark_all(now);
          }
        }
        break;
      }
      case Ev::kReady: {
        NodeState& ns = nodes[static_cast<std::size_t>(n_ready)];
        ns.rejoin_pending = false;
        ns.ready_s = kInf;
        ns.up = true;
        ++ns.stats.rejoins;
        ++report.node_rejoins;
        m_rejoins.add(1);
        g_up.set(static_cast<double>(nodes_up()));
        instant("rejoin", now);
        unpark_all(now);
        break;
      }
      case Ev::kHedge: {
        const HedgeTimer h = hedges.top();
        hedges.pop();
        auto it = ledger.find(h.id);
        if (it == ledger.end()) break;
        Ledger& led = it->second;
        // Stale timers: the copy completed, moved nodes, or was
        // evicted — nothing slipped on this node after all.
        if (led.completed || led.terminal || led.live <= 0 ||
            led.last_node != h.node) {
          break;
        }
        NodeState& slow = nodes[static_cast<std::size_t>(h.node)];
        if (!slow.up || !slow.health->schedulable()) break;
        // The node promised and did not deliver: that is a transient
        // failure at node granularity. Enough of them quarantine the
        // node through the same ladder a flaky stick descends.
        const bool was_schedulable = slow.health->schedulable();
        slow.health->on_transient_failure(now);
        const bool quarantined =
            was_schedulable && !slow.health->schedulable();
        // Deadline-aware duplicate: only hedge when the copy could
        // still beat its queue deadline on another replica, and only
        // for classes up to hedge_max_class — batch work never pays
        // for speculative duplicates.
        const double deadline_s =
            led.req.arrival_s + config_.node.queue_deadline_s;
        if (led.hedges < config_.max_hedges && now < deadline_s &&
            static_cast<int>(led.req.slo) <=
                static_cast<int>(config_.hedge_max_class)) {
          const auto& prefs = prefs_for(model_of(led.req));
          int best = -1;
          bool best_unobs = false;
          double best_wait = kInf;
          for (const int n : prefs) {
            if (n == h.node || !eligible(n)) continue;
            const NodeState& ns = nodes[static_cast<std::size_t>(n)];
            if (!ns.session->has_capacity_for(led.req.slo)) continue;
            const bool unobs = !ns.observed;
            const double wait =
                static_cast<double>(ns.session->queue_depth() +
                                    ns.session->inflight()) /
                ns.tput_est;
            if (best < 0 || (unobs && !best_unobs) ||
                (unobs == best_unobs && wait < best_wait)) {
              best = n;
              best_unobs = unobs;
              best_wait = wait;
            }
          }
          if (best >= 0) {
            ++led.hedges;
            ++led.live;
            ++report.requests_hedged;
            m_hedges.add(1);
            instant("hedge", now);
            nodes[static_cast<std::size_t>(best)].session->offer(led.req,
                                                                 now);
          }
        }
        if (quarantined) {
          instant("quarantine", now);
          evict_node(h.node, now);
        }
        drain(now);
        break;
      }
      case Ev::kArrive: {
        const serve::Request& req = requests[next_arrival++];
        ++report.offered;
        m_offered.add(1);
        auto [it, inserted] = ledger.try_emplace(req.id);
        if (!inserted) {
          throw std::invalid_argument("Cluster::run: duplicate request id");
        }
        Ledger& led = it->second;
        led.req = req;
        const std::string model = model_of(req);
        int n = pick_node(prefs_for(model), /*need_capacity=*/true, req.slo);
        if (n < 0) {
          n = pick_spill(model, /*need_capacity=*/true, req.slo, now);
        }
        if (n < 0) {
          // Admission control at cluster granularity: every live
          // replica of this model is saturated (or down).
          led.terminal = true;
          led.state = RequestState::kRejected;
          led.finish_s = now;
          ++report.rejected;
          m_rejected.add(1);
        } else {
          led.live = 1;
          ++nodes[static_cast<std::size_t>(n)].stats.routed;
          nodes[static_cast<std::size_t>(n)].session->offer(req, now);
        }
        drain(now);
        break;
      }
      case Ev::kFlush:
        nodes[static_cast<std::size_t>(n_flush)].session->on_flush(now);
        drain(now);
        break;
      case Ev::kNone:
        break;
    }
  }

  // Whatever is still parked has no replica left to run on.
  for (auto& item : parked) {
    Ledger& led = ledger[item.req.id];
    if (!led.completed && !led.terminal) {
      led.state = RequestState::kLost;
      led.finish_s = now;
    }
  }
  parked.clear();

  // ---- seal the report ----
  report.nodes.reserve(nodes.size());
  for (auto& ns : nodes) {
    NodeReport nr = std::move(ns.stats);
    nr.serve = ns.session->finish();
    nr.health = core::health_state_name(ns.health->state());
    nr.tput_est = ns.tput_est;
    report.nodes.push_back(std::move(nr));
  }
  report.records.reserve(ledger.size());
  std::vector<double> latencies;
  std::array<std::vector<double>, serve::kSloClassCount> class_latencies;
  for (auto& [id, led] : ledger) {
    ClusterRecord rec;
    rec.id = id;
    rec.state = led.completed ? RequestState::kCompleted : led.state;
    rec.arrival_s = led.req.arrival_s;
    rec.finish_s = led.finish_s;
    rec.node = led.node;
    rec.replays = led.replays;
    rec.hedges = led.hedges;
    rec.evicted_s = led.evicted_s;
    if (!led.completed && !led.terminal) {
      rec.state = RequestState::kLost;
      ++report.requests_lost;
    }
    auto& cs = report.classes[static_cast<std::size_t>(led.req.slo)];
    ++cs.offered;
    switch (rec.state) {
      case RequestState::kCompleted:
        ++cs.completed;
        break;
      case RequestState::kRejected:
        ++cs.rejected;
        break;
      case RequestState::kDeadline:
      case RequestState::kLost:
        ++cs.dropped;
        break;
    }
    if (rec.state == RequestState::kCompleted) {
      const double ms = (rec.finish_s - rec.arrival_s) * 1e3;
      latencies.push_back(ms);
      class_latencies[static_cast<std::size_t>(led.req.slo)].push_back(ms);
    }
    report.records.push_back(rec);
  }
  for (std::size_t c = 0; c < serve::kSloClassCount; ++c) {
    report.classes[c].p99_ms =
        util::percentile(std::move(class_latencies[c]), 99.0);
  }
  // Crash replays and hedge duplicates are copies of one ledger entry,
  // so the terminal states must still partition what was admitted.
  if (sv.enabled()) {
    sv.on_cluster_finish(report.offered, report.completed, report.rejected,
                         report.dropped_deadline, report.requests_lost, now);
  }
  report.p50_ms = util::percentile(latencies, 50.0);
  report.p95_ms = util::percentile(latencies, 95.0);
  report.p99_ms = util::percentile(std::move(latencies), 99.0);
  if (!requests.empty()) {
    report.first_arrival_s = requests.front().arrival_s;
  }
  if (tr.enabled() && sched_lane >= 0 && !requests.empty()) {
    tr.complete("cluster", "cluster", sched_lane, report.first_arrival_s,
                std::max(report.last_complete_s, report.first_arrival_s),
                {util::TraceArg::num("offered", report.offered),
                 util::TraceArg::num("completed", report.completed),
                 util::TraceArg::num("rejected", report.rejected),
                 util::TraceArg::num("deadline", report.dropped_deadline),
                 util::TraceArg::num("replayed", report.requests_replayed),
                 util::TraceArg::num("hedged", report.requests_hedged),
                 util::TraceArg::num("duplicates",
                                     report.duplicate_completions),
                 util::TraceArg::num("lost", report.requests_lost),
                 util::TraceArg::num("goodput", report.goodput())});
  }
  return report;
}

}  // namespace ncsw::cluster
