// Consistent-hash ring with virtual nodes for cluster request routing.
//
// Each serve node contributes `vnodes` points to a ring keyed by
// hash_mix, and a request's model key hashes to a point on the ring;
// the first `count` distinct nodes clockwise from that point form the
// model's replica preference list. Virtual nodes smooth the per-node
// share of key space, and because the point set depends only on
// (seed, node, vnode) the mapping survives node failures unchanged: a
// key's preference list is stable, so failover always lands on the
// same replica — a prerequisite for deterministic replay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace ncsw::cluster {

class HashRing {
 public:
  HashRing(int nodes, int vnodes = 64,
           std::uint64_t seed = 0x6e637377636c7573ULL) {
    if (nodes < 1) throw std::invalid_argument("HashRing: nodes must be >= 1");
    if (vnodes < 1) {
      throw std::invalid_argument("HashRing: vnodes must be >= 1");
    }
    nodes_ = nodes;
    points_.reserve(static_cast<std::size_t>(nodes) *
                    static_cast<std::size_t>(vnodes));
    for (int n = 0; n < nodes; ++n) {
      const std::uint64_t node_seed =
          util::hash_mix(seed, static_cast<std::uint64_t>(n));
      for (int v = 0; v < vnodes; ++v) {
        points_.push_back(
            {util::hash_mix(node_seed, static_cast<std::uint64_t>(v)), n});
      }
    }
    std::sort(points_.begin(), points_.end(), [](const Point& a,
                                                 const Point& b) {
      return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
    });
  }

  int nodes() const noexcept { return nodes_; }

  /// Stable, platform-independent key hash: FNV-1a over the key bytes,
  /// finalized through the avalanche mixer. The finalizer matters —
  /// raw FNV-1a maps short, near-identical keys ("m0", "m1", ...) to
  /// near-identical values, which would park an entire model catalogue
  /// in one arc of the ring with one shared preference list.
  static std::uint64_t hash_key(std::string_view key) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;
    }
    return util::hash_mix(0x9e3779b97f4a7c15ULL, h);
  }

  /// The first min(count, nodes()) distinct nodes clockwise from
  /// `key_hash`: the key's replica preference list, most-preferred first.
  std::vector<int> preference(std::uint64_t key_hash, int count) const {
    std::vector<int> prefs;
    const int want = std::min(count, nodes_);
    if (want < 1) return prefs;
    prefs.reserve(static_cast<std::size_t>(want));
    std::size_t i = static_cast<std::size_t>(
        std::lower_bound(points_.begin(), points_.end(), key_hash,
                         [](const Point& p, std::uint64_t h) {
                           return p.hash < h;
                         }) -
        points_.begin());
    for (std::size_t step = 0; step < points_.size(); ++step) {
      const Point& p = points_[(i + step) % points_.size()];
      if (std::find(prefs.begin(), prefs.end(), p.node) != prefs.end()) {
        continue;
      }
      prefs.push_back(p.node);
      if (static_cast<int>(prefs.size()) == want) break;
    }
    return prefs;
  }

 private:
  struct Point {
    std::uint64_t hash;
    int node;
  };
  std::vector<Point> points_;
  int nodes_ = 0;
};

}  // namespace ncsw::cluster
