// A fault-tolerant multi-node serving cluster on the simulated clock.
//
// The paper's fleet of cheap hot-pluggable co-processors inevitably
// loses members mid-flight; PR2 made one node self-healing at stick
// granularity, and this layer scales the same guarantee to a cluster
// of serve nodes. N serve::Session-backed nodes — each owning a slice
// of heterogeneous targets — sit behind a router:
//
//   arrivals --> [consistent-hash router] --> node 0: serve::Session
//                 model -> replica set        node 1: serve::Session
//                 EWMA least-expected-wait    node 2: ...
//                 pick among live replicas
//
// Each model in the catalogue is resident on `replication` nodes (its
// replica preference list on the HashRing), so a node loss never
// strands a model. The router reuses the dispatcher's feedback idea
// one level up: per-node throughput EWMAs steer arrivals to the
// replica expected to clear them first. The ring is capacity-blind, so
// when every replica of a model is saturated (or down) the router
// spills the request to any healthy node with room — the spilled node
// warms the model on first use — before admission control bounces it.
//
// Faults arrive as node-granularity FaultPlan windows (device = node
// id): kNodeCrash takes a node off the cluster for the window —
// every queued and in-flight request on it is evicted and replayed to
// a live replica (zero requests lost) — and the core::health state
// machine drives quarantine, exponential-backoff probing, and rejoin
// with per-model graph re-residency. kNodeWedge models the
// whole-runtime hang of the fault-injection literature: the node keeps
// accepting work but completes none until the window ends; deadline-
// aware hedges fire a duplicate to another replica when a promised
// completion slips, and repeated hedges quarantine the wedged node
// through the same health ladder. First completion wins; duplicates
// are counted, never double-delivered.
//
// Everything runs on one discrete-event clock with a fixed event
// tie-break (complete < drop < fault < probe < ready < hedge < arrive
// < flush, then node index), so a given arrival trace + fault plan
// always produces byte-identical reports and traces.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/ring.h"
#include "core/health.h"
#include "serve/server.h"
#include "sim/fault.h"
#include "util/stats.h"

namespace ncsw::cluster {

/// Cluster policy knobs.
struct ClusterConfig {
  /// Per-node frontend policy (queue bound, batcher, dispatcher EWMA).
  serve::ServerConfig node;
  /// Nodes each model is resident on (clamped to the node count; a
  /// request only routes inside its model's replica set).
  int replication = 2;
  /// Model catalogue size: a request's model key is its tag, or
  /// "m<id % models>" when the tag is empty.
  int models = 4;
  /// Virtual nodes per node on the hash ring.
  int vnodes = 64;
  std::uint64_t ring_seed = 0x6e637377636c7573ULL;
  /// Assumed req/s for a node with no completed batch yet.
  double node_prior_tput = 50.0;
  /// EWMA weight of a new per-node clearing-rate observation.
  double node_gain = 0.25;
  /// A hedge duplicate fires this long after a dispatched request's
  /// promised completion fails to materialise (<= 0 disables hedging).
  double hedge_slack_s = 0.050;
  /// Per-request hedge budget (replays after an eviction are always
  /// allowed — bounding them would turn a crash into lost requests).
  int max_hedges = 1;
  /// Most latency-tolerant SLO class still allowed to hedge: classes
  /// beyond it (kBatch by default) ride out a wedge instead of firing
  /// speculative duplicates — batch work has no deadline worth paying
  /// duplicate device time for.
  serve::SloClass hedge_max_class = serve::SloClass::kStandard;
  /// Simulated seconds to re-load one resident model's graph when a
  /// crashed node rejoins (rejoin delay = resident models x this).
  double residency_load_s = 0.25;
  /// Overflow routing: when every replica of a model is saturated (or
  /// down), route to any healthy node with capacity instead of
  /// rejecting/parking. The spilled node becomes resident for the
  /// model (it pays the graph re-load on rejoin like a replica).
  bool spill = true;
  /// Node-granularity quarantine/probe policy.
  core::HealthPolicy node_health;
  /// Node-granularity fault plan: device = node id; only kNodeCrash
  /// and kNodeWedge windows apply (other kinds are ignored here).
  sim::FaultPlan faults;
  /// Emit per-request slot spans inside each node's session.
  bool trace_requests = true;
  /// Same-timestamp event-order perturbation hook for the determinism
  /// fuzzer (check/schedfuzz.h). Leave empty in production: the loop
  /// then runs its fixed tie-break (complete < drop < fault < probe <
  /// ready < hedge < arrive < flush, then node index) byte-identically.
  /// Applies to the cluster loop itself, not `node.tie_break`.
  serve::TieBreak tie_break;
};

/// How one request left the cluster.
enum class RequestState : int {
  kCompleted = 0,  ///< served (first completion wins)
  kRejected = 1,   ///< bounced at cluster admission (all replicas full)
  kDeadline = 2,   ///< aged out of a node queue (policy, not a loss)
  kLost = 3,       ///< never completed and no replica left to replay to
};

/// Stable lowercase name ("completed", "rejected", "deadline", "lost").
const char* request_state_name(RequestState s);

/// Cluster-level view of one request's lifetime.
struct ClusterRecord {
  std::int64_t id = 0;
  RequestState state = RequestState::kCompleted;
  double arrival_s = 0.0;
  double finish_s = 0.0;   ///< first completion / reject / drop time
  int node = -1;           ///< node that completed it, -1 otherwise
  int replays = 0;         ///< failover re-offers of this request
  int hedges = 0;          ///< speculative duplicates fired
  double evicted_s = -1.0; ///< last failover eviction, -1 = never evicted
};

/// Per-node rollup inside a ClusterReport.
struct NodeReport {
  serve::ServeReport serve;     ///< the node session's own report
  std::string health = "healthy";  ///< final health state name
  double tput_est = 0.0;        ///< final node-level EWMA (req/s)
  std::int64_t routed = 0;      ///< arrivals routed here (excl. replays)
  std::int64_t evicted = 0;     ///< requests evicted in failovers
  int crashes = 0;
  int wedges = 0;
  int rejoins = 0;
};

/// Result of serving one arrival trace across the cluster.
struct ClusterReport {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped_deadline = 0;
  /// Requests that were accepted but never completed with no replica
  /// left to replay to. The tentpole guarantee: 0 under node kills.
  std::int64_t requests_lost = 0;
  std::int64_t requests_replayed = 0;  ///< failover re-offers
  std::int64_t requests_hedged = 0;    ///< speculative duplicates
  std::int64_t requests_spilled = 0;   ///< overflow-routed off the ring
  std::int64_t duplicate_completions = 0;
  int node_kills = 0;
  int node_wedges = 0;
  int node_rejoins = 0;
  int nodes_dead = 0;  ///< nodes that exhausted their probe budget
  double first_arrival_s = 0.0;
  double last_complete_s = 0.0;
  util::RunningStats latency_ms;  ///< completed requests only
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  /// Eviction-to-completion latency of replayed requests (failover
  /// visibility: how long a request stranded by a kill waited for its
  /// replica to serve it).
  util::RunningStats failover_ms;
  /// Per-SLO-class rollup across the cluster (deadline drops and lost
  /// requests both count as `dropped` here; `p99_ms` covers completed
  /// requests of that class only).
  std::array<serve::ClassStats, serve::kSloClassCount> classes{};
  std::vector<NodeReport> nodes;
  /// One entry per offered request, ordered by request id.
  std::vector<ClusterRecord> records;

  double makespan_s() const noexcept {
    return last_complete_s > first_arrival_s
               ? last_complete_s - first_arrival_s
               : 0.0;
  }
  double goodput() const noexcept {
    const double m = makespan_s();
    return m > 0.0 ? static_cast<double>(completed) / m : 0.0;
  }
};

/// The cluster router. Owns its per-node sessions for the duration of
/// one run; targets stay caller-owned (node i uses node_targets[i]).
/// Not thread-safe; single use (one run per instance).
class Cluster {
 public:
  Cluster(std::vector<std::vector<core::Target*>> node_targets,
          ClusterConfig config = {});

  /// Serve a finite arrival trace (sorted by arrival_s, finite; throws
  /// std::invalid_argument otherwise) to completion.
  ClusterReport run(const std::vector<serve::Request>& requests);

  const ClusterConfig& config() const noexcept { return config_; }
  std::size_t node_count() const noexcept { return node_targets_.size(); }

 private:
  ClusterConfig config_;
  std::vector<std::vector<core::Target*>> node_targets_;
};

}  // namespace ncsw::cluster
