// Functional graph executor. Runs a validated Graph over a batched input
// tensor in either precision, producing the output activation and
// (optionally) retaining all intermediate activations for inspection —
// which is how the tests diff FP32 against FP16 layer by layer.
//
// The kernels behind it are threaded but deterministic: outputs are
// bit-identical for any `threads` value (docs/performance.md), so the
// knob is purely a wall-clock choice.
#pragma once

#include <vector>

#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/weights.h"
#include "tensor/tensor.h"

namespace ncsw::nn {

/// Execution options.
struct ExecOptions {
  /// Keep every layer's activation (memory-heavy; default keeps only what
  /// downstream layers still need).
  bool keep_all_activations = false;
  /// Slab fan-out for the threaded kernels: 0 resolves via
  /// resolve_threads() ($NCSW_THREADS, else hardware concurrency);
  /// 1 runs serial; n > 1 splits each kernel into n chunks.
  int threads = 0;
  /// Route every layer through the pre-PR scalar kernels — the recorded
  /// perf baseline (forces serial execution).
  bool reference_kernels = false;
  /// Record wall-clock seconds per layer in ExecResult::layer_seconds
  /// and, when the global tracer is enabled, emit one "host" span per
  /// layer. Off by default so simulated-clock traces stay clean.
  bool profile_layers = false;
  /// Opt into the fast tier (docs/performance.md): fused conv+bias+ReLU,
  /// direct 3x3/1x1 convolution, int8 fully-connected layers (when
  /// `quant` is set) and affinity-pinned chunk placement. Also enabled
  /// by $NCSW_FAST=1; default off, keeping the bit-identical contract
  /// (and every golden digest) untouched. Ignored with
  /// reference_kernels. Fusion is skipped under keep_all_activations so
  /// per-layer diffs keep their meaning.
  bool fast = false;
  /// Graph-load-time fast-tier weights from nn::quantize_weights();
  /// nullptr keeps the fully-connected layers in FP32 and makes the fast
  /// conv kernels expand weights per call. Only read when fast resolves
  /// on.
  const QuantizedWeights* quant = nullptr;
};

/// Thread count an ExecOptions::threads value resolves to: the value
/// itself when positive, else $NCSW_THREADS when set to a positive
/// integer, else std::thread::hardware_concurrency() (minimum 1).
int resolve_threads(int requested) noexcept;

/// Whether an ExecOptions::fast value resolves on: true when requested,
/// else when $NCSW_FAST is "1", "true" or "on".
bool resolve_fast(bool requested) noexcept;

/// Result of a forward pass.
template <typename T>
struct ExecResult {
  /// Output of the final layer.
  tensor::Tensor<T> output;
  /// When keep_all_activations: one activation per layer id (else empty).
  std::vector<tensor::Tensor<T>> activations;
  /// When profile_layers: wall-clock seconds per layer id (else empty).
  std::vector<double> layer_seconds;
};

/// Run `graph` forward on `input` (shape must match the graph's input
/// layer, any batch size). Throws on shape or weight mismatches.
template <typename T>
ExecResult<T> run_forward(const Graph& graph, const Weights<T>& weights,
                          const tensor::Tensor<T>& input,
                          const ExecOptions& options = {});

/// Convenience: run and return softmax class probabilities as FP32,
/// one vector of size C per batch item.
template <typename T>
std::vector<std::vector<float>> run_probabilities(
    const Graph& graph, const Weights<T>& weights,
    const tensor::Tensor<T>& input, const ExecOptions& options = {});

/// Index of the most probable class per batch item.
std::vector<int> argmax_per_item(const std::vector<std::vector<float>>& probs);

/// Top-k (index, probability) pairs for one probability vector, sorted by
/// descending probability (ties broken by lower index).
std::vector<std::pair<int, float>> top_k(const std::vector<float>& probs,
                                         int k);

}  // namespace ncsw::nn
