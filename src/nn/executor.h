// Functional graph executor. Runs a validated Graph over a batched input
// tensor in either precision, producing the output activation and
// (optionally) retaining all intermediate activations for inspection —
// which is how the tests diff FP32 against FP16 layer by layer.
#pragma once

#include <vector>

#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/weights.h"
#include "tensor/tensor.h"

namespace ncsw::nn {

/// Execution options.
struct ExecOptions {
  /// Keep every layer's activation (memory-heavy; default keeps only what
  /// downstream layers still need).
  bool keep_all_activations = false;
};

/// Result of a forward pass.
template <typename T>
struct ExecResult {
  /// Output of the final layer.
  tensor::Tensor<T> output;
  /// When keep_all_activations: one activation per layer id (else empty).
  std::vector<tensor::Tensor<T>> activations;
};

/// Run `graph` forward on `input` (shape must match the graph's input
/// layer, any batch size). Throws on shape or weight mismatches.
template <typename T>
ExecResult<T> run_forward(const Graph& graph, const Weights<T>& weights,
                          const tensor::Tensor<T>& input,
                          const ExecOptions& options = {});

/// Convenience: run and return softmax class probabilities as FP32,
/// one vector of size C per batch item.
template <typename T>
std::vector<std::vector<float>> run_probabilities(
    const Graph& graph, const Weights<T>& weights,
    const tensor::Tensor<T>& input);

/// Index of the most probable class per batch item.
std::vector<int> argmax_per_item(const std::vector<std::vector<float>>& probs);

/// Top-k (index, probability) pairs for one probability vector, sorted by
/// descending probability (ties broken by lower index).
std::vector<std::pair<int, float>> top_k(const std::vector<float>& probs,
                                         int k);

}  // namespace ncsw::nn
