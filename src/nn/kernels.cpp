#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>

#include "tensor/gemm.h"

namespace ncsw::nn::kernels {

namespace {

using ncsw::fp16::half;

// ---------------------------------------------------------------------------
// Slab fan-out. Work is split into a fixed number of contiguous chunks;
// every chunk writes a disjoint output region with the same per-element
// arithmetic as the serial path, so results are bit-identical regardless
// of the chunk count or which pool worker runs which chunk.

int plan_chunks(const ExecCtx& ctx, std::int64_t total) {
  if (!ctx.pool || ctx.threads <= 1 || total <= 1) return 1;
  return static_cast<int>(
      std::min<std::int64_t>(ctx.threads, total));
}

template <typename Fn>
void run_chunks(util::ThreadPool* pool, int chunks, std::int64_t total,
                const Fn& fn) {
  if (total <= 0) return;
  if (chunks <= 1) {
    fn(0, 0, total);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(chunks));
  for (int t = 0; t < chunks; ++t) {
    const std::int64_t begin = total * t / chunks;
    const std::int64_t end = total * (t + 1) / chunks;
    futs.push_back(pool->submit([&fn, t, begin, end] { fn(t, begin, end); }));
  }
  // Wait for every chunk before surfacing the first failure, so no task
  // can outlive the captured locals.
  std::exception_ptr err;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

template <typename Fn>
void parallel_chunks(const ExecCtx& ctx, std::int64_t total, const Fn& fn) {
  run_chunks(ctx.pool, plan_chunks(ctx, total), total, fn);
}

// ---------------------------------------------------------------------------
// Pre-PR reference kernels, kept verbatim (serial, per-layer allocation,
// per-MAC half<->float conversion). ExecCtx::reference routes here; the
// golden tests assert the optimised kernels below match them byte for
// byte, and bench/perf_forward records speedup against them.

namespace ref {

inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, const float* b, float beta,
                 float* c) noexcept {
  tensor::gemm_f32_ref(m, n, k, alpha, a, b, beta, c);
}
inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const half* a, const half* b, float beta, half* c) noexcept {
  tensor::gemm_f16_ref(m, n, k, alpha, a, b, beta, c);
}

// im2col: expand the input patch matrix so convolution becomes a GEMM.
// Column layout: rows = inC*k*k, cols = outH*outW (one batch item).
template <typename T>
void im2col(const T* in, std::int64_t channels, std::int64_t height,
            std::int64_t width, int kernel, int stride, int pad,
            std::int64_t out_h, std::int64_t out_w, T* col) noexcept {
  for (std::int64_t c = 0; c < channels; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        T* dst = col + ((c * kernel + ky) * kernel + kx) * out_h * out_w;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::fill(dst + oy * out_w, dst + (oy + 1) * out_w, T{});
            continue;
          }
          const T* src_row = in + (c * height + iy) * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            dst[oy * out_w + ox] =
                (ix >= 0 && ix < width) ? src_row[ix] : T{};
          }
        }
      }
    }
  }
}

template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  out.resize(tensor::Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  std::vector<T> col(static_cast<std::size_t>(k_dim * n_dim));

  for (std::int64_t b = 0; b < is.n; ++b) {
    im2col(in.batch_ptr(b), is.c, is.h, is.w, p.kernel, p.stride, p.pad, oh,
           ow, col.data());
    // out[b] = W[outC x k_dim] * col[k_dim x n_dim]
    gemm(p.out_channels, n_dim, k_dim, 1.0f, params.w.data(), col.data(),
         0.0f, out.batch_ptr(b));
    // Bias add (rounded per element in FP16 by operator+).
    for (std::int64_t oc = 0; oc < p.out_channels; ++oc) {
      const T bias = params.b[oc];
      T* dst = out.batch_ptr(b) + oc * n_dim;
      for (std::int64_t i = 0; i < n_dim; ++i) dst[i] += bias;
    }
  }
}

template <typename T>
void relu(Tensor<T>& x) {
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (static_cast<float>(x[i]) < 0.0f) x[i] = T{};
  }
}

template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const int half_win = p.local_size / 2;
  const float alpha_over_n = p.alpha / static_cast<float>(p.local_size);
  for (std::int64_t b = 0; b < is.n; ++b) {
    for (std::int64_t y = 0; y < is.h; ++y) {
      for (std::int64_t x = 0; x < is.w; ++x) {
        for (std::int64_t c = 0; c < is.c; ++c) {
          const std::int64_t c0 = std::max<std::int64_t>(c - half_win, 0);
          const std::int64_t c1 =
              std::min<std::int64_t>(c + half_win, is.c - 1);
          float sumsq = 0.0f;
          for (std::int64_t cc = c0; cc <= c1; ++cc) {
            const float v = static_cast<float>(in.at(b, cc, y, x));
            sumsq += v * v;
          }
          const float scale = p.k + alpha_over_n * sumsq;
          const float v = static_cast<float>(in.at(b, c, y, x)) /
                          std::pow(scale, p.beta);
          out.at(b, c, y, x) = tensor::scalar_cast<T>(v);
        }
      }
    }
  }
}

template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  out.resize(tensor::Shape{is.n, p.out_features, 1, 1});
  for (std::int64_t b = 0; b < is.n; ++b) {
    gemm(p.out_features, 1, in_dim, 1.0f, params.w.data(), in.batch_ptr(b),
         0.0f, out.batch_ptr(b));
    T* dst = out.batch_ptr(b);
    for (std::int64_t f = 0; f < p.out_features; ++f) {
      dst[f] += params.b[f];
    }
  }
}

}  // namespace ref

// ---------------------------------------------------------------------------
// Optimised kernels.

// im2col over channels [c0, c1) from an FP32 source plane; the column
// matrix layout matches ref::im2col exactly.
void im2col_rows(const float* in, std::int64_t c0, std::int64_t c1,
                 std::int64_t height, std::int64_t width, int kernel,
                 int stride, int pad, std::int64_t out_h, std::int64_t out_w,
                 float* col) noexcept {
  for (std::int64_t c = c0; c < c1; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        float* dst = col + ((c * kernel + ky) * kernel + kx) * out_h * out_w;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::fill(dst + oy * out_w, dst + (oy + 1) * out_w, 0.0f);
            continue;
          }
          const float* src_row = in + (c * height + iy) * width;
          // The interior run [x_lo, x_hi) needs no bounds checks.
          const std::int64_t x_lo = std::max<std::int64_t>(
              0, (pad - kx + stride - 1) / stride);
          const std::int64_t x_hi = std::min<std::int64_t>(
              out_w, (width - 1 - kx + pad) / stride + 1);
          float* drow = dst + oy * out_w;
          for (std::int64_t ox = 0; ox < std::min(x_lo, out_w); ++ox) {
            drow[ox] = 0.0f;
          }
          for (std::int64_t ox = x_lo; ox < x_hi; ++ox) {
            drow[ox] = src_row[ox * stride - pad + kx];
          }
          for (std::int64_t ox = std::max(x_hi, x_lo); ox < out_w; ++ox) {
            drow[ox] = 0.0f;
          }
        }
      }
    }
  }
}

// The batch item as FP32: the tensor's own storage for float, a
// workspace expansion (exact) for half.
template <typename T>
const float* batch_as_f32(const Tensor<T>& in, std::int64_t b, Workspace& ws,
                          const ExecCtx& ctx) {
  if constexpr (std::is_same_v<T, float>) {
    (void)ws;
    (void)ctx;
    return in.batch_ptr(b);
  } else {
    const std::int64_t chw = in.shape().chw();
    float* buf = ws.acts(chw);
    const half* src = in.batch_ptr(b);
    parallel_chunks(ctx, chw, [&](int, std::int64_t e0, std::int64_t e1) {
      ncsw::fp16::half_to_float_span(src + e0, buf + e0,
                                     static_cast<std::size_t>(e1 - e0));
    });
    return buf;
  }
}

}  // namespace

util::ThreadPool& compute_pool() {
  static util::ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d: kernel does not fit");
  }
  if (params.w.shape() !=
      tensor::Shape{p.out_channels, is.c, p.kernel, p.kernel}) {
    throw std::invalid_argument("conv2d: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  if (ctx.reference) {
    ref::conv2d(in, params, p, out);
    return;
  }
  out.resize(tensor::Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  float* col = ws.col(k_dim * n_dim);

  // Weights as FP32 (expanded once per call for FP16 — exact).
  const float* wf;
  if constexpr (std::is_same_v<T, float>) {
    wf = params.w.data();
  } else {
    auto& wpanel = ws.gemm().a;
    const auto wcount = static_cast<std::size_t>(p.out_channels * k_dim);
    if (wpanel.size() < wcount) wpanel.resize(wcount);
    ncsw::fp16::half_to_float_span(params.w.data(), wpanel.data(), wcount);
    wf = wpanel.data();
  }

  for (std::int64_t b = 0; b < is.n; ++b) {
    const float* src = batch_as_f32(in, b, ws, ctx);
    parallel_chunks(ctx, is.c, [&](int, std::int64_t c0, std::int64_t c1) {
      im2col_rows(src, c0, c1, is.h, is.w, p.kernel, p.stride, p.pad, oh, ow,
                  col);
    });

    // out[b] = W[outC x k_dim] * col[k_dim x n_dim], split by column
    // range: each chunk owns a disjoint panel of col and of the output.
    float* cf;
    if constexpr (std::is_same_v<T, float>) {
      cf = out.batch_ptr(b);
    } else {
      cf = ws.out(p.out_channels * n_dim);
    }
    parallel_chunks(ctx, n_dim, [&](int, std::int64_t j0, std::int64_t j1) {
      tensor::gemm_f32(p.out_channels, j1 - j0, k_dim, 1.0f, wf, k_dim,
                       col + j0, n_dim, 0.0f, cf + j0, n_dim);
    });

    // Bias add. FP16 keeps the pre-PR order: round the accumulator to
    // half first, then add the half bias with per-element rounding.
    parallel_chunks(
        ctx, p.out_channels, [&](int, std::int64_t oc0, std::int64_t oc1) {
          if constexpr (std::is_same_v<T, float>) {
            for (std::int64_t oc = oc0; oc < oc1; ++oc) {
              const float bias = params.b[oc];
              float* dst = out.batch_ptr(b) + oc * n_dim;
              for (std::int64_t i = 0; i < n_dim; ++i) dst[i] += bias;
            }
          } else {
            const float* table = ncsw::fp16::half_to_float_table();
            for (std::int64_t oc = oc0; oc < oc1; ++oc) {
              const float bias = table[params.b[oc].bits()];
              float* row = cf + oc * n_dim;
              half* dst = out.batch_ptr(b) + oc * n_dim;
              ncsw::fp16::float_to_half_span(
                  row, dst, static_cast<std::size_t>(n_dim));
              for (std::int64_t i = 0; i < n_dim; ++i) {
                row[i] = table[dst[i].bits()] + bias;
              }
              ncsw::fp16::float_to_half_span(
                  row, dst, static_cast<std::size_t>(n_dim));
            }
          }
        });
  }
}

template <typename T>
void relu(Tensor<T>& x, const ExecCtx& ctx) {
  if (ctx.reference) {
    ref::relu(x);
    return;
  }
  const std::int64_t n = x.numel();
  if constexpr (std::is_same_v<T, float>) {
    float* data = x.data();
    parallel_chunks(ctx, n, [&](int, std::int64_t e0, std::int64_t e1) {
      for (std::int64_t i = e0; i < e1; ++i) {
        if (data[i] < 0.0f) data[i] = 0.0f;
      }
    });
  } else {
    half* data = x.data();
    const float* table = ncsw::fp16::half_to_float_table();
    parallel_chunks(ctx, n, [&](int, std::int64_t e0, std::int64_t e1) {
      for (std::int64_t i = e0; i < e1; ++i) {
        if (table[data[i].bits()] < 0.0f) data[i] = half{};
      }
    });
  }
}

template <typename T>
void max_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const int kernel =
      p.global ? static_cast<int>(std::max(is.h, is.w)) : p.kernel;
  const int stride = p.global ? 1 : p.stride;
  const int pad = p.global ? 0 : p.pad;
  const std::int64_t oh =
      p.global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      p.global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(tensor::Shape{is.n, is.c, oh, ow});

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const std::int64_t planes = is.n * is.c;
  const int chunks = plan_chunks(ctx, planes);
  float* scratch = std::is_same_v<T, float>
                       ? nullptr
                       : ws.slabs(chunks, is.hw());
  run_chunks(ctx.pool, chunks, planes,
             [&](int t, std::int64_t s0, std::int64_t s1) {
               for (std::int64_t s = s0; s < s1; ++s) {
                 const T* src = in.data() + s * is.hw();
                 T* dst = out.data() + s * oh * ow;
                 const float* sf;
                 if constexpr (std::is_same_v<T, float>) {
                   sf = src;
                 } else {
                   float* buf = scratch + t * is.hw();
                   ncsw::fp16::half_to_float_span(
                       src, buf, static_cast<std::size_t>(is.hw()));
                   sf = buf;
                 }
                 for (std::int64_t oy = 0; oy < oh; ++oy) {
                   for (std::int64_t ox = 0; ox < ow; ++ox) {
                     const std::int64_t y0 =
                         std::max<std::int64_t>(oy * stride - pad, 0);
                     const std::int64_t x0 =
                         std::max<std::int64_t>(ox * stride - pad, 0);
                     const std::int64_t y1 = std::min<std::int64_t>(
                         oy * stride - pad + kernel, is.h);
                     const std::int64_t x1 = std::min<std::int64_t>(
                         ox * stride - pad + kernel, is.w);
                     float best = -std::numeric_limits<float>::infinity();
                     for (std::int64_t y = y0; y < y1; ++y) {
                       for (std::int64_t x = x0; x < x1; ++x) {
                         best = std::max(best, sf[y * is.w + x]);
                       }
                     }
                     dst[oy * ow + ox] = tensor::scalar_cast<T>(best);
                   }
                 }
               }
             });
}

template <typename T>
void avg_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const bool global = p.global;
  const int kernel = global ? 0 : p.kernel;
  const int stride = global ? 1 : p.stride;
  const int pad = global ? 0 : p.pad;
  const std::int64_t oh =
      global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(tensor::Shape{is.n, is.c, oh, ow});

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const std::int64_t planes = is.n * is.c;
  const int chunks = plan_chunks(ctx, planes);
  float* scratch = std::is_same_v<T, float>
                       ? nullptr
                       : ws.slabs(chunks, is.hw());
  run_chunks(
      ctx.pool, chunks, planes, [&](int t, std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
          const T* src = in.data() + s * is.hw();
          T* dst = out.data() + s * oh * ow;
          const float* sf;
          if constexpr (std::is_same_v<T, float>) {
            sf = src;
          } else {
            float* buf = scratch + t * is.hw();
            ncsw::fp16::half_to_float_span(
                src, buf, static_cast<std::size_t>(is.hw()));
            sf = buf;
          }
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              std::int64_t y0, x0, y1, x1;
              double divisor;
              if (global) {
                y0 = 0;
                x0 = 0;
                y1 = is.h;
                x1 = is.w;
                divisor = static_cast<double>(is.hw());
              } else {
                y0 = std::max<std::int64_t>(oy * stride - pad, 0);
                x0 = std::max<std::int64_t>(ox * stride - pad, 0);
                y1 = std::min<std::int64_t>(oy * stride - pad + kernel, is.h);
                x1 = std::min<std::int64_t>(ox * stride - pad + kernel, is.w);
                // Caffe AVE pooling divides by the padded window size.
                const std::int64_t py1 = std::min<std::int64_t>(
                    oy * stride - pad + kernel, is.h + pad);
                const std::int64_t px1 = std::min<std::int64_t>(
                    ox * stride - pad + kernel, is.w + pad);
                const std::int64_t py0 = oy * stride - pad;
                const std::int64_t px0 = ox * stride - pad;
                divisor = static_cast<double>((py1 - py0) * (px1 - px0));
              }
              double sum = 0.0;
              for (std::int64_t y = y0; y < y1; ++y) {
                for (std::int64_t x = x0; x < x1; ++x) {
                  sum += sf[y * is.w + x];
                }
              }
              dst[oy * ow + ox] =
                  tensor::scalar_cast<T>(static_cast<float>(sum / divisor));
            }
          }
        }
      });
}

template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out,
         const ExecCtx& ctx) {
  if (ctx.reference) {
    ref::lrn(in, p, out);
    return;
  }
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const int half_win = p.local_size / 2;
  const float alpha_over_n = p.alpha / static_cast<float>(p.local_size);
  const std::int64_t hw = is.hw();

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const int chunks = plan_chunks(ctx, is.c);
  // Per-task scratch: a sum-of-squares plane plus (FP16 only) an FP32
  // result plane rounded in one span per channel.
  const std::int64_t per_task = std::is_same_v<T, float> ? hw : 2 * hw;
  float* scratch = ws.slabs(chunks, per_task);

  for (std::int64_t b = 0; b < is.n; ++b) {
    // The whole batch item as FP32 planes: channel runs are contiguous,
    // so the window sum slides over dense rows instead of strided at().
    const float* inf = batch_as_f32(in, b, ws, ctx);
    run_chunks(
        ctx.pool, chunks, is.c, [&](int t, std::int64_t c0, std::int64_t c1) {
          float* sumsq = scratch + t * per_task;
          for (std::int64_t c = c0; c < c1; ++c) {
            const std::int64_t w0 = std::max<std::int64_t>(c - half_win, 0);
            const std::int64_t w1 =
                std::min<std::int64_t>(c + half_win, is.c - 1);
            std::fill(sumsq, sumsq + hw, 0.0f);
            // Ascending-channel accumulation: the same term order as the
            // reference's per-element window loop.
            for (std::int64_t cc = w0; cc <= w1; ++cc) {
              const float* v = inf + cc * hw;
              for (std::int64_t i = 0; i < hw; ++i) sumsq[i] += v[i] * v[i];
            }
            const float* vc = inf + c * hw;
            if constexpr (std::is_same_v<T, float>) {
              float* dst = out.data() + (b * is.c + c) * hw;
              for (std::int64_t i = 0; i < hw; ++i) {
                const float scale = p.k + alpha_over_n * sumsq[i];
                dst[i] = vc[i] / std::pow(scale, p.beta);
              }
            } else {
              float* res = sumsq + hw;
              for (std::int64_t i = 0; i < hw; ++i) {
                const float scale = p.k + alpha_over_n * sumsq[i];
                res[i] = vc[i] / std::pow(scale, p.beta);
              }
              ncsw::fp16::float_to_half_span(
                  res, out.data() + (b * is.c + c) * hw,
                  static_cast<std::size_t>(hw));
            }
          }
        });
  }
}

template <typename T>
void concat(const std::vector<const Tensor<T>*>& ins, Tensor<T>& out) {
  if (ins.empty()) throw std::invalid_argument("concat: no inputs");
  const tensor::Shape& first = ins[0]->shape();
  std::int64_t channels = 0;
  for (const auto* t : ins) {
    const tensor::Shape& s = t->shape();
    if (s.n != first.n || s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("concat: shape mismatch");
    }
    channels += s.c;
  }
  out.resize(tensor::Shape{first.n, channels, first.h, first.w});
  for (std::int64_t b = 0; b < first.n; ++b) {
    std::int64_t c_off = 0;
    for (const auto* t : ins) {
      const tensor::Shape& s = t->shape();
      const T* src = t->batch_ptr(b);
      T* dst = out.batch_ptr(b) + c_off * first.hw();
      std::copy(src, src + s.chw(), dst);
      c_off += s.c;
    }
  }
}

template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  if (params.w.shape() != tensor::Shape{p.out_features, in_dim, 1, 1}) {
    throw std::invalid_argument("fully_connected: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  if (ctx.reference) {
    ref::fully_connected(in, params, p, out);
    return;
  }
  out.resize(tensor::Shape{is.n, p.out_features, 1, 1});
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  // out[b] = W[outF x in_dim] * in[b]: a GEMV per batch item,
  // bit-identical to the degenerate n = 1 GEMM it replaced.
  for (std::int64_t b = 0; b < is.n; ++b) {
    if constexpr (std::is_same_v<T, float>) {
      tensor::gemv_f32(p.out_features, in_dim, params.w.data(),
                       in.batch_ptr(b), 0.0f, out.batch_ptr(b));
    } else {
      tensor::gemv_f16(p.out_features, in_dim, params.w.data(),
                       in.batch_ptr(b), 0.0f, out.batch_ptr(b), &ws.gemm());
    }
    T* dst = out.batch_ptr(b);
    for (std::int64_t f = 0; f < p.out_features; ++f) {
      dst[f] += params.b[f];
    }
  }
}

template <typename T>
void softmax(const Tensor<T>& in, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const std::int64_t dim = is.chw();
  for (std::int64_t b = 0; b < is.n; ++b) {
    const T* src = in.batch_ptr(b);
    T* dst = out.batch_ptr(b);
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t i = 0; i < dim; ++i) {
      max_v = std::max(max_v, static_cast<float>(src[i]));
    }
    double sum = 0.0;
    std::vector<float> e(static_cast<std::size_t>(dim));
    for (std::int64_t i = 0; i < dim; ++i) {
      e[static_cast<std::size_t>(i)] =
          std::exp(static_cast<float>(src[i]) - max_v);
      sum += e[static_cast<std::size_t>(i)];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < dim; ++i) {
      dst[i] = tensor::scalar_cast<T>(e[static_cast<std::size_t>(i)] * inv);
    }
  }
}

// Explicit instantiations for the two supported precisions.
#define NCSW_INSTANTIATE_KERNELS(T)                                          \
  template void conv2d<T>(const Tensor<T>&, const LayerParams<T>&,           \
                          const ConvParams&, Tensor<T>&, const ExecCtx&);    \
  template void relu<T>(Tensor<T>&, const ExecCtx&);                         \
  template void max_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&, \
                            const ExecCtx&);                                 \
  template void avg_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&, \
                            const ExecCtx&);                                 \
  template void lrn<T>(const Tensor<T>&, const LRNParams&, Tensor<T>&,       \
                       const ExecCtx&);                                      \
  template void concat<T>(const std::vector<const Tensor<T>*>&, Tensor<T>&); \
  template void fully_connected<T>(const Tensor<T>&, const LayerParams<T>&,  \
                                   const FCParams&, Tensor<T>&,              \
                                   const ExecCtx&);                          \
  template void softmax<T>(const Tensor<T>&, Tensor<T>&);

NCSW_INSTANTIATE_KERNELS(float)
NCSW_INSTANTIATE_KERNELS(ncsw::fp16::half)

#undef NCSW_INSTANTIATE_KERNELS

}  // namespace ncsw::nn::kernels
