#include "nn/kernels.h"

#include "util/multiversion.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>

#include "tensor/gemm.h"

namespace ncsw::nn::kernels {

namespace {

using ncsw::fp16::half;

// ---------------------------------------------------------------------------
// Slab fan-out. Work is split into a fixed number of contiguous chunks;
// every chunk writes a disjoint output region with the same per-element
// arithmetic as the serial path, so results are bit-identical regardless
// of the chunk count or which pool worker runs which chunk.

int plan_chunks(const ExecCtx& ctx, std::int64_t total) {
  if (!ctx.pool || ctx.threads <= 1 || total <= 1) return 1;
  std::int64_t limit = ctx.threads;
  if (ctx.fast) {
    // Affinity routing addresses chunk t to worker t (submit_to throws
    // past the pool), so the fast tier never plans more chunks than the
    // pinned pool has workers.
    limit = std::min<std::int64_t>(
        limit, static_cast<std::int64_t>(ctx.pool->size()));
  }
  return static_cast<int>(std::min<std::int64_t>(limit, total));
}

template <typename Fn>
void run_chunks(const ExecCtx& ctx, int chunks, std::int64_t total,
                const Fn& fn) {
  if (total <= 0) return;
  if (chunks <= 1) {
    fn(0, 0, total);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(chunks));
  for (int t = 0; t < chunks; ++t) {
    const std::int64_t begin = total * t / chunks;
    const std::int64_t end = total * (t + 1) / chunks;
    auto task = [&fn, t, begin, end] { fn(t, begin, end); };
    // Fast tier: chunk t always goes to worker t, so a given output
    // slab is produced on the same (pinned) core every layer and every
    // pass, instead of whichever worker dequeues first.
    futs.push_back(ctx.fast
                       ? ctx.pool->submit_to(static_cast<std::size_t>(t), task)
                       : ctx.pool->submit(task));
  }
  // Wait for every chunk before surfacing the first failure, so no task
  // can outlive the captured locals.
  std::exception_ptr err;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

template <typename Fn>
void parallel_chunks(const ExecCtx& ctx, std::int64_t total, const Fn& fn) {
  run_chunks(ctx, plan_chunks(ctx, total), total, fn);
}

// ---------------------------------------------------------------------------
// Pre-PR reference kernels, kept verbatim (serial, per-layer allocation,
// per-MAC half<->float conversion). ExecCtx::reference routes here; the
// golden tests assert the optimised kernels below match them byte for
// byte, and bench/perf_forward records speedup against them.

namespace ref {

inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, const float* b, float beta,
                 float* c) noexcept {
  tensor::gemm_f32_ref(m, n, k, alpha, a, b, beta, c);
}
inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const half* a, const half* b, float beta, half* c) noexcept {
  tensor::gemm_f16_ref(m, n, k, alpha, a, b, beta, c);
}

// im2col: expand the input patch matrix so convolution becomes a GEMM.
// Column layout: rows = inC*k*k, cols = outH*outW (one batch item).
template <typename T>
void im2col(const T* in, std::int64_t channels, std::int64_t height,
            std::int64_t width, int kernel, int stride, int pad,
            std::int64_t out_h, std::int64_t out_w, T* col) noexcept {
  for (std::int64_t c = 0; c < channels; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        T* dst = col + ((c * kernel + ky) * kernel + kx) * out_h * out_w;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::fill(dst + oy * out_w, dst + (oy + 1) * out_w, T{});
            continue;
          }
          const T* src_row = in + (c * height + iy) * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            dst[oy * out_w + ox] =
                (ix >= 0 && ix < width) ? src_row[ix] : T{};
          }
        }
      }
    }
  }
}

template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  out.resize(tensor::Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  std::vector<T> col(static_cast<std::size_t>(k_dim * n_dim));

  for (std::int64_t b = 0; b < is.n; ++b) {
    im2col(in.batch_ptr(b), is.c, is.h, is.w, p.kernel, p.stride, p.pad, oh,
           ow, col.data());
    // out[b] = W[outC x k_dim] * col[k_dim x n_dim]
    gemm(p.out_channels, n_dim, k_dim, 1.0f, params.w.data(), col.data(),
         0.0f, out.batch_ptr(b));
    // Bias add (rounded per element in FP16 by operator+).
    for (std::int64_t oc = 0; oc < p.out_channels; ++oc) {
      const T bias = params.b[oc];
      T* dst = out.batch_ptr(b) + oc * n_dim;
      for (std::int64_t i = 0; i < n_dim; ++i) dst[i] += bias;
    }
  }
}

template <typename T>
void relu(Tensor<T>& x) {
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (static_cast<float>(x[i]) < 0.0f) x[i] = T{};
  }
}

template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const int half_win = p.local_size / 2;
  const float alpha_over_n = p.alpha / static_cast<float>(p.local_size);
  for (std::int64_t b = 0; b < is.n; ++b) {
    for (std::int64_t y = 0; y < is.h; ++y) {
      for (std::int64_t x = 0; x < is.w; ++x) {
        for (std::int64_t c = 0; c < is.c; ++c) {
          const std::int64_t c0 = std::max<std::int64_t>(c - half_win, 0);
          const std::int64_t c1 =
              std::min<std::int64_t>(c + half_win, is.c - 1);
          float sumsq = 0.0f;
          for (std::int64_t cc = c0; cc <= c1; ++cc) {
            const float v = static_cast<float>(in.at(b, cc, y, x));
            sumsq += v * v;
          }
          const float scale = p.k + alpha_over_n * sumsq;
          const float v = static_cast<float>(in.at(b, c, y, x)) /
                          std::pow(scale, p.beta);
          out.at(b, c, y, x) = tensor::scalar_cast<T>(v);
        }
      }
    }
  }
}

template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  out.resize(tensor::Shape{is.n, p.out_features, 1, 1});
  for (std::int64_t b = 0; b < is.n; ++b) {
    gemm(p.out_features, 1, in_dim, 1.0f, params.w.data(), in.batch_ptr(b),
         0.0f, out.batch_ptr(b));
    T* dst = out.batch_ptr(b);
    for (std::int64_t f = 0; f < p.out_features; ++f) {
      dst[f] += params.b[f];
    }
  }
}

}  // namespace ref

// ---------------------------------------------------------------------------
// Optimised kernels.

// im2col over channels [c0, c1) from an FP32 source plane; the column
// matrix layout matches ref::im2col exactly.
void im2col_rows(const float* in, std::int64_t c0, std::int64_t c1,
                 std::int64_t height, std::int64_t width, int kernel,
                 int stride, int pad, std::int64_t out_h, std::int64_t out_w,
                 float* col) noexcept {
  for (std::int64_t c = c0; c < c1; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        float* dst = col + ((c * kernel + ky) * kernel + kx) * out_h * out_w;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::fill(dst + oy * out_w, dst + (oy + 1) * out_w, 0.0f);
            continue;
          }
          const float* src_row = in + (c * height + iy) * width;
          // The interior run [x_lo, x_hi) needs no bounds checks.
          const std::int64_t x_lo = std::max<std::int64_t>(
              0, (pad - kx + stride - 1) / stride);
          const std::int64_t x_hi = std::min<std::int64_t>(
              out_w, (width - 1 - kx + pad) / stride + 1);
          float* drow = dst + oy * out_w;
          for (std::int64_t ox = 0; ox < std::min(x_lo, out_w); ++ox) {
            drow[ox] = 0.0f;
          }
          for (std::int64_t ox = x_lo; ox < x_hi; ++ox) {
            drow[ox] = src_row[ox * stride - pad + kx];
          }
          for (std::int64_t ox = std::max(x_hi, x_lo); ox < out_w; ++ox) {
            drow[ox] = 0.0f;
          }
        }
      }
    }
  }
}

// The batch item as FP32: the tensor's own storage for float, a
// workspace expansion (exact) for half.
template <typename T>
const float* batch_as_f32(const Tensor<T>& in, std::int64_t b, Workspace& ws,
                          const ExecCtx& ctx) {
  if constexpr (std::is_same_v<T, float>) {
    (void)ws;
    (void)ctx;
    return in.batch_ptr(b);
  } else {
    const std::int64_t chw = in.shape().chw();
    float* buf = ws.acts(chw);
    const half* src = in.batch_ptr(b);
    parallel_chunks(ctx, chw, [&](int, std::int64_t e0, std::int64_t e1) {
      if (ctx.fast) {
        ncsw::fp16::half_to_float_span_fast(
            src + e0, buf + e0, static_cast<std::size_t>(e1 - e0));
      } else {
        ncsw::fp16::half_to_float_span(src + e0, buf + e0,
                                       static_cast<std::size_t>(e1 - e0));
      }
    });
    return buf;
  }
}

// ---------------------------------------------------------------------------
// Fast-tier direct 3x3 convolution: no im2col patch matrix. The interior
// of each output row is computed in NR x 8 register tiles (NR output
// channels by 8 output columns — the same microkernel shape as the
// blocked GEMM) reading the input planes in place; columns whose taps
// can fall outside the image take a guarded scalar path. Bias and the
// fused ReLU are applied at store, so the direct path writes each output
// element exactly once. Every element is accumulated in the same fixed
// (c, ky, kx) order on both paths, so results do not depend on tile
// boundaries or chunking.
template <int NR>
NCSW_FAST_INLINE void direct3x3_rows_impl(
    const float* src, std::int64_t channels, std::int64_t h, std::int64_t w,
    int stride, int pad, std::int64_t oh, std::int64_t ow, const float* wgt,
    const float* bias, bool fuse_relu, float* dst) noexcept {
  const std::int64_t n_dim = oh * ow;
  // Interior ox range: all three taps ox*stride - pad + {0,1,2} in bounds.
  const std::int64_t x_lo = std::min<std::int64_t>(
      ow, (static_cast<std::int64_t>(pad) + stride - 1) / stride);
  const std::int64_t x_hi = std::max(
      x_lo, std::min<std::int64_t>(
                ow, w - 3 + pad >= 0 ? (w - 3 + pad) / stride + 1 : 0));
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t iy0 = oy * stride - pad;
    float* out_row = dst + oy * ow;
    // Guarded scalar columns: the padded edges and the interior tail
    // that does not fill a tile.
    const auto scalar_cols = [&](std::int64_t c0, std::int64_t c1) {
      for (std::int64_t ox = c0; ox < c1; ++ox) {
        const std::int64_t base = ox * stride - pad;
        float acc[NR];
        for (int r = 0; r < NR; ++r) acc[r] = bias[r];
        for (std::int64_t c = 0; c < channels; ++c) {
          const float* plane = src + c * h * w;
          for (int ky = 0; ky < 3; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* srow = plane + iy * w;
            for (int kx = 0; kx < 3; ++kx) {
              const std::int64_t ix = base + kx;
              if (ix < 0 || ix >= w) continue;
              const float v = srow[ix];
              for (int r = 0; r < NR; ++r) {
                acc[r] += wgt[(r * channels + c) * 9 + ky * 3 + kx] * v;
              }
            }
          }
        }
        for (int r = 0; r < NR; ++r) {
          out_row[r * n_dim + ox] =
              fuse_relu && acc[r] < 0.0f ? 0.0f : acc[r];
        }
      }
    };
    scalar_cols(0, x_lo);
    // Interior tiles, NCSW_V8F per 8 output columns (see
    // util/multiversion.h for why the vector type is explicit). The
    // unaligned tap loads srow[kx..kx+7] require stride == 1, which the
    // direct-path heuristic in conv2d_fast guarantees.
    std::int64_t ox0 = x_lo;
    for (; ox0 + 8 <= x_hi; ox0 += 8) {
      NCSW_V8F acc[NR];
      for (int r = 0; r < NR; ++r) acc[r] = bias[r] + NCSW_V8F{};
      const std::int64_t base = ox0 * stride - pad;
      for (std::int64_t c = 0; c < channels; ++c) {
        const float* plane = src + c * h * w;
        for (int ky = 0; ky < 3; ++ky) {
          const std::int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          const float* srow = plane + iy * w + base;
          for (int kx = 0; kx < 3; ++kx) {
            const NCSW_V8F v = *reinterpret_cast<const NCSW_V8F*>(srow + kx);
            for (int r = 0; r < NR; ++r) {
              acc[r] += wgt[(r * channels + c) * 9 + ky * 3 + kx] * v;
            }
          }
        }
      }
      for (int r = 0; r < NR; ++r) {
        for (int j = 0; j < 8; ++j) {
          const float x = acc[r][j];
          out_row[r * n_dim + ox0 + j] = fuse_relu && x < 0.0f ? 0.0f : x;
        }
      }
    }
    scalar_cols(ox0, ow);
  }
}

// Per-ISA variants and dispatchers (util/multiversion.h); templates
// cannot carry the target attribute, so the two instantiations get plain
// multiversioned wrappers.
NCSW_TARGET_V3 void direct3x3_rows4_v3(
    const float* src, std::int64_t channels, std::int64_t h, std::int64_t w,
    int stride, int pad, std::int64_t oh, std::int64_t ow, const float* wgt,
    const float* bias, bool fuse_relu, float* dst) noexcept {
  direct3x3_rows_impl<4>(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
}
NCSW_TARGET_V4 void direct3x3_rows4_v4(
    const float* src, std::int64_t channels, std::int64_t h, std::int64_t w,
    int stride, int pad, std::int64_t oh, std::int64_t ow, const float* wgt,
    const float* bias, bool fuse_relu, float* dst) noexcept {
  direct3x3_rows_impl<4>(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
}
NCSW_TARGET_V3 void direct3x3_rows1_v3(
    const float* src, std::int64_t channels, std::int64_t h, std::int64_t w,
    int stride, int pad, std::int64_t oh, std::int64_t ow, const float* wgt,
    const float* bias, bool fuse_relu, float* dst) noexcept {
  direct3x3_rows_impl<1>(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
}
NCSW_TARGET_V4 void direct3x3_rows1_v4(
    const float* src, std::int64_t channels, std::int64_t h, std::int64_t w,
    int stride, int pad, std::int64_t oh, std::int64_t ow, const float* wgt,
    const float* bias, bool fuse_relu, float* dst) noexcept {
  direct3x3_rows_impl<1>(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
}

void direct3x3_rows4(const float* src, std::int64_t channels, std::int64_t h,
                     std::int64_t w, int stride, int pad, std::int64_t oh,
                     std::int64_t ow, const float* wgt, const float* bias,
                     bool fuse_relu, float* dst) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      direct3x3_rows4_v4(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
      break;
    case util::IsaLevel::kV3:
      direct3x3_rows4_v3(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
      break;
    default:
      direct3x3_rows_impl<4>(src, channels, h, w, stride, pad, oh, ow, wgt,
                             bias, fuse_relu, dst);
      break;
  }
}

void direct3x3_rows1(const float* src, std::int64_t channels, std::int64_t h,
                     std::int64_t w, int stride, int pad, std::int64_t oh,
                     std::int64_t ow, const float* wgt, const float* bias,
                     bool fuse_relu, float* dst) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      direct3x3_rows1_v4(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
      break;
    case util::IsaLevel::kV3:
      direct3x3_rows1_v3(src, channels, h, w, stride, pad, oh, ow, wgt, bias,
                         fuse_relu, dst);
      break;
    default:
      direct3x3_rows_impl<1>(src, channels, h, w, stride, pad, oh, ow, wgt,
                             bias, fuse_relu, dst);
      break;
  }
}

// ---------------------------------------------------------------------------
// Fast-tier separable 3x3 max pool over one plane. Phase 1 takes the
// vertical max of the (clamped) 3-row window into a row buffer whose
// 8-float slack borders hold -inf, phase 2 the horizontal 3-tap max of
// that buffer; the -inf borders stand in for the window clamping of the
// scalar kernel, so every output equals the scalar max exactly (max is
// order-independent — this path changes no values, only speed).
// `vbuf` points at the w-element interior of a (w + 16)-float buffer
// whose borders the caller pre-filled with -inf.
NCSW_FAST_INLINE void max_pool3_plane_impl(const float* sf, std::int64_t h,
                                           std::int64_t w, int stride, int pad,
                                           std::int64_t oh, std::int64_t ow,
                                           float* vbuf, float* outf) noexcept {
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t y0 = std::max<std::int64_t>(oy * stride - pad, 0);
    const std::int64_t y1 =
        std::min<std::int64_t>(oy * stride - pad + 3, h);
    // Phase 1: vertical max of rows [y0, y1) into vbuf[0..w).
    std::int64_t x = 0;
    for (; x + 8 <= w; x += 8) {
      NCSW_V8F m = *reinterpret_cast<const NCSW_V8F*>(sf + y0 * w + x);
      for (std::int64_t y = y0 + 1; y < y1; ++y) {
        const NCSW_V8F r = *reinterpret_cast<const NCSW_V8F*>(sf + y * w + x);
        m = m > r ? m : r;
      }
      *reinterpret_cast<NCSW_V8F*>(vbuf + x) = m;
    }
    for (; x < w; ++x) {
      float m = sf[y0 * w + x];
      for (std::int64_t y = y0 + 1; y < y1; ++y) {
        m = std::max(m, sf[y * w + x]);
      }
      vbuf[x] = m;
    }
    // Phase 2: horizontal 3-tap max. The unaligned loads reach at most
    // vbuf[ow - 1 - pad + 9], inside the slack border for pad <= 2 and
    // ow <= w (stride 1).
    float* orow = outf + oy * ow;
    if (stride == 1) {
      std::int64_t ox = 0;
      for (; ox + 8 <= ow; ox += 8) {
        const float* base = vbuf + ox - pad;
        NCSW_V8F m = *reinterpret_cast<const NCSW_V8F*>(base);
        const NCSW_V8F t1 = *reinterpret_cast<const NCSW_V8F*>(base + 1);
        m = m > t1 ? m : t1;
        const NCSW_V8F t2 = *reinterpret_cast<const NCSW_V8F*>(base + 2);
        m = m > t2 ? m : t2;
        *reinterpret_cast<NCSW_V8F*>(orow + ox) = m;
      }
      for (; ox < ow; ++ox) {
        const float* base = vbuf + ox - pad;
        orow[ox] = std::max(std::max(base[0], base[1]), base[2]);
      }
    } else {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float* base = vbuf + ox * stride - pad;
        orow[ox] = std::max(std::max(base[0], base[1]), base[2]);
      }
    }
  }
}

NCSW_TARGET_V3 void max_pool3_plane_v3(const float* sf, std::int64_t h,
                                       std::int64_t w, int stride, int pad,
                                       std::int64_t oh, std::int64_t ow,
                                       float* vbuf, float* outf) noexcept {
  max_pool3_plane_impl(sf, h, w, stride, pad, oh, ow, vbuf, outf);
}
NCSW_TARGET_V4 void max_pool3_plane_v4(const float* sf, std::int64_t h,
                                       std::int64_t w, int stride, int pad,
                                       std::int64_t oh, std::int64_t ow,
                                       float* vbuf, float* outf) noexcept {
  max_pool3_plane_impl(sf, h, w, stride, pad, oh, ow, vbuf, outf);
}

void max_pool3_plane(const float* sf, std::int64_t h, std::int64_t w,
                     int stride, int pad, std::int64_t oh, std::int64_t ow,
                     float* vbuf, float* outf) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      max_pool3_plane_v4(sf, h, w, stride, pad, oh, ow, vbuf, outf);
      break;
    case util::IsaLevel::kV3:
      max_pool3_plane_v3(sf, h, w, stride, pad, oh, ow, vbuf, outf);
      break;
    default:
      max_pool3_plane_impl(sf, h, w, stride, pad, oh, ow, vbuf, outf);
      break;
  }
}

}  // namespace

util::ThreadPool& compute_pool() {
  static util::ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

util::ThreadPool& fast_pool() {
  static util::ThreadPool pool(
      std::max(1u, std::thread::hardware_concurrency()),
      /*pin_workers=*/true);
  return pool;
}

template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d: kernel does not fit");
  }
  if (params.w.shape() !=
      tensor::Shape{p.out_channels, is.c, p.kernel, p.kernel}) {
    throw std::invalid_argument("conv2d: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  if (ctx.reference) {
    ref::conv2d(in, params, p, out);
    return;
  }
  out.resize(tensor::Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  float* col = ws.col(k_dim * n_dim);

  // Weights as FP32 (expanded once per call for FP16 — exact).
  const float* wf;
  if constexpr (std::is_same_v<T, float>) {
    wf = params.w.data();
  } else {
    auto& wpanel = ws.gemm().a;
    const auto wcount = static_cast<std::size_t>(p.out_channels * k_dim);
    if (wpanel.size() < wcount) wpanel.resize(wcount);
    ncsw::fp16::half_to_float_span(params.w.data(), wpanel.data(), wcount);
    wf = wpanel.data();
  }

  for (std::int64_t b = 0; b < is.n; ++b) {
    const float* src = batch_as_f32(in, b, ws, ctx);
    parallel_chunks(ctx, is.c, [&](int, std::int64_t c0, std::int64_t c1) {
      im2col_rows(src, c0, c1, is.h, is.w, p.kernel, p.stride, p.pad, oh, ow,
                  col);
    });

    // out[b] = W[outC x k_dim] * col[k_dim x n_dim], split by column
    // range: each chunk owns a disjoint panel of col and of the output.
    float* cf;
    if constexpr (std::is_same_v<T, float>) {
      cf = out.batch_ptr(b);
    } else {
      cf = ws.out(p.out_channels * n_dim);
    }
    parallel_chunks(ctx, n_dim, [&](int, std::int64_t j0, std::int64_t j1) {
      tensor::gemm_f32(p.out_channels, j1 - j0, k_dim, 1.0f, wf, k_dim,
                       col + j0, n_dim, 0.0f, cf + j0, n_dim);
    });

    // Bias add. FP16 keeps the pre-PR order: round the accumulator to
    // half first, then add the half bias with per-element rounding.
    parallel_chunks(
        ctx, p.out_channels, [&](int, std::int64_t oc0, std::int64_t oc1) {
          if constexpr (std::is_same_v<T, float>) {
            for (std::int64_t oc = oc0; oc < oc1; ++oc) {
              const float bias = params.b[oc];
              float* dst = out.batch_ptr(b) + oc * n_dim;
              for (std::int64_t i = 0; i < n_dim; ++i) dst[i] += bias;
            }
          } else {
            const float* table = ncsw::fp16::half_to_float_table();
            for (std::int64_t oc = oc0; oc < oc1; ++oc) {
              const float bias = table[params.b[oc].bits()];
              float* row = cf + oc * n_dim;
              half* dst = out.batch_ptr(b) + oc * n_dim;
              ncsw::fp16::float_to_half_span(
                  row, dst, static_cast<std::size_t>(n_dim));
              for (std::int64_t i = 0; i < n_dim; ++i) {
                row[i] = table[dst[i].bits()] + bias;
              }
              ncsw::fp16::float_to_half_span(
                  row, dst, static_cast<std::size_t>(n_dim));
            }
          }
        });
  }
}

template <typename T>
void relu(Tensor<T>& x, const ExecCtx& ctx) {
  if (ctx.reference) {
    ref::relu(x);
    return;
  }
  const std::int64_t n = x.numel();
  if constexpr (std::is_same_v<T, float>) {
    float* data = x.data();
    parallel_chunks(ctx, n, [&](int, std::int64_t e0, std::int64_t e1) {
      for (std::int64_t i = e0; i < e1; ++i) {
        if (data[i] < 0.0f) data[i] = 0.0f;
      }
    });
  } else {
    half* data = x.data();
    const float* table = ncsw::fp16::half_to_float_table();
    parallel_chunks(ctx, n, [&](int, std::int64_t e0, std::int64_t e1) {
      for (std::int64_t i = e0; i < e1; ++i) {
        if (table[data[i].bits()] < 0.0f) data[i] = half{};
      }
    });
  }
}

template <typename T>
void max_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const int kernel =
      p.global ? static_cast<int>(std::max(is.h, is.w)) : p.kernel;
  const int stride = p.global ? 1 : p.stride;
  const int pad = p.global ? 0 : p.pad;
  const std::int64_t oh =
      p.global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      p.global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(tensor::Shape{is.n, is.c, oh, ow});

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const std::int64_t planes = is.n * is.c;
  const int chunks = plan_chunks(ctx, planes);
  // Fast tier: separable vectorized 3x3 path (max_pool3_plane). Values
  // are exactly the scalar kernel's — max has no accumulation order —
  // but the path is gated on ctx.fast anyway so the default tier runs
  // only the code the golden digests were recorded against.
  const bool fast3 = ctx.fast && !p.global && kernel == 3 && pad <= 2;
  const std::int64_t scratch_len =
      std::is_same_v<T, float> ? 0 : is.hw();
  const std::int64_t fast_len =
      fast3 ? is.w + 16 + (std::is_same_v<T, float> ? 0 : oh * ow) : 0;
  const std::int64_t slab_len = scratch_len + fast_len;
  float* slab = slab_len != 0 ? ws.slabs(chunks, slab_len) : nullptr;
  run_chunks(ctx, chunks, planes,
             [&](int t, std::int64_t s0, std::int64_t s1) {
               float* base = slab != nullptr ? slab + t * slab_len : nullptr;
               float* vbuf = nullptr;
               float* fast_out = nullptr;
               if (fast3) {
                 // -inf slack borders around the w-element row buffer;
                 // phase 1 never writes them, so one fill serves every
                 // plane of the chunk.
                 float* vb0 = base + scratch_len;
                 std::fill(vb0, vb0 + 8,
                           -std::numeric_limits<float>::infinity());
                 std::fill(vb0 + 8 + is.w, vb0 + 16 + is.w,
                           -std::numeric_limits<float>::infinity());
                 vbuf = vb0 + 8;
                 if constexpr (!std::is_same_v<T, float>) {
                   fast_out = vb0 + 16 + is.w;
                 }
               }
               for (std::int64_t s = s0; s < s1; ++s) {
                 const T* src = in.data() + s * is.hw();
                 T* dst = out.data() + s * oh * ow;
                 const float* sf;
                 if constexpr (std::is_same_v<T, float>) {
                   sf = src;
                 } else {
                   float* buf = base;
                   if (ctx.fast) {
                     ncsw::fp16::half_to_float_span_fast(
                         src, buf, static_cast<std::size_t>(is.hw()));
                   } else {
                     ncsw::fp16::half_to_float_span(
                         src, buf, static_cast<std::size_t>(is.hw()));
                   }
                   sf = buf;
                 }
                 if (fast3) {
                   float* outf;
                   if constexpr (std::is_same_v<T, float>) {
                     outf = dst;
                   } else {
                     outf = fast_out;
                   }
                   max_pool3_plane(sf, is.h, is.w, stride, pad, oh, ow, vbuf,
                                   outf);
                   if constexpr (!std::is_same_v<T, float>) {
                     ncsw::fp16::float_to_half_span_fast(
                         outf, dst, static_cast<std::size_t>(oh * ow));
                   }
                   continue;
                 }
                 for (std::int64_t oy = 0; oy < oh; ++oy) {
                   for (std::int64_t ox = 0; ox < ow; ++ox) {
                     const std::int64_t y0 =
                         std::max<std::int64_t>(oy * stride - pad, 0);
                     const std::int64_t x0 =
                         std::max<std::int64_t>(ox * stride - pad, 0);
                     const std::int64_t y1 = std::min<std::int64_t>(
                         oy * stride - pad + kernel, is.h);
                     const std::int64_t x1 = std::min<std::int64_t>(
                         ox * stride - pad + kernel, is.w);
                     float best = -std::numeric_limits<float>::infinity();
                     for (std::int64_t y = y0; y < y1; ++y) {
                       for (std::int64_t x = x0; x < x1; ++x) {
                         best = std::max(best, sf[y * is.w + x]);
                       }
                     }
                     dst[oy * ow + ox] = tensor::scalar_cast<T>(best);
                   }
                 }
               }
             });
}

template <typename T>
void avg_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const bool global = p.global;
  const int kernel = global ? 0 : p.kernel;
  const int stride = global ? 1 : p.stride;
  const int pad = global ? 0 : p.pad;
  const std::int64_t oh =
      global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(tensor::Shape{is.n, is.c, oh, ow});

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const std::int64_t planes = is.n * is.c;
  const int chunks = plan_chunks(ctx, planes);
  float* scratch = std::is_same_v<T, float>
                       ? nullptr
                       : ws.slabs(chunks, is.hw());
  run_chunks(
      ctx, chunks, planes, [&](int t, std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
          const T* src = in.data() + s * is.hw();
          T* dst = out.data() + s * oh * ow;
          const float* sf;
          if constexpr (std::is_same_v<T, float>) {
            sf = src;
          } else {
            float* buf = scratch + t * is.hw();
            if (ctx.fast) {
              ncsw::fp16::half_to_float_span_fast(
                  src, buf, static_cast<std::size_t>(is.hw()));
            } else {
              ncsw::fp16::half_to_float_span(
                  src, buf, static_cast<std::size_t>(is.hw()));
            }
            sf = buf;
          }
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              std::int64_t y0, x0, y1, x1;
              double divisor;
              if (global) {
                y0 = 0;
                x0 = 0;
                y1 = is.h;
                x1 = is.w;
                divisor = static_cast<double>(is.hw());
              } else {
                y0 = std::max<std::int64_t>(oy * stride - pad, 0);
                x0 = std::max<std::int64_t>(ox * stride - pad, 0);
                y1 = std::min<std::int64_t>(oy * stride - pad + kernel, is.h);
                x1 = std::min<std::int64_t>(ox * stride - pad + kernel, is.w);
                // Caffe AVE pooling divides by the padded window size.
                const std::int64_t py1 = std::min<std::int64_t>(
                    oy * stride - pad + kernel, is.h + pad);
                const std::int64_t px1 = std::min<std::int64_t>(
                    ox * stride - pad + kernel, is.w + pad);
                const std::int64_t py0 = oy * stride - pad;
                const std::int64_t px0 = ox * stride - pad;
                divisor = static_cast<double>((py1 - py0) * (px1 - px0));
              }
              double sum = 0.0;
              for (std::int64_t y = y0; y < y1; ++y) {
                for (std::int64_t x = x0; x < x1; ++x) {
                  sum += sf[y * is.w + x];
                }
              }
              dst[oy * ow + ox] =
                  tensor::scalar_cast<T>(static_cast<float>(sum / divisor));
            }
          }
        }
      });
}

template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out,
         const ExecCtx& ctx) {
  if (ctx.reference) {
    ref::lrn(in, p, out);
    return;
  }
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const int half_win = p.local_size / 2;
  const float alpha_over_n = p.alpha / static_cast<float>(p.local_size);
  const std::int64_t hw = is.hw();

  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const int chunks = plan_chunks(ctx, is.c);
  // Per-task scratch: a sum-of-squares plane plus (FP16 only) an FP32
  // result plane rounded in one span per channel.
  const std::int64_t per_task = std::is_same_v<T, float> ? hw : 2 * hw;
  float* scratch = ws.slabs(chunks, per_task);

  for (std::int64_t b = 0; b < is.n; ++b) {
    // The whole batch item as FP32 planes: channel runs are contiguous,
    // so the window sum slides over dense rows instead of strided at().
    const float* inf = batch_as_f32(in, b, ws, ctx);
    run_chunks(
        ctx, chunks, is.c, [&](int t, std::int64_t c0, std::int64_t c1) {
          float* sumsq = scratch + t * per_task;
          for (std::int64_t c = c0; c < c1; ++c) {
            const std::int64_t w0 = std::max<std::int64_t>(c - half_win, 0);
            const std::int64_t w1 =
                std::min<std::int64_t>(c + half_win, is.c - 1);
            std::fill(sumsq, sumsq + hw, 0.0f);
            // Ascending-channel accumulation: the same term order as the
            // reference's per-element window loop.
            for (std::int64_t cc = w0; cc <= w1; ++cc) {
              const float* v = inf + cc * hw;
              for (std::int64_t i = 0; i < hw; ++i) sumsq[i] += v[i] * v[i];
            }
            const float* vc = inf + c * hw;
            // Fast tier, beta = 0.75 (every zoo LRN): scale^0.75 =
            // sqrt(scale)*sqrt(sqrt(scale)) — two sqrts instead of a
            // powf per element. Slightly different rounding, hence
            // fast-only.
            const bool fast_beta = ctx.fast && p.beta == 0.75f;
            if constexpr (std::is_same_v<T, float>) {
              float* dst = out.data() + (b * is.c + c) * hw;
              if (fast_beta) {
                for (std::int64_t i = 0; i < hw; ++i) {
                  const float scale = p.k + alpha_over_n * sumsq[i];
                  const float r = std::sqrt(scale);
                  dst[i] = vc[i] / (r * std::sqrt(r));
                }
              } else {
                for (std::int64_t i = 0; i < hw; ++i) {
                  const float scale = p.k + alpha_over_n * sumsq[i];
                  dst[i] = vc[i] / std::pow(scale, p.beta);
                }
              }
            } else {
              float* res = sumsq + hw;
              if (fast_beta) {
                for (std::int64_t i = 0; i < hw; ++i) {
                  const float scale = p.k + alpha_over_n * sumsq[i];
                  const float r = std::sqrt(scale);
                  res[i] = vc[i] / (r * std::sqrt(r));
                }
              } else {
                for (std::int64_t i = 0; i < hw; ++i) {
                  const float scale = p.k + alpha_over_n * sumsq[i];
                  res[i] = vc[i] / std::pow(scale, p.beta);
                }
              }
              if (ctx.fast) {
                ncsw::fp16::float_to_half_span_fast(
                    res, out.data() + (b * is.c + c) * hw,
                    static_cast<std::size_t>(hw));
              } else {
                ncsw::fp16::float_to_half_span(
                    res, out.data() + (b * is.c + c) * hw,
                    static_cast<std::size_t>(hw));
              }
            }
          }
        });
  }
}

template <typename T>
void concat(const std::vector<const Tensor<T>*>& ins, Tensor<T>& out) {
  if (ins.empty()) throw std::invalid_argument("concat: no inputs");
  const tensor::Shape& first = ins[0]->shape();
  std::int64_t channels = 0;
  for (const auto* t : ins) {
    const tensor::Shape& s = t->shape();
    if (s.n != first.n || s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("concat: shape mismatch");
    }
    channels += s.c;
  }
  out.resize(tensor::Shape{first.n, channels, first.h, first.w});
  for (std::int64_t b = 0; b < first.n; ++b) {
    std::int64_t c_off = 0;
    for (const auto* t : ins) {
      const tensor::Shape& s = t->shape();
      const T* src = t->batch_ptr(b);
      T* dst = out.batch_ptr(b) + c_off * first.hw();
      std::copy(src, src + s.chw(), dst);
      c_off += s.c;
    }
  }
}

template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  if (params.w.shape() != tensor::Shape{p.out_features, in_dim, 1, 1}) {
    throw std::invalid_argument("fully_connected: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  if (ctx.reference) {
    ref::fully_connected(in, params, p, out);
    return;
  }
  out.resize(tensor::Shape{is.n, p.out_features, 1, 1});
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  // out[b] = W[outF x in_dim] * in[b]: a GEMV per batch item,
  // bit-identical to the degenerate n = 1 GEMM it replaced.
  for (std::int64_t b = 0; b < is.n; ++b) {
    if constexpr (std::is_same_v<T, float>) {
      tensor::gemv_f32(p.out_features, in_dim, params.w.data(),
                       in.batch_ptr(b), 0.0f, out.batch_ptr(b));
    } else {
      tensor::gemv_f16(p.out_features, in_dim, params.w.data(),
                       in.batch_ptr(b), 0.0f, out.batch_ptr(b), &ws.gemm());
    }
    T* dst = out.batch_ptr(b);
    for (std::int64_t f = 0; f < p.out_features; ++f) {
      dst[f] += params.b[f];
    }
  }
}

template <typename T>
void softmax(const Tensor<T>& in, Tensor<T>& out) {
  const tensor::Shape& is = in.shape();
  out.resize(is);
  const std::int64_t dim = is.chw();
  for (std::int64_t b = 0; b < is.n; ++b) {
    const T* src = in.batch_ptr(b);
    T* dst = out.batch_ptr(b);
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t i = 0; i < dim; ++i) {
      max_v = std::max(max_v, static_cast<float>(src[i]));
    }
    double sum = 0.0;
    std::vector<float> e(static_cast<std::size_t>(dim));
    for (std::int64_t i = 0; i < dim; ++i) {
      e[static_cast<std::size_t>(i)] =
          std::exp(static_cast<float>(src[i]) - max_v);
      sum += e[static_cast<std::size_t>(i)];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < dim; ++i) {
      dst[i] = tensor::scalar_cast<T>(e[static_cast<std::size_t>(i)] * inv);
    }
  }
}

template <typename T>
void conv2d_fast(const Tensor<T>& in, const LayerParams<T>& params,
                 const FastLayer* fl, const ConvParams& p, bool fuse_relu,
                 Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d: kernel does not fit");
  }
  if (params.w.shape() !=
      tensor::Shape{p.out_channels, is.c, p.kernel, p.kernel}) {
    throw std::invalid_argument("conv2d: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  out.resize(tensor::Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;

  // FP32 weights/bias: the graph-load-time panels when available, a
  // per-call expansion otherwise.
  const float* wf = nullptr;
  const float* bf = nullptr;
  if (fl && fl->rows == p.out_channels && fl->cols == k_dim) {
    wf = fl->w_f32.data();
    bf = fl->b_f32.data();
  } else {
    if constexpr (std::is_same_v<T, float>) {
      wf = params.w.data();
      bf = params.b.data();
    } else {
      auto& wpanel = ws.gemm().a;
      const auto wcount = static_cast<std::size_t>(p.out_channels * k_dim);
      if (wpanel.size() < wcount) wpanel.resize(wcount);
      ncsw::fp16::half_to_float_span_fast(params.w.data(), wpanel.data(),
                                          wcount);
      wf = wpanel.data();
      float* bpanel = ws.bias(p.out_channels);
      ncsw::fp16::half_to_float_span_fast(
          params.b.data(), bpanel, static_cast<std::size_t>(p.out_channels));
      bf = bpanel;
    }
  }

  const bool direct_1x1 = p.kernel == 1 && p.stride == 1 && p.pad == 0;
  // Direct 3x3 pays off when output rows are wide enough to fill its
  // 8-column register tiles; on narrow maps (the tiny nets' inception
  // towers) the im2col panel is small, stays in cache, and the blocked
  // GEMM wins, so those shapes keep the GEMM path.
  const std::int64_t x_lo_3 = std::min<std::int64_t>(
      ow, (static_cast<std::int64_t>(p.pad) + p.stride - 1) / p.stride);
  const std::int64_t x_hi_3 = std::max(
      x_lo_3,
      std::min<std::int64_t>(
          ow, is.w - 3 + p.pad >= 0 ? (is.w - 3 + p.pad) / p.stride + 1 : 0));
  // stride == 1 keeps the interior tap loads contiguous (the vector
  // kernel loads srow[kx..kx+7] directly); strided 3x3 shapes go
  // through im2col + GEMM like everything else.
  const bool direct_3x3 =
      p.kernel == 3 && p.stride == 1 && x_hi_3 - x_lo_3 >= 8;

  for (std::int64_t b = 0; b < is.n; ++b) {
    const float* src = batch_as_f32(in, b, ws, ctx);
    // FP32 result panel [outC x n_dim]: the output itself for float, a
    // workspace accumulator rounded once per element for half.
    float* cf;
    if constexpr (std::is_same_v<T, float>) {
      cf = out.batch_ptr(b);
    } else {
      cf = ws.out(p.out_channels * n_dim);
    }

    if (direct_3x3) {
      // Direct convolution, chunked by 4-channel output blocks. Each
      // output element is accumulated entirely inside one block with a
      // fixed (c, ky, kx) order, so results do not depend on the chunk
      // count. Bias and the fused ReLU are applied at store, so only the
      // FP16 rounding epilogue remains.
      const std::int64_t blocks = (p.out_channels + 3) / 4;
      parallel_chunks(
          ctx, blocks, [&](int, std::int64_t blk0, std::int64_t blk1) {
            for (std::int64_t blk = blk0; blk < blk1; ++blk) {
              const std::int64_t oc0 = blk * 4;
              const std::int64_t nr =
                  std::min<std::int64_t>(4, p.out_channels - oc0);
              float* dst = cf + oc0 * n_dim;
              if (nr == 4) {
                direct3x3_rows4(src, is.c, is.h, is.w, p.stride, p.pad, oh,
                                ow, wf + oc0 * k_dim, bf + oc0, fuse_relu,
                                dst);
              } else {
                for (std::int64_t r = 0; r < nr; ++r) {
                  direct3x3_rows1(src, is.c, is.h, is.w, p.stride, p.pad, oh,
                                  ow, wf + (oc0 + r) * k_dim, bf + oc0 + r,
                                  fuse_relu, dst + r * n_dim);
                }
              }
            }
          });
      if constexpr (!std::is_same_v<T, float>) {
        parallel_chunks(
            ctx, p.out_channels,
            [&](int, std::int64_t oc0, std::int64_t oc1) {
              ncsw::fp16::float_to_half_span_fast(
                  cf + oc0 * n_dim, out.batch_ptr(b) + oc0 * n_dim,
                  static_cast<std::size_t>((oc1 - oc0) * n_dim));
            });
      }
    } else {
      // GEMM path. Stride-1 unpadded 1x1 needs no patch matrix at all:
      // the input planes already are [k_dim x n_dim].
      const float* bmat;
      if (direct_1x1) {
        bmat = src;
      } else {
        float* col = ws.col(k_dim * n_dim);
        parallel_chunks(ctx, is.c,
                        [&](int, std::int64_t c0, std::int64_t c1) {
                          im2col_rows(src, c0, c1, is.h, is.w, p.kernel,
                                      p.stride, p.pad, oh, ow, col);
                        });
        bmat = col;
      }
      parallel_chunks(ctx, n_dim, [&](int, std::int64_t j0, std::int64_t j1) {
        tensor::gemm_f32_fast(p.out_channels, j1 - j0, k_dim, wf, k_dim,
                              bmat + j0, n_dim, cf + j0, n_dim);
      });
      // Fused epilogue: bias and ReLU in one FP32 pass, then (FP16 only)
      // one round per element — the conv -> round -> relu -> round
      // round-trip of the unfused path collapses to a single write-back.
      parallel_chunks(
          ctx, p.out_channels, [&](int, std::int64_t oc0, std::int64_t oc1) {
            for (std::int64_t oc = oc0; oc < oc1; ++oc) {
              const float bias = bf[oc];
              float* row = cf + oc * n_dim;
              if (fuse_relu) {
                for (std::int64_t i = 0; i < n_dim; ++i) {
                  const float v = row[i] + bias;
                  row[i] = v < 0.0f ? 0.0f : v;
                }
              } else {
                for (std::int64_t i = 0; i < n_dim; ++i) row[i] += bias;
              }
              if constexpr (!std::is_same_v<T, float>) {
                ncsw::fp16::float_to_half_span_fast(
                    row, out.batch_ptr(b) + oc * n_dim,
                    static_cast<std::size_t>(n_dim));
              }
            }
          });
    }
  }
}

template <typename T>
void fully_connected_fast(const Tensor<T>& in, const LayerParams<T>& params,
                          const FastLayer* fl, const FCParams& p,
                          bool fuse_relu, Tensor<T>& out, const ExecCtx& ctx) {
  const tensor::Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  if (params.w.shape() != tensor::Shape{p.out_features, in_dim, 1, 1}) {
    throw std::invalid_argument("fully_connected: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  if (!fl || fl->rows != p.out_features || fl->cols != in_dim) {
    fully_connected(in, params, p, out, ctx);
    if (fuse_relu) relu(out, ctx);
    return;
  }
  out.resize(tensor::Shape{is.n, p.out_features, 1, 1});
  Workspace local;
  Workspace& ws = ctx.ws ? *ctx.ws : local;
  const std::int8_t* wq = fl->w_q.data();
  const float* wscale = fl->scale.data();
  const float* bias = fl->b_f32.data();
  for (std::int64_t b = 0; b < is.n; ++b) {
    // Dynamic per-tensor activation quantization; an all-zero input gets
    // scale 1 and a zero accumulator, so the output is exactly the bias.
    const float* xf = batch_as_f32(in, b, ws, ctx);
    std::int8_t* xq = ws.qbuf(in_dim);
    const float sx = quantize_symmetric(xf, in_dim, xq);
    std::int32_t* acc = ws.ibuf(p.out_features);
    T* dst = out.batch_ptr(b);
    parallel_chunks(
        ctx, p.out_features, [&](int, std::int64_t f0, std::int64_t f1) {
          tensor::gemv_s8(f1 - f0, in_dim, wq + f0 * in_dim, xq, acc + f0);
          for (std::int64_t f = f0; f < f1; ++f) {
            float v = sx * wscale[f] * static_cast<float>(acc[f]) + bias[f];
            if (fuse_relu && v < 0.0f) v = 0.0f;
            dst[f] = tensor::scalar_cast<T>(v);
          }
        });
  }
}

// Explicit instantiations for the two supported precisions.
#define NCSW_INSTANTIATE_KERNELS(T)                                          \
  template void conv2d<T>(const Tensor<T>&, const LayerParams<T>&,           \
                          const ConvParams&, Tensor<T>&, const ExecCtx&);    \
  template void relu<T>(Tensor<T>&, const ExecCtx&);                         \
  template void max_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&, \
                            const ExecCtx&);                                 \
  template void avg_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&, \
                            const ExecCtx&);                                 \
  template void lrn<T>(const Tensor<T>&, const LRNParams&, Tensor<T>&,       \
                       const ExecCtx&);                                      \
  template void concat<T>(const std::vector<const Tensor<T>*>&, Tensor<T>&); \
  template void fully_connected<T>(const Tensor<T>&, const LayerParams<T>&,  \
                                   const FCParams&, Tensor<T>&,              \
                                   const ExecCtx&);                          \
  template void softmax<T>(const Tensor<T>&, Tensor<T>&);                    \
  template void conv2d_fast<T>(const Tensor<T>&, const LayerParams<T>&,      \
                               const FastLayer*, const ConvParams&, bool,    \
                               Tensor<T>&, const ExecCtx&);                  \
  template void fully_connected_fast<T>(                                     \
      const Tensor<T>&, const LayerParams<T>&, const FastLayer*,             \
      const FCParams&, bool, Tensor<T>&, const ExecCtx&);

NCSW_INSTANTIATE_KERNELS(float)
NCSW_INSTANTIATE_KERNELS(ncsw::fp16::half)

#undef NCSW_INSTANTIATE_KERNELS

}  // namespace ncsw::nn::kernels
