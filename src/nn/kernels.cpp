#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/gemm.h"

namespace ncsw::nn::kernels {

namespace {

using ncsw::fp16::half;

// GEMM dispatch over precision.
inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const float* a, const float* b, float beta,
                 float* c) noexcept {
  tensor::gemm_f32(m, n, k, alpha, a, b, beta, c);
}
inline void gemm(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                 const half* a, const half* b, float beta, half* c) noexcept {
  tensor::gemm_f16(m, n, k, alpha, a, b, beta, c);
}

// im2col: expand the input patch matrix so convolution becomes a GEMM.
// Column layout: rows = inC*k*k, cols = outH*outW (one batch item).
template <typename T>
void im2col(const T* in, std::int64_t channels, std::int64_t height,
            std::int64_t width, int kernel, int stride, int pad,
            std::int64_t out_h, std::int64_t out_w, T* col) noexcept {
  for (std::int64_t c = 0; c < channels; ++c) {
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        T* dst = col + ((c * kernel + ky) * kernel + kx) * out_h * out_w;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::fill(dst + oy * out_w, dst + (oy + 1) * out_w, T{});
            continue;
          }
          const T* src_row = in + (c * height + iy) * width;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * stride - pad + kx;
            dst[oy * out_w + ox] =
                (ix >= 0 && ix < width) ? src_row[ix] : T{};
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out) {
  const Shape& is = in.shape();
  const std::int64_t oh = conv_extent(is.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(is.w, p.kernel, p.stride, p.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("conv2d: kernel does not fit");
  }
  if (params.w.shape() !=
      Shape{p.out_channels, is.c, p.kernel, p.kernel}) {
    throw std::invalid_argument("conv2d: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  out.resize(Shape{is.n, p.out_channels, oh, ow});

  const std::int64_t k_dim = is.c * p.kernel * p.kernel;
  const std::int64_t n_dim = oh * ow;
  std::vector<T> col(static_cast<std::size_t>(k_dim * n_dim));

  for (std::int64_t b = 0; b < is.n; ++b) {
    im2col(in.batch_ptr(b), is.c, is.h, is.w, p.kernel, p.stride, p.pad, oh,
           ow, col.data());
    // out[b] = W[outC x k_dim] * col[k_dim x n_dim]
    gemm(p.out_channels, n_dim, k_dim, 1.0f, params.w.data(), col.data(),
         0.0f, out.batch_ptr(b));
    // Bias add (rounded per element in FP16 by operator+).
    for (std::int64_t oc = 0; oc < p.out_channels; ++oc) {
      const T bias = params.b[oc];
      T* dst = out.batch_ptr(b) + oc * n_dim;
      for (std::int64_t i = 0; i < n_dim; ++i) dst[i] += bias;
    }
  }
}

template <typename T>
void relu(Tensor<T>& x) {
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    if (static_cast<float>(x[i]) < 0.0f) x[i] = T{};
  }
}

template <typename T>
void max_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out) {
  const Shape& is = in.shape();
  const int kernel = p.global ? static_cast<int>(std::max(is.h, is.w)) : p.kernel;
  const int stride = p.global ? 1 : p.stride;
  const int pad = p.global ? 0 : p.pad;
  const std::int64_t oh =
      p.global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      p.global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(Shape{is.n, is.c, oh, ow});

  for (std::int64_t b = 0; b < is.n; ++b) {
    for (std::int64_t c = 0; c < is.c; ++c) {
      const T* src = in.data() + (b * is.c + c) * is.hw();
      T* dst = out.data() + (b * is.c + c) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t y0 = std::max<std::int64_t>(oy * stride - pad, 0);
          const std::int64_t x0 = std::max<std::int64_t>(ox * stride - pad, 0);
          const std::int64_t y1 =
              std::min<std::int64_t>(oy * stride - pad + kernel, is.h);
          const std::int64_t x1 =
              std::min<std::int64_t>(ox * stride - pad + kernel, is.w);
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
              best = std::max(best, static_cast<float>(src[y * is.w + x]));
            }
          }
          dst[oy * ow + ox] = tensor::scalar_cast<T>(best);
        }
      }
    }
  }
}

template <typename T>
void avg_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out) {
  const Shape& is = in.shape();
  const bool global = p.global;
  const int kernel = global ? 0 : p.kernel;
  const int stride = global ? 1 : p.stride;
  const int pad = global ? 0 : p.pad;
  const std::int64_t oh =
      global ? 1 : pooled_extent(is.h, kernel, stride, pad, p.ceil_mode);
  const std::int64_t ow =
      global ? 1 : pooled_extent(is.w, kernel, stride, pad, p.ceil_mode);
  out.resize(Shape{is.n, is.c, oh, ow});

  for (std::int64_t b = 0; b < is.n; ++b) {
    for (std::int64_t c = 0; c < is.c; ++c) {
      const T* src = in.data() + (b * is.c + c) * is.hw();
      T* dst = out.data() + (b * is.c + c) * oh * ow;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          std::int64_t y0, x0, y1, x1;
          double divisor;
          if (global) {
            y0 = 0;
            x0 = 0;
            y1 = is.h;
            x1 = is.w;
            divisor = static_cast<double>(is.hw());
          } else {
            y0 = std::max<std::int64_t>(oy * stride - pad, 0);
            x0 = std::max<std::int64_t>(ox * stride - pad, 0);
            y1 = std::min<std::int64_t>(oy * stride - pad + kernel, is.h);
            x1 = std::min<std::int64_t>(ox * stride - pad + kernel, is.w);
            // Caffe AVE pooling divides by the padded window size.
            const std::int64_t py1 =
                std::min<std::int64_t>(oy * stride - pad + kernel, is.h + pad);
            const std::int64_t px1 =
                std::min<std::int64_t>(ox * stride - pad + kernel, is.w + pad);
            const std::int64_t py0 = oy * stride - pad;
            const std::int64_t px0 = ox * stride - pad;
            divisor = static_cast<double>((py1 - py0) * (px1 - px0));
          }
          double sum = 0.0;
          for (std::int64_t y = y0; y < y1; ++y) {
            for (std::int64_t x = x0; x < x1; ++x) {
              sum += static_cast<float>(src[y * is.w + x]);
            }
          }
          dst[oy * ow + ox] =
              tensor::scalar_cast<T>(static_cast<float>(sum / divisor));
        }
      }
    }
  }
}

template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out) {
  const Shape& is = in.shape();
  out.resize(is);
  const int half_win = p.local_size / 2;
  const float alpha_over_n = p.alpha / static_cast<float>(p.local_size);
  for (std::int64_t b = 0; b < is.n; ++b) {
    for (std::int64_t y = 0; y < is.h; ++y) {
      for (std::int64_t x = 0; x < is.w; ++x) {
        for (std::int64_t c = 0; c < is.c; ++c) {
          const std::int64_t c0 = std::max<std::int64_t>(c - half_win, 0);
          const std::int64_t c1 = std::min<std::int64_t>(c + half_win, is.c - 1);
          float sumsq = 0.0f;
          for (std::int64_t cc = c0; cc <= c1; ++cc) {
            const float v = static_cast<float>(in.at(b, cc, y, x));
            sumsq += v * v;
          }
          const float scale = p.k + alpha_over_n * sumsq;
          const float v = static_cast<float>(in.at(b, c, y, x)) /
                          std::pow(scale, p.beta);
          out.at(b, c, y, x) = tensor::scalar_cast<T>(v);
        }
      }
    }
  }
}

template <typename T>
void concat(const std::vector<const Tensor<T>*>& ins, Tensor<T>& out) {
  if (ins.empty()) throw std::invalid_argument("concat: no inputs");
  const Shape& first = ins[0]->shape();
  std::int64_t channels = 0;
  for (const auto* t : ins) {
    const Shape& s = t->shape();
    if (s.n != first.n || s.h != first.h || s.w != first.w) {
      throw std::invalid_argument("concat: shape mismatch");
    }
    channels += s.c;
  }
  out.resize(Shape{first.n, channels, first.h, first.w});
  for (std::int64_t b = 0; b < first.n; ++b) {
    std::int64_t c_off = 0;
    for (const auto* t : ins) {
      const Shape& s = t->shape();
      const T* src = t->batch_ptr(b);
      T* dst = out.batch_ptr(b) + c_off * first.hw();
      std::copy(src, src + s.chw(), dst);
      c_off += s.c;
    }
  }
}

template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out) {
  const Shape& is = in.shape();
  const std::int64_t in_dim = is.chw();
  if (params.w.shape() != Shape{p.out_features, in_dim, 1, 1}) {
    throw std::invalid_argument("fully_connected: weight shape mismatch: " +
                                params.w.shape().to_string());
  }
  out.resize(Shape{is.n, p.out_features, 1, 1});
  // out[b] = W[outF x in_dim] * in[b]; batched as GEMM with n = 1 columns
  // per batch item (kept simple; batch sizes here are <= 16).
  for (std::int64_t b = 0; b < is.n; ++b) {
    gemm(p.out_features, 1, in_dim, 1.0f, params.w.data(), in.batch_ptr(b),
         0.0f, out.batch_ptr(b));
    T* dst = out.batch_ptr(b);
    for (std::int64_t f = 0; f < p.out_features; ++f) {
      dst[f] += params.b[f];
    }
  }
}

template <typename T>
void softmax(const Tensor<T>& in, Tensor<T>& out) {
  const Shape& is = in.shape();
  out.resize(is);
  const std::int64_t dim = is.chw();
  for (std::int64_t b = 0; b < is.n; ++b) {
    const T* src = in.batch_ptr(b);
    T* dst = out.batch_ptr(b);
    float max_v = -std::numeric_limits<float>::infinity();
    for (std::int64_t i = 0; i < dim; ++i) {
      max_v = std::max(max_v, static_cast<float>(src[i]));
    }
    double sum = 0.0;
    std::vector<float> e(static_cast<std::size_t>(dim));
    for (std::int64_t i = 0; i < dim; ++i) {
      e[static_cast<std::size_t>(i)] =
          std::exp(static_cast<float>(src[i]) - max_v);
      sum += e[static_cast<std::size_t>(i)];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::int64_t i = 0; i < dim; ++i) {
      dst[i] = tensor::scalar_cast<T>(e[static_cast<std::size_t>(i)] * inv);
    }
  }
}

// Explicit instantiations for the two supported precisions.
#define NCSW_INSTANTIATE_KERNELS(T)                                          \
  template void conv2d<T>(const Tensor<T>&, const LayerParams<T>&,           \
                          const ConvParams&, Tensor<T>&);                    \
  template void relu<T>(Tensor<T>&);                                         \
  template void max_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&);\
  template void avg_pool<T>(const Tensor<T>&, const PoolParams&, Tensor<T>&);\
  template void lrn<T>(const Tensor<T>&, const LRNParams&, Tensor<T>&);      \
  template void concat<T>(const std::vector<const Tensor<T>*>&, Tensor<T>&); \
  template void fully_connected<T>(const Tensor<T>&, const LayerParams<T>&,  \
                                   const FCParams&, Tensor<T>&);             \
  template void softmax<T>(const Tensor<T>&, Tensor<T>&);

NCSW_INSTANTIATE_KERNELS(float)
NCSW_INSTANTIATE_KERNELS(ncsw::fp16::half)

#undef NCSW_INSTANTIATE_KERNELS

}  // namespace ncsw::nn::kernels
