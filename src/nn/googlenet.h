// GoogLeNet (Szegedy et al., CVPR'15) topology builders.
//
// `build_googlenet()` reproduces the BVLC GoogLeNet deploy topology layer
// by layer (224x224x3 input, 9 inception modules, 1000 classes). It drives
// the graph compiler and the VPU/CPU/GPU timing models, so the simulated
// throughput figures are derived from the real network structure.
//
// `build_tiny_googlenet()` is a structurally identical scaled-down network
// (same module pattern: stem convs + LRN + inception stacks + global
// average pool + FC + softmax) that is cheap enough to execute
// *functionally* in both FP32 and FP16 for the error-rate experiments
// (paper Fig. 7). We cannot train a network from scratch here, so its
// final classifier is fitted by feature-space template matching
// (`fit_template_classifier`), giving an honest, tunable top-1 error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/executor.h"
#include "nn/graph.h"
#include "nn/weights.h"

namespace ncsw::nn {

/// Inception module channel specification (Szegedy Table 1 columns).
struct InceptionSpec {
  int c1;    ///< #1x1
  int c3r;   ///< #3x3 reduce
  int c3;    ///< #3x3
  int c5r;   ///< #5x5 reduce
  int c5;    ///< #5x5
  int pool;  ///< pool proj
};

/// Append a full inception module; returns the concat layer id.
int add_inception(Graph& graph, const std::string& prefix, int input,
                  const InceptionSpec& spec);

/// The BVLC GoogLeNet deploy network: input 3x224x224, output 1000-way
/// softmax. Layer names follow the prototxt (conv1/7x7_s2, inception_3a/...,
/// loss3/classifier, prob).
Graph build_googlenet();

/// Configuration for the reduced functional network.
struct TinyGoogLeNetConfig {
  int input_size = 32;   ///< square input edge
  int num_classes = 50;  ///< synthetic ILSVRC classes
};

/// Scaled-down GoogLeNet: same stem / LRN / inception / global-pool / FC
/// structure at 1/7 the input edge and ~1/20 the channel widths.
Graph build_tiny_googlenet(const TinyGoogLeNetConfig& config = {});

/// Fit the final FC layer by template matching: runs each prototype input
/// through the feature extractor (the FC layer's input activation) and
/// sets FC row c to the L2-normalised feature vector of prototype c.
/// `prototypes[c]` must be a 1 x C x H x W tensor matching the graph input.
/// The bias is set to zero. Throws if sizes are inconsistent.
void fit_template_classifier(const Graph& graph, WeightsF& weights,
                             const std::string& fc_name,
                             const std::vector<tensor::TensorF>& prototypes);

/// Total multiply-accumulate count of one forward pass (batch 1).
std::int64_t graph_macs(const Graph& graph);

}  // namespace ncsw::nn
