// Fast-tier weight preparation (docs/performance.md): a graph-load-time
// pass over every Conv/FC layer that produces, per layer, an FP32 panel
// of the weights/bias (so the FP16 hot loop never re-expands them) and a
// per-output-channel symmetric int8 quantization (scale = max|w|/127,
// no zero point). The executor applies the int8 path to fully-connected
// layers — their GEMV is weight-bandwidth-bound, so int8 cuts the
// traffic 4x (2x vs FP16) — and uses the FP32 panels for convolutions,
// whose GEMM is compute-bound.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/graph.h"
#include "nn/weights.h"

namespace ncsw::nn {

/// One Conv/FC layer's parameters prepared for the fast tier.
struct FastLayer {
  std::int64_t rows = 0;     ///< output channels / features
  std::int64_t cols = 0;     ///< reduction dim (inC*k*k, or in_dim for FC)
  std::vector<float> w_f32;  ///< row-major FP32 weights [rows x cols]
  std::vector<float> b_f32;  ///< FP32 bias [rows]
  std::vector<std::int8_t> w_q;  ///< row-major int8 weights [rows x cols]
  std::vector<float> scale;      ///< per-row quantization scales [rows]
};

/// The quantization pass output: one FastLayer per parameterised layer,
/// keyed by layer name. Computed once per model (HostTarget::set_fast,
/// or before a bench's timing loop) and shared read-only by every
/// forward pass.
class QuantizedWeights {
 public:
  /// The prepared layer, or nullptr when `name` was not in the pass.
  const FastLayer* find(const std::string& name) const noexcept {
    auto it = map_.find(name);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Insert (or fetch) the entry for `name`.
  FastLayer& add(const std::string& name) { return map_[name]; }

  /// Number of prepared layers.
  std::size_t size() const noexcept { return map_.size(); }

 private:
  std::unordered_map<std::string, FastLayer> map_;
};

/// Symmetric int8 quantization of one span: returns the scale
/// (max|src|/127, or 1.0 when the span is all zero — never 0 or NaN)
/// and writes round(src/scale) clamped to [-127, 127] into dst.
float quantize_symmetric(const float* src, std::int64_t n,
                         std::int8_t* dst) noexcept;

/// Run the pass over every Conv/FC layer of `graph`. FP16 weights are
/// expanded exactly; scales are always FP32.
template <typename T>
QuantizedWeights quantize_weights(const Graph& graph,
                                  const Weights<T>& weights);

}  // namespace ncsw::nn
