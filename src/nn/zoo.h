// Network zoo: the classic ImageNet CNNs the NCSDK toolchain shipped
// examples for, built with the same graph API as GoogLeNet. The paper's
// evaluation is GoogLeNet-only; these power the cross-network extension
// bench (its ref. [37], Pena et al., benchmarks several CNNs on the same
// stick) and exercise the compiler/simulator on different layer mixes.
#pragma once

#include <string>
#include <vector>

#include "nn/graph.h"

namespace ncsw::nn {

/// AlexNet (Krizhevsky et al., 2012), single-column variant: 227x227x3
/// input, 5 conv + 3 FC layers, LRN after conv1/conv2, 1000 classes.
Graph build_alexnet();

/// SqueezeNet v1.1 (Iandola et al., 2016): 227x227x3 input, fire modules
/// (1x1 squeeze -> 1x1 + 3x3 expand, concatenated), fully convolutional
/// classifier, 1000 classes. ~50x fewer parameters than AlexNet.
Graph build_squeezenet_v11();

/// Append a SqueezeNet fire module; returns the concat layer id.
int add_fire_module(Graph& graph, const std::string& prefix, int input,
                    int squeeze, int expand1, int expand3);

/// Build a network by name: "googlenet", "alexnet", "squeezenet",
/// "tiny" (the functional TinyGoogLeNet). Throws std::invalid_argument
/// for unknown names.
Graph build_named_network(const std::string& name);

/// Names accepted by build_named_network.
std::vector<std::string> network_zoo_names();

}  // namespace ncsw::nn
