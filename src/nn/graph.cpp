#include "nn/graph.h"

#include <cmath>
#include <set>
#include <stdexcept>

namespace ncsw::nn {

const char* layer_kind_name(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kInput:
      return "Input";
    case LayerKind::kConv:
      return "Conv";
    case LayerKind::kReLU:
      return "ReLU";
    case LayerKind::kMaxPool:
      return "MaxPool";
    case LayerKind::kAvgPool:
      return "AvgPool";
    case LayerKind::kLRN:
      return "LRN";
    case LayerKind::kConcat:
      return "Concat";
    case LayerKind::kFC:
      return "FC";
    case LayerKind::kSoftmax:
      return "Softmax";
    case LayerKind::kDropout:
      return "Dropout";
  }
  return "?";
}

std::int64_t conv_extent(std::int64_t in, int kernel, int stride,
                         int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

std::int64_t pooled_extent(std::int64_t in, int kernel, int stride, int pad,
                           bool ceil_mode) noexcept {
  const std::int64_t span = in + 2 * pad - kernel;
  std::int64_t out;
  if (ceil_mode) {
    out = (span + stride - 1) / stride + 1;
  } else {
    out = span / stride + 1;
  }
  // Caffe clamp: the last pooling window must start strictly inside the
  // (left-padded) input.
  if (pad > 0 && (out - 1) * stride >= in + pad) {
    --out;
  }
  return out;
}

int Graph::append(Layer layer) {
  if (find(layer.name) >= 0) {
    throw std::logic_error("Graph: duplicate layer name '" + layer.name + "'");
  }
  for (int in : layer.inputs) {
    if (in < 0 || in >= size()) {
      throw std::logic_error("Graph: layer '" + layer.name +
                             "' references unknown input id " +
                             std::to_string(in));
    }
  }
  layers_.push_back(std::move(layer));
  return size() - 1;
}

const Shape& Graph::in_shape(int input, const char* what) const {
  if (input < 0 || input >= size()) {
    throw std::logic_error(std::string(what) + ": bad input id " +
                           std::to_string(input));
  }
  return layers_[static_cast<std::size_t>(input)].out_shape;
}

int Graph::add_input(const std::string& name, int channels, int height,
                     int width) {
  if (input_id_ >= 0) {
    throw std::logic_error("Graph: only one input layer is supported");
  }
  if (channels <= 0 || height <= 0 || width <= 0) {
    throw std::logic_error("Graph: input dimensions must be positive");
  }
  Layer layer;
  layer.kind = LayerKind::kInput;
  layer.name = name;
  layer.out_shape = Shape{1, channels, height, width};
  input_id_ = append(std::move(layer));
  return input_id_;
}

int Graph::add_conv(const std::string& name, int input, const ConvParams& p) {
  const Shape& in = in_shape(input, "add_conv");
  if (p.out_channels <= 0 || p.kernel <= 0 || p.stride <= 0 || p.pad < 0) {
    throw std::logic_error("add_conv: bad parameters for '" + name + "'");
  }
  const std::int64_t oh = conv_extent(in.h, p.kernel, p.stride, p.pad);
  const std::int64_t ow = conv_extent(in.w, p.kernel, p.stride, p.pad);
  if (oh <= 0 || ow <= 0) {
    throw std::logic_error("add_conv: kernel does not fit for '" + name + "'");
  }
  Layer layer;
  layer.kind = LayerKind::kConv;
  layer.name = name;
  layer.inputs = {input};
  layer.conv = p;
  layer.out_shape = Shape{1, p.out_channels, oh, ow};
  return append(std::move(layer));
}

int Graph::add_relu(const std::string& name, int input) {
  Layer layer;
  layer.kind = LayerKind::kReLU;
  layer.name = name;
  layer.inputs = {input};
  layer.out_shape = in_shape(input, "add_relu");
  return append(std::move(layer));
}

namespace {
ncsw::nn::Shape pool_shape(const ncsw::tensor::Shape& in, const PoolParams& p,
                           const std::string& name) {
  if (p.global) {
    return Shape{1, in.c, 1, 1};
  }
  if (p.kernel <= 0 || p.stride <= 0 || p.pad < 0) {
    throw std::logic_error("add_pool: bad parameters for '" + name + "'");
  }
  const std::int64_t oh =
      pooled_extent(in.h, p.kernel, p.stride, p.pad, p.ceil_mode);
  const std::int64_t ow =
      pooled_extent(in.w, p.kernel, p.stride, p.pad, p.ceil_mode);
  if (oh <= 0 || ow <= 0) {
    throw std::logic_error("add_pool: window does not fit for '" + name + "'");
  }
  return Shape{1, in.c, oh, ow};
}
}  // namespace

int Graph::add_max_pool(const std::string& name, int input,
                        const PoolParams& p) {
  Layer layer;
  layer.kind = LayerKind::kMaxPool;
  layer.name = name;
  layer.inputs = {input};
  layer.pool = p;
  layer.out_shape = pool_shape(in_shape(input, "add_max_pool"), p, name);
  return append(std::move(layer));
}

int Graph::add_avg_pool(const std::string& name, int input,
                        const PoolParams& p) {
  Layer layer;
  layer.kind = LayerKind::kAvgPool;
  layer.name = name;
  layer.inputs = {input};
  layer.pool = p;
  layer.out_shape = pool_shape(in_shape(input, "add_avg_pool"), p, name);
  return append(std::move(layer));
}

int Graph::add_lrn(const std::string& name, int input, const LRNParams& p) {
  if (p.local_size <= 0 || p.local_size % 2 == 0) {
    throw std::logic_error("add_lrn: local_size must be odd and positive");
  }
  Layer layer;
  layer.kind = LayerKind::kLRN;
  layer.name = name;
  layer.inputs = {input};
  layer.lrn = p;
  layer.out_shape = in_shape(input, "add_lrn");
  return append(std::move(layer));
}

int Graph::add_concat(const std::string& name, const std::vector<int>& inputs) {
  if (inputs.empty()) {
    throw std::logic_error("add_concat: no inputs for '" + name + "'");
  }
  const Shape& first = in_shape(inputs[0], "add_concat");
  std::int64_t channels = 0;
  for (int in : inputs) {
    const Shape& s = in_shape(in, "add_concat");
    if (s.h != first.h || s.w != first.w) {
      throw std::logic_error("add_concat: spatial mismatch for '" + name +
                             "': " + s.to_string() + " vs " +
                             first.to_string());
    }
    channels += s.c;
  }
  Layer layer;
  layer.kind = LayerKind::kConcat;
  layer.name = name;
  layer.inputs = inputs;
  layer.out_shape = Shape{1, channels, first.h, first.w};
  return append(std::move(layer));
}

int Graph::add_fc(const std::string& name, int input, const FCParams& p) {
  if (p.out_features <= 0) {
    throw std::logic_error("add_fc: out_features must be positive");
  }
  (void)in_shape(input, "add_fc");
  Layer layer;
  layer.kind = LayerKind::kFC;
  layer.name = name;
  layer.inputs = {input};
  layer.fc = p;
  layer.out_shape = Shape{1, p.out_features, 1, 1};
  return append(std::move(layer));
}

int Graph::add_softmax(const std::string& name, int input) {
  Layer layer;
  layer.kind = LayerKind::kSoftmax;
  layer.name = name;
  layer.inputs = {input};
  layer.out_shape = in_shape(input, "add_softmax");
  return append(std::move(layer));
}

int Graph::add_dropout(const std::string& name, int input) {
  Layer layer;
  layer.kind = LayerKind::kDropout;
  layer.name = name;
  layer.inputs = {input};
  layer.out_shape = in_shape(input, "add_dropout");
  return append(std::move(layer));
}

int Graph::find(const std::string& name) const noexcept {
  for (int i = 0; i < size(); ++i) {
    if (layers_[static_cast<std::size_t>(i)].name == name) return i;
  }
  return -1;
}

void Graph::validate() const {
  if (input_id_ != 0 || layers_.empty()) {
    throw std::logic_error("Graph: must start with exactly one input layer");
  }
  std::set<std::string> names;
  for (int i = 0; i < size(); ++i) {
    const Layer& l = layers_[static_cast<std::size_t>(i)];
    if (!names.insert(l.name).second) {
      throw std::logic_error("Graph: duplicate layer name '" + l.name + "'");
    }
    if (l.kind == LayerKind::kInput) {
      if (i != 0) throw std::logic_error("Graph: input must be layer 0");
      if (!l.inputs.empty()) {
        throw std::logic_error("Graph: input layer cannot have inputs");
      }
      continue;
    }
    if (l.inputs.empty()) {
      throw std::logic_error("Graph: layer '" + l.name + "' has no inputs");
    }
    for (int in : l.inputs) {
      if (in < 0 || in >= i) {
        throw std::logic_error("Graph: layer '" + l.name +
                               "' breaks topological order");
      }
    }
    check_shape(l.out_shape, "Graph::validate");
  }
}

}  // namespace ncsw::nn
