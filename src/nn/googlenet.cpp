#include "nn/googlenet.h"

#include <cmath>
#include <stdexcept>

namespace ncsw::nn {

int add_inception(Graph& graph, const std::string& prefix, int input,
                  const InceptionSpec& spec) {
  // Branch 1: 1x1 conv.
  int b1 = graph.add_conv(prefix + "/1x1", input,
                          ConvParams{spec.c1, 1, 1, 0});
  b1 = graph.add_relu(prefix + "/relu_1x1", b1);

  // Branch 2: 1x1 reduce -> 3x3.
  int b2 = graph.add_conv(prefix + "/3x3_reduce", input,
                          ConvParams{spec.c3r, 1, 1, 0});
  b2 = graph.add_relu(prefix + "/relu_3x3_reduce", b2);
  b2 = graph.add_conv(prefix + "/3x3", b2, ConvParams{spec.c3, 3, 1, 1});
  b2 = graph.add_relu(prefix + "/relu_3x3", b2);

  // Branch 3: 1x1 reduce -> 5x5.
  int b3 = graph.add_conv(prefix + "/5x5_reduce", input,
                          ConvParams{spec.c5r, 1, 1, 0});
  b3 = graph.add_relu(prefix + "/relu_5x5_reduce", b3);
  b3 = graph.add_conv(prefix + "/5x5", b3, ConvParams{spec.c5, 5, 1, 2});
  b3 = graph.add_relu(prefix + "/relu_5x5", b3);

  // Branch 4: 3x3 max pool (stride 1, pad 1) -> 1x1 proj.
  int b4 = graph.add_max_pool(prefix + "/pool", input,
                              PoolParams{3, 1, 1, /*ceil=*/true, false});
  b4 = graph.add_conv(prefix + "/pool_proj", b4,
                      ConvParams{spec.pool, 1, 1, 0});
  b4 = graph.add_relu(prefix + "/relu_pool_proj", b4);

  return graph.add_concat(prefix + "/output", {b1, b2, b3, b4});
}

Graph build_googlenet() {
  Graph g("bvlc_googlenet");
  const int data = g.add_input("data", 3, 224, 224);

  int x = g.add_conv("conv1/7x7_s2", data, ConvParams{64, 7, 2, 3});
  x = g.add_relu("conv1/relu_7x7", x);
  x = g.add_max_pool("pool1/3x3_s2", x, PoolParams{3, 2, 0, true, false});
  x = g.add_lrn("pool1/norm1", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});

  x = g.add_conv("conv2/3x3_reduce", x, ConvParams{64, 1, 1, 0});
  x = g.add_relu("conv2/relu_3x3_reduce", x);
  x = g.add_conv("conv2/3x3", x, ConvParams{192, 3, 1, 1});
  x = g.add_relu("conv2/relu_3x3", x);
  x = g.add_lrn("conv2/norm2", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});
  x = g.add_max_pool("pool2/3x3_s2", x, PoolParams{3, 2, 0, true, false});

  x = add_inception(g, "inception_3a", x, {64, 96, 128, 16, 32, 32});
  x = add_inception(g, "inception_3b", x, {128, 128, 192, 32, 96, 64});
  x = g.add_max_pool("pool3/3x3_s2", x, PoolParams{3, 2, 0, true, false});

  x = add_inception(g, "inception_4a", x, {192, 96, 208, 16, 48, 64});
  x = add_inception(g, "inception_4b", x, {160, 112, 224, 24, 64, 64});
  x = add_inception(g, "inception_4c", x, {128, 128, 256, 24, 64, 64});
  x = add_inception(g, "inception_4d", x, {112, 144, 288, 32, 64, 64});
  x = add_inception(g, "inception_4e", x, {256, 160, 320, 32, 128, 128});
  x = g.add_max_pool("pool4/3x3_s2", x, PoolParams{3, 2, 0, true, false});

  x = add_inception(g, "inception_5a", x, {256, 160, 320, 32, 128, 128});
  x = add_inception(g, "inception_5b", x, {384, 192, 384, 48, 128, 128});

  PoolParams global_avg;
  global_avg.global = true;
  x = g.add_avg_pool("pool5/7x7_s1", x, global_avg);
  x = g.add_dropout("pool5/drop_7x7_s1", x);
  x = g.add_fc("loss3/classifier", x, FCParams{1000});
  x = g.add_softmax("prob", x);

  g.validate();
  return g;
}

Graph build_tiny_googlenet(const TinyGoogLeNetConfig& config) {
  if (config.input_size < 16 || config.num_classes < 2) {
    throw std::invalid_argument("build_tiny_googlenet: bad config");
  }
  Graph g("tiny_googlenet");
  const int data = g.add_input("data", 3, config.input_size,
                               config.input_size);

  int x = g.add_conv("conv1/7x7_s2", data, ConvParams{16, 7, 2, 3});
  x = g.add_relu("conv1/relu_7x7", x);
  x = g.add_max_pool("pool1/3x3_s2", x, PoolParams{3, 2, 0, true, false});
  x = g.add_lrn("pool1/norm1", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});

  x = g.add_conv("conv2/3x3_reduce", x, ConvParams{16, 1, 1, 0});
  x = g.add_relu("conv2/relu_3x3_reduce", x);
  x = g.add_conv("conv2/3x3", x, ConvParams{32, 3, 1, 1});
  x = g.add_relu("conv2/relu_3x3", x);
  x = g.add_lrn("conv2/norm2", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});

  x = add_inception(g, "inception_3a", x, {8, 12, 16, 4, 8, 8});
  x = add_inception(g, "inception_3b", x, {16, 16, 24, 4, 8, 8});
  x = g.add_max_pool("pool3/3x3_s2", x, PoolParams{3, 2, 0, true, false});

  x = add_inception(g, "inception_4a", x, {24, 24, 32, 8, 16, 16});

  PoolParams global_avg;
  global_avg.global = true;
  x = g.add_avg_pool("pool5/global", x, global_avg);
  x = g.add_dropout("pool5/drop", x);
  x = g.add_fc("loss3/classifier", x, FCParams{config.num_classes});
  x = g.add_softmax("prob", x);

  g.validate();
  return g;
}

void fit_template_classifier(const Graph& graph, WeightsF& weights,
                             const std::string& fc_name,
                             const std::vector<tensor::TensorF>& prototypes) {
  const int fc_id = graph.find(fc_name);
  if (fc_id < 0) {
    throw std::invalid_argument("fit_template_classifier: no layer '" +
                                fc_name + "'");
  }
  const Layer& fc = graph.layer(fc_id);
  if (fc.kind != LayerKind::kFC) {
    throw std::invalid_argument("fit_template_classifier: '" + fc_name +
                                "' is not FC");
  }
  const int num_classes = fc.fc.out_features;
  if (static_cast<int>(prototypes.size()) != num_classes) {
    throw std::invalid_argument(
        "fit_template_classifier: prototype count != classes");
  }
  const int feature_layer = fc.inputs[0];
  const std::int64_t feat_dim =
      graph.layer(feature_layer).out_shape.chw();

  auto [ws, bs] = param_shapes(graph, fc_id);
  tensor::TensorF w(ws);
  ExecOptions opts;
  opts.keep_all_activations = true;
  for (int c = 0; c < num_classes; ++c) {
    auto result = run_forward(graph, weights, prototypes[static_cast<std::size_t>(c)], opts);
    const auto& feat =
        result.activations[static_cast<std::size_t>(feature_layer)];
    if (feat.shape().chw() != feat_dim || feat.shape().n != 1) {
      throw std::logic_error("fit_template_classifier: feature shape drift");
    }
    double norm_sq = 0.0;
    for (std::int64_t i = 0; i < feat_dim; ++i) {
      norm_sq += static_cast<double>(feat[i]) * static_cast<double>(feat[i]);
    }
    const float inv_norm =
        norm_sq > 0.0 ? static_cast<float>(1.0 / std::sqrt(norm_sq)) : 0.0f;
    for (std::int64_t i = 0; i < feat_dim; ++i) {
      w[c * feat_dim + i] = feat[i] * inv_norm;
    }
  }
  weights[fc_name].w = std::move(w);
  weights[fc_name].b = tensor::TensorF(bs);
}

std::int64_t graph_macs(const Graph& graph) {
  std::int64_t total = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const Layer& l = graph.layer(id);
    const Shape& out = l.out_shape;
    switch (l.kind) {
      case LayerKind::kConv: {
        const Shape& in = graph.layer(l.inputs[0]).out_shape;
        total += out.numel() * in.c * l.conv.kernel * l.conv.kernel;
        break;
      }
      case LayerKind::kFC: {
        const Shape& in = graph.layer(l.inputs[0]).out_shape;
        total += static_cast<std::int64_t>(l.fc.out_features) * in.chw();
        break;
      }
      default:
        break;
    }
  }
  return total;
}

}  // namespace ncsw::nn
