// Parameter storage for a graph: one (weight, bias) pair per Conv/FC
// layer, in either precision. FP16 parameter sets are produced by rounding
// the FP32 master copy — exactly what the NCS graph compiler does when it
// converts a Caffe model for the Myriad 2.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "nn/graph.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ncsw::nn {

/// Parameters of one layer.
/// Conv: w is [outC x inC x k x k], b is [1 x outC x 1 x 1].
/// FC:   w is [outF x inDim x 1 x 1], b is [1 x outF x 1 x 1].
template <typename T>
struct LayerParams {
  tensor::Tensor<T> w;
  tensor::Tensor<T> b;
};

/// All parameters of a graph, keyed by layer name.
template <typename T>
class Weights {
 public:
  /// Access parameters for `name`; throws std::out_of_range when missing.
  const LayerParams<T>& at(const std::string& name) const {
    auto it = map_.find(name);
    if (it == map_.end()) {
      throw std::out_of_range("Weights: no parameters for layer '" + name +
                              "'");
    }
    return it->second;
  }

  /// Mutable access, inserting an empty entry if absent.
  LayerParams<T>& operator[](const std::string& name) { return map_[name]; }

  /// True when parameters exist for `name`.
  bool contains(const std::string& name) const {
    return map_.find(name) != map_.end();
  }

  std::size_t size() const noexcept { return map_.size(); }

  auto begin() const { return map_.begin(); }
  auto end() const { return map_.end(); }

  /// Total parameter count (weights + biases).
  std::int64_t param_count() const {
    std::int64_t total = 0;
    for (const auto& [name, p] : map_) {
      total += p.w.numel() + p.b.numel();
    }
    return total;
  }

 private:
  std::unordered_map<std::string, LayerParams<T>> map_;
};

using WeightsF = Weights<float>;
using WeightsH = Weights<ncsw::fp16::half>;

/// Round an FP32 parameter set to FP16 (the model-conversion step).
WeightsH to_fp16(const WeightsF& w);

/// Expected weight/bias shapes for layer `id` of `graph`; throws if the
/// layer has no parameters.
std::pair<tensor::Shape, tensor::Shape> param_shapes(const Graph& graph,
                                                     int id);

/// Initialise every Conv/FC layer with MSRA/He fan-in scaled Gaussian
/// weights and zero biases, deterministically from `seed`. This is the
/// stand-in for downloading the pre-trained BVLC caffemodel.
WeightsF init_msra(const Graph& graph, std::uint64_t seed);

/// Verify `w` provides correctly-shaped parameters for every Conv/FC layer
/// of `graph`; throws std::logic_error describing the first mismatch.
template <typename T>
void check_weights(const Graph& graph, const Weights<T>& w);

}  // namespace ncsw::nn
