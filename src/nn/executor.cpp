#include "nn/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "util/trace.h"

namespace ncsw::nn {

namespace {

// Number of consumers per layer, to free activations eagerly.
std::vector<int> consumer_counts(const Graph& graph) {
  std::vector<int> counts(static_cast<std::size_t>(graph.size()), 0);
  for (const Layer& l : graph.layers()) {
    for (int in : l.inputs) ++counts[static_cast<std::size_t>(in)];
  }
  // The final layer's activation is always "consumed" by the caller.
  counts[static_cast<std::size_t>(graph.output_id())] += 1;
  return counts;
}

}  // namespace

int resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NCSW_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

bool resolve_fast(bool requested) noexcept {
  if (requested) return true;
  const char* env = std::getenv("NCSW_FAST");
  if (!env) return false;
  const std::string_view v(env);
  return v == "1" || v == "true" || v == "on";
}

template <typename T>
ExecResult<T> run_forward(const Graph& graph, const Weights<T>& weights,
                          const tensor::Tensor<T>& input,
                          const ExecOptions& options) {
  graph.validate();
  check_weights(graph, weights);
  const Layer& in_layer = graph.layer(graph.input_id());
  const Shape expected = in_layer.out_shape.with_batch(input.shape().n);
  if (input.shape() != expected) {
    throw std::invalid_argument("run_forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                expected.to_string());
  }

  // One workspace per executing thread: the scratch arenas grow to the
  // largest layer on first use and are reused by every later pass.
  thread_local kernels::Workspace workspace;
  kernels::ExecCtx ctx;
  ctx.ws = &workspace;
  ctx.reference = options.reference_kernels;
  ctx.threads = options.reference_kernels ? 1 : resolve_threads(options.threads);
  ctx.fast = !options.reference_kernels && resolve_fast(options.fast);
  ctx.quant = ctx.fast ? options.quant : nullptr;
  ctx.pool = ctx.threads > 1
                 ? (ctx.fast ? &kernels::fast_pool() : &kernels::compute_pool())
                 : nullptr;

  std::vector<tensor::Tensor<T>> acts(static_cast<std::size_t>(graph.size()));
  std::vector<int> remaining = consumer_counts(graph);
  acts[0] = input;

  // Fast-tier fusion plan: a ReLU whose sole consumer relationship is
  // with a preceding Conv (or int8-quantized FC) executes inside that
  // layer's epilogue; the ReLU layer itself becomes a move. Skipped
  // under keep_all_activations, where per-layer activations must keep
  // their unfused meaning.
  std::vector<std::uint8_t> fuse_relu_out(static_cast<std::size_t>(graph.size()), 0);
  std::vector<std::uint8_t> fused_away(static_cast<std::size_t>(graph.size()), 0);
  if (ctx.fast && !options.keep_all_activations) {
    for (int id = 1; id < graph.size(); ++id) {
      const Layer& l = graph.layer(id);
      if (l.kind != LayerKind::kReLU) continue;
      const int src_id = l.inputs[0];
      const Layer& sl = graph.layer(src_id);
      const bool fusable_src =
          sl.kind == LayerKind::kConv ||
          (sl.kind == LayerKind::kFC && ctx.quant &&
           ctx.quant->find(sl.name) != nullptr);
      if (fusable_src && remaining[static_cast<std::size_t>(src_id)] == 1) {
        fuse_relu_out[static_cast<std::size_t>(src_id)] = 1;
        fused_away[static_cast<std::size_t>(id)] = 1;
      }
    }
  }

  auto release = [&](int id) {
    if (options.keep_all_activations) return;
    auto& r = remaining[static_cast<std::size_t>(id)];
    if (--r == 0 && id != graph.output_id()) {
      acts[static_cast<std::size_t>(id)] = tensor::Tensor<T>{};
    }
  };

  ExecResult<T> result;
  using Clock = std::chrono::steady_clock;
  const bool profile = options.profile_layers;
  Clock::time_point pass_start{};
  if (profile) {
    result.layer_seconds.assign(static_cast<std::size_t>(graph.size()), 0.0);
    pass_start = Clock::now();
  }

  for (int id = 1; id < graph.size(); ++id) {
    const Layer& l = graph.layer(id);
    const tensor::Tensor<T>& src = acts[static_cast<std::size_t>(l.inputs[0])];
    tensor::Tensor<T>& dst = acts[static_cast<std::size_t>(id)];
    const Clock::time_point t0 = profile ? Clock::now() : Clock::time_point{};
    switch (l.kind) {
      case LayerKind::kInput:
        throw std::logic_error("run_forward: unexpected input layer");
      case LayerKind::kConv:
        if (ctx.fast) {
          kernels::conv2d_fast(
              src, weights.at(l.name),
              ctx.quant ? ctx.quant->find(l.name) : nullptr, l.conv,
              fuse_relu_out[static_cast<std::size_t>(id)] != 0, dst, ctx);
        } else {
          kernels::conv2d(src, weights.at(l.name), l.conv, dst, ctx);
        }
        break;
      case LayerKind::kReLU:
        if (fused_away[static_cast<std::size_t>(id)]) {
          // Already applied in the producing layer's epilogue.
          dst = std::move(acts[static_cast<std::size_t>(l.inputs[0])]);
        } else {
          dst = src;
          kernels::relu(dst, ctx);
        }
        break;
      case LayerKind::kMaxPool:
        kernels::max_pool(src, l.pool, dst, ctx);
        break;
      case LayerKind::kAvgPool:
        kernels::avg_pool(src, l.pool, dst, ctx);
        break;
      case LayerKind::kLRN:
        kernels::lrn(src, l.lrn, dst, ctx);
        break;
      case LayerKind::kConcat: {
        std::vector<const tensor::Tensor<T>*> ins;
        ins.reserve(l.inputs.size());
        for (int in : l.inputs) {
          ins.push_back(&acts[static_cast<std::size_t>(in)]);
        }
        kernels::concat(ins, dst);
        break;
      }
      case LayerKind::kFC:
        if (ctx.fast) {
          kernels::fully_connected_fast(
              src, weights.at(l.name),
              ctx.quant ? ctx.quant->find(l.name) : nullptr, l.fc,
              fuse_relu_out[static_cast<std::size_t>(id)] != 0, dst, ctx);
        } else {
          kernels::fully_connected(src, weights.at(l.name), l.fc, dst, ctx);
        }
        break;
      case LayerKind::kSoftmax:
        kernels::softmax(src, dst);
        break;
      case LayerKind::kDropout:
        dst = src;  // inference-time dropout is the identity
        break;
    }
    if (profile) {
      const Clock::time_point t1 = Clock::now();
      const double dt = std::chrono::duration<double>(t1 - t0).count();
      result.layer_seconds[static_cast<std::size_t>(id)] = dt;
      // Wall-clock spans live in their own "host" category/lane so they
      // never mix with the simulated-clock device timelines.
      util::Tracer& tr = util::tracer();
      if (tr.enabled()) {
        const double s0 = std::chrono::duration<double>(t0 - pass_start).count();
        tr.complete("host", l.name, tr.lane("host compute"), s0, s0 + dt,
                    {util::TraceArg::str("kind", layer_kind_name(l.kind)),
                     util::TraceArg::num("threads",
                                         static_cast<std::int64_t>(ctx.threads))});
      }
    }
    // Sanity: computed shape must match the inferred one.
    const Shape want = l.out_shape.with_batch(input.shape().n);
    if (dst.shape() != want) {
      throw std::logic_error("run_forward: layer '" + l.name +
                             "' produced " + dst.shape().to_string() +
                             ", inferred " + want.to_string());
    }
    for (int in : l.inputs) release(in);
  }

  result.output = std::move(acts[static_cast<std::size_t>(graph.output_id())]);
  if (options.keep_all_activations) {
    result.activations = std::move(acts);
    // Restore the moved-out output slot for consistency.
    result.activations[static_cast<std::size_t>(graph.output_id())] =
        result.output;
  }
  return result;
}

template <typename T>
std::vector<std::vector<float>> run_probabilities(
    const Graph& graph, const Weights<T>& weights,
    const tensor::Tensor<T>& input, const ExecOptions& options) {
  auto result = run_forward(graph, weights, input, options);
  const auto& out = result.output;
  const std::int64_t batch = out.shape().n;
  const std::int64_t dim = out.shape().chw();
  std::vector<std::vector<float>> probs(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    auto& row = probs[static_cast<std::size_t>(b)];
    row.resize(static_cast<std::size_t>(dim));
    const T* src = out.batch_ptr(b);
    if constexpr (std::is_same_v<T, float>) {
      std::copy(src, src + dim, row.begin());
    } else {
      ncsw::fp16::half_to_float_span(src, row.data(),
                                     static_cast<std::size_t>(dim));
    }
  }
  return probs;
}

std::vector<int> argmax_per_item(
    const std::vector<std::vector<float>>& probs) {
  std::vector<int> out;
  out.reserve(probs.size());
  for (const auto& row : probs) {
    const auto it = std::max_element(row.begin(), row.end());
    out.push_back(static_cast<int>(it - row.begin()));
  }
  return out;
}

std::vector<std::pair<int, float>> top_k(const std::vector<float>& probs,
                                         int k) {
  std::vector<std::pair<int, float>> items;
  items.reserve(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    items.emplace_back(static_cast<int>(i), probs[i]);
  }
  const std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)), items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(kk),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  items.resize(kk);
  return items;
}

template ExecResult<float> run_forward<float>(const Graph&,
                                              const Weights<float>&,
                                              const tensor::Tensor<float>&,
                                              const ExecOptions&);
template ExecResult<ncsw::fp16::half> run_forward<ncsw::fp16::half>(
    const Graph&, const Weights<ncsw::fp16::half>&,
    const tensor::Tensor<ncsw::fp16::half>&, const ExecOptions&);
template std::vector<std::vector<float>> run_probabilities<float>(
    const Graph&, const Weights<float>&, const tensor::Tensor<float>&,
    const ExecOptions&);
template std::vector<std::vector<float>> run_probabilities<ncsw::fp16::half>(
    const Graph&, const Weights<ncsw::fp16::half>&,
    const tensor::Tensor<ncsw::fp16::half>&, const ExecOptions&);

}  // namespace ncsw::nn
