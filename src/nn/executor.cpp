#include "nn/executor.h"

#include <algorithm>
#include <stdexcept>

namespace ncsw::nn {

namespace {

// Number of consumers per layer, to free activations eagerly.
std::vector<int> consumer_counts(const Graph& graph) {
  std::vector<int> counts(static_cast<std::size_t>(graph.size()), 0);
  for (const Layer& l : graph.layers()) {
    for (int in : l.inputs) ++counts[static_cast<std::size_t>(in)];
  }
  // The final layer's activation is always "consumed" by the caller.
  counts[static_cast<std::size_t>(graph.output_id())] += 1;
  return counts;
}

}  // namespace

template <typename T>
ExecResult<T> run_forward(const Graph& graph, const Weights<T>& weights,
                          const tensor::Tensor<T>& input,
                          const ExecOptions& options) {
  graph.validate();
  check_weights(graph, weights);
  const Layer& in_layer = graph.layer(graph.input_id());
  const Shape expected = in_layer.out_shape.with_batch(input.shape().n);
  if (input.shape() != expected) {
    throw std::invalid_argument("run_forward: input shape " +
                                input.shape().to_string() + ", expected " +
                                expected.to_string());
  }

  std::vector<tensor::Tensor<T>> acts(static_cast<std::size_t>(graph.size()));
  std::vector<int> remaining = consumer_counts(graph);
  acts[0] = input;

  auto release = [&](int id) {
    if (options.keep_all_activations) return;
    auto& r = remaining[static_cast<std::size_t>(id)];
    if (--r == 0 && id != graph.output_id()) {
      acts[static_cast<std::size_t>(id)] = tensor::Tensor<T>{};
    }
  };

  for (int id = 1; id < graph.size(); ++id) {
    const Layer& l = graph.layer(id);
    const tensor::Tensor<T>& src = acts[static_cast<std::size_t>(l.inputs[0])];
    tensor::Tensor<T>& dst = acts[static_cast<std::size_t>(id)];
    switch (l.kind) {
      case LayerKind::kInput:
        throw std::logic_error("run_forward: unexpected input layer");
      case LayerKind::kConv:
        kernels::conv2d(src, weights.at(l.name), l.conv, dst);
        break;
      case LayerKind::kReLU:
        dst = src;
        kernels::relu(dst);
        break;
      case LayerKind::kMaxPool:
        kernels::max_pool(src, l.pool, dst);
        break;
      case LayerKind::kAvgPool:
        kernels::avg_pool(src, l.pool, dst);
        break;
      case LayerKind::kLRN:
        kernels::lrn(src, l.lrn, dst);
        break;
      case LayerKind::kConcat: {
        std::vector<const tensor::Tensor<T>*> ins;
        ins.reserve(l.inputs.size());
        for (int in : l.inputs) {
          ins.push_back(&acts[static_cast<std::size_t>(in)]);
        }
        kernels::concat(ins, dst);
        break;
      }
      case LayerKind::kFC:
        kernels::fully_connected(src, weights.at(l.name), l.fc, dst);
        break;
      case LayerKind::kSoftmax:
        kernels::softmax(src, dst);
        break;
      case LayerKind::kDropout:
        dst = src;  // inference-time dropout is the identity
        break;
    }
    // Sanity: computed shape must match the inferred one.
    const Shape want = l.out_shape.with_batch(input.shape().n);
    if (dst.shape() != want) {
      throw std::logic_error("run_forward: layer '" + l.name +
                             "' produced " + dst.shape().to_string() +
                             ", inferred " + want.to_string());
    }
    for (int in : l.inputs) release(in);
  }

  ExecResult<T> result;
  result.output = std::move(acts[static_cast<std::size_t>(graph.output_id())]);
  if (options.keep_all_activations) {
    result.activations = std::move(acts);
    // Restore the moved-out output slot for consistency.
    result.activations[static_cast<std::size_t>(graph.output_id())] =
        result.output;
  }
  return result;
}

template <typename T>
std::vector<std::vector<float>> run_probabilities(
    const Graph& graph, const Weights<T>& weights,
    const tensor::Tensor<T>& input) {
  auto result = run_forward(graph, weights, input);
  const auto& out = result.output;
  const std::int64_t batch = out.shape().n;
  const std::int64_t dim = out.shape().chw();
  std::vector<std::vector<float>> probs(static_cast<std::size_t>(batch));
  for (std::int64_t b = 0; b < batch; ++b) {
    auto& row = probs[static_cast<std::size_t>(b)];
    row.resize(static_cast<std::size_t>(dim));
    const T* src = out.batch_ptr(b);
    for (std::int64_t i = 0; i < dim; ++i) {
      row[static_cast<std::size_t>(i)] = static_cast<float>(src[i]);
    }
  }
  return probs;
}

std::vector<int> argmax_per_item(
    const std::vector<std::vector<float>>& probs) {
  std::vector<int> out;
  out.reserve(probs.size());
  for (const auto& row : probs) {
    const auto it = std::max_element(row.begin(), row.end());
    out.push_back(static_cast<int>(it - row.begin()));
  }
  return out;
}

std::vector<std::pair<int, float>> top_k(const std::vector<float>& probs,
                                         int k) {
  std::vector<std::pair<int, float>> items;
  items.reserve(probs.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    items.emplace_back(static_cast<int>(i), probs[i]);
  }
  const std::size_t kk = std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)), items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(kk),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  items.resize(kk);
  return items;
}

template ExecResult<float> run_forward<float>(const Graph&,
                                              const Weights<float>&,
                                              const tensor::Tensor<float>&,
                                              const ExecOptions&);
template ExecResult<ncsw::fp16::half> run_forward<ncsw::fp16::half>(
    const Graph&, const Weights<ncsw::fp16::half>&,
    const tensor::Tensor<ncsw::fp16::half>&, const ExecOptions&);
template std::vector<std::vector<float>> run_probabilities<float>(
    const Graph&, const Weights<float>&, const tensor::Tensor<float>&);
template std::vector<std::vector<float>> run_probabilities<ncsw::fp16::half>(
    const Graph&, const Weights<ncsw::fp16::half>&,
    const tensor::Tensor<ncsw::fp16::half>&);

}  // namespace ncsw::nn
