#include "nn/serialize.h"

#include <stdexcept>

namespace ncsw::nn {

// "NNGR" / "NNWT" little-endian magics.
static constexpr std::uint32_t kMagicGraph = 0x52474e4eu;
static constexpr std::uint32_t kMagicWeights = 0x54574e4eu;
static constexpr std::uint32_t kVersion = 1;

void write_graph(util::BinWriter& w, const Graph& graph) {
  graph.validate();
  w.put(kMagicGraph);
  w.put(kVersion);
  w.put_string(graph.name());
  w.put(static_cast<std::uint32_t>(graph.size()));
  for (const Layer& l : graph.layers()) {
    w.put(static_cast<std::uint8_t>(l.kind));
    w.put_string(l.name);
    w.put(static_cast<std::uint32_t>(l.inputs.size()));
    for (int in : l.inputs) w.put(static_cast<std::int32_t>(in));
    switch (l.kind) {
      case LayerKind::kInput:
        w.put(l.out_shape.c);
        w.put(l.out_shape.h);
        w.put(l.out_shape.w);
        break;
      case LayerKind::kConv:
        w.put(static_cast<std::int32_t>(l.conv.out_channels));
        w.put(static_cast<std::int32_t>(l.conv.kernel));
        w.put(static_cast<std::int32_t>(l.conv.stride));
        w.put(static_cast<std::int32_t>(l.conv.pad));
        break;
      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool:
        w.put(static_cast<std::int32_t>(l.pool.kernel));
        w.put(static_cast<std::int32_t>(l.pool.stride));
        w.put(static_cast<std::int32_t>(l.pool.pad));
        w.put(static_cast<std::uint8_t>(l.pool.ceil_mode ? 1 : 0));
        w.put(static_cast<std::uint8_t>(l.pool.global ? 1 : 0));
        break;
      case LayerKind::kLRN:
        w.put(static_cast<std::int32_t>(l.lrn.local_size));
        w.put(l.lrn.alpha);
        w.put(l.lrn.beta);
        w.put(l.lrn.k);
        break;
      case LayerKind::kFC:
        w.put(static_cast<std::int32_t>(l.fc.out_features));
        break;
      case LayerKind::kReLU:
      case LayerKind::kConcat:
      case LayerKind::kSoftmax:
      case LayerKind::kDropout:
        break;
    }
  }
}

Graph read_graph(util::BinReader& r) {
  if (r.get<std::uint32_t>() != kMagicGraph) {
    throw std::runtime_error("graph: bad magic");
  }
  if (r.get<std::uint32_t>() != kVersion) {
    throw std::runtime_error("graph: unsupported version");
  }
  Graph graph(r.get_string());
  const auto count = r.get<std::uint32_t>();
  if (count == 0 || count > 1u << 16) {
    throw std::runtime_error("graph: bad layer count");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto kind_raw = r.get<std::uint8_t>();
    if (kind_raw > static_cast<std::uint8_t>(LayerKind::kDropout)) {
      throw std::runtime_error("graph: bad layer kind");
    }
    const auto kind = static_cast<LayerKind>(kind_raw);
    const std::string name = r.get_string();
    const auto n_inputs = r.get<std::uint32_t>();
    if (n_inputs > 64) throw std::runtime_error("graph: too many inputs");
    std::vector<int> inputs;
    inputs.reserve(n_inputs);
    for (std::uint32_t j = 0; j < n_inputs; ++j) {
      inputs.push_back(r.get<std::int32_t>());
    }
    try {
      switch (kind) {
        case LayerKind::kInput: {
          const auto c = r.get<std::int64_t>();
          const auto h = r.get<std::int64_t>();
          const auto wdt = r.get<std::int64_t>();
          graph.add_input(name, static_cast<int>(c), static_cast<int>(h),
                          static_cast<int>(wdt));
          break;
        }
        case LayerKind::kConv: {
          ConvParams p;
          p.out_channels = r.get<std::int32_t>();
          p.kernel = r.get<std::int32_t>();
          p.stride = r.get<std::int32_t>();
          p.pad = r.get<std::int32_t>();
          graph.add_conv(name, inputs.at(0), p);
          break;
        }
        case LayerKind::kMaxPool:
        case LayerKind::kAvgPool: {
          PoolParams p;
          p.kernel = r.get<std::int32_t>();
          p.stride = r.get<std::int32_t>();
          p.pad = r.get<std::int32_t>();
          p.ceil_mode = r.get<std::uint8_t>() != 0;
          p.global = r.get<std::uint8_t>() != 0;
          if (kind == LayerKind::kMaxPool) {
            graph.add_max_pool(name, inputs.at(0), p);
          } else {
            graph.add_avg_pool(name, inputs.at(0), p);
          }
          break;
        }
        case LayerKind::kLRN: {
          LRNParams p;
          p.local_size = r.get<std::int32_t>();
          p.alpha = r.get<float>();
          p.beta = r.get<float>();
          p.k = r.get<float>();
          graph.add_lrn(name, inputs.at(0), p);
          break;
        }
        case LayerKind::kFC: {
          FCParams p;
          p.out_features = r.get<std::int32_t>();
          graph.add_fc(name, inputs.at(0), p);
          break;
        }
        case LayerKind::kReLU:
          graph.add_relu(name, inputs.at(0));
          break;
        case LayerKind::kConcat:
          graph.add_concat(name, inputs);
          break;
        case LayerKind::kSoftmax:
          graph.add_softmax(name, inputs.at(0));
          break;
        case LayerKind::kDropout:
          graph.add_dropout(name, inputs.at(0));
          break;
      }
    } catch (const std::out_of_range&) {
      throw std::runtime_error("graph: missing layer input");
    } catch (const std::logic_error& e) {
      throw std::runtime_error(std::string("graph: invalid structure: ") +
                               e.what());
    }
  }
  graph.validate();
  return graph;
}

std::vector<std::uint8_t> serialize_graph(const Graph& graph) {
  util::BinWriter w;
  write_graph(w, graph);
  return w.take();
}

Graph deserialize_graph(const std::vector<std::uint8_t>& bytes) {
  util::BinReader r(bytes);
  Graph g = read_graph(r);
  if (!r.done()) throw std::runtime_error("graph: trailing bytes");
  return g;
}

namespace {

template <typename T>
void write_weights_impl(util::BinWriter& w, const Weights<T>& weights,
                        std::uint8_t precision_tag) {
  w.put(kMagicWeights);
  w.put(kVersion);
  w.put(precision_tag);
  w.put(static_cast<std::uint32_t>(weights.size()));
  for (const auto& [name, p] : weights) {
    w.put_string(name);
    for (const auto* t : {&p.w, &p.b}) {
      const auto& s = t->shape();
      w.put(s.n);
      w.put(s.c);
      w.put(s.h);
      w.put(s.w);
      w.put_bytes(t->data(), static_cast<std::size_t>(t->numel()) * sizeof(T));
    }
  }
}

template <typename T>
Weights<T> read_weights_impl(util::BinReader& r,
                             std::uint8_t precision_tag) {
  if (r.get<std::uint32_t>() != kMagicWeights) {
    throw std::runtime_error("weights: bad magic");
  }
  if (r.get<std::uint32_t>() != kVersion) {
    throw std::runtime_error("weights: unsupported version");
  }
  if (r.get<std::uint8_t>() != precision_tag) {
    throw std::runtime_error("weights: precision mismatch");
  }
  const auto count = r.get<std::uint32_t>();
  if (count > 1u << 16) throw std::runtime_error("weights: bad count");
  Weights<T> out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.get_string();
    LayerParams<T>& p = out[name];
    for (auto* t : {&p.w, &p.b}) {
      tensor::Shape s;
      s.n = r.get<std::int64_t>();
      s.c = r.get<std::int64_t>();
      s.h = r.get<std::int64_t>();
      s.w = r.get<std::int64_t>();
      if (!s.valid() || s.numel() > (std::int64_t{1} << 28)) {
        throw std::runtime_error("weights: bad tensor shape");
      }
      t->resize(s);
      r.get_bytes(t->data(), static_cast<std::size_t>(t->numel()) * sizeof(T));
    }
  }
  return out;
}

}  // namespace

void write_weights(util::BinWriter& w, const WeightsH& weights) {
  write_weights_impl(w, weights, 0);
}

WeightsH read_weights_f16(util::BinReader& r) {
  return read_weights_impl<ncsw::fp16::half>(r, 0);
}

std::vector<std::uint8_t> serialize_weights(const WeightsH& weights) {
  util::BinWriter w;
  write_weights_impl(w, weights, 0);
  return w.take();
}

std::vector<std::uint8_t> serialize_weights(const WeightsF& weights) {
  util::BinWriter w;
  write_weights_impl(w, weights, 1);
  return w.take();
}

WeightsH deserialize_weights_f16(const std::vector<std::uint8_t>& bytes) {
  util::BinReader r(bytes);
  auto out = read_weights_impl<ncsw::fp16::half>(r, 0);
  if (!r.done()) throw std::runtime_error("weights: trailing bytes");
  return out;
}

WeightsF deserialize_weights_f32(const std::vector<std::uint8_t>& bytes) {
  util::BinReader r(bytes);
  auto out = read_weights_impl<float>(r, 1);
  if (!r.done()) throw std::runtime_error("weights: trailing bytes");
  return out;
}

}  // namespace ncsw::nn
