// Binary serialisation of network structures and parameter sets — the
// prototxt / caffemodel role in the paper's toolchain. A Graph and a
// Weights set round-trip bit-exactly; the graph compiler embeds both in
// self-contained graph files (graphc::serialize_package) so a stick can
// execute a network functionally from the blob alone, the way a real NCS
// graph file carries its weights.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.h"
#include "nn/weights.h"
#include "util/binio.h"

namespace ncsw::nn {

/// Serialise a graph's structure (magic "NNGR", version 1).
std::vector<std::uint8_t> serialize_graph(const Graph& graph);

/// Parse a graph; throws std::runtime_error on malformed input and
/// re-validates the result.
Graph deserialize_graph(const std::vector<std::uint8_t>& bytes);

/// Serialise an FP16 parameter set (magic "NNWT").
std::vector<std::uint8_t> serialize_weights(const WeightsH& weights);
/// Serialise an FP32 parameter set.
std::vector<std::uint8_t> serialize_weights(const WeightsF& weights);

/// Parse FP16 weights; throws std::runtime_error on malformed input or a
/// precision mismatch.
WeightsH deserialize_weights_f16(const std::vector<std::uint8_t>& bytes);
/// Parse FP32 weights.
WeightsF deserialize_weights_f32(const std::vector<std::uint8_t>& bytes);

// Stream variants used by the package format (no copy of the section).
void write_graph(util::BinWriter& w, const Graph& graph);
Graph read_graph(util::BinReader& r);
void write_weights(util::BinWriter& w, const WeightsH& weights);
WeightsH read_weights_f16(util::BinReader& r);

}  // namespace ncsw::nn
