#include "nn/quant.h"

#include <algorithm>
#include <cmath>

#include "half/half.h"

namespace ncsw::nn {

float quantize_symmetric(const float* src, std::int64_t n,
                         std::int8_t* dst) noexcept {
  float maxabs = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::fabs(src[i]));
  }
  // An all-zero span quantizes to zeros under any positive scale; 1.0
  // keeps the dequantized values exact and the scale finite.
  const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    const long q = std::lroundf(src[i] * inv);
    dst[i] = static_cast<std::int8_t>(
        std::clamp<long>(q, -127, 127));
  }
  return scale;
}

template <typename T>
QuantizedWeights quantize_weights(const Graph& graph,
                                  const Weights<T>& weights) {
  QuantizedWeights out;
  for (const Layer& l : graph.layers()) {
    if (!Graph::has_weights(l.kind)) continue;
    const LayerParams<T>& p = weights.at(l.name);
    FastLayer& fl = out.add(l.name);
    fl.rows = p.w.shape().n;
    fl.cols = p.w.numel() / std::max<std::int64_t>(fl.rows, 1);
    fl.w_f32.resize(static_cast<std::size_t>(p.w.numel()));
    fl.b_f32.resize(static_cast<std::size_t>(p.b.numel()));
    if constexpr (std::is_same_v<T, float>) {
      std::copy(p.w.data(), p.w.data() + p.w.numel(), fl.w_f32.begin());
      std::copy(p.b.data(), p.b.data() + p.b.numel(), fl.b_f32.begin());
    } else {
      ncsw::fp16::half_to_float_span(p.w.data(), fl.w_f32.data(),
                                     static_cast<std::size_t>(p.w.numel()));
      ncsw::fp16::half_to_float_span(p.b.data(), fl.b_f32.data(),
                                     static_cast<std::size_t>(p.b.numel()));
    }
    fl.w_q.resize(fl.w_f32.size());
    fl.scale.resize(static_cast<std::size_t>(fl.rows));
    for (std::int64_t r = 0; r < fl.rows; ++r) {
      fl.scale[static_cast<std::size_t>(r)] =
          quantize_symmetric(fl.w_f32.data() + r * fl.cols, fl.cols,
                             fl.w_q.data() + r * fl.cols);
    }
  }
  return out;
}

template QuantizedWeights quantize_weights<float>(const Graph&,
                                                  const Weights<float>&);
template QuantizedWeights quantize_weights<ncsw::fp16::half>(
    const Graph&, const Weights<ncsw::fp16::half>&);

}  // namespace ncsw::nn
