#include "nn/zoo.h"

#include <stdexcept>

#include "nn/googlenet.h"

namespace ncsw::nn {

Graph build_alexnet() {
  Graph g("alexnet");
  const int data = g.add_input("data", 3, 227, 227);

  int x = g.add_conv("conv1", data, ConvParams{96, 11, 4, 0});
  x = g.add_relu("relu1", x);
  x = g.add_lrn("norm1", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});
  x = g.add_max_pool("pool1", x, PoolParams{3, 2, 0, false, false});

  x = g.add_conv("conv2", x, ConvParams{256, 5, 1, 2});
  x = g.add_relu("relu2", x);
  x = g.add_lrn("norm2", x, LRNParams{5, 1e-4f, 0.75f, 1.0f});
  x = g.add_max_pool("pool2", x, PoolParams{3, 2, 0, false, false});

  x = g.add_conv("conv3", x, ConvParams{384, 3, 1, 1});
  x = g.add_relu("relu3", x);
  x = g.add_conv("conv4", x, ConvParams{384, 3, 1, 1});
  x = g.add_relu("relu4", x);
  x = g.add_conv("conv5", x, ConvParams{256, 3, 1, 1});
  x = g.add_relu("relu5", x);
  x = g.add_max_pool("pool5", x, PoolParams{3, 2, 0, false, false});

  x = g.add_fc("fc6", x, FCParams{4096});
  x = g.add_relu("relu6", x);
  x = g.add_dropout("drop6", x);
  x = g.add_fc("fc7", x, FCParams{4096});
  x = g.add_relu("relu7", x);
  x = g.add_dropout("drop7", x);
  x = g.add_fc("fc8", x, FCParams{1000});
  x = g.add_softmax("prob", x);

  g.validate();
  return g;
}

int add_fire_module(Graph& graph, const std::string& prefix, int input,
                    int squeeze, int expand1, int expand3) {
  int s = graph.add_conv(prefix + "/squeeze1x1", input,
                         ConvParams{squeeze, 1, 1, 0});
  s = graph.add_relu(prefix + "/relu_squeeze1x1", s);
  int e1 = graph.add_conv(prefix + "/expand1x1", s,
                          ConvParams{expand1, 1, 1, 0});
  e1 = graph.add_relu(prefix + "/relu_expand1x1", e1);
  int e3 = graph.add_conv(prefix + "/expand3x3", s,
                          ConvParams{expand3, 3, 1, 1});
  e3 = graph.add_relu(prefix + "/relu_expand3x3", e3);
  return graph.add_concat(prefix + "/concat", {e1, e3});
}

Graph build_squeezenet_v11() {
  Graph g("squeezenet_v1.1");
  const int data = g.add_input("data", 3, 227, 227);

  int x = g.add_conv("conv1", data, ConvParams{64, 3, 2, 0});
  x = g.add_relu("relu_conv1", x);
  x = g.add_max_pool("pool1", x, PoolParams{3, 2, 0, true, false});

  x = add_fire_module(g, "fire2", x, 16, 64, 64);
  x = add_fire_module(g, "fire3", x, 16, 64, 64);
  x = g.add_max_pool("pool3", x, PoolParams{3, 2, 0, true, false});

  x = add_fire_module(g, "fire4", x, 32, 128, 128);
  x = add_fire_module(g, "fire5", x, 32, 128, 128);
  x = g.add_max_pool("pool5", x, PoolParams{3, 2, 0, true, false});

  x = add_fire_module(g, "fire6", x, 48, 192, 192);
  x = add_fire_module(g, "fire7", x, 48, 192, 192);
  x = add_fire_module(g, "fire8", x, 64, 256, 256);
  x = add_fire_module(g, "fire9", x, 64, 256, 256);

  x = g.add_dropout("drop9", x);
  x = g.add_conv("conv10", x, ConvParams{1000, 1, 1, 0});
  x = g.add_relu("relu_conv10", x);
  PoolParams global_avg;
  global_avg.global = true;
  x = g.add_avg_pool("pool10", x, global_avg);
  x = g.add_softmax("prob", x);

  g.validate();
  return g;
}

Graph build_named_network(const std::string& name) {
  if (name == "googlenet") return build_googlenet();
  if (name == "alexnet") return build_alexnet();
  if (name == "squeezenet") return build_squeezenet_v11();
  if (name == "tiny") return build_tiny_googlenet();
  throw std::invalid_argument("build_named_network: unknown network '" +
                              name + "' (try: googlenet, alexnet, "
                              "squeezenet, tiny)");
}

std::vector<std::string> network_zoo_names() {
  return {"googlenet", "alexnet", "squeezenet", "tiny"};
}

}  // namespace ncsw::nn
