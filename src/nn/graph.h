// Declarative CNN graph: a DAG of layer descriptors with Caffe-compatible
// shape inference. The same graph drives (a) the functional executor in
// FP32 or FP16, (b) the graph compiler's FLOP/byte cost model, and (c) the
// VPU simulator's per-layer schedule — exactly the role the prototxt +
// compiled NCS graph file played in the paper's toolchain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"

namespace ncsw::nn {

using tensor::Shape;

/// Layer taxonomy — the operators GoogLeNet needs (Caffe layer types).
enum class LayerKind {
  kInput,
  kConv,
  kReLU,
  kMaxPool,
  kAvgPool,
  kLRN,
  kConcat,
  kFC,
  kSoftmax,
  kDropout,
};

/// Human-readable layer kind name ("Conv", "MaxPool", ...).
const char* layer_kind_name(LayerKind kind) noexcept;

/// Convolution hyper-parameters (square kernels, as in GoogLeNet).
struct ConvParams {
  int out_channels = 0;
  int kernel = 1;
  int stride = 1;
  int pad = 0;
};

/// Pooling hyper-parameters. `global` pools the full spatial extent
/// (GoogLeNet's 7x7 average pool). Caffe rounds pooled sizes *up*
/// (ceil_mode), which is what the BVLC GoogLeNet prototxt relies on.
struct PoolParams {
  int kernel = 2;
  int stride = 2;
  int pad = 0;
  bool ceil_mode = true;
  bool global = false;
};

/// Local Response Normalisation across channels (AlexNet/GoogLeNet form):
/// out = in / (k + alpha/n * sum_{window} in^2)^beta.
struct LRNParams {
  int local_size = 5;
  float alpha = 1e-4f;
  float beta = 0.75f;
  float k = 1.0f;
};

/// Fully-connected (InnerProduct) parameters.
struct FCParams {
  int out_features = 0;
};

/// One node of the graph. Exactly one of the params structs is meaningful,
/// selected by `kind`; the variant-free layout keeps the descriptor
/// trivially copyable and serialisable.
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  std::vector<int> inputs;  ///< ids of producer layers
  ConvParams conv;
  PoolParams pool;
  LRNParams lrn;
  FCParams fc;
  /// Output shape for batch = 1, filled in by shape inference at add time.
  Shape out_shape;
};

/// A validated DAG of layers. Layers are appended in topological order by
/// construction (each input id must refer to an existing layer).
class Graph {
 public:
  explicit Graph(std::string name = "net") : name_(std::move(name)) {}

  /// Graph name (used in compiled blobs and profiles).
  const std::string& name() const noexcept { return name_; }

  // ---- builder API (returns the new layer's id) -------------------------
  int add_input(const std::string& name, int channels, int height, int width);
  int add_conv(const std::string& name, int input, const ConvParams& p);
  int add_relu(const std::string& name, int input);
  int add_max_pool(const std::string& name, int input, const PoolParams& p);
  int add_avg_pool(const std::string& name, int input, const PoolParams& p);
  int add_lrn(const std::string& name, int input, const LRNParams& p);
  int add_concat(const std::string& name, const std::vector<int>& inputs);
  int add_fc(const std::string& name, int input, const FCParams& p);
  int add_softmax(const std::string& name, int input);
  int add_dropout(const std::string& name, int input);

  // ---- inspection -------------------------------------------------------
  /// Number of layers (including the input layer).
  int size() const noexcept { return static_cast<int>(layers_.size()); }
  /// Layer by id; throws std::out_of_range on a bad id.
  const Layer& layer(int id) const { return layers_.at(static_cast<std::size_t>(id)); }
  /// All layers in topological order.
  const std::vector<Layer>& layers() const noexcept { return layers_; }
  /// Id of the unique input layer; -1 if none was added yet.
  int input_id() const noexcept { return input_id_; }
  /// Id of the final layer (the network output).
  int output_id() const noexcept { return size() - 1; }
  /// Find a layer id by name; -1 when absent.
  int find(const std::string& name) const noexcept;
  /// Output shape of the final layer for batch 1.
  const Shape& output_shape() const { return layer(output_id()).out_shape; }

  /// True when layer `id` holds trainable parameters (Conv / FC).
  static bool has_weights(LayerKind kind) noexcept {
    return kind == LayerKind::kConv || kind == LayerKind::kFC;
  }

  /// Consistency check: ids are a DAG in order, names unique, exactly one
  /// input. Throws std::logic_error with a description on violation.
  void validate() const;

 private:
  int append(Layer layer);
  const Shape& in_shape(int input, const char* what) const;

  std::string name_;
  std::vector<Layer> layers_;
  int input_id_ = -1;
};

/// Caffe pooled-size rule: ceil or floor of (in + 2*pad - kernel)/stride + 1,
/// clamped so the last window starts inside the padded input.
std::int64_t pooled_extent(std::int64_t in, int kernel, int stride, int pad,
                           bool ceil_mode) noexcept;

/// Convolved output extent: floor((in + 2*pad - kernel)/stride) + 1.
std::int64_t conv_extent(std::int64_t in, int kernel, int stride,
                         int pad) noexcept;

}  // namespace ncsw::nn
