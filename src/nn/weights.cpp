#include "nn/weights.h"

#include <cmath>

namespace ncsw::nn {

WeightsH to_fp16(const WeightsF& w) {
  WeightsH out;
  for (const auto& [name, p] : w) {
    out[name].w = tensor::tensor_cast<ncsw::fp16::half>(p.w);
    out[name].b = tensor::tensor_cast<ncsw::fp16::half>(p.b);
  }
  return out;
}

std::pair<tensor::Shape, tensor::Shape> param_shapes(const Graph& graph,
                                                     int id) {
  const Layer& l = graph.layer(id);
  if (l.kind == LayerKind::kConv) {
    const Shape& in = graph.layer(l.inputs[0]).out_shape;
    return {Shape{l.conv.out_channels, in.c, l.conv.kernel, l.conv.kernel},
            Shape{1, l.conv.out_channels, 1, 1}};
  }
  if (l.kind == LayerKind::kFC) {
    const Shape& in = graph.layer(l.inputs[0]).out_shape;
    return {Shape{l.fc.out_features, in.chw(), 1, 1},
            Shape{1, l.fc.out_features, 1, 1}};
  }
  throw std::logic_error("param_shapes: layer '" + l.name +
                         "' has no parameters");
}

WeightsF init_msra(const Graph& graph, std::uint64_t seed) {
  WeightsF weights;
  for (int id = 0; id < graph.size(); ++id) {
    const Layer& l = graph.layer(id);
    if (!Graph::has_weights(l.kind)) continue;
    const auto [ws, bs] = param_shapes(graph, id);
    // Per-layer generator derived from (seed, id) so that adding layers
    // does not shift the randomness of existing ones.
    util::Xoshiro256 rng(util::hash_mix(seed, static_cast<std::uint64_t>(id)));
    const std::int64_t fan_in = ws.c * ws.h * ws.w;
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    tensor::TensorF w(ws);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      w[i] = static_cast<float>(rng.normal(0.0, stddev));
    }
    weights[l.name].w = std::move(w);
    weights[l.name].b = tensor::TensorF(bs);  // zero biases
  }
  return weights;
}

template <typename T>
void check_weights(const Graph& graph, const Weights<T>& w) {
  for (int id = 0; id < graph.size(); ++id) {
    const Layer& l = graph.layer(id);
    if (!Graph::has_weights(l.kind)) continue;
    if (!w.contains(l.name)) {
      throw std::logic_error("check_weights: missing parameters for '" +
                             l.name + "'");
    }
    const auto [ws, bs] = param_shapes(graph, id);
    const auto& p = w.at(l.name);
    if (p.w.shape() != ws) {
      throw std::logic_error("check_weights: '" + l.name + "' weight shape " +
                             p.w.shape().to_string() + " expected " +
                             ws.to_string());
    }
    if (p.b.shape() != bs) {
      throw std::logic_error("check_weights: '" + l.name + "' bias shape " +
                             p.b.shape().to_string() + " expected " +
                             bs.to_string());
    }
  }
}

template void check_weights<float>(const Graph&, const Weights<float>&);
template void check_weights<ncsw::fp16::half>(const Graph&,
                                              const Weights<ncsw::fp16::half>&);

}  // namespace ncsw::nn
