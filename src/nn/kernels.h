// Layer kernels, templated over precision. The FP32 instantiation is the
// "Caffe-MKL" functional path; the FP16 instantiation is the Myriad-2
// path (FP16 storage, FP32 accumulation where a hardware MAC pipeline
// would keep a wide accumulator, per-element rounding on write-back).
//
// The kernels are cache-tuned and optionally threaded (docs/
// performance.md): convolution splits its GEMM by output column range,
// the pools / LRN / ReLU split by (batch, channel) slabs, and every
// split writes a disjoint output region with the same per-element
// arithmetic as the serial path — so results are bit-identical across
// thread counts, and identical to the pre-PR scalar kernels (kept
// reachable through ExecCtx::reference for A/B benching and the golden
// tests).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/graph.h"
#include "nn/quant.h"
#include "nn/weights.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace ncsw::nn::kernels {

using tensor::Tensor;

/// Reusable scratch arenas for the kernel hot loop. Buffers grow to the
/// high-water mark of the layers they serve and are never shrunk, so a
/// forward pass allocates at most once per arena instead of once per
/// layer. Not thread-safe: one Workspace per concurrent forward pass
/// (slabs() hands disjoint slices to the pool workers of a single call).
class Workspace {
 public:
  /// FP32 im2col panel of `count` elements.
  float* col(std::int64_t count) { return grow(col_, count); }

  /// FP32 expansion of an FP16 activation tensor (conv/LRN inputs).
  float* acts(std::int64_t count) { return grow(acts_, count); }

  /// FP32 accumulator image of an FP16 output before rounding.
  float* out(std::int64_t count) { return grow(out_, count); }

  /// Base of `count` disjoint per-task slices of `per_task` floats each;
  /// task t uses [base + t*per_task, base + (t+1)*per_task). Call before
  /// fanning out. With the fast tier's stable chunk->worker mapping,
  /// slice t is only ever touched by (pinned) worker t, so these act as
  /// per-thread arenas that stay in the producing core's cache across
  /// layers.
  float* slabs(int count, std::int64_t per_task) {
    return grow(slabs_, static_cast<std::int64_t>(count) * per_task);
  }

  /// FP32 bias panel (fast tier: FP16 biases expanded once per call).
  float* bias(std::int64_t count) { return grow(bias_, count); }

  /// int8 buffer for the fast tier's dynamic activation quantization.
  std::int8_t* qbuf(std::int64_t count) {
    const auto need = static_cast<std::size_t>(count);
    if (q_.size() < need) q_.resize(need);
    return q_.data();
  }

  /// int32 accumulator buffer for the int8 GEMV output.
  std::int32_t* ibuf(std::int64_t count) {
    const auto need = static_cast<std::size_t>(count);
    if (i_.size() < need) i_.resize(need);
    return i_.data();
  }

  /// FP32 expansion panels for the FP16 GEMM/GEMV.
  tensor::GemmScratch& gemm() noexcept { return gemm_; }

  /// Bytes reserved across all arenas (monotonically non-decreasing).
  std::size_t capacity_bytes() const noexcept {
    return (col_.capacity() + acts_.capacity() + out_.capacity() +
            slabs_.capacity() + bias_.capacity()) *
               sizeof(float) +
           q_.capacity() * sizeof(std::int8_t) +
           i_.capacity() * sizeof(std::int32_t) + gemm_.capacity_bytes();
  }

 private:
  static float* grow(std::vector<float>& v, std::int64_t count) {
    const auto need = static_cast<std::size_t>(count);
    if (v.size() < need) v.resize(need);
    return v.data();
  }

  std::vector<float> col_, acts_, out_, slabs_, bias_;
  std::vector<std::int8_t> q_;
  std::vector<std::int32_t> i_;
  tensor::GemmScratch gemm_;
};

/// Per-call execution context the executor threads through the kernels.
/// The default ({}) is the serial optimised path with a transient
/// workspace.
struct ExecCtx {
  /// Scratch arenas; nullptr makes each kernel use a call-local one.
  Workspace* ws = nullptr;
  /// Pool for the slab fan-out; nullptr (or threads <= 1) runs serial.
  util::ThreadPool* pool = nullptr;
  /// Number of slabs the parallel kernels split their work into.
  int threads = 1;
  /// Route GEMMs and element loops through the pre-PR scalar kernels
  /// (serial, per-layer allocation) — the recorded perf baseline.
  bool reference = false;
  /// Opt-in fast tier (docs/performance.md): fused conv+bias+ReLU,
  /// direct 3x3/1x1 convolution, int8 fully-connected layers, sqrt-based
  /// LRN and affinity-aware chunk placement. Forfeits bit-identity with
  /// the reference path (still deterministic across thread counts);
  /// validated by the digest-tolerance tests. Off by default.
  bool fast = false;
  /// Graph-load-time fast-tier weights (FP32 panels + per-channel int8);
  /// nullptr makes the fast kernels expand weights per call and keep the
  /// fully-connected layers in FP32.
  const QuantizedWeights* quant = nullptr;
};

/// The process-wide pool the kernels fan out on, created on first use
/// with one worker per hardware thread.
util::ThreadPool& compute_pool();

/// The fast tier's pool: pinned workers with per-worker queues, created
/// on first use. Chunk t of every fan-out is addressed to worker t, so a
/// given output slab is always produced (and its inputs re-read) on the
/// same core.
util::ThreadPool& fast_pool();

/// 2-D convolution via im2col + GEMM. `out` is resized to the batched
/// output shape.
template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out, const ExecCtx& ctx = {});

/// In-place ReLU.
template <typename T>
void relu(Tensor<T>& x, const ExecCtx& ctx = {});

/// Max pooling (Caffe semantics: padded cells never win; ceil_mode sizes).
template <typename T>
void max_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx = {});

/// Average pooling. Matches Caffe: the divisor is the full window size
/// including padding cells (AVE pooling with pad counts zeros).
template <typename T>
void avg_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out,
              const ExecCtx& ctx = {});

/// Across-channel LRN. Accumulation in FP32 for both precisions.
template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out,
         const ExecCtx& ctx = {});

/// Channel concatenation. Inputs must agree on n/h/w.
template <typename T>
void concat(const std::vector<const Tensor<T>*>& ins, Tensor<T>& out);

/// Fully connected: out[n, f] = sum_i w[f, i] * in[n, i] + b[f].
/// Runs as a GEMV per batch item (bit-identical to the n = 1 GEMM it
/// replaced).
template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out,
                     const ExecCtx& ctx = {});

/// Channel-wise softmax (numerically stabilised; always computed in FP32).
template <typename T>
void softmax(const Tensor<T>& in, Tensor<T>& out);

// --- fast tier -------------------------------------------------------------

/// Fast-tier convolution: direct (im2col-free) specialisations for 3x3
/// and stride-1 1x1 kernels, im2col+GEMM otherwise; FP32 accumulation
/// with bias (and, when `fuse_relu`, the ReLU) applied before the single
/// round to T — no intermediate activation round-trip. `fl` supplies the
/// graph-load-time FP32 weight panel (nullptr expands per call). Not
/// bit-identical to conv2d; deterministic across thread counts.
template <typename T>
void conv2d_fast(const Tensor<T>& in, const LayerParams<T>& params,
                 const FastLayer* fl, const ConvParams& p, bool fuse_relu,
                 Tensor<T>& out, const ExecCtx& ctx = {});

/// Fast-tier fully connected on per-channel int8 weights: the activation
/// is quantized dynamically (per-tensor symmetric scale), the GEMV
/// accumulates in int32, and y[f] = scale_x*scale_w[f]*acc + b[f] (+
/// optional fused ReLU) rounds once to T. Falls back to the FP32
/// fully_connected when `fl` is nullptr.
template <typename T>
void fully_connected_fast(const Tensor<T>& in, const LayerParams<T>& params,
                          const FastLayer* fl, const FCParams& p,
                          bool fuse_relu, Tensor<T>& out,
                          const ExecCtx& ctx = {});

}  // namespace ncsw::nn::kernels
