// Reference layer kernels, templated over precision. The FP32
// instantiation is the "Caffe-MKL" functional path; the FP16 instantiation
// is the Myriad-2 path (FP16 storage, FP32 accumulation where a hardware
// MAC pipeline would keep a wide accumulator, per-element rounding on
// write-back).
#pragma once

#include <vector>

#include "nn/graph.h"
#include "nn/weights.h"
#include "tensor/tensor.h"

namespace ncsw::nn::kernels {

using tensor::Tensor;

/// 2-D convolution via im2col + GEMM. `out` is resized to the batched
/// output shape.
template <typename T>
void conv2d(const Tensor<T>& in, const LayerParams<T>& params,
            const ConvParams& p, Tensor<T>& out);

/// In-place ReLU.
template <typename T>
void relu(Tensor<T>& x);

/// Max pooling (Caffe semantics: padded cells never win; ceil_mode sizes).
template <typename T>
void max_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out);

/// Average pooling. Matches Caffe: the divisor is the full window size
/// including padding cells (AVE pooling with pad counts zeros).
template <typename T>
void avg_pool(const Tensor<T>& in, const PoolParams& p, Tensor<T>& out);

/// Across-channel LRN. Accumulation in FP32 for both precisions.
template <typename T>
void lrn(const Tensor<T>& in, const LRNParams& p, Tensor<T>& out);

/// Channel concatenation. Inputs must agree on n/h/w.
template <typename T>
void concat(const std::vector<const Tensor<T>*>& ins, Tensor<T>& out);

/// Fully connected: out[n, f] = sum_i w[f, i] * in[n, i] + b[f].
template <typename T>
void fully_connected(const Tensor<T>& in, const LayerParams<T>& params,
                     const FCParams& p, Tensor<T>& out);

/// Channel-wise softmax (numerically stabilised; always computed in FP32).
template <typename T>
void softmax(const Tensor<T>& in, Tensor<T>& out);

}  // namespace ncsw::nn::kernels
