// Synthetic ILSVRC-2012 Validation stand-in.
//
// The paper runs the 50 000-image ILSVRC-2012 Validation set, split into
// 5 subsets of 10 000, with ground truth from the Bounding Box
// Annotations. We cannot ship ImageNet, so this module generates a
// deterministic labelled dataset with a *controlled* difficulty:
//
//   image = mid-grey + a*(P_label - mid) + b*(P_distractor - mid) + noise
//
// where P_c is a per-class smooth prototype pattern (random low-frequency
// sinusoid mixture). The distractor is another class, so miss-predictions
// land on plausible alternatives; the blend coefficients are calibrated
// (see dataset::default_blend) so the template-matched TinyGoogLeNet
// classifier lands near the paper's ~32% top-1 error. Everything is a
// pure function of (seed, subset, index), so any image can be generated
// on any thread with no shared state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "imgproc/image.h"
#include "imgproc/ops.h"
#include "tensor/tensor.h"

namespace ncsw::dataset {

/// Blend coefficients controlling dataset difficulty.
struct BlendParams {
  double signal = 0.715;     ///< weight of the true-class prototype
  double distractor = 0.285; ///< weight of the distractor-class prototype
  double noise_sigma = 15.0; ///< Gaussian pixel noise (0..255 scale)
};

/// Calibrated default: places the FP32 top-1 error of the template-matched
/// TinyGoogLeNet near the paper's 32% (see tests/dataset and the fig7a
/// bench, which record the measured value).
BlendParams default_blend() noexcept;

/// Dataset layout parameters.
struct DatasetConfig {
  int num_classes = 50;
  int image_size = 48;        ///< generated edge; the pipeline resizes down
  int subsets = 5;            ///< the paper's 5 groups
  int images_per_subset = 10000;
  std::uint64_t seed = 0x5eed5eedULL;
  BlendParams blend = default_blend();
};

/// A labelled sample.
struct LabeledImage {
  imgproc::Image image;
  int label = 0;       ///< ground-truth class (the "annotation")
  int distractor = 0;  ///< blended-in second class (for analysis)
  int subset = 0;
  int index = 0;       ///< index within the subset
};

/// Deterministic synthetic dataset. Thread-safe: all generation is
/// stateless given the config.
class SyntheticImageNet {
 public:
  explicit SyntheticImageNet(const DatasetConfig& config = {});

  const DatasetConfig& config() const noexcept { return config_; }

  /// Per-channel means of the generated distribution (mid-grey), for the
  /// preprocessing pipeline.
  imgproc::ChannelMeans means() const noexcept {
    return imgproc::ChannelMeans{127.5f, 127.5f, 127.5f};
  }

  /// Prototype pattern of class `c` (pure signal, no noise).
  imgproc::Image prototype(int c) const;

  /// Ground-truth label of (subset, index) — the annotations file.
  int label_of(int subset, int index) const;

  /// Generate sample (subset, index).
  LabeledImage sample(int subset, int index) const;

  /// Preprocess an image for a network with square input `input_size`:
  /// bilinear resize + CHW float tensor with dataset means subtracted.
  tensor::TensorF preprocess(const imgproc::Image& image,
                             int input_size) const;

  /// Prototype tensors for all classes at `input_size` (classifier fit).
  std::vector<tensor::TensorF> prototype_tensors(int input_size) const;

  int num_classes() const noexcept { return config_.num_classes; }
  int subsets() const noexcept { return config_.subsets; }
  int images_per_subset() const noexcept { return config_.images_per_subset; }

 private:
  void check_coords(int subset, int index) const;
  std::uint64_t sample_key(int subset, int index) const noexcept;

  DatasetConfig config_;
};

/// Subset name as the benches print it ("Set-1".."Set-5").
std::string subset_name(int subset);

}  // namespace ncsw::dataset
