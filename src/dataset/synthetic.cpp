#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace ncsw::dataset {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kMid = 127.5;
constexpr int kWaves = 4;          // sinusoids per channel
constexpr double kAmplitude = 80;  // prototype swing around mid-grey

// Low-frequency sinusoid mixture in [-1, 1] for (class, channel).
struct Wave {
  double fx, fy, phase, amp;
};

void class_waves(std::uint64_t seed, int c, int ch, Wave out[kWaves]) {
  util::Xoshiro256 rng(util::hash_mix(
      seed, 0x1000003ULL * static_cast<std::uint64_t>(c) + static_cast<std::uint64_t>(ch)));
  for (int k = 0; k < kWaves; ++k) {
    out[k].fx = static_cast<double>(rng.uniform_int(0, 3));
    out[k].fy = static_cast<double>(rng.uniform_int(0, 3));
    if (out[k].fx == 0 && out[k].fy == 0) out[k].fx = 1;
    out[k].phase = rng.uniform(0.0, 2.0 * kPi);
    out[k].amp = rng.uniform(0.5, 1.0);
  }
}

double wave_value(const Wave w[kWaves], double u, double v) {
  double s = 0.0, norm = 0.0;
  for (int k = 0; k < kWaves; ++k) {
    s += w[k].amp *
         std::sin(2.0 * kPi * (w[k].fx * u + w[k].fy * v) + w[k].phase);
    norm += w[k].amp;
  }
  return s / norm;  // in [-1, 1]
}

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0));
}
}  // namespace

BlendParams default_blend() noexcept { return BlendParams{}; }

SyntheticImageNet::SyntheticImageNet(const DatasetConfig& config)
    : config_(config) {
  if (config_.num_classes < 2 || config_.image_size < 8 ||
      config_.subsets < 1 || config_.images_per_subset < 1) {
    throw std::invalid_argument("SyntheticImageNet: bad config");
  }
  if (config_.blend.signal < 0 || config_.blend.distractor < 0 ||
      config_.blend.noise_sigma < 0) {
    throw std::invalid_argument("SyntheticImageNet: bad blend");
  }
}

imgproc::Image SyntheticImageNet::prototype(int c) const {
  if (c < 0 || c >= config_.num_classes) {
    throw std::out_of_range("prototype: bad class");
  }
  const int size = config_.image_size;
  imgproc::Image img(size, size);
  for (int ch = 0; ch < 3; ++ch) {
    Wave waves[kWaves];
    class_waves(config_.seed, c, ch, waves);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const double u = static_cast<double>(x) / size;
        const double v = static_cast<double>(y) / size;
        img.at(x, y, ch) =
            clamp_pixel(kMid + kAmplitude * wave_value(waves, u, v));
      }
    }
  }
  return img;
}

std::uint64_t SyntheticImageNet::sample_key(int subset,
                                            int index) const noexcept {
  return util::hash_mix(config_.seed ^ 0xda7a5e7ULL,
                        (static_cast<std::uint64_t>(subset) << 32) |
                            static_cast<std::uint64_t>(index));
}

void SyntheticImageNet::check_coords(int subset, int index) const {
  if (subset < 0 || subset >= config_.subsets || index < 0 ||
      index >= config_.images_per_subset) {
    throw std::out_of_range("SyntheticImageNet: bad (subset, index)");
  }
}

int SyntheticImageNet::label_of(int subset, int index) const {
  check_coords(subset, index);
  util::Xoshiro256 rng(sample_key(subset, index));
  return static_cast<int>(rng.uniform_u64(config_.num_classes));
}

LabeledImage SyntheticImageNet::sample(int subset, int index) const {
  check_coords(subset, index);
  util::Xoshiro256 rng(sample_key(subset, index));
  const int label = static_cast<int>(rng.uniform_u64(config_.num_classes));
  int distractor =
      static_cast<int>(rng.uniform_u64(config_.num_classes - 1));
  if (distractor >= label) ++distractor;

  const int size = config_.image_size;
  LabeledImage out;
  out.label = label;
  out.distractor = distractor;
  out.subset = subset;
  out.index = index;
  out.image = imgproc::Image(size, size);

  const BlendParams& bp = config_.blend;
  for (int ch = 0; ch < 3; ++ch) {
    Wave wl[kWaves], wd[kWaves];
    class_waves(config_.seed, label, ch, wl);
    class_waves(config_.seed, distractor, ch, wd);
    for (int y = 0; y < size; ++y) {
      for (int x = 0; x < size; ++x) {
        const double u = static_cast<double>(x) / size;
        const double v = static_cast<double>(y) / size;
        const double sig = kAmplitude * wave_value(wl, u, v);
        const double dis = kAmplitude * wave_value(wd, u, v);
        const double noise = rng.normal(0.0, bp.noise_sigma);
        out.image.at(x, y, ch) = clamp_pixel(
            kMid + bp.signal * sig + bp.distractor * dis + noise);
      }
    }
  }
  return out;
}

tensor::TensorF SyntheticImageNet::preprocess(const imgproc::Image& image,
                                              int input_size) const {
  const imgproc::Image resized =
      imgproc::resize_bilinear(image, input_size, input_size);
  return imgproc::to_tensor_f32(resized, means());
}

std::vector<tensor::TensorF> SyntheticImageNet::prototype_tensors(
    int input_size) const {
  std::vector<tensor::TensorF> out;
  out.reserve(static_cast<std::size_t>(config_.num_classes));
  for (int c = 0; c < config_.num_classes; ++c) {
    out.push_back(preprocess(prototype(c), input_size));
  }
  return out;
}

std::string subset_name(int subset) {
  return "Set-" + std::to_string(subset + 1);
}

}  // namespace ncsw::dataset
