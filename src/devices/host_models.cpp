#include "devices/host_models.h"

#include <mutex>
#include <stdexcept>

#include "devices/calibration.h"
#include "myriad/myriad.h"
#include "nn/googlenet.h"

namespace ncsw::devices {

HostDeviceModel::HostDeviceModel(std::string name, double t_inf_ms,
                                 double overhead_ms,
                                 std::int64_t reference_macs, double tdp_w)
    : name_(std::move(name)),
      t_inf_ms_(t_inf_ms),
      overhead_ms_(overhead_ms),
      reference_macs_(reference_macs),
      tdp_w_(tdp_w) {
  if (t_inf_ms_ <= 0 || overhead_ms_ < 0 || reference_macs_ <= 0 ||
      tdp_w_ <= 0) {
    throw std::invalid_argument("HostDeviceModel: bad parameters");
  }
}

double HostDeviceModel::per_image_s(int batch, std::int64_t macs) const {
  if (batch < 1) throw std::invalid_argument("per_image_s: batch < 1");
  if (macs <= 0) throw std::invalid_argument("per_image_s: macs <= 0");
  const double ref_ms =
      t_inf_ms_ + overhead_ms_ / static_cast<double>(batch);
  const double scale =
      static_cast<double>(macs) / static_cast<double>(reference_macs_);
  return ref_ms * scale * 1e-3;
}

std::int64_t googlenet_macs() {
  static std::once_flag flag;
  static std::int64_t macs = 0;
  std::call_once(flag, [] {
    // Use the compiled-graph accounting (includes pool/LRN/elementwise
    // work) so the ratio against any ModelBundle::macs is consistent.
    macs = graphc::compile(nn::build_googlenet(), graphc::Precision::kFP16)
               .total_macs();
  });
  return macs;
}

HostDeviceModel make_cpu_model() {
  return HostDeviceModel("Intel Xeon E5-2609v2 x2 (Caffe-MKL, FP32)",
                         calibration::kCpuInfMs, calibration::kCpuOverheadMs,
                         googlenet_macs(),
                         myriad::TdpConstants::kXeonE52609v2W);
}

HostDeviceModel make_gpu_model() {
  return HostDeviceModel("NVIDIA Quadro K4000 (Caffe-cuDNN, FP32)",
                         calibration::kGpuInfMs, calibration::kGpuOverheadMs,
                         googlenet_macs(),
                         myriad::TdpConstants::kQuadroK4000W);
}

}  // namespace ncsw::devices
