// Analytic timing models for the host-side reference implementations the
// paper compares against (Caffe-MKL on the dual Xeon, Caffe-cuDNN on the
// Quadro K4000). Both follow a two-parameter batch hyperbola
//      t_per_image(b) = t_inf + overhead / b
// fitted to the paper's measured anchors (see devices/calibration.h).
// Work is priced per MAC, so running a smaller network scales the model
// linearly — the compiled graph supplies the MAC count.
#pragma once

#include <cstdint>
#include <string>

#include "graphc/compiler.h"

namespace ncsw::devices {

/// Batch-latency model for a host device (CPU or GPU).
class HostDeviceModel {
 public:
  /// `t_inf_ms` / `overhead_ms` are the hyperbola parameters for the
  /// reference network (GoogLeNet); `reference_macs` its MAC count;
  /// `tdp_w` the device TDP used by the paper's throughput/Watt metric.
  HostDeviceModel(std::string name, double t_inf_ms, double overhead_ms,
                  std::int64_t reference_macs, double tdp_w);

  const std::string& name() const noexcept { return name_; }
  double tdp_w() const noexcept { return tdp_w_; }

  /// Per-image latency (seconds) at batch size `b` for a network with
  /// `macs` multiply-accumulates. b >= 1.
  double per_image_s(int batch, std::int64_t macs) const;

  /// Per-image latency for the reference network.
  double per_image_s(int batch) const {
    return per_image_s(batch, reference_macs_);
  }

  /// Throughput (img/s) at batch `b` for the reference network.
  double throughput(int batch) const { return 1.0 / per_image_s(batch); }

  /// Paper Eq. (1): images per second per Watt of TDP.
  double throughput_per_watt(int batch) const {
    return throughput(batch) / tdp_w_;
  }

 private:
  std::string name_;
  double t_inf_ms_;
  double overhead_ms_;
  std::int64_t reference_macs_;
  double tdp_w_;
};

/// The paper's CPU: 2x Intel Xeon E5-2609v2, Caffe-MKL, FP32.
HostDeviceModel make_cpu_model();

/// The paper's GPU: NVIDIA Quadro K4000, Caffe-cuDNN, FP32.
HostDeviceModel make_gpu_model();

/// MAC count of the reference network (BVLC GoogLeNet, batch 1); computed
/// once from the real graph.
std::int64_t googlenet_macs();

}  // namespace ncsw::devices
