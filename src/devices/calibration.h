// Single source of truth for every calibration constant, each annotated
// with the paper anchor it reproduces (Section IV/V). See DESIGN.md §5.
#pragma once

namespace ncsw::devices::calibration {

// ---------------------------------------------------------------------------
// CPU: 2x Intel Xeon E5-2609v2, Caffe-MKL v1.0.7, FP32, batch processing.
// Batch latency follows t(b) = t_inf + o / b: GEMM efficiency improves and
// framework overhead amortises with batch, saturating quickly (the paper:
// "the performance of the CPU implementation is barely affected").
// Anchors: 26.0 ms @ batch 1, 22.7 ms @ batch 8 (=> 44.0 img/s).
// Prediction: 44.5 img/s @ batch 16 — exactly the paper's Fig. 8b maximum.
// ---------------------------------------------------------------------------
inline constexpr double kCpuInfMs = 22.229;      ///< asymptotic ms/image
inline constexpr double kCpuOverheadMs = 3.771;  ///< per-batch amortised ms

// ---------------------------------------------------------------------------
// GPU: NVIDIA Quadro K4000, Caffe-cuDNN v0.16.4, FP32.
// Anchors: 25.9 ms @ batch 1, 13.5 ms @ batch 8 (=> 74.2 img/s).
// Prediction: 79.3 img/s @ batch 16 vs the paper's 79.9.
// ---------------------------------------------------------------------------
inline constexpr double kGpuInfMs = 11.729;
inline constexpr double kGpuOverheadMs = 14.171;

// ---------------------------------------------------------------------------
// VPU: the Myriad 2 chip model (myriad::MyriadConfig defaults) is
// calibrated so one GoogLeNet FP16 inference executes in ~99.3 ms on-chip;
// USB transfer + command overhead brings the single-stick end-to-end time
// to the paper's 100.7 ms. Multi-VPU throughput *emerges* from the NCS
// simulation; the only host-side constants are the inter-op gaps below.
// ---------------------------------------------------------------------------
/// Host loop cost between inferences, single-threaded driver.
inline constexpr double kVpuSingleGapS = 0.2e-3;
/// Thread-management cost per inference in the multi-threaded multi-VPU
/// driver (paper: "a small penalty ... due to the thread-management
/// overhead and the data transferring involved").
inline constexpr double kVpuThreadGapS = 3.2e-3;

// ---------------------------------------------------------------------------
// Relative run-to-run noise applied to CPU/GPU batch timings (the paper's
// error bars are on the order of a percent).
// ---------------------------------------------------------------------------
inline constexpr double kHostJitterFrac = 0.006;

// ---------------------------------------------------------------------------
// Host fast tier (not a paper anchor): throughput multiplier a
// HostTarget::set_fast(true) target applies to the analytic batch model,
// calibrated from bench/perf_forward's measured fast-vs-optimised
// single-thread ratio (fp32; see BENCH_perf_forward.json,
// fp32.fast.speedup_vs_opt_t1_x). Keeps serve_loadgen's simulated
// mixed-fast phase consistent with what the real kernels deliver.
// ---------------------------------------------------------------------------
inline constexpr double kHostFastSpeedupX = 2.5;

// TDP constants are in myriad::TdpConstants (chip 0.9 W, stick 2.5 W,
// Xeon E5-2609v2 80 W, Quadro K4000 80 W).

}  // namespace ncsw::devices::calibration
