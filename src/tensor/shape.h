// 4-D NCHW tensor shape used across the NN engine and the graph compiler.
// Everything in GoogLeNet (and in Caffe blobs, which this mirrors) is 4-D:
// fully-connected activations are N x C x 1 x 1.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ncsw::tensor {

/// Dense NCHW shape. All dimensions must be >= 1.
struct Shape {
  std::int64_t n = 1;  ///< batch
  std::int64_t c = 1;  ///< channels
  std::int64_t h = 1;  ///< height
  std::int64_t w = 1;  ///< width

  constexpr Shape() = default;
  constexpr Shape(std::int64_t n_, std::int64_t c_, std::int64_t h_,
                  std::int64_t w_)
      : n(n_), c(c_), h(h_), w(w_) {}

  /// Total number of elements.
  constexpr std::int64_t numel() const noexcept { return n * c * h * w; }
  /// Elements per batch item.
  constexpr std::int64_t chw() const noexcept { return c * h * w; }
  /// Spatial elements per channel.
  constexpr std::int64_t hw() const noexcept { return h * w; }

  /// Linear offset of element (in_, ic, ih, iw); no bounds checking.
  constexpr std::int64_t offset(std::int64_t in_, std::int64_t ic,
                                std::int64_t ih, std::int64_t iw) const noexcept {
    return ((in_ * c + ic) * h + ih) * w + iw;
  }

  constexpr bool operator==(const Shape& o) const noexcept {
    return n == o.n && c == o.c && h == o.h && w == o.w;
  }
  constexpr bool operator!=(const Shape& o) const noexcept {
    return !(*this == o);
  }

  /// True when every dimension is >= 1.
  constexpr bool valid() const noexcept {
    return n >= 1 && c >= 1 && h >= 1 && w >= 1;
  }

  /// "1x64x112x112" rendering for diagnostics.
  std::string to_string() const {
    return std::to_string(n) + "x" + std::to_string(c) + "x" +
           std::to_string(h) + "x" + std::to_string(w);
  }

  /// Same shape with a different batch dimension.
  constexpr Shape with_batch(std::int64_t batch) const noexcept {
    return Shape{batch, c, h, w};
  }
};

/// Throw std::invalid_argument when the shape is degenerate.
inline void check_shape(const Shape& s, const char* context) {
  if (!s.valid()) {
    throw std::invalid_argument(std::string(context) +
                                ": invalid shape " + s.to_string());
  }
}

}  // namespace ncsw::tensor
