#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

namespace ncsw::tensor {

namespace {
// Cache-blocking tile sizes chosen for small L1/L2; correctness does not
// depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 128;
constexpr std::int64_t kBlockK = 256;
}  // namespace

void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) noexcept {
  // Scale / clear C first so the blocked accumulation below can always add.
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(j0 + kBlockN, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float av = alpha * arow[kk];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_f16(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const ncsw::fp16::half* a, const ncsw::fp16::half* b, float beta,
              ncsw::fp16::half* c) noexcept {
  // Accumulate each output row in FP32 scratch, then round once — this is
  // the numerically honest model of an FP16 MAC pipeline with a wide
  // accumulator.
  std::vector<float> acc(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < m; ++i) {
    if (beta == 0.0f) {
      std::fill(acc.begin(), acc.end(), 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            beta * static_cast<float>(c[i * n + j]);
      }
    }
    const ncsw::fp16::half* arow = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = alpha * static_cast<float>(arow[kk]);
      if (av == 0.0f) continue;
      const ncsw::fp16::half* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] += av * static_cast<float>(brow[j]);
      }
    }
    for (std::int64_t j = 0; j < n; ++j) {
      c[i * n + j] = ncsw::fp16::half(acc[static_cast<std::size_t>(j)]);
    }
  }
}

void gemv_f32(std::int64_t m, std::int64_t k, const float* a, const float* x,
              float beta, float* y) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    float acc = beta == 0.0f ? 0.0f : beta * y[i];
    const float* arow = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * x[kk];
    y[i] = acc;
  }
}

}  // namespace ncsw::tensor
