#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "util/multiversion.h"

namespace ncsw::tensor {

namespace {
// Cache-blocking tile sizes chosen for small L1/L2; correctness does not
// depend on them.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 128;
constexpr std::int64_t kBlockK = 256;

// Register micro-tile. Every output element still accumulates its k terms
// in ascending order with the same per-term arithmetic as the reference
// kernel (av = alpha * a[i,kk], skipped when zero), so results are
// bit-identical: the accumulators are loaded from C before the k-slice
// and stored after it, which is the same value chain as accumulating in
// memory.
constexpr std::int64_t kTileM = 4;
constexpr std::int64_t kTileN = 8;

// Full 4x8 tile: a points at the tile's first row, b at the tile's first
// column, c at the tile's top-left element; kk runs over [k0, k1).
inline void tile_4x8(std::int64_t k0, std::int64_t k1, float alpha,
                     const float* a, std::int64_t lda, const float* b,
                     std::int64_t ldb, float* c, std::int64_t ldc) noexcept {
  float acc[kTileM][kTileN];
  for (std::int64_t r = 0; r < kTileM; ++r) {
    for (std::int64_t j = 0; j < kTileN; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::int64_t kk = k0; kk < k1; ++kk) {
    const float* brow = b + kk * ldb;
    const float av0 = alpha * a[0 * lda + kk];
    const float av1 = alpha * a[1 * lda + kk];
    const float av2 = alpha * a[2 * lda + kk];
    const float av3 = alpha * a[3 * lda + kk];
    if (av0 != 0.0f) {
      for (std::int64_t j = 0; j < kTileN; ++j) acc[0][j] += av0 * brow[j];
    }
    if (av1 != 0.0f) {
      for (std::int64_t j = 0; j < kTileN; ++j) acc[1][j] += av1 * brow[j];
    }
    if (av2 != 0.0f) {
      for (std::int64_t j = 0; j < kTileN; ++j) acc[2][j] += av2 * brow[j];
    }
    if (av3 != 0.0f) {
      for (std::int64_t j = 0; j < kTileN; ++j) acc[3][j] += av3 * brow[j];
    }
  }
  for (std::int64_t r = 0; r < kTileM; ++r) {
    for (std::int64_t j = 0; j < kTileN; ++j) c[r * ldc + j] = acc[r][j];
  }
}

// Ragged edge (rows < kTileM and/or cols < kTileN): plain memory
// accumulation, same term order.
inline void tile_edge(std::int64_t rows, std::int64_t cols, std::int64_t k0,
                      std::int64_t k1, float alpha, const float* a,
                      std::int64_t lda, const float* b, std::int64_t ldb,
                      float* c, std::int64_t ldc) noexcept {
  for (std::int64_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    const float* arow = a + r * lda;
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float av = alpha * arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      for (std::int64_t j = 0; j < cols; ++j) crow[j] += av * brow[j];
    }
  }
}

// C (+)= alpha * A*B over pre-initialised C (the beta prologue has
// already run). Strided row-major panels.
void accumulate_blocked(std::int64_t m, std::int64_t n, std::int64_t k,
                        float alpha, const float* a, std::int64_t lda,
                        const float* b, std::int64_t ldb, float* c,
                        std::int64_t ldc) noexcept {
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(j0 + kBlockN, n);
        std::int64_t i = i0;
        for (; i + kTileM <= i1; i += kTileM) {
          std::int64_t j = j0;
          for (; j + kTileN <= j1; j += kTileN) {
            tile_4x8(k0, k1, alpha, a + i * lda, lda, b + j, ldb,
                     c + i * ldc + j, ldc);
          }
          if (j < j1) {
            tile_edge(kTileM, j1 - j, k0, k1, alpha, a + i * lda, lda, b + j,
                      ldb, c + i * ldc + j, ldc);
          }
        }
        if (i < i1) {
          tile_edge(i1 - i, j1 - j0, k0, k1, alpha, a + i * lda, lda, b + j0,
                    ldb, c + i * ldc + j0, ldc);
        }
      }
    }
  }
}

// Grow-only resize keeping existing contents irrelevant (panels are
// overwritten in full before use).
inline float* panel(std::vector<float>& v, std::int64_t count) {
  const auto need = static_cast<std::size_t>(count);
  if (v.size() < need) v.resize(need);
  return v.data();
}
}  // namespace

void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) noexcept {
  gemm_f32(m, n, k, alpha, a, k, b, n, beta, c, n);
}

void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, std::int64_t lda, const float* b,
              std::int64_t ldb, float beta, float* c,
              std::int64_t ldc) noexcept {
  // Scale / clear C first so the blocked accumulation below can always add.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  accumulate_blocked(m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void gemm_f16(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const ncsw::fp16::half* a, const ncsw::fp16::half* b, float beta,
              ncsw::fp16::half* c, GemmScratch* scratch) noexcept {
  // Expand the half operands to FP32 panels once (exact: half -> float is
  // value-preserving) instead of converting per multiply-accumulate, then
  // accumulate in FP32 and round once per element — the numerically honest
  // model of an FP16 MAC pipeline with a wide accumulator, bit-identical
  // to the pre-PR per-element kernel.
  GemmScratch local;
  GemmScratch& s = scratch ? *scratch : local;
  float* af = panel(s.a, m * k);
  float* bf = panel(s.b, k * n);
  float* cf = panel(s.c, m * n);
  ncsw::fp16::half_to_float_span(a, af, static_cast<std::size_t>(m * k));
  ncsw::fp16::half_to_float_span(b, bf, static_cast<std::size_t>(k * n));
  if (beta == 0.0f) {
    std::fill(cf, cf + m * n, 0.0f);
  } else {
    ncsw::fp16::half_to_float_span(c, cf, static_cast<std::size_t>(m * n));
    if (beta != 1.0f) {
      for (std::int64_t i = 0; i < m * n; ++i) cf[i] *= beta;
    }
  }
  accumulate_blocked(m, n, k, alpha, af, k, bf, n, cf, n);
  ncsw::fp16::float_to_half_span(cf, c, static_cast<std::size_t>(m * n));
}

void gemv_f32(std::int64_t m, std::int64_t k, const float* a, const float* x,
              float beta, float* y) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    float acc = beta == 0.0f ? 0.0f : beta * y[i];
    const float* arow = a + i * k;
    // Zero terms are skipped, matching the GEMM kernels (so the n = 1
    // fully-connected path is bit-identical to the GEMM it replaced).
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      acc += av * x[kk];
    }
    y[i] = acc;
  }
}

void gemv_f16(std::int64_t m, std::int64_t k, const ncsw::fp16::half* a,
              const ncsw::fp16::half* x, float beta, ncsw::fp16::half* y,
              GemmScratch* scratch) noexcept {
  GemmScratch local;
  GemmScratch& s = scratch ? *scratch : local;
  float* af = panel(s.a, m * k);
  float* xf = panel(s.b, k);
  ncsw::fp16::half_to_float_span(a, af, static_cast<std::size_t>(m * k));
  ncsw::fp16::half_to_float_span(x, xf, static_cast<std::size_t>(k));
  for (std::int64_t i = 0; i < m; ++i) {
    float acc =
        beta == 0.0f ? 0.0f : beta * static_cast<float>(y[i]);
    const float* arow = af + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      acc += av * xf[kk];
    }
    y[i] = ncsw::fp16::half(acc);
  }
}

namespace {

// Register micro-tile of the fast-tier GEMM: NR rows x 16 columns,
// accumulated over the full k extent in registers and stored once
// (no C round-trips). 6x16 fills the AVX2 register file (12 ymm
// accumulators + broadcast + B row).
//
// Written with NCSW_V8F explicitly rather than scalar loops: GCC 12's
// loop/SLP vectorizer only produces wide code for this kernel when the
// strides are compile-time constants (e.g. in a .constprop clone); the
// general runtime-stride version degrades to spilled 16-byte code,
// ~15x slower. The generic-vector form lowers directly to the widest
// ISA of the enclosing variant with no cost-model involvement, and the
// scalar * vector products broadcast without insert chains.
template <int NR>
NCSW_FAST_INLINE void tile_fast_nx16(std::int64_t k, const float* a,
                                     std::int64_t lda, const float* b,
                                     std::int64_t ldb, float* c,
                                     std::int64_t ldc) noexcept {
  NCSW_V8F acc[NR][2]{};
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* brow = b + kk * ldb;
    const NCSW_V8F b0 = *reinterpret_cast<const NCSW_V8F*>(brow);
    const NCSW_V8F b1 = *reinterpret_cast<const NCSW_V8F*>(brow + 8);
    for (int r = 0; r < NR; ++r) {
      const float av = a[r * lda + kk];
      acc[r][0] += av * b0;
      acc[r][1] += av * b1;
    }
  }
  for (int r = 0; r < NR; ++r) {
    *reinterpret_cast<NCSW_V8F*>(c + r * ldc) = acc[r][0];
    *reinterpret_cast<NCSW_V8F*>(c + r * ldc + 8) = acc[r][1];
  }
}

// Scalar edge of the fast GEMM (row/column tails); same ascending-k
// accumulation order per element as the tiles.
NCSW_FAST_INLINE void edge_fast(std::int64_t rows, std::int64_t cols,
                                std::int64_t k, const float* a,
                                std::int64_t lda, const float* b,
                                std::int64_t ldb, float* c,
                                std::int64_t ldc) noexcept {
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* arow = a + r * lda;
    for (std::int64_t j = 0; j < cols; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * ldb + j];
      c[r * ldc + j] = acc;
    }
  }
}

NCSW_FAST_INLINE void gemm_f32_fast_body(std::int64_t m, std::int64_t n,
                                         std::int64_t k, const float* a,
                                         std::int64_t lda, const float* b,
                                         std::int64_t ldb, float* c,
                                         std::int64_t ldc) noexcept {
  std::int64_t i = 0;
  for (; i + 6 <= m; i += 6) {
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      tile_fast_nx16<6>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j, ldc);
    }
    if (j < n) edge_fast(6, n - j, k, a + i * lda, lda, b + j, ldb,
                         c + i * ldc + j, ldc);
  }
  if (i < m) {
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      switch (m - i) {
        case 1:
          tile_fast_nx16<1>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                            ldc);
          break;
        case 2:
          tile_fast_nx16<2>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                            ldc);
          break;
        case 3:
          tile_fast_nx16<3>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                            ldc);
          break;
        case 4:
          tile_fast_nx16<4>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                            ldc);
          break;
        default:
          tile_fast_nx16<5>(k, a + i * lda, lda, b + j, ldb, c + i * ldc + j,
                            ldc);
          break;
      }
    }
    if (j < n) edge_fast(m - i, n - j, k, a + i * lda, lda, b + j, ldb,
                         c + i * ldc + j, ldc);
  }
}

NCSW_FAST_INLINE void gemm_s8_body(std::int64_t m, std::int64_t n,
                                   std::int64_t k, const std::int8_t* a,
                                   const std::int8_t* b,
                                   std::int32_t* c) noexcept {
  // i/kk/j order: the inner j loop reads one dense row of B and streams
  // one dense row of C, which vectorises (widen to i16/i32, multiply,
  // add) without any transposition.
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    std::fill(crow, crow + n, 0);
    const std::int8_t* arow = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = arow[kk];
      if (av == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
  }
}

NCSW_FAST_INLINE void gemv_s8_body(std::int64_t m, std::int64_t k,
                                   const std::int8_t* a, const std::int8_t* x,
                                   std::int32_t* y) noexcept {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * k;
    std::int32_t acc = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      acc += static_cast<std::int32_t>(arow[kk]) *
             static_cast<std::int32_t>(x[kk]);
    }
    y[i] = acc;
  }
}

// Per-ISA variants of the fast-tier bodies (util/multiversion.h).
NCSW_TARGET_V3 void gemm_f32_fast_v3(std::int64_t m, std::int64_t n,
                                     std::int64_t k, const float* a,
                                     std::int64_t lda, const float* b,
                                     std::int64_t ldb, float* c,
                                     std::int64_t ldc) noexcept {
  gemm_f32_fast_body(m, n, k, a, lda, b, ldb, c, ldc);
}
NCSW_TARGET_V4 void gemm_f32_fast_v4(std::int64_t m, std::int64_t n,
                                     std::int64_t k, const float* a,
                                     std::int64_t lda, const float* b,
                                     std::int64_t ldb, float* c,
                                     std::int64_t ldc) noexcept {
  gemm_f32_fast_body(m, n, k, a, lda, b, ldb, c, ldc);
}
NCSW_TARGET_V3 void gemm_s8_v3(std::int64_t m, std::int64_t n, std::int64_t k,
                               const std::int8_t* a, const std::int8_t* b,
                               std::int32_t* c) noexcept {
  gemm_s8_body(m, n, k, a, b, c);
}
NCSW_TARGET_V4 void gemm_s8_v4(std::int64_t m, std::int64_t n, std::int64_t k,
                               const std::int8_t* a, const std::int8_t* b,
                               std::int32_t* c) noexcept {
  gemm_s8_body(m, n, k, a, b, c);
}
NCSW_TARGET_V3 void gemv_s8_v3(std::int64_t m, std::int64_t k,
                               const std::int8_t* a, const std::int8_t* x,
                               std::int32_t* y) noexcept {
  gemv_s8_body(m, k, a, x, y);
}
NCSW_TARGET_V4 void gemv_s8_v4(std::int64_t m, std::int64_t k,
                               const std::int8_t* a, const std::int8_t* x,
                               std::int32_t* y) noexcept {
  gemv_s8_body(m, k, a, x, y);
}

}  // namespace

void gemm_f32_fast(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, std::int64_t lda, const float* b,
                   std::int64_t ldb, float* c, std::int64_t ldc) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      gemm_f32_fast_v4(m, n, k, a, lda, b, ldb, c, ldc);
      break;
    case util::IsaLevel::kV3:
      gemm_f32_fast_v3(m, n, k, a, lda, b, ldb, c, ldc);
      break;
    default:
      gemm_f32_fast_body(m, n, k, a, lda, b, ldb, c, ldc);
      break;
  }
}

void gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, const std::int8_t* b,
             std::int32_t* c) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      gemm_s8_v4(m, n, k, a, b, c);
      break;
    case util::IsaLevel::kV3:
      gemm_s8_v3(m, n, k, a, b, c);
      break;
    default:
      gemm_s8_body(m, n, k, a, b, c);
      break;
  }
}

void gemv_s8(std::int64_t m, std::int64_t k, const std::int8_t* a,
             const std::int8_t* x, std::int32_t* y) noexcept {
  switch (util::isa_level()) {
    case util::IsaLevel::kV4:
      gemv_s8_v4(m, k, a, x, y);
      break;
    case util::IsaLevel::kV3:
      gemv_s8_v3(m, k, a, x, y);
      break;
    default:
      gemv_s8_body(m, k, a, x, y);
      break;
  }
}

// --- pre-PR reference kernels (kept verbatim) ------------------------------

void gemm_f32_ref(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta,
                  float* c) noexcept {
  if (beta == 0.0f) {
    std::fill(c, c + m * n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const std::int64_t i1 = std::min(i0 + kBlockM, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const std::int64_t k1 = std::min(k0 + kBlockK, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const std::int64_t j1 = std::min(j0 + kBlockN, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          float* crow = c + i * n;
          const float* arow = a + i * k;
          for (std::int64_t kk = k0; kk < k1; ++kk) {
            const float av = alpha * arow[kk];
            if (av == 0.0f) continue;
            const float* brow = b + kk * n;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

void gemm_f16_ref(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const ncsw::fp16::half* a, const ncsw::fp16::half* b,
                  float beta, ncsw::fp16::half* c) noexcept {
  std::vector<float> acc(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < m; ++i) {
    if (beta == 0.0f) {
      std::fill(acc.begin(), acc.end(), 0.0f);
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] =
            beta * static_cast<float>(c[i * n + j]);
      }
    }
    const ncsw::fp16::half* arow = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = alpha * static_cast<float>(arow[kk]);
      if (av == 0.0f) continue;
      const ncsw::fp16::half* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) {
        acc[static_cast<std::size_t>(j)] += av * static_cast<float>(brow[j]);
      }
    }
    for (std::int64_t j = 0; j < n; ++j) {
      c[i * n + j] = ncsw::fp16::half(acc[static_cast<std::size_t>(j)]);
    }
  }
}

}  // namespace ncsw::tensor
