// Dense NCHW tensor over float (FP32) or ncsw::fp16::half (FP16).
//
// The two instantiations back the two execution policies the paper
// compares: Caffe-MKL style FP32 on the CPU target and native FP16 on the
// VPU target.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "half/half.h"
#include "tensor/shape.h"

namespace ncsw::tensor {

/// Trait: scalar types the tensor supports.
template <typename T>
inline constexpr bool is_tensor_scalar_v =
    std::is_same_v<T, float> || std::is_same_v<T, ncsw::fp16::half>;

/// Convert between tensor scalars through float.
template <typename To, typename From>
inline To scalar_cast(From v) noexcept {
  if constexpr (std::is_same_v<To, From>) {
    return v;
  } else if constexpr (std::is_same_v<To, float>) {
    return static_cast<float>(v);
  } else {
    return To(static_cast<float>(v));
  }
}

/// Contiguous NCHW tensor.
template <typename T>
class Tensor {
  static_assert(is_tensor_scalar_v<T>, "Tensor<T>: unsupported scalar");

 public:
  using value_type = T;

  /// Empty (shape 1x1x1x1, one zero element).
  Tensor() : shape_{}, data_(1, T{}) {}

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(const Shape& shape) : shape_(shape) {
    check_shape(shape, "Tensor");
    data_.assign(static_cast<std::size_t>(shape.numel()), T{});
  }

  /// Tensor filled with `init`.
  Tensor(const Shape& shape, T init) : shape_(shape) {
    check_shape(shape, "Tensor");
    data_.assign(static_cast<std::size_t>(shape.numel()), init);
  }

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t numel() const noexcept { return shape_.numel(); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  /// Element access without bounds checking.
  T& at(std::int64_t n, std::int64_t c, std::int64_t h,
        std::int64_t w) noexcept {
    return data_[static_cast<std::size_t>(shape_.offset(n, c, h, w))];
  }
  T at(std::int64_t n, std::int64_t c, std::int64_t h,
       std::int64_t w) const noexcept {
    return data_[static_cast<std::size_t>(shape_.offset(n, c, h, w))];
  }

  /// Linear element access without bounds checking.
  T& operator[](std::int64_t i) noexcept {
    return data_[static_cast<std::size_t>(i)];
  }
  T operator[](std::int64_t i) const noexcept {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Fill every element with `v`.
  void fill(T v) noexcept { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape without reallocating; the element count must match.
  void reshape(const Shape& shape) {
    check_shape(shape, "Tensor::reshape");
    if (shape.numel() != shape_.numel()) {
      throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                  shape_.to_string() + " -> " +
                                  shape.to_string());
    }
    shape_ = shape;
  }

  /// Resize, discarding contents (zero-filled).
  void resize(const Shape& shape) {
    check_shape(shape, "Tensor::resize");
    shape_ = shape;
    data_.assign(static_cast<std::size_t>(shape.numel()), T{});
  }

  /// Pointer to the start of batch item `n`.
  T* batch_ptr(std::int64_t n) noexcept {
    return data() + n * shape_.chw();
  }
  const T* batch_ptr(std::int64_t n) const noexcept {
    return data() + n * shape_.chw();
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorH = Tensor<ncsw::fp16::half>;

/// Elementwise conversion between precisions (or a copy when identical).
/// half <-> float goes through the bulk span converters, which are
/// bit-identical to the scalar conversions.
template <typename To, typename From>
Tensor<To> tensor_cast(const Tensor<From>& src) {
  Tensor<To> dst(src.shape());
  const std::int64_t n = src.numel();
  if constexpr (std::is_same_v<From, ncsw::fp16::half> &&
                std::is_same_v<To, float>) {
    ncsw::fp16::half_to_float_span(src.data(), dst.data(),
                                   static_cast<std::size_t>(n));
  } else if constexpr (std::is_same_v<From, float> &&
                       std::is_same_v<To, ncsw::fp16::half>) {
    ncsw::fp16::float_to_half_span(src.data(), dst.data(),
                                   static_cast<std::size_t>(n));
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      dst[i] = scalar_cast<To>(src[i]);
    }
  }
  return dst;
}

/// Largest absolute elementwise difference, computed in double.
template <typename A, typename B>
double max_abs_diff(const Tensor<A>& a, const Tensor<B>& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(scalar_cast<float>(a[i])) -
                     static_cast<double>(scalar_cast<float>(b[i]));
    m = std::max(m, d < 0 ? -d : d);
  }
  return m;
}

}  // namespace ncsw::tensor
