// Small blocked GEMM used by the im2col convolution and fully-connected
// layers. Row-major: C[M x N] = A[M x K] * B[K x N] (+ C when beta = 1).
//
// The FP16 variant stores operands in binary16 but accumulates in FP32,
// which is how the SHAVE VAU executes FP16 dot products (and how every
// practical FP16 GEMM behaves); the result is rounded to FP16 per element.
#pragma once

#include <cstdint>

#include "half/half.h"

namespace ncsw::tensor {

/// FP32 GEMM: C = alpha * A*B + beta * C. Arrays are row-major and dense.
void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) noexcept;

/// FP16 GEMM with FP32 accumulation; output rounded to FP16.
void gemm_f16(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const ncsw::fp16::half* a, const ncsw::fp16::half* b, float beta,
              ncsw::fp16::half* c) noexcept;

/// Matrix-vector product y = A * x (+ y when beta = 1); row-major A[M x K].
void gemv_f32(std::int64_t m, std::int64_t k, const float* a, const float* x,
              float beta, float* y) noexcept;

}  // namespace ncsw::tensor
