// Small blocked GEMM used by the im2col convolution and fully-connected
// layers. Row-major: C[M x N] = A[M x K] * B[K x N] (+ C when beta = 1).
//
// The FP16 variant stores operands in binary16 but accumulates in FP32,
// which is how the SHAVE VAU executes FP16 dot products (and how every
// practical FP16 GEMM behaves); the result is rounded to FP16 per element.
//
// Implementation notes (docs/performance.md): the FP32 kernel is
// cache-blocked with a 4x8 register-accumulator micro-tile; the FP16
// kernel expands the half operands to FP32 panels once and reuses the
// FP32 kernel. Both are bit-identical to the pre-PR scalar kernels,
// which are kept as gemm_*_ref for A/B benching and the golden tests:
// every output element accumulates its k terms in the same ascending
// order with the same per-term arithmetic, so no rounding changes.
#pragma once

#include <cstdint>
#include <vector>

#include "half/half.h"

namespace ncsw::tensor {

/// Reusable FP32 expansion panels for the FP16 GEMM/GEMV (grow-only;
/// callers that loop over layers pass one scratch to stop per-call
/// allocation).
struct GemmScratch {
  std::vector<float> a;  ///< A expanded to FP32
  std::vector<float> b;  ///< B / x expanded to FP32
  std::vector<float> c;  ///< FP32 accumulator image of C before rounding

  /// Bytes currently reserved across the three panels.
  std::size_t capacity_bytes() const noexcept {
    return (a.capacity() + b.capacity() + c.capacity()) * sizeof(float);
  }
};

/// FP32 GEMM: C = alpha * A*B + beta * C. Arrays are row-major and dense.
void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, const float* b, float beta, float* c) noexcept;

/// Strided FP32 GEMM over row-major panels with explicit leading
/// dimensions (lda >= k, ldb/ldc >= n). Lets callers split C by column
/// range across threads: each thread owns a disjoint [j0, j1) panel of
/// B and C, and per-element results do not depend on the split.
void gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const float* a, std::int64_t lda, const float* b,
              std::int64_t ldb, float beta, float* c,
              std::int64_t ldc) noexcept;

/// FP16 GEMM with FP32 accumulation; output rounded to FP16. The half
/// operands are expanded to FP32 scratch panels once (exact) instead of
/// per multiply-accumulate; pass `scratch` to reuse the panels across
/// calls.
void gemm_f16(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const ncsw::fp16::half* a, const ncsw::fp16::half* b, float beta,
              ncsw::fp16::half* c, GemmScratch* scratch = nullptr) noexcept;

/// Matrix-vector product y = A * x (+ y when beta = 1); row-major A[M x K].
void gemv_f32(std::int64_t m, std::int64_t k, const float* a, const float* x,
              float beta, float* y) noexcept;

/// FP16 GEMV with FP32 accumulation, rounded to FP16 per element —
/// bit-identical to gemm_f16 with n = 1. Pass `scratch` to reuse the
/// FP32 expansion of x across calls.
void gemv_f16(std::int64_t m, std::int64_t k, const ncsw::fp16::half* a,
              const ncsw::fp16::half* x, float beta, ncsw::fp16::half* y,
              GemmScratch* scratch = nullptr) noexcept;

// --- FP32 fast-tier GEMM --------------------------------------------------

/// Fast-tier FP32 GEMM: C = A*B over strided row-major panels
/// (lda >= k, ldb/ldc >= n; C is overwritten). Unlike gemm_f32 this
/// kernel is NOT bit-identical to the reference path: it drops the
/// zero-skip branches, permits FMA contraction, and is compiled per ISA
/// level (x86-64-v3/v4 function multiversioning) so the baseline build
/// stays generic. It is still deterministic for a given machine and
/// inputs — every output element accumulates its k terms in ascending
/// order, independent of how callers split C by column range.
void gemm_f32_fast(std::int64_t m, std::int64_t n, std::int64_t k,
                   const float* a, std::int64_t lda, const float* b,
                   std::int64_t ldb, float* c, std::int64_t ldc) noexcept;

// --- int8 fast-tier kernels -----------------------------------------------
// Quantized arithmetic for the opt-in fast host tier (docs/
// performance.md): operands are symmetric int8 (no zero point),
// accumulation is int32 — exact, since |a*b| <= 127^2 and k < 2^24 for
// every layer in the zoo. Callers apply the per-channel scales on the
// way out; the kernels themselves are integer-only.

/// int8 GEMM with int32 accumulation: c[m x n] = a[m x k] * b[k x n].
/// Row-major, dense; c is overwritten.
void gemm_s8(std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, const std::int8_t* b,
             std::int32_t* c) noexcept;

/// int8 GEMV with int32 accumulation: y[m] = a[m x k] * x[k] — identical
/// to gemm_s8 with n = 1.
void gemv_s8(std::int64_t m, std::int64_t k, const std::int8_t* a,
             const std::int8_t* x, std::int32_t* y) noexcept;

// --- pre-PR reference kernels ---------------------------------------------
// The scalar kernels this tree shipped before the blocked/threaded
// rewrite, kept verbatim: the golden tests assert the optimised kernels
// match them byte for byte, and bench/perf_forward measures speedup
// against them as the recorded baseline.

/// Reference (pre-PR) FP32 GEMM; bit-identical to gemm_f32.
void gemm_f32_ref(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const float* a, const float* b, float beta,
                  float* c) noexcept;

/// Reference (pre-PR) FP16 GEMM; bit-identical to gemm_f16.
void gemm_f16_ref(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                  const ncsw::fp16::half* a, const ncsw::fp16::half* b,
                  float beta, ncsw::fp16::half* c) noexcept;

}  // namespace ncsw::tensor
