#include "half/half.h"

#include <cstring>

#include "util/multiversion.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#include <immintrin.h>
#endif

namespace ncsw::fp16 {

namespace {
std::uint32_t float_bits(float f) noexcept {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float bits_float(std::uint32_t u) noexcept {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}
}  // namespace

std::uint16_t float_to_half_bits(float value) noexcept {
  const std::uint32_t f = float_bits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xffu) - 127;
  std::uint32_t mantissa = f & 0x007fffffu;

  if (exponent == 128) {  // inf or NaN
    if (mantissa != 0) return static_cast<std::uint16_t>(sign | 0x7e00u);
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exponent > 15) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }

  if (exponent >= -14) {  // normal range
    // 10-bit mantissa; round-to-nearest-even on the 13 dropped bits.
    std::uint32_t half_exp = static_cast<std::uint32_t>(exponent + 15);
    std::uint32_t half_man = mantissa >> 13;
    const std::uint32_t round_bits = mantissa & 0x1fffu;
    if (round_bits > 0x1000u ||
        (round_bits == 0x1000u && (half_man & 1u) != 0)) {
      ++half_man;
      if (half_man == 0x400u) {  // mantissa overflow -> bump exponent
        half_man = 0;
        ++half_exp;
        if (half_exp == 31) {
          return static_cast<std::uint16_t>(sign | 0x7c00u);
        }
      }
    }
    return static_cast<std::uint16_t>(sign | (half_exp << 10) | half_man);
  }

  if (exponent >= -25) {  // subnormal half range
    // Add the implicit leading 1. The 24-bit significand M encodes
    // value = M * 2^(e-23); the half subnormal target is
    // man16 = value * 2^24 = M >> (-e - 1) with e in [-25, -15].
    mantissa |= 0x00800000u;
    const int shift = -exponent - 1;  // in [14, 24]
    std::uint32_t half_man = mantissa >> shift;
    const std::uint32_t dropped = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (dropped > halfway || (dropped == halfway && (half_man & 1u) != 0)) {
      ++half_man;  // may carry into the exponent: 0x400 encodes 2^-14, which
                   // is exactly correct.
    }
    return static_cast<std::uint16_t>(sign | half_man);
  }

  // Underflow to signed zero.
  return static_cast<std::uint16_t>(sign);
}

const float* half_to_float_table() noexcept {
  // Thread-safe one-time build (magic static); every entry is produced by
  // the scalar decoder, so table lookups are bit-identical by construction.
  static const auto* table = [] {
    auto* t = new float[65536];
    for (std::uint32_t b = 0; b < 65536; ++b) {
      t[b] = half_bits_to_float(static_cast<std::uint16_t>(b));
    }
    return t;
  }();
  return table;
}

void half_to_float_span(const half* src, float* dst, std::size_t n) noexcept {
  const float* table = half_to_float_table();
  for (std::size_t i = 0; i < n; ++i) dst[i] = table[src[i].bits()];
}

namespace {

// Branch-reduced RTNE float -> half encode (the Giesen "fast3" scheme):
// normals round via an integer add that carries into the exponent when
// the mantissa overflows, subnormals round via a float add against a
// magic constant (reusing the FPU's own round-to-nearest), NaNs collapse
// to the same quiet NaN the scalar path produces. Verified bit-identical
// to float_to_half_bits across ties, boundaries and specials in
// tests/test_half.cpp.
inline std::uint16_t encode_half_rtne(std::uint32_t f) noexcept {
  constexpr std::uint32_t kF32Infty = 255u << 23;
  constexpr std::uint32_t kF16MaxBound = (127u + 16u) << 23;  // 2^16
  constexpr std::uint32_t kDenormMagic = ((127u - 15u) + (23u - 10u) + 1u)
                                         << 23;
  const std::uint32_t sign = f & 0x80000000u;
  f ^= sign;
  std::uint16_t o;
  if (f >= kF16MaxBound) {  // overflow, inf or NaN
    o = (f > kF32Infty) ? 0x7e00u : 0x7c00u;
  } else if (f < (113u << 23)) {  // maps to a subnormal half (or zero)
    float v;
    std::memcpy(&v, &f, sizeof(v));
    float magic;
    std::memcpy(&magic, &kDenormMagic, sizeof(magic));
    v += magic;  // the FPU rounds the dropped bits for us
    std::uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    o = static_cast<std::uint16_t>(u - kDenormMagic);
  } else {  // normal half range
    const std::uint32_t mant_odd = (f >> 13) & 1u;
    f += (static_cast<std::uint32_t>(15 - 127) << 23) + 0xfffu;
    f += mant_odd;  // ties round to even
    o = static_cast<std::uint16_t>(f >> 13);
  }
  return static_cast<std::uint16_t>(o | (sign >> 16));
}

}  // namespace

void float_to_half_span(const float* src, half* dst, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = half::from_bits(encode_half_rtne(float_bits(src[i])));
  }
}

// --- fast-tier span converters --------------------------------------------
// F16C hardware conversion (vcvtph2ps / vcvtps2ph with round-to-nearest-
// even) behind the same runtime ISA dispatch as the fast kernels. The
// instructions implement the identical IEEE conversion as the scalar
// encoders for all numeric values; only NaN payloads differ (hardware
// truncates the payload, the scalar encoder canonicalises), which is why
// these are fast-tier-only entry points.

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)

namespace {

NCSW_TARGET_F16C void h2f_span_f16c(const half* src, float* dst,
                                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  const float* table = half_to_float_table();
  for (; i < n; ++i) dst[i] = table[src[i].bits()];
}

NCSW_TARGET_F16C void f2h_span_f16c(const float* src, half* dst,
                                    std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  for (; i < n; ++i) {
    dst[i] = half::from_bits(encode_half_rtne(float_bits(src[i])));
  }
}

}  // namespace

void half_to_float_span_fast(const half* src, float* dst,
                             std::size_t n) noexcept {
  if (util::isa_level() != util::IsaLevel::kBase) {
    h2f_span_f16c(src, dst, n);
  } else {
    half_to_float_span(src, dst, n);
  }
}

void float_to_half_span_fast(const float* src, half* dst,
                             std::size_t n) noexcept {
  if (util::isa_level() != util::IsaLevel::kBase) {
    f2h_span_f16c(src, dst, n);
  } else {
    float_to_half_span(src, dst, n);
  }
}

#else

void half_to_float_span_fast(const half* src, float* dst,
                             std::size_t n) noexcept {
  half_to_float_span(src, dst, n);
}

void float_to_half_span_fast(const float* src, half* dst,
                             std::size_t n) noexcept {
  float_to_half_span(src, dst, n);
}

#endif

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1fu;
  std::uint32_t mantissa = bits & 0x03ffu;

  if (exponent == 31) {  // inf / NaN
    return bits_float(sign | 0x7f800000u | (mantissa << 13));
  }
  if (exponent == 0) {
    if (mantissa == 0) return bits_float(sign);  // signed zero
    // Subnormal: normalise.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x0400u) == 0);
    mantissa &= 0x03ffu;
    const std::uint32_t float_exp = static_cast<std::uint32_t>(127 - 15 - e);
    return bits_float(sign | (float_exp << 23) | (mantissa << 13));
  }
  const std::uint32_t float_exp = exponent - 15 + 127;
  return bits_float(sign | (float_exp << 23) | (mantissa << 13));
}

}  // namespace ncsw::fp16
