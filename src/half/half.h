// IEEE 754 binary16 ("half") value type.
//
// The Myriad 2 VPU computes natively in FP16; the paper converts pixel
// data from FP32 to FP16 with the OpenEXR half class before offloading to
// the NCS. This is our from-scratch equivalent: bit-exact conversions with
// round-to-nearest-even, full subnormal support, and arithmetic performed
// by converting through float (which is exactly what a host-side half
// class does).
#pragma once

#include <cstdint>
#include <limits>

namespace ncsw::fp16 {

/// Convert an IEEE binary32 bit pattern to binary16 with round-to-nearest,
/// ties-to-even. Handles subnormals, infinities and NaNs (NaN payload is
/// reduced to a quiet NaN).
std::uint16_t float_to_half_bits(float value) noexcept;

/// Convert a binary16 bit pattern to the exactly-representable float.
float half_bits_to_float(std::uint16_t bits) noexcept;

class half;

/// 65536-entry lookup table with table[bits] == half_bits_to_float(bits).
/// Built once on first use (256 KiB); the fast path for strided or
/// gather-style decodes where the span converters below do not fit.
const float* half_to_float_table() noexcept;

/// Bulk binary16 -> binary32 decode, bit-identical to calling
/// half_bits_to_float per element (table-driven; src/dst may not overlap).
void half_to_float_span(const half* src, float* dst, std::size_t n) noexcept;

/// Bulk binary32 -> binary16 encode with round-to-nearest-even,
/// bit-identical to calling float_to_half_bits per element (branch-reduced
/// bit twiddling; src/dst may not overlap).
void float_to_half_span(const float* src, half* dst, std::size_t n) noexcept;

// Fast-tier span converters (docs/performance.md): identical values to
// the bit-exact spans above for every number, zero and infinity, but
// routed through the F16C conversion instructions when the machine has
// them, which also means NaNs keep their hardware payload instead of
// collapsing to the canonical quiet NaN. Only the opt-in fast tier may
// call these; the default tier's golden digests are recorded against
// the table/bit-twiddling spans.

/// Fast-tier bulk binary16 -> binary32 decode (F16C when available).
void half_to_float_span_fast(const half* src, float* dst,
                             std::size_t n) noexcept;

/// Fast-tier bulk binary32 -> binary16 RTNE encode (F16C when available).
void float_to_half_span_fast(const float* src, half* dst,
                             std::size_t n) noexcept;

/// IEEE binary16 value type. Storage is the raw 16-bit pattern;
/// arithmetic widens to float and rounds back, matching host-side
/// conversion libraries (and the per-element rounding the VPU's VAU
/// performs after each FP16 op).
class half {
 public:
  /// Zero-initialised (+0.0).
  constexpr half() noexcept = default;

  /// Construct from float with round-to-nearest-even.
  explicit half(float value) noexcept : bits_(float_to_half_bits(value)) {}
  /// Construct from double (through float).
  explicit half(double value) noexcept : half(static_cast<float>(value)) {}
  /// Construct from int (through float).
  explicit half(int value) noexcept : half(static_cast<float>(value)) {}

  /// Reinterpret a raw bit pattern as a half.
  static constexpr half from_bits(std::uint16_t bits) noexcept {
    half h;
    h.bits_ = bits;
    return h;
  }

  /// The raw binary16 bit pattern.
  constexpr std::uint16_t bits() const noexcept { return bits_; }

  /// Widen to float (exact).
  float to_float() const noexcept { return half_bits_to_float(bits_); }
  /// Widen to float (exact).
  explicit operator float() const noexcept { return to_float(); }

  /// True for +0.0 and -0.0.
  constexpr bool is_zero() const noexcept { return (bits_ & 0x7fffu) == 0; }
  /// True for +inf / -inf.
  constexpr bool is_inf() const noexcept { return (bits_ & 0x7fffu) == 0x7c00u; }
  /// True for any NaN.
  constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  /// True for subnormal (denormalised) values.
  constexpr bool is_subnormal() const noexcept {
    return (bits_ & 0x7c00u) == 0 && (bits_ & 0x03ffu) != 0;
  }
  /// Sign bit (true when negative, including -0 and negative NaN patterns).
  constexpr bool signbit() const noexcept { return (bits_ & 0x8000u) != 0; }

  friend half operator-(half a) noexcept {
    return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }
  friend half operator+(half a, half b) noexcept {
    return half(a.to_float() + b.to_float());
  }
  friend half operator-(half a, half b) noexcept {
    return half(a.to_float() - b.to_float());
  }
  friend half operator*(half a, half b) noexcept {
    return half(a.to_float() * b.to_float());
  }
  friend half operator/(half a, half b) noexcept {
    return half(a.to_float() / b.to_float());
  }
  half& operator+=(half o) noexcept { return *this = *this + o; }
  half& operator-=(half o) noexcept { return *this = *this - o; }
  half& operator*=(half o) noexcept { return *this = *this * o; }
  half& operator/=(half o) noexcept { return *this = *this / o; }

  // IEEE comparisons (NaN compares false, +0 == -0).
  friend bool operator==(half a, half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(half a, half b) noexcept { return !(a == b); }
  friend bool operator<(half a, half b) noexcept {
    return a.to_float() < b.to_float();
  }
  friend bool operator>(half a, half b) noexcept { return b < a; }
  friend bool operator<=(half a, half b) noexcept {
    return a.to_float() <= b.to_float();
  }
  friend bool operator>=(half a, half b) noexcept { return b <= a; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(half) == 2, "half must be 2 bytes");

/// Round-trip helper: the float value after an FP32 -> FP16 -> FP32 trip.
inline float round_to_half(float value) noexcept {
  return half(value).to_float();
}

// Named constants mirroring std::numeric_limits.
inline constexpr half kHalfMax = half::from_bits(0x7bffu);        // 65504
inline constexpr half kHalfMinNormal = half::from_bits(0x0400u);  // 2^-14
inline constexpr half kHalfDenormMin = half::from_bits(0x0001u);  // 2^-24
inline constexpr half kHalfInfinity = half::from_bits(0x7c00u);
inline constexpr half kHalfQuietNaN = half::from_bits(0x7e00u);
inline constexpr half kHalfEpsilon = half::from_bits(0x1400u);  // 2^-10

}  // namespace ncsw::fp16

// numeric_limits specialisation so generic numeric code can interrogate
// the type like any built-in floating point type.
template <>
class std::numeric_limits<ncsw::fp16::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;        // implicit bit + 10 mantissa bits
  static constexpr int max_exponent = 16;  // 2^15 < 65504 < 2^16
  static constexpr int min_exponent = -13;

  static constexpr ncsw::fp16::half min() noexcept {
    return ncsw::fp16::kHalfMinNormal;
  }
  static constexpr ncsw::fp16::half max() noexcept {
    return ncsw::fp16::kHalfMax;
  }
  static constexpr ncsw::fp16::half lowest() noexcept {
    return ncsw::fp16::half::from_bits(0xfbffu);
  }
  static constexpr ncsw::fp16::half denorm_min() noexcept {
    return ncsw::fp16::kHalfDenormMin;
  }
  static constexpr ncsw::fp16::half infinity() noexcept {
    return ncsw::fp16::kHalfInfinity;
  }
  static constexpr ncsw::fp16::half quiet_NaN() noexcept {
    return ncsw::fp16::kHalfQuietNaN;
  }
  static constexpr ncsw::fp16::half epsilon() noexcept {
    return ncsw::fp16::kHalfEpsilon;
  }
};
