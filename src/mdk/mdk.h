// MDK — general-purpose computing on the simulated Myriad 2.
//
// The paper's future work (Section VII) is to use the VPU "as a
// conventional vector processor for general-purpose computing" through
// the Movidius Development Kit, citing Ionica & Gregg's Myriad DGEMM
// study (IEEE Micro'15), which hand-tiled GEMM into the CMX slices and
// reported Gflops and Gflops/W. This module is that path, built on the
// same chip model as the inference stack:
//
//  * a CMX tiling planner for GEMM (one output tile per SHAVE pass, A/B
//    panels streamed from DDR, FP32 accumulators resident across the
//    k loop),
//  * functional execution (results are actually computed, with FP16
//    storage + FP32 accumulation semantics matching the VAU), and
//  * timed execution on the SHAVE-array/DDR simulation, reporting
//    Gflops, energy and Gflops/W.
#pragma once

#include <cstdint>

#include "graphc/compiler.h"
#include "half/half.h"
#include "myriad/myriad.h"

namespace ncsw::mdk {

/// CMX tiling plan for C[m x n] = A[m x k] * B[k x n].
struct GemmPlan {
  std::int64_t m = 0, n = 0, k = 0;
  graphc::Precision precision = graphc::Precision::kFP16;
  std::int64_t tile_m = 0;  ///< output tile rows
  std::int64_t tile_n = 0;  ///< output tile cols
  std::int64_t tile_k = 0;  ///< k panel depth per DMA step
  std::int64_t tasks = 0;   ///< output tiles to schedule on the SHAVEs
  std::int64_t cmx_bytes_per_task = 0;  ///< working set of one tile
  std::int64_t ddr_bytes = 0;  ///< total A/B/C traffic for the whole GEMM
};

/// Result of a timed kernel execution.
struct KernelStats {
  double sim_time_s = 0.0;
  double gflops = 0.0;         ///< 2*m*n*k / time
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double gflops_per_w = 0.0;   ///< the Ionica-style figure of merit
  double shave_utilization = 0.0;
};

/// General-purpose offload context over one simulated chip.
class MdkContext {
 public:
  explicit MdkContext(const myriad::MyriadConfig& config = {});

  const myriad::MyriadConfig& config() const noexcept { return config_; }

  /// Plan the CMX tiling for a GEMM. Throws std::invalid_argument on
  /// non-positive dimensions.
  GemmPlan plan_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                     graphc::Precision precision) const;

  /// Timing-only execution of a plan on the SHAVE array.
  KernelStats simulate_gemm(const GemmPlan& plan) const;

  /// Functional + timed FP32 GEMM: C = A * B (row-major, dense).
  KernelStats gemm_f32(std::int64_t m, std::int64_t n, std::int64_t k,
                       const float* a, const float* b, float* c) const;

  /// Functional + timed FP16 GEMM (FP32 accumulators in CMX, one final
  /// rounding per output element — the VAU-with-wide-accumulator model).
  KernelStats gemm_f16(std::int64_t m, std::int64_t n, std::int64_t k,
                       const ncsw::fp16::half* a, const ncsw::fp16::half* b,
                       ncsw::fp16::half* c) const;

  /// Functional + timed AXPY: y += alpha * x (bandwidth-bound).
  KernelStats axpy_f32(std::int64_t n, float alpha, const float* x,
                       float* y) const;

  /// Functional + timed dot product (reduction across the SHAVE array);
  /// the result is written to *out.
  KernelStats dot_f32(std::int64_t n, const float* x, const float* y,
                      double* out) const;

  /// Fraction of peak MAC throughput a hand-tiled CMX GEMM sustains
  /// (higher than conv: perfectly regular access, no im2col).
  double gemm_efficiency() const noexcept { return 0.55; }

 private:
  KernelStats timed_vector_kernel(std::int64_t bytes_moved,
                                  std::int64_t flops) const;

  myriad::MyriadConfig config_;
};

}  // namespace ncsw::mdk
