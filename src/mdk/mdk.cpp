#include "mdk/mdk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.h"
#include "tensor/gemm.h"

namespace ncsw::mdk {

MdkContext::MdkContext(const myriad::MyriadConfig& config)
    : config_(config) {
  if (config_.num_shaves < 1 || config_.clock_hz <= 0) {
    throw std::invalid_argument("MdkContext: invalid chip configuration");
  }
}

GemmPlan MdkContext::plan_gemm(std::int64_t m, std::int64_t n,
                               std::int64_t k,
                               graphc::Precision precision) const {
  if (m < 1 || n < 1 || k < 1) {
    throw std::invalid_argument("plan_gemm: non-positive dimensions");
  }
  GemmPlan plan;
  plan.m = m;
  plan.n = n;
  plan.k = k;
  plan.precision = precision;

  // One SHAVE works on one output tile at a time out of its 128 KB CMX
  // slice: tile_m x tile_n FP32 accumulators stay resident; A and B
  // panels of depth tile_k are double-buffered.
  const std::int64_t slice = 128 * 1024;
  const std::int64_t elt = graphc::bytes_per_scalar(precision);
  plan.tile_k = std::min<std::int64_t>(k, 128);
  // Square-ish output tile: acc (4B) + 2 double-buffered panels.
  std::int64_t t = 8;
  while (true) {
    const std::int64_t next = t + 8;
    const std::int64_t acc = next * next * 4;
    const std::int64_t panels = 2 * 2 * next * plan.tile_k * elt;
    if (acc + panels > slice || next > std::max(m, n)) break;
    t = next;
  }
  plan.tile_m = std::min<std::int64_t>(t, m);
  plan.tile_n = std::min<std::int64_t>(t, n);
  plan.cmx_bytes_per_task =
      plan.tile_m * plan.tile_n * 4 +
      2 * 2 * std::max(plan.tile_m, plan.tile_n) * plan.tile_k * elt;
  const std::int64_t tiles_m = (m + plan.tile_m - 1) / plan.tile_m;
  const std::int64_t tiles_n = (n + plan.tile_n - 1) / plan.tile_n;
  plan.tasks = tiles_m * tiles_n;

  // DDR traffic: every output tile streams its A row-panel and B
  // col-panel once (k long), and writes C once.
  plan.ddr_bytes = tiles_n * (m * k * elt)    // A re-read per column strip
                   + tiles_m * (k * n * elt)  // B re-read per row strip
                   + m * n * elt;             // C write-back
  return plan;
}

KernelStats MdkContext::simulate_gemm(const GemmPlan& plan) const {
  if (plan.tasks < 1) throw std::invalid_argument("simulate_gemm: bad plan");
  sim::Resource shaves("shave-array", config_.num_shaves);
  sim::Resource ddr("lpddr3", 1);

  const double peak_per_shave =
      config_.clock_hz * (plan.precision == graphc::Precision::kFP16
                              ? config_.fp16_macs_per_cycle
                              : config_.fp32_macs_per_cycle);
  const double eff = gemm_efficiency();
  const std::int64_t macs_per_task = plan.tile_m * plan.tile_n * plan.k;
  const double task_compute_s =
      static_cast<double>(macs_per_task) / (peak_per_shave * eff);
  const std::int64_t elt = graphc::bytes_per_scalar(plan.precision);
  const std::int64_t task_bytes =
      (plan.tile_m + plan.tile_n) * plan.k * elt +
      plan.tile_m * plan.tile_n * elt;
  const double task_dma_s =
      static_cast<double>(task_bytes) / config_.ddr_bandwidth;

  double makespan = 0.0;
  double busy = 0.0;
  for (std::int64_t task = 0; task < plan.tasks; ++task) {
    // DMA is double-buffered: a task occupies a SHAVE for
    // max(compute, dma) once the DDR interface granted its stream.
    const double dma_start = ddr.reserve(0.0, task_dma_s);
    const double duration = std::max(task_compute_s, task_dma_s);
    const double start = shaves.reserve(dma_start, duration);
    makespan = std::max(makespan, start + duration);
    busy += duration;
  }

  KernelStats stats;
  stats.sim_time_s = makespan;
  const double flops = 2.0 * static_cast<double>(plan.m) *
                       static_cast<double>(plan.n) *
                       static_cast<double>(plan.k);
  stats.gflops = flops / makespan / 1e9;
  const double shave_idle =
      makespan * config_.num_shaves - busy;
  stats.energy_j = busy * config_.p_shave_active +
                   std::max(0.0, shave_idle) * config_.p_shave_idle +
                   ddr.busy_time() * config_.p_ddr_active +
                   makespan * config_.p_base;
  stats.avg_power_w = makespan > 0 ? stats.energy_j / makespan : 0.0;
  stats.gflops_per_w =
      stats.avg_power_w > 0 ? stats.gflops / stats.avg_power_w : 0.0;
  stats.shave_utilization =
      makespan > 0 ? busy / (makespan * config_.num_shaves) : 0.0;
  return stats;
}

KernelStats MdkContext::gemm_f32(std::int64_t m, std::int64_t n,
                                 std::int64_t k, const float* a,
                                 const float* b, float* c) const {
  const auto plan = plan_gemm(m, n, k, graphc::Precision::kFP32);
  tensor::gemm_f32(m, n, k, 1.0f, a, b, 0.0f, c);
  return simulate_gemm(plan);
}

KernelStats MdkContext::gemm_f16(std::int64_t m, std::int64_t n,
                                 std::int64_t k, const ncsw::fp16::half* a,
                                 const ncsw::fp16::half* b,
                                 ncsw::fp16::half* c) const {
  const auto plan = plan_gemm(m, n, k, graphc::Precision::kFP16);
  tensor::gemm_f16(m, n, k, 1.0f, a, b, 0.0f, c);
  return simulate_gemm(plan);
}

KernelStats MdkContext::timed_vector_kernel(std::int64_t bytes_moved,
                                            std::int64_t flops) const {
  // Purely bandwidth-bound: the SHAVEs can issue far more vector ops than
  // the DDR interface can feed.
  const double dma_s =
      static_cast<double>(bytes_moved) / config_.ddr_bandwidth;
  const double compute_s =
      static_cast<double>(flops) /
      (config_.clock_hz * config_.fp32_macs_per_cycle * config_.num_shaves);
  KernelStats stats;
  stats.sim_time_s = std::max(dma_s, compute_s);
  stats.gflops = static_cast<double>(flops) / stats.sim_time_s / 1e9;
  stats.energy_j = stats.sim_time_s * (config_.p_base +
                                       config_.p_ddr_active) +
                   compute_s * config_.num_shaves * config_.p_shave_active;
  stats.avg_power_w = stats.energy_j / stats.sim_time_s;
  stats.gflops_per_w = stats.gflops / stats.avg_power_w;
  stats.shave_utilization = compute_s / stats.sim_time_s;
  return stats;
}

KernelStats MdkContext::axpy_f32(std::int64_t n, float alpha, const float* x,
                                 float* y) const {
  if (n < 1) throw std::invalid_argument("axpy_f32: n < 1");
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  // Traffic: read x, read y, write y.
  return timed_vector_kernel(3 * n * 4, 2 * n);
}

KernelStats MdkContext::dot_f32(std::int64_t n, const float* x,
                                const float* y, double* out) const {
  if (n < 1) throw std::invalid_argument("dot_f32: n < 1");
  if (!out) throw std::invalid_argument("dot_f32: null out");
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  *out = acc;
  return timed_vector_kernel(2 * n * 4, 2 * n);
}

}  // namespace ncsw::mdk
