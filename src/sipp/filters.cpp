#include "sipp/filters.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncsw::sipp {

namespace {
int clamp_coord(int v, int lo, int hi) noexcept {
  return std::min(std::max(v, lo), hi);
}
}  // namespace

Plane to_luma(const imgproc::Image& image) {
  if (image.empty()) throw std::invalid_argument("to_luma: empty image");
  Plane out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      out.at(x, y) = 0.299f * image.at(x, y, 0) +
                     0.587f * image.at(x, y, 1) +
                     0.114f * image.at(x, y, 2);
    }
  }
  return out;
}

Plane tone_map(const Plane& in, float gamma) {
  if (gamma <= 0) throw std::invalid_argument("tone_map: gamma <= 0");
  Plane out(in.width, in.height);
  for (std::size_t i = 0; i < in.data.size(); ++i) {
    const float v = std::clamp(in.data[i] / 255.0f, 0.0f, 1.0f);
    out.data[i] = 255.0f * std::pow(v, gamma);
  }
  return out;
}

Plane denoise5x5(const Plane& in) {
  static const float kKernel[5] = {1, 4, 6, 4, 1};
  Plane out(in.width, in.height);
  for (int y = 0; y < in.height; ++y) {
    for (int x = 0; x < in.width; ++x) {
      float acc = 0.0f;
      for (int ky = -2; ky <= 2; ++ky) {
        for (int kx = -2; kx <= 2; ++kx) {
          const int sx = clamp_coord(x + kx, 0, in.width - 1);
          const int sy = clamp_coord(y + ky, 0, in.height - 1);
          acc += kKernel[ky + 2] * kKernel[kx + 2] * in.at(sx, sy);
        }
      }
      out.at(x, y) = acc / 256.0f;
    }
  }
  return out;
}

namespace {
void sobel_gradients(const Plane& in, Plane& gx, Plane& gy) {
  gx = Plane(in.width, in.height);
  gy = Plane(in.width, in.height);
  for (int y = 0; y < in.height; ++y) {
    for (int x = 0; x < in.width; ++x) {
      auto px = [&](int dx, int dy) {
        return in.at(clamp_coord(x + dx, 0, in.width - 1),
                     clamp_coord(y + dy, 0, in.height - 1));
      };
      gx.at(x, y) = (px(1, -1) + 2 * px(1, 0) + px(1, 1)) -
                    (px(-1, -1) + 2 * px(-1, 0) + px(-1, 1));
      gy.at(x, y) = (px(-1, 1) + 2 * px(0, 1) + px(1, 1)) -
                    (px(-1, -1) + 2 * px(0, -1) + px(1, -1));
    }
  }
}
}  // namespace

Plane sobel_magnitude(const Plane& in) {
  Plane gx, gy;
  sobel_gradients(in, gx, gy);
  Plane out(in.width, in.height);
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    out.data[i] = std::sqrt(gx.data[i] * gx.data[i] +
                            gy.data[i] * gy.data[i]);
  }
  return out;
}

Plane harris_response(const Plane& in, float k) {
  Plane gx, gy;
  sobel_gradients(in, gx, gy);
  Plane out(in.width, in.height);
  for (int y = 0; y < in.height; ++y) {
    for (int x = 0; x < in.width; ++x) {
      double sxx = 0, syy = 0, sxy = 0;
      for (int wy = -2; wy <= 2; ++wy) {
        for (int wx = -2; wx <= 2; ++wx) {
          const int px = clamp_coord(x + wx, 0, in.width - 1);
          const int py = clamp_coord(y + wy, 0, in.height - 1);
          const double ix = gx.at(px, py);
          const double iy = gy.at(px, py);
          sxx += ix * ix;
          syy += iy * iy;
          sxy += ix * iy;
        }
      }
      const double det = sxx * syy - sxy * sxy;
      const double trace = sxx + syy;
      out.at(x, y) = static_cast<float>(det - k * trace * trace);
    }
  }
  return out;
}

std::vector<std::pair<int, int>> corner_peaks(const Plane& response,
                                              float threshold) {
  std::vector<std::pair<int, int>> peaks;
  for (int y = 1; y + 1 < response.height; ++y) {
    for (int x = 1; x + 1 < response.width; ++x) {
      const float v = response.at(x, y);
      if (v < threshold) continue;
      bool is_max = true;
      for (int dy = -1; dy <= 1 && is_max; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (response.at(x + dx, y + dy) > v) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) peaks.emplace_back(x, y);
    }
  }
  return peaks;
}

imgproc::Image to_image(const Plane& plane) {
  imgproc::Image out(plane.width, plane.height);
  for (int y = 0; y < plane.height; ++y) {
    for (int x = 0; x < plane.width; ++x) {
      const auto v = static_cast<std::uint8_t>(
          std::clamp(plane.at(x, y) + 0.5f, 0.0f, 255.0f));
      for (int c = 0; c < 3; ++c) out.at(x, y, c) = v;
    }
  }
  return out;
}

}  // namespace ncsw::sipp
