// Functional implementations of the SIPP hardware filter kernels the
// paper names (Section II-A): tone mapping, 5x5 denoise, edge/gradient
// operators and the Harris corner detector. These compute real results;
// sipp/pipeline.h prices the same work on the hardware-accelerated
// filter units.
#pragma once

#include <cstdint>
#include <vector>

#include "imgproc/image.h"

namespace ncsw::sipp {

/// Single-channel float plane (row-major), the inter-filter format of the
/// pipeline.
struct Plane {
  int width = 0;
  int height = 0;
  std::vector<float> data;

  Plane() = default;
  Plane(int w, int h) : width(w), height(h), data(static_cast<std::size_t>(w) * h, 0.0f) {}
  float at(int x, int y) const noexcept {
    return data[static_cast<std::size_t>(y) * width + x];
  }
  float& at(int x, int y) noexcept {
    return data[static_cast<std::size_t>(y) * width + x];
  }
};

/// BT.601 luminance plane from an RGB image (values 0..255).
Plane to_luma(const imgproc::Image& image);

/// Tone mapping: out = 255 * (in/255)^gamma, per pixel (LUT in hardware).
Plane tone_map(const Plane& in, float gamma);

/// 5x5 Gaussian denoise (the "luminance denoising" kernel); borders are
/// clamped. Kernel is the binomial [1 4 6 4 1] outer product / 256.
Plane denoise5x5(const Plane& in);

/// Sobel gradient magnitude (the HoG edge-operator front end).
Plane sobel_magnitude(const Plane& in);

/// Harris corner response: det(M) - k*trace(M)^2 over a 5x5 window of
/// Sobel gradients. k is the usual 0.04-0.06.
Plane harris_response(const Plane& in, float k = 0.04f);

/// Local maxima of a response plane above `threshold`, as (x, y) pairs,
/// scanning row-major.
std::vector<std::pair<int, int>> corner_peaks(const Plane& response,
                                              float threshold);

/// Clamp a plane back to an 8-bit grayscale image (replicated channels).
imgproc::Image to_image(const Plane& plane);

}  // namespace ncsw::sipp
