// SIPP — the Streaming Image Processing Pipeline of the Myriad 2
// (paper Section II-A): fully programmable hardware-accelerated kernels
// (tone mapping, Harris, HoG edge operator, denoising, ...) connected to
// the CMX through a crossbar, each with a local controller managing
// read/write-back, able to "output completely computed pixels
// individually per cycle".
//
// The pipeline model: chained filters process one pixel per cycle each,
// overlapped (systolic), so a P-stage pipeline over an HxW frame costs
// roughly fill latency + H*W cycles — versus a SHAVE software
// implementation that pays the full arithmetic cost per stage. Both are
// priced here; the functional result comes from sipp/filters.h.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "myriad/myriad.h"
#include "sipp/filters.h"

namespace ncsw::sipp {

/// Hardware parameters of the SIPP block.
struct SippConfig {
  double clock_hz = 600e6;       ///< SIPP runs on the media clock
  int line_buffer_rows = 5;      ///< 5x5 kernels => 5-line fill per stage
  double power_per_filter_w = 0.035;  ///< one active filter island
  double crossbar_power_w = 0.02;     ///< CMX crossbar while streaming
};

/// Timing/energy of one pipeline run.
struct SippStats {
  std::uint64_t cycles = 0;
  double time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double mpixels_per_s = 0.0;
};

/// A chain of hardware filter stages over single-channel planes.
class SippPipeline {
 public:
  using FilterFn = std::function<Plane(const Plane&)>;

  explicit SippPipeline(const SippConfig& config = {});

  /// Append a stage. `name` labels reports; `fn` is the functional
  /// kernel; `ops_per_pixel` is the arithmetic the SHAVE software
  /// fallback would execute per output pixel (used by the comparison).
  SippPipeline& add_stage(std::string name, FilterFn fn,
                          int ops_per_pixel);

  /// Stage count.
  std::size_t stages() const noexcept { return stages_.size(); }
  /// Stage names in order.
  std::vector<std::string> stage_names() const;

  /// Run the pipeline functionally and price it on the SIPP hardware.
  /// Throws std::logic_error when empty.
  Plane run(const Plane& input, SippStats* stats = nullptr) const;

  /// Price the same chain executed in software on the SHAVE array
  /// (ops/pixel at the elementwise efficiency of the chip model).
  double shave_software_time_s(int width, int height,
                               const myriad::MyriadConfig& chip) const;

 private:
  struct Stage {
    std::string name;
    FilterFn fn;
    int ops_per_pixel;
  };
  SippConfig config_;
  std::vector<Stage> stages_;
};

/// The pre-built chain the paper's filter list suggests:
/// denoise -> tone map -> Harris response.
SippPipeline make_vision_frontend(const SippConfig& config = {});

}  // namespace ncsw::sipp
