#include "sipp/pipeline.h"

#include <stdexcept>

namespace ncsw::sipp {

SippPipeline::SippPipeline(const SippConfig& config) : config_(config) {
  if (config_.clock_hz <= 0 || config_.line_buffer_rows < 1) {
    throw std::invalid_argument("SippPipeline: bad configuration");
  }
}

SippPipeline& SippPipeline::add_stage(std::string name, FilterFn fn,
                                      int ops_per_pixel) {
  if (!fn || ops_per_pixel < 1) {
    throw std::invalid_argument("add_stage: bad stage");
  }
  stages_.push_back({std::move(name), std::move(fn), ops_per_pixel});
  return *this;
}

std::vector<std::string> SippPipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.push_back(s.name);
  return names;
}

Plane SippPipeline::run(const Plane& input, SippStats* stats) const {
  if (stages_.empty()) throw std::logic_error("SippPipeline::run: empty");
  if (input.width < 1 || input.height < 1) {
    throw std::invalid_argument("SippPipeline::run: empty plane");
  }

  Plane current = input;
  for (const auto& stage : stages_) {
    current = stage.fn(current);
    if (current.width != input.width || current.height != input.height) {
      throw std::logic_error("SippPipeline: stage '" + stage.name +
                             "' changed the plane size");
    }
  }

  if (stats) {
    // Systolic pipeline: every stage emits one pixel per cycle once its
    // line buffers are primed; stages overlap, so the frame costs
    // H*W cycles plus a fill of line_buffer_rows rows per stage.
    const std::uint64_t pixels =
        static_cast<std::uint64_t>(input.width) * input.height;
    const std::uint64_t fill = static_cast<std::uint64_t>(stages_.size()) *
                               config_.line_buffer_rows *
                               static_cast<std::uint64_t>(input.width);
    stats->cycles = pixels + fill;
    stats->time_s = static_cast<double>(stats->cycles) / config_.clock_hz;
    const double power =
        static_cast<double>(stages_.size()) * config_.power_per_filter_w +
        config_.crossbar_power_w;
    stats->avg_power_w = power;
    stats->energy_j = power * stats->time_s;
    stats->mpixels_per_s =
        static_cast<double>(pixels) / stats->time_s / 1e6;
  }
  return current;
}

double SippPipeline::shave_software_time_s(
    int width, int height, const myriad::MyriadConfig& chip) const {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("shave_software_time_s: empty frame");
  }
  // The SHAVE fallback executes each stage's arithmetic at the
  // elementwise-kernel efficiency across the full array.
  const double ops_rate = chip.clock_hz * chip.fp32_macs_per_cycle *
                          chip.num_shaves * chip.eff_elementwise;
  double total_ops = 0;
  for (const auto& stage : stages_) {
    total_ops += static_cast<double>(stage.ops_per_pixel) *
                 static_cast<double>(width) * static_cast<double>(height);
  }
  return total_ops / ops_rate;
}

SippPipeline make_vision_frontend(const SippConfig& config) {
  SippPipeline pipeline(config);
  pipeline
      .add_stage("denoise5x5", [](const Plane& p) { return denoise5x5(p); },
                 /*ops_per_pixel=*/50)  // 25 MACs
      .add_stage("tone_map",
                 [](const Plane& p) { return tone_map(p, 0.8f); },
                 /*ops_per_pixel=*/8)  // pow via LUT on HW, ~8 ops in SW
      .add_stage("harris",
                 [](const Plane& p) { return harris_response(p); },
                 /*ops_per_pixel=*/170);  // sobel + 5x5 moments + response
  return pipeline;
}

}  // namespace ncsw::sipp
