#include "core/health.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace ncsw::core {

namespace {
/// Seed domain for backoff jitter, decorrelated from the dataset / fault
/// generators that also draw from hash_mix.
constexpr std::uint64_t kBackoffSeed = 0x6865616c74683aULL;  // "health:"
}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kRecovered: return "recovered";
    case HealthState::kDead: return "dead";
  }
  return "?";
}

StickHealth::StickHealth(int device, const HealthPolicy& policy)
    : device_(device), policy_(policy) {}

double StickHealth::backoff(int attempt) const {
  const double base =
      std::min(policy_.backoff_initial_s *
                   std::pow(policy_.backoff_multiplier, attempt),
               policy_.backoff_max_s);
  // Pure function of (device, attempt): replaying the same fault plan
  // reproduces the same wait times to the bit.
  const std::uint64_t h =
      util::hash_mix(kBackoffSeed ^ static_cast<std::uint64_t>(device_),
                     static_cast<std::uint64_t>(attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return base * (1.0 + policy_.backoff_jitter_frac * (2.0 * u - 1.0));
}

void StickHealth::on_success() {
  consecutive_failures_ = 0;
  if (state_ == HealthState::kSuspect) {
    state_ = HealthState::kHealthy;
  } else if (state_ == HealthState::kRecovered &&
             ++probation_successes_ >= policy_.recovery_successes) {
    state_ = HealthState::kHealthy;
  }
}

double StickHealth::on_transient_failure(double now) {
  ++consecutive_failures_;
  if (state_ == HealthState::kHealthy) state_ = HealthState::kSuspect;
  // A stick that fails while on probation has not really recovered:
  // straight back to quarantine rather than through the retry ladder.
  if (state_ == HealthState::kRecovered ||
      consecutive_failures_ > policy_.max_retries) {
    return quarantine(now);
  }
  return backoff(consecutive_failures_ - 1);
}

double StickHealth::on_gone(double now) {
  ++consecutive_failures_;
  needs_replug_ = true;
  return quarantine(now);
}

double StickHealth::quarantine(double now) {
  state_ = HealthState::kQuarantined;
  ++quarantines_;
  probes_ = 0;
  probation_successes_ = 0;
  quarantined_since_ = now;
  const double delay = backoff(consecutive_failures_);
  next_probe_time_ = now + delay;
  return delay;
}

void StickHealth::on_probe_success() {
  state_ = HealthState::kRecovered;
  consecutive_failures_ = 0;
  probation_successes_ = 0;
  needs_replug_ = false;
}

double StickHealth::on_probe_failure(double now) {
  ++probes_;
  if (probes_ >= policy_.max_probes) {
    state_ = HealthState::kDead;
    return 0.0;
  }
  // Continue the backoff ladder past the retry attempts that led here.
  const double delay = backoff(consecutive_failures_ + probes_);
  next_probe_time_ = now + delay;
  return delay;
}

}  // namespace ncsw::core
