#include "core/stick_fleet.h"

#include <algorithm>
#include <stdexcept>

#include "check/serve_check.h"
#include "mvnc/mvnc.h"
#include "myriad/myriad.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::core {

using mvnc::mvncStatus;

// ---------------------------------------------------------------- stick

std::string StickTarget::name() const {
  return "Intel Movidius Myriad 2 VPU stick " + std::to_string(id_) +
         " (zoo fleet)";
}

std::string StickTarget::short_name() const {
  return "stick" + std::to_string(id_);
}

double StickTarget::tdp_w(int batch) const {
  (void)batch;
  return myriad::TdpConstants::kNcsStickW;
}

Target::BatchExec StickTarget::execute_batch(std::int64_t images, int batch,
                                             double submit_s, bool aligned) {
  (void)batch;    // max_batch() == 1
  (void)aligned;  // one stick: no cross-stick barrier to align
  if (!graph_ || resident_ < 0) {
    throw std::logic_error("StickTarget: no resident graph");
  }
  const auto& bundle = *fleet_->model(resident_).bundle;
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(bundle.compiled_f16.input_bytes()), 0);
  mvnc::set_inter_op_gap(graph_, fleet_->config().single_gap_s);

  // Device-epoch span: the cursor carries boot + allocation history, so
  // only the delta is meaningful — the caller-clock mapping below keeps
  // the epoch out of serving timelines (same idiom as VpuTarget).
  const double t0 = mvnc::host_time(graph_).value_or(0.0);
  TimedRun run;
  run.images = images;
  double last = t0;
  for (std::int64_t i = 0; i < images; ++i) {
    if (mvnc::mvncLoadTensor(graph_, input.data(),
                             static_cast<unsigned int>(input.size()),
                             nullptr) != mvnc::MVNC_OK) {
      throw std::runtime_error("StickTarget: mvncLoadTensor failed");
    }
    void* out = nullptr;
    unsigned int out_len = 0;
    if (mvnc::mvncGetResult(graph_, &out, &out_len, nullptr) !=
        mvnc::MVNC_OK) {
      throw std::runtime_error("StickTarget: mvncGetResult failed");
    }
    const auto ticket = mvnc::last_ticket(graph_);
    if (!ticket) throw std::runtime_error("StickTarget: missing ticket");
    run.per_image_ms.add((ticket->result_ready - ticket->issue) * 1e3);
    last = std::max(last, ticket->result_ready);
  }
  run.seconds = last - t0;

  BatchExec exec;
  exec.start_s = std::max(submit_s, next_free_s_);
  exec.complete_s = exec.start_s + run.seconds;
  next_free_s_ = exec.complete_s;
  exec.run = std::move(run);
  return exec;
}

std::vector<Prediction> StickTarget::classify(
    const std::vector<tensor::TensorF>& inputs) {
  if (!graph_ || resident_ < 0) {
    throw std::logic_error("StickTarget: no resident graph");
  }
  if (!fleet_->model(resident_).bundle->functional()) {
    throw std::logic_error("StickTarget::classify: timing-only bundle");
  }
  std::vector<Prediction> results(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto half_input = tensor::tensor_cast<ncsw::fp16::half>(inputs[i]);
    if (mvnc::mvncLoadTensor(
            graph_, half_input.data(),
            static_cast<unsigned int>(half_input.numel() *
                                      sizeof(ncsw::fp16::half)),
            nullptr) != mvnc::MVNC_OK) {
      throw std::runtime_error("StickTarget::classify: LoadTensor failed");
    }
    void* out = nullptr;
    unsigned int out_len = 0;
    if (mvnc::mvncGetResult(graph_, &out, &out_len, nullptr) !=
        mvnc::MVNC_OK) {
      throw std::runtime_error("StickTarget::classify: GetResult failed");
    }
    const auto* halves = static_cast<const ncsw::fp16::half*>(out);
    const std::size_t n = out_len / sizeof(ncsw::fp16::half);
    std::vector<float> probs(n);
    ncsw::fp16::half_to_float_span(halves, probs.data(), n);
    results[i] = make_prediction(std::move(probs));
  }
  return results;
}

// ---------------------------------------------------------------- fleet

StickFleet::StickFleet(std::vector<ZooModel> models, StickFleetConfig config)
    : models_(std::move(models)), config_(config) {
  if (models_.empty()) {
    throw std::invalid_argument("StickFleet: empty model zoo");
  }
  for (const auto& m : models_) {
    if (!m.bundle) throw std::invalid_argument("StickFleet: null bundle");
  }
  if (config_.devices < 1) {
    throw std::invalid_argument("StickFleet: devices < 1");
  }
  open_all();
}

StickFleet::~StickFleet() { close_all(); }

void StickFleet::open_all() {
  mvnc::HostConfig host;
  host.devices = config_.devices;
  host.topology = config_.topology;
  host.ncs = config_.ncs;
  host.check = config_.check;
  mvnc::host_reset(host);
  host_generation_ = mvnc::host_generation();

  for (int d = 0; d < config_.devices; ++d) {
    char name[64];
    if (mvnc::mvncGetDeviceName(d, name, sizeof(name)) != mvnc::MVNC_OK) {
      throw std::runtime_error("StickFleet: device enumeration failed");
    }
    void* dev = nullptr;
    if (mvnc::mvncOpenDevice(name, &dev) != mvnc::MVNC_OK) {
      throw std::runtime_error("StickFleet: mvncOpenDevice failed");
    }
    auto stick = std::unique_ptr<StickTarget>(new StickTarget());
    stick->fleet_ = this;
    stick->id_ = d;
    stick->device_ = dev;
    sticks_.push_back(std::move(stick));
  }

  calibrate();

  // Initial residency: model d % M on stick d (the static baseline's
  // pinning; policies diverge from here through swap_to).
  for (int d = 0; d < config_.devices; ++d) {
    const int m = d % models();
    sticks_[d]->graph_ = allocate_on(d, m, 0.0);
    sticks_[d]->resident_ = m;
    ++installs_;
  }
}

void StickFleet::calibrate() {
  // Measure each model's deallocate + allocate cost on stick 0's device
  // clock. Allocations chain on the device's ready cursor, so the delta
  // between two back-to-back allocations of the same blob is exactly
  // one dealloc + alloc round trip — the price a swap pays. The first
  // allocation (which also absorbs the boot wait) is discarded.
  swap_cost_s_.assign(models_.size(), 0.0);
  for (std::size_t m = 0; m < models_.size(); ++m) {
    void* g1 = allocate_on(0, static_cast<int>(m), 0.0);
    const double t1 = mvnc::host_time(g1).value_or(0.0);
    mvnc::mvncDeallocateGraph(g1);
    void* g2 = allocate_on(0, static_cast<int>(m), 0.0);
    const double t2 = mvnc::host_time(g2).value_or(0.0);
    mvnc::mvncDeallocateGraph(g2);
    swap_cost_s_[m] = t2 - t1;
    util::metrics()
        .gauge("core.zoo.swap_cost_s." + models_[m].name)
        .set(swap_cost_s_[m]);
  }
}

void* StickFleet::allocate_on(int d, int m, double epoch_s) {
  void* graph = nullptr;
  const auto& blob = models_.at(m).bundle->graph_blob;
  if (mvnc::allocate_graph_at(sticks_.at(d)->device_, &graph, blob.data(),
                              static_cast<unsigned int>(blob.size()),
                              epoch_s) != mvnc::MVNC_OK) {
    throw std::runtime_error("StickFleet: mvncAllocateGraph failed for " +
                             models_[m].name);
  }
  return graph;
}

double StickFleet::swap_to(int d, int m, double now_s) {
  StickTarget& s = *sticks_.at(d);
  if (m < 0 || m >= models()) {
    throw std::out_of_range("StickFleet::swap_to: bad model index");
  }
  if (s.resident_ == m) return std::max(now_s, s.next_free_s_);

  const std::string from =
      s.resident_ >= 0 ? models_[s.resident_].name : std::string();
  check::serve_verifier().on_swap_begin(s.short_name(), from,
                                        models_[m].name, s.inflight(),
                                        now_s);
  // Drain-then-deallocate: queued device results at a swap are stale
  // (their tickets were retired or cancelled); retrieving them first
  // keeps the NCAPI verifier's undrained-at-dealloc class quiet on
  // every swap.
  for (int left = mvnc::pending_results(s.graph_); left > 0; --left) {
    void* out = nullptr;
    unsigned int out_len = 0;
    if (mvnc::mvncGetResult(s.graph_, &out, &out_len, nullptr) !=
        mvnc::MVNC_OK) {
      break;
    }
  }
  // Carry the stick's device epoch across the swap: a fresh graph would
  // otherwise chain on the device's allocation cursor, which lags the
  // old graph's exec-advanced clock — the swap would time-travel behind
  // retired work on the device lanes (seq inversions and span overlaps
  // in the trace lint).
  const double epoch = mvnc::host_time(s.graph_).value_or(0.0);
  mvnc::mvncDeallocateGraph(s.graph_);
  s.graph_ = nullptr;
  ++evicts_;

  s.graph_ = allocate_on(d, m, epoch);
  const int old = s.resident_;
  s.resident_ = m;
  ++installs_;
  ++swaps_;

  // The swap occupies the stick's serial caller-clock queue for the
  // calibrated cost (the device epoch must not leak into serving time).
  const double start = std::max(now_s, s.next_free_s_);
  const double done = start + swap_cost_s_[m];
  s.next_free_s_ = done;

  util::metrics().counter("core.zoo.swaps").add(1);
  auto& tr = util::tracer();
  if (tr.enabled()) {
    tr.complete("zoo", "swap",
                tr.lane("zoo " + s.short_name()), start, done,
                {util::TraceArg::str("from", old >= 0 ? models_[old].name
                                                      : std::string("-")),
                 util::TraceArg::str("to", models_[m].name)});
  }
  return done;
}

std::int64_t StickFleet::resident_count() const {
  std::int64_t n = 0;
  for (const auto& s : sticks_) {
    if (s->graph_) ++n;
  }
  return n;
}

void StickFleet::close_all() {
  if (mvnc::host_generation() == host_generation_) {
    for (auto& s : sticks_) {
      if (s->graph_) {
        // Same drain-before-deallocate discipline as VpuTarget teardown.
        for (int left = mvnc::pending_results(s->graph_); left > 0; --left) {
          void* out = nullptr;
          unsigned int out_len = 0;
          if (mvnc::mvncGetResult(s->graph_, &out, &out_len, nullptr) !=
              mvnc::MVNC_OK) {
            break;
          }
        }
        mvnc::mvncDeallocateGraph(s->graph_);
        ++evicts_;
      }
      if (s->device_) mvnc::mvncCloseDevice(s->device_);
    }
  }
  sticks_.clear();
}

}  // namespace ncsw::core
