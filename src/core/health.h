// Per-stick health state machine for the self-healing multi-VPU runtime.
//
// The runner tracks each stick through
//
//     kHealthy --transient failure--> kSuspect --retries exhausted or
//         MVNC_GONE--> kQuarantined --probe succeeds--> kRecovered
//         --streak of clean inferences--> kHealthy
//
// with kQuarantined --max_probes exhausted--> kDead as the terminal state
// (a permanently unplugged stick). All waiting happens on the simulated
// clock: retry/probe delays follow a capped exponential backoff whose
// jitter is a pure hash of (device, attempt), so a given fault plan
// always produces the same recovery timeline.
#pragma once

#include <cstdint>
#include <limits>

namespace ncsw::core {

/// Where a stick sits in the recovery ladder.
enum class HealthState : int {
  kHealthy = 0,      ///< full member of the schedule
  kSuspect = 1,      ///< recent transient failure; still scheduled
  kQuarantined = 2,  ///< out of the schedule; probed with backoff
  kRecovered = 3,    ///< probed back in; on probation until a clean streak
  kDead = 4,         ///< probes exhausted; never scheduled again
};

/// Stable lowercase name ("healthy", "suspect", ...).
const char* health_state_name(HealthState s);

/// Retry / backoff / quarantine policy knobs.
struct HealthPolicy {
  /// Consecutive transient failures (MVNC_BUSY / MVNC_ERROR /
  /// MVNC_TIMEOUT) tolerated on one op before the stick is quarantined.
  int max_retries = 3;
  /// Backoff before retry k (0-based) is
  ///   min(backoff_initial_s * backoff_multiplier^k, backoff_max_s)
  /// stretched by a deterministic jitter in
  /// [1 - backoff_jitter_frac, 1 + backoff_jitter_frac).
  double backoff_initial_s = 0.010;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 1.0;
  double backoff_jitter_frac = 0.10;
  /// Probes of a quarantined stick before declaring it dead.
  int max_probes = 20;
  /// Watchdog budget handed to mvncGetResult (simulated seconds).
  /// Infinite by default — the NCSDK blocks forever, and a finite default
  /// would perturb fault-free timing on slow graphs.
  double watchdog_s = std::numeric_limits<double>::infinity();
  /// Clean inferences a kRecovered stick must complete to be kHealthy.
  int recovery_successes = 3;
};

/// Health record of one stick. Pure bookkeeping: the runner performs the
/// mvnc calls and reports outcomes; this class decides state transitions
/// and deterministic wait times.
class StickHealth {
 public:
  StickHealth(int device, const HealthPolicy& policy);

  int device() const noexcept { return device_; }
  HealthState state() const noexcept { return state_; }
  /// True when the scheduler may assign images to this stick.
  bool schedulable() const noexcept {
    return state_ == HealthState::kHealthy ||
           state_ == HealthState::kSuspect ||
           state_ == HealthState::kRecovered;
  }
  /// Earliest simulated time the next quarantine probe may run.
  double next_probe_time() const noexcept { return next_probe_time_; }
  /// True when recovery requires a bus-level replug + graph re-allocation
  /// (the stick went MVNC_GONE) rather than a plain re-admission.
  bool needs_replug() const noexcept { return needs_replug_; }
  /// When the current quarantine began (meaningful while kQuarantined).
  double quarantined_since() const noexcept { return quarantined_since_; }
  int quarantines() const noexcept { return quarantines_; }
  int probes() const noexcept { return probes_; }

  /// Deterministic jittered backoff before attempt `attempt` (0-based).
  double backoff(int attempt) const;

  /// A scheduled op completed cleanly.
  void on_success();
  /// A retryable failure (BUSY / ERROR / TIMEOUT). Returns the backoff to
  /// wait before retrying; when the failure exhausts max_retries the
  /// stick moves to kQuarantined (check state()) and the returned delay
  /// is the wait until its first probe instead.
  double on_transient_failure(double now);
  /// The stick went MVNC_GONE: immediate quarantine, recovery needs a
  /// replug. Returns the wait until the first probe.
  double on_gone(double now);
  /// A quarantine probe brought the stick back (replug + re-allocation
  /// succeeded, or a trial re-admission was granted): now on probation.
  void on_probe_success();
  /// A quarantine probe failed. Returns the wait until the next probe, or
  /// 0 when probes are exhausted and the stick is now kDead.
  double on_probe_failure(double now);

 private:
  /// Enter quarantine at `now`; returns the wait until the first probe.
  double quarantine(double now);

  const int device_;
  const HealthPolicy policy_;
  HealthState state_ = HealthState::kHealthy;
  int consecutive_failures_ = 0;  ///< on the current op / since last success
  int probation_successes_ = 0;   ///< clean ops while kRecovered
  int probes_ = 0;                ///< probes in the current quarantine
  int quarantines_ = 0;           ///< lifetime quarantine count
  bool needs_replug_ = false;
  double quarantined_since_ = 0.0;
  double next_probe_time_ = 0.0;
};

}  // namespace ncsw::core
