// Source abstraction — the left-hand side of the paper's Fig. 3: where
// input images come from. ImageFolder plays the role of the paper's
// OpenCV-decoded dataset directory; StreamSource is the MPI-stream-style
// input the paper lists as a pluggable future source.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dataset/synthetic.h"
#include "imgproc/image.h"

namespace ncsw::core {

/// One input item: an image plus its ground-truth label (-1 if unknown).
struct SourceItem {
  imgproc::Image image;
  int label = -1;
  std::string id;  ///< stable identifier ("set1/000042", file name, ...)
};

/// Pull-based input source. Implementations must be usable from a single
/// consumer thread.
class Source {
 public:
  virtual ~Source() = default;

  /// Next item, or nullopt when exhausted.
  virtual std::optional<SourceItem> next() = 0;

  /// Restart from the beginning (optional; throws if unsupported).
  virtual void reset() = 0;

  /// Total item count when known, -1 for unbounded streams.
  virtual std::int64_t size() const = 0;
};

/// Source over one subset of the synthetic ILSVRC dataset (or the whole
/// dataset when subset = -1). Items are generated lazily, so arbitrarily
/// large subsets cost no memory.
class ImageFolderSource : public Source {
 public:
  /// `limit` truncates the subset (-1 = all images).
  ImageFolderSource(std::shared_ptr<const dataset::SyntheticImageNet> data,
                    int subset, std::int64_t limit = -1);

  std::optional<SourceItem> next() override;
  void reset() override { cursor_ = 0; }
  std::int64_t size() const override { return total_; }

 private:
  std::shared_ptr<const dataset::SyntheticImageNet> data_;
  int subset_;
  std::int64_t total_;
  std::int64_t cursor_ = 0;
};

/// Source reading every .ppm file in a directory (sorted by name);
/// labels are -1 (no annotations). Mirrors running NCSw on a folder of
/// JPEGs in the paper.
class DirectorySource : public Source {
 public:
  explicit DirectorySource(const std::string& path);

  std::optional<SourceItem> next() override;
  void reset() override { cursor_ = 0; }
  std::int64_t size() const override {
    return static_cast<std::int64_t>(files_.size());
  }

 private:
  std::vector<std::string> files_;
  std::size_t cursor_ = 0;
};

/// Bounded-queue streaming source fed by a producer thread — the
/// MPI-stream-shaped input (Peng et al.) the paper's class diagram
/// anticipates. The producer function is called until it returns nullopt.
///
/// Shutdown semantics: close() stops the stream — it wakes a consumer
/// blocked in next() (which then returns nullopt, discarding anything
/// still queued) and releases a producer blocked on backpressure. The
/// destructor calls close() and joins the producer thread; a consumer
/// blocked in next() when close() is called is guaranteed to return, but
/// next() must not be entered concurrently with destruction. The
/// producer function itself must return for the join to complete.
class StreamSource : public Source {
 public:
  using Producer = std::function<std::optional<SourceItem>()>;

  /// Starts the producer thread immediately.
  StreamSource(Producer producer, std::size_t queue_capacity = 16);
  ~StreamSource() override;

  std::optional<SourceItem> next() override;
  /// Streams cannot rewind.
  void reset() override;
  std::int64_t size() const override { return -1; }

  /// Stop the stream: subsequent (and blocked) next() calls return
  /// nullopt, the producer exits at its next queue interaction.
  /// Idempotent; does not join the producer thread (the destructor does).
  void close();

 private:
  void producer_loop();

  Producer producer_;
  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SourceItem> queue_;
  bool done_ = false;
  bool stop_ = false;
  std::thread thread_;
};

/// Multi-producer streaming source — the MPI-stream model of the paper's
/// ref. [32] (Peng et al., "A data streaming model in MPI"): several
/// ranks push items into one bounded channel; the consumer sees a single
/// merged stream in arrival order, with backpressure on the producers.
///
/// Shutdown semantics mirror StreamSource: close() wakes a blocked
/// consumer (next() returns nullopt) and every rank blocked on
/// backpressure; ranks leaving on close still decrement the live-producer
/// count, so the consumer predicate always fires. The destructor calls
/// close() and joins all rank threads.
class MpiStreamSource : public Source {
 public:
  using Producer = std::function<std::optional<SourceItem>()>;

  /// Flow statistics for the stream (inspectable mid-run).
  struct Stats {
    std::int64_t produced = 0;        ///< items pushed by all ranks
    std::int64_t consumed = 0;        ///< items handed to the consumer
    std::int64_t producer_waits = 0;  ///< times a rank hit backpressure
    std::size_t max_queue_depth = 0;
  };

  /// One producer per rank; all start immediately.
  MpiStreamSource(std::vector<Producer> producers,
                  std::size_t queue_capacity = 32);
  ~MpiStreamSource() override;

  std::optional<SourceItem> next() override;
  /// Streams cannot rewind.
  void reset() override;
  std::int64_t size() const override { return -1; }

  /// Number of producer ranks.
  int ranks() const noexcept { return static_cast<int>(threads_.size()); }
  /// Current flow statistics (thread-safe snapshot).
  Stats stats() const;

  /// Stop the stream: wakes the consumer and every rank; see class docs.
  void close();

 private:
  void rank_loop(std::size_t rank);

  std::vector<Producer> producers_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<SourceItem> queue_;
  std::size_t live_producers_ = 0;
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> threads_;
};

}  // namespace ncsw::core
