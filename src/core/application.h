// Application: wires Sources to Targets (the (1,N)-(1,N) association of
// the paper's Fig. 3) and runs classification jobs, collecting accuracy
// and confidence statistics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/source.h"
#include "core/target.h"

namespace ncsw::core {

/// Preprocessing settings shared by every target in a job (resize edge
/// plus channel means — the paper's OpenCV resize + mean subtraction).
struct Preprocessor {
  int input_size = 32;
  imgproc::ChannelMeans means;

  /// Apply the pipeline to one image.
  tensor::TensorF operator()(const imgproc::Image& image) const;
};

/// Output of a classification job on one target.
struct ClassificationJob {
  std::string target;                ///< target short name
  std::vector<SourceItem> items;     ///< the inputs (labels preserved)
  std::vector<Prediction> predictions;

  /// Top-1 error against the items' labels (items with label -1 are
  /// skipped). Returns 0 when no labelled items exist.
  double top1_error() const;

  /// Top-k error (the GoogLeNet paper's other headline metric): an item
  /// counts as correct when its label is among the k most probable
  /// classes. Requires predictions with full probability vectors.
  double topk_error(int k) const;

  /// Count of labelled items.
  std::int64_t labelled() const;
};

/// Mean absolute top-1 confidence difference between two jobs over the
/// same items, after filtering out images either implementation
/// miss-predicts (paper Fig. 7b). Throws on item mismatch.
double confidence_difference(const ClassificationJob& a,
                             const ClassificationJob& b);

/// Split `images` across targets proportionally to their throughputs so
/// that all finish together — the heterogeneous-node mode the paper's
/// Section III closes with ("run a specific subset of inputs on a GPU,
/// and at the same time another subset on ... several VPUs"). Shares sum
/// exactly to `images`; zero-throughput targets get zero. Throws on empty
/// input or non-finite throughputs.
std::vector<std::int64_t> plan_partition(std::int64_t images,
                                         const std::vector<double>& throughputs);

/// The application object: owns groups of sources and targets.
class Application {
 public:
  explicit Application(Preprocessor preprocessor)
      : preprocessor_(preprocessor) {}

  /// Register a target group member; returns its index.
  std::size_t add_target(std::shared_ptr<Target> target);

  std::size_t target_count() const noexcept { return targets_.size(); }
  Target& target(std::size_t i) { return *targets_.at(i); }

  /// Drain `source` (up to `limit` items; -1 = all), classify every item
  /// on target `target_index`, and return the job.
  ClassificationJob run_classification(Source& source,
                                       std::size_t target_index,
                                       std::int64_t limit = -1);

  /// Classify the same drained items on every registered target (one
  /// pass over the source). Returns one job per target.
  std::vector<ClassificationJob> run_on_all_targets(Source& source,
                                                    std::int64_t limit = -1);

  const Preprocessor& preprocessor() const noexcept { return preprocessor_; }

 private:
  std::vector<SourceItem> drain(Source& source, std::int64_t limit) const;
  std::vector<tensor::TensorF> preprocess_all(
      const std::vector<SourceItem>& items) const;

  Preprocessor preprocessor_;
  std::vector<std::shared_ptr<Target>> targets_;
};

}  // namespace ncsw::core
