// A fleet of sticks serving a *zoo* of models — the residency substrate
// of the multi-tenant serving layer (serve::ZooServer).
//
// VpuTarget drives N sticks as one engine running one graph. The zoo
// problem is the transpose: M compiled model graphs contend for K
// sticks' LPDDR, and only a resident graph can serve its tenant's
// requests. StickFleet owns the global mvnc simulation host once (one
// host_reset; the fleet is the single handle owner, so it coexists with
// nothing else driving mvnc) and exposes each stick as its own async
// core::Target, plus the swap primitive the residency policy needs:
//
//   swap_to(stick, model, now):
//     verify no tickets outstanding (swap-while-inflight otherwise)
//     -> drain queued device results  -> mvncDeallocateGraph(old)
//     -> mvncAllocateGraph(new blob)  -> stick busy until now + cost
//
// which is exactly the drain-then-deallocate lifecycle the protocol
// verifier's undrained-at-dealloc / replug-without-realloc classes
// enforce, so every swap runs under the NCAPI checker.
//
// Swap-in costs are *measured*, not assumed: at open the fleet runs a
// calibration pass on stick 0 — deallocate + re-allocate each model's
// blob back-to-back and read the device-clock delta — so eviction
// scoring (serve::ResidencyManager) prices alexnet's ~MiBs of FP16
// weights differently from squeezenet's. Deterministic: allocation
// chains on the device's ready cursor with no jitter.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/target.h"
#include "devices/calibration.h"
#include "mvnc/sim_host.h"

namespace ncsw::core {

class StickFleet;

/// One named tenant model of the zoo.
struct ZooModel {
  std::string name;
  std::shared_ptr<const ModelBundle> bundle;
};

/// Fleet configuration (fault-free: the zoo layer swaps graphs, the
/// self-healing runner in VpuTarget owns fault injection).
struct StickFleetConfig {
  int devices = 2;
  mvnc::HostConfig::Topology topology =
      mvnc::HostConfig::Topology::kPaperTestbed;
  ncs::NcsConfig ncs;  ///< stick/chip parameters (calibrated defaults)
  /// Host gap between inferences on one stick (single-threaded drive).
  double single_gap_s = devices::calibration::kVpuSingleGapS;
  /// NCAPI protocol verifier mode forwarded to the host.
  check::CheckMode check = check::CheckMode::kDefault;
};

/// One stick of a StickFleet as an async Target: a serial engine running
/// whatever graph is currently resident. Construction, residency and
/// lifetime belong to the fleet; batch size is always 1 (one stick).
class StickTarget : public Target {
 public:
  std::string name() const override;
  std::string short_name() const override;  ///< "stick<d>"
  /// One stick: the NCS stick TDP, batch-independent.
  double tdp_w(int batch) const override;
  int max_batch() const override { return 1; }

  std::vector<Prediction> classify(
      const std::vector<tensor::TensorF>& inputs) override;

  /// Resident model index (into the fleet's zoo), -1 when none.
  int resident() const noexcept { return resident_; }

 protected:
  BatchExec execute_batch(std::int64_t images, int batch, double submit_s,
                          bool aligned) override;

 private:
  friend class StickFleet;
  StickTarget() = default;

  StickFleet* fleet_ = nullptr;
  int id_ = -1;
  void* device_ = nullptr;
  void* graph_ = nullptr;
  int resident_ = -1;
  /// Caller-clock instant the engine frees (serial queue; swaps and
  /// batches both advance it).
  double next_free_s_ = 0.0;
};

/// The fleet: owns the mvnc host, the K sticks, and the M model blobs.
/// Initial residency is model d % M on stick d. Reconfigures the global
/// simulation host at construction (any other holder's handles die).
class StickFleet {
 public:
  StickFleet(std::vector<ZooModel> models, StickFleetConfig config = {});
  ~StickFleet();
  StickFleet(const StickFleet&) = delete;
  StickFleet& operator=(const StickFleet&) = delete;

  int devices() const noexcept { return config_.devices; }
  int models() const noexcept { return static_cast<int>(models_.size()); }
  const std::string& model_name(int m) const { return models_.at(m).name; }
  const ZooModel& model(int m) const { return models_.at(m); }

  StickTarget& stick(int d) { return *sticks_.at(d); }
  const StickTarget& stick(int d) const { return *sticks_.at(d); }
  int resident_model(int d) const { return sticks_.at(d)->resident_; }

  /// Calibrated deallocate + allocate cost of bringing model `m` onto a
  /// stick (simulated seconds, device-clock measured at open).
  double swap_in_cost_s(int m) const { return swap_cost_s_.at(m); }

  /// Swap stick `d` to model `m` at caller-clock `now_s`: flags
  /// swap-while-inflight when tickets are outstanding, drains queued
  /// device results, deallocates the old graph and allocates the new
  /// blob. Returns when the stick frees (start of next dispatch): the
  /// swap occupies the stick's serial queue for the calibrated cost.
  /// No-op returning the stick's free time when `m` is already resident.
  double swap_to(int d, int m, double now_s);

  /// Residency-conservation counters (graphs installed / evicted over
  /// the fleet's lifetime, including the K initial installs).
  std::int64_t installs() const noexcept { return installs_; }
  std::int64_t evicts() const noexcept { return evicts_; }
  std::int64_t swaps() const noexcept { return swaps_; }
  /// Graphs currently resident (always K once open).
  std::int64_t resident_count() const;

  const StickFleetConfig& config() const noexcept { return config_; }

 private:
  void open_all();
  void close_all();
  void calibrate();
  /// Allocate model `m`'s blob on stick `d`'s device, chaining the blob
  /// transfer on the stick's device epoch `epoch_s` (0 at open, the
  /// outgoing graph's clock on a swap); returns the graph handle.
  /// Throws on failure.
  void* allocate_on(int d, int m, double epoch_s);

  std::vector<ZooModel> models_;
  StickFleetConfig config_;
  /// unique_ptr: StickTarget has no public constructor and Target is
  /// non-movable (it holds ticket state).
  std::vector<std::unique_ptr<StickTarget>> sticks_;
  std::vector<double> swap_cost_s_;  ///< per model, calibrated at open
  std::int64_t installs_ = 0;
  std::int64_t evicts_ = 0;
  std::int64_t swaps_ = 0;
  std::uint64_t host_generation_ = 0;
};

}  // namespace ncsw::core
