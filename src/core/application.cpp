#include "core/application.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "imgproc/ops.h"
#include "nn/executor.h"

namespace ncsw::core {

tensor::TensorF Preprocessor::operator()(const imgproc::Image& image) const {
  const imgproc::Image resized =
      imgproc::resize_bilinear(image, input_size, input_size);
  return imgproc::to_tensor_f32(resized, means);
}

double ClassificationJob::top1_error() const {
  std::int64_t n = 0, wrong = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].label < 0) continue;
    ++n;
    if (predictions.at(i).label != items[i].label) ++wrong;
  }
  return n > 0 ? static_cast<double>(wrong) / static_cast<double>(n) : 0.0;
}

double ClassificationJob::topk_error(int k) const {
  std::int64_t n = 0, wrong = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].label < 0) continue;
    ++n;
    const auto top = nn::top_k(predictions.at(i).probs, k);
    bool hit = false;
    for (const auto& [cls, p] : top) {
      if (cls == items[i].label) {
        hit = true;
        break;
      }
    }
    if (!hit) ++wrong;
  }
  return n > 0 ? static_cast<double>(wrong) / static_cast<double>(n) : 0.0;
}

std::int64_t ClassificationJob::labelled() const {
  std::int64_t n = 0;
  for (const auto& item : items) {
    if (item.label >= 0) ++n;
  }
  return n;
}

double confidence_difference(const ClassificationJob& a,
                             const ClassificationJob& b) {
  if (a.items.size() != b.items.size() ||
      a.predictions.size() != b.predictions.size()) {
    throw std::invalid_argument("confidence_difference: job size mismatch");
  }
  double sum = 0.0;
  std::int64_t n = 0;
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    const int label = a.items[i].label;
    if (label < 0 || a.items[i].id != b.items[i].id) {
      if (a.items[i].id != b.items[i].id) {
        throw std::invalid_argument("confidence_difference: item mismatch");
      }
      continue;
    }
    // Filter the top-1 miss-predictions of either implementation.
    if (a.predictions[i].label != label || b.predictions[i].label != label) {
      continue;
    }
    sum += std::abs(static_cast<double>(a.predictions[i].confidence) -
                    static_cast<double>(b.predictions[i].confidence));
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::vector<std::int64_t> plan_partition(
    std::int64_t images, const std::vector<double>& throughputs) {
  if (images < 0 || throughputs.empty()) {
    throw std::invalid_argument("plan_partition: bad arguments");
  }
  double total = 0.0;
  for (double t : throughputs) {
    if (!(t >= 0.0) || !std::isfinite(t)) {
      throw std::invalid_argument("plan_partition: bad throughput");
    }
    total += t;
  }
  std::vector<std::int64_t> shares(throughputs.size(), 0);
  if (total <= 0.0 || images == 0) {
    // Degenerate: dump everything on target 0.
    if (!shares.empty()) shares[0] = images;
    return shares;
  }
  // Largest-remainder apportionment: proportional floors, leftovers to
  // the largest fractional parts.
  std::int64_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> fractions;
  for (std::size_t i = 0; i < throughputs.size(); ++i) {
    const double exact =
        static_cast<double>(images) * throughputs[i] / total;
    shares[i] = static_cast<std::int64_t>(exact);
    assigned += shares[i];
    fractions.emplace_back(exact - static_cast<double>(shares[i]), i);
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::int64_t left = images - assigned; left > 0; --left) {
    ++shares[fractions[static_cast<std::size_t>(images - assigned - left)]
                 .second];
  }
  return shares;
}

std::size_t Application::add_target(std::shared_ptr<Target> target) {
  if (!target) throw std::invalid_argument("add_target: null target");
  targets_.push_back(std::move(target));
  return targets_.size() - 1;
}

std::vector<SourceItem> Application::drain(Source& source,
                                           std::int64_t limit) const {
  std::vector<SourceItem> items;
  while (limit < 0 || static_cast<std::int64_t>(items.size()) < limit) {
    auto item = source.next();
    if (!item) break;
    items.push_back(std::move(*item));
  }
  return items;
}

std::vector<tensor::TensorF> Application::preprocess_all(
    const std::vector<SourceItem>& items) const {
  std::vector<tensor::TensorF> inputs;
  inputs.reserve(items.size());
  for (const auto& item : items) inputs.push_back(preprocessor_(item.image));
  return inputs;
}

ClassificationJob Application::run_classification(Source& source,
                                                  std::size_t target_index,
                                                  std::int64_t limit) {
  Target& tgt = target(target_index);
  ClassificationJob job;
  job.target = tgt.short_name();
  job.items = drain(source, limit);
  job.predictions = tgt.classify(preprocess_all(job.items));
  return job;
}

std::vector<ClassificationJob> Application::run_on_all_targets(
    Source& source, std::int64_t limit) {
  const std::vector<SourceItem> items = drain(source, limit);
  const std::vector<tensor::TensorF> inputs = preprocess_all(items);
  std::vector<ClassificationJob> jobs;
  jobs.reserve(targets_.size());
  for (auto& tgt : targets_) {
    ClassificationJob job;
    job.target = tgt->short_name();
    job.items = items;
    job.predictions = tgt->classify(inputs);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace ncsw::core
