#include "core/target.h"

#include <algorithm>
#include <stdexcept>

#include "check/serve_check.h"

namespace ncsw::core {

const char* ticket_state_name(TicketState s) {
  switch (s) {
    case TicketState::kSubmitted: return "submitted";
    case TicketState::kCompleted: return "completed";
    case TicketState::kFailed:    return "failed";
    case TicketState::kCancelled: return "cancelled";
  }
  return "unknown";
}

void Target::set_inflight_window(int window) {
  window_ = std::max(1, window);
}

Ticket Target::submit(std::int64_t images, int batch, double submit_s) {
  return submit_impl(images, batch, submit_s, /*aligned=*/false);
}

Ticket Target::submit_impl(std::int64_t images, int batch, double submit_s,
                           bool aligned) {
  if (images < 1) throw std::invalid_argument("submit: images < 1");
  if (batch < 1 || batch > max_batch()) {
    throw std::invalid_argument("submit: bad batch for " + short_name());
  }
  if (window_full()) {
    throw std::runtime_error("submit: in-flight window full on " +
                             short_name() + " (window " +
                             std::to_string(window_) + ")");
  }

  TicketRec rec;
  rec.info.images = images;
  rec.info.batch = batch;
  rec.info.submit_s = submit_s;
  // Execution is eager on the simulated clock: the whole discrete-event
  // stack is synchronous, so the submission's device-time cost is
  // committed here and the ticket merely carries its completion
  // timestamp forward to the caller's poll loop.
  try {
    BatchExec exec = execute_batch(images, batch, submit_s, aligned);
    rec.info.start_s = exec.start_s;
    rec.info.complete_s = exec.complete_s;
    rec.run = std::move(exec.run);
  } catch (...) {
    rec.info.state = TicketState::kFailed;
    rec.info.start_s = submit_s;
    rec.info.complete_s = submit_s;
    rec.error = std::current_exception();
  }
  horizon_s_ = std::max(horizon_s_, rec.info.complete_s);

  const Ticket t{next_ticket_++};
  tickets_.emplace(t.id, std::move(rec));
  // The verifier shadows the accepted submission (a window-full submit
  // threw above — that is legal backpressure, not a violation).
  auto& sv = check::serve_verifier();
  if (sv.enabled()) {
    sv.on_submit(this, short_name(), t.id, inflight(), window_, submit_s);
  }
  return t;
}

const Target::TicketRec* Target::find(Ticket t) const {
  const auto it = tickets_.find(t.id);
  return it == tickets_.end() ? nullptr : &it->second;
}

TicketState Target::poll(Ticket t, double now_s) const {
  if (const TicketRec* rec = find(t)) {
    if (rec->info.state != TicketState::kSubmitted) return rec->info.state;
    return now_s >= rec->info.complete_s ? TicketState::kCompleted
                                         : TicketState::kSubmitted;
  }
  for (const auto& [id, info] : retired_) {
    if (id == t.id) return info.state;
  }
  // Evicted from the retired ring, or never issued here: a defined
  // error either way — stale ticket state is never served. In strict
  // mode the verifier's ServeViolationError pre-empts the throw below.
  auto& sv = check::serve_verifier();
  if (sv.enabled()) {
    sv.on_poll_miss(this, short_name(), t.id, next_ticket_ - 1, now_s);
  }
  throw std::out_of_range("poll: unknown ticket " + std::to_string(t.id));
}

TicketInfo Target::info(Ticket t) const {
  if (const TicketRec* rec = find(t)) return rec->info;
  for (const auto& [id, info] : retired_) {
    if (id == t.id) return info;
  }
  auto& sv = check::serve_verifier();
  if (sv.enabled()) {
    sv.on_poll_miss(this, short_name(), t.id, next_ticket_ - 1, horizon_s_);
  }
  throw std::out_of_range("info: unknown ticket " + std::to_string(t.id));
}

TimedRun Target::wait(Ticket t) {
  const auto it = tickets_.find(t.id);
  if (it == tickets_.end()) {
    auto& sv = check::serve_verifier();
    for (const auto& [id, info] : retired_) {
      if (id == t.id) {
        if (sv.enabled()) {
          sv.on_wait_retired(this, short_name(), t.id,
                             ticket_state_name(info.state), horizon_s_);
        }
        throw std::logic_error(std::string("wait: ticket ") +
                               std::to_string(t.id) + " already " +
                               ticket_state_name(info.state));
      }
    }
    if (sv.enabled()) {
      sv.on_wait_miss(this, short_name(), t.id, next_ticket_ - 1, horizon_s_);
    }
    throw std::out_of_range("wait: unknown ticket " + std::to_string(t.id));
  }
  if (it->second.error) {
    std::exception_ptr error = it->second.error;
    retire(t.id, TicketState::kFailed);
    std::rethrow_exception(error);
  }
  TimedRun run = std::move(it->second.run);
  retire(t.id, TicketState::kCompleted);
  return run;
}

bool Target::cancel(Ticket t) {
  if (tickets_.find(t.id) == tickets_.end()) {
    // Cancelling a retired ticket is the documented drain idiom; only
    // an id this target never issued is a caller bug.
    auto& sv = check::serve_verifier();
    if (sv.enabled()) {
      sv.on_cancel_miss(this, short_name(), t.id, next_ticket_ - 1,
                        horizon_s_);
    }
    return false;
  }
  retire(t.id, TicketState::kCancelled);
  return true;
}

int Target::cancel_outstanding() {
  int n = 0;
  while (!tickets_.empty()) {
    retire(tickets_.begin()->first, TicketState::kCancelled);
    ++n;
  }
  return n;
}

void Target::retire(std::uint64_t id, TicketState final_state) {
  const auto it = tickets_.find(id);
  TicketInfo info = it->second.info;
  info.state = final_state;
  tickets_.erase(it);
  retired_.emplace_back(id, info);
  while (retired_.size() > kRetiredKept) retired_.pop_front();
}

TimedRun Target::run_timed(std::int64_t images, int batch) {
  // The synchronous call every bench and figure is built on: one aligned
  // submission at the latest completion seen, retrieved immediately.
  return wait(submit_impl(images, batch, horizon_s_, /*aligned=*/true));
}

}  // namespace ncsw::core
