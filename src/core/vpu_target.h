// The multi-VPU target — the paper's main contribution (Section III,
// Fig. 4). One NCAPI graph handle per stick; images are assigned
// round-robin; each stick's stream of load -> execute -> get overlaps
// with the other sticks'. In timed runs the number of active sticks is
// coupled to the batch size, exactly as in the paper's figures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/health.h"
#include "core/target.h"
#include "devices/calibration.h"
#include "mvnc/sim_host.h"

namespace ncsw::core {

/// Image-to-stick assignment policy for the multi-VPU runner.
enum class Scheduling {
  kRoundRobin,   ///< the paper's static policy (Section III)
  kLeastLoaded,  ///< dynamic: next image goes to the earliest-free stick
};

/// Multi-VPU target configuration.
struct VpuTargetConfig {
  int devices = 8;  ///< sticks to open (the paper's testbed has 8)
  mvnc::HostConfig::Topology topology =
      mvnc::HostConfig::Topology::kPaperTestbed;
  Scheduling scheduling = Scheduling::kRoundRobin;
  /// Heterogeneity knob forwarded to the host (see mvnc::HostConfig).
  int degraded_device = -1;
  double degraded_factor = 2.0;
  ncs::NcsConfig ncs;  ///< stick/chip parameters (calibrated defaults)
  /// Host gap between inferences when a single stick is driven from the
  /// main thread (batch 1).
  double single_gap_s = devices::calibration::kVpuSingleGapS;
  /// Host gap per inference in multi-threaded mode (thread management).
  double thread_gap_s = devices::calibration::kVpuThreadGapS;
  /// Stagger between worker-thread start-ups at the beginning of a run.
  double thread_spawn_s = 40e-6;
  /// Use real host threads for functional classification (the OpenMP mode
  /// of the paper's framework). Timing is unaffected.
  bool parallel_host_threads = true;
  /// Scripted fault windows forwarded to the host (empty: no injection,
  /// fault-free behaviour is byte-identical to a build without them).
  sim::FaultPlan faults;
  /// Retry / backoff / quarantine policy of the self-healing runner.
  HealthPolicy health;
  /// When every stick is dead, run_timed normally throws. With
  /// allow_partial the run returns instead, reporting the abandoned
  /// images in TimedRun::images_lost (used by the chaos bench to plot
  /// graceful degradation past the cliff).
  bool allow_partial = false;
  /// NCAPI protocol verifier mode forwarded to the host (see
  /// check/protocol.h). kDefault resolves through
  /// check::set_default_mode() / $NCSW_CHECK, falling back to off.
  check::CheckMode check = check::CheckMode::kDefault;
};

/// Target driving 1..N simulated Neural Compute Sticks through the mvnc
/// API. Reconfigures the global mvnc simulation host at construction.
class VpuTarget : public Target {
 public:
  VpuTarget(std::shared_ptr<const ModelBundle> bundle,
            const VpuTargetConfig& config = {});
  ~VpuTarget() override;

  VpuTarget(const VpuTarget&) = delete;
  VpuTarget& operator=(const VpuTarget&) = delete;

  std::string name() const override;
  std::string short_name() const override { return "VPU (Multi)"; }

  /// The paper couples active sticks to batch size; TDP = sticks * 2.5 W
  /// (chip TDP 0.9 W is reported separately by the power bench).
  double tdp_w(int batch) const override;

  int max_batch() const override { return config_.devices; }

  std::vector<Prediction> classify(
      const std::vector<tensor::TensorF>& inputs) override;

  /// Per-layer execution times (ms) reported by the NCAPI profiling
  /// option for stick 0.
  std::vector<float> layer_times_ms() const;

  /// The mvnc graph handle of stick `d` (for fault-injection tests and
  /// the failover ablation). Throws std::out_of_range on bad indices.
  void* graph_handle(int d) const { return graph_handles_.at(d); }

  const VpuTargetConfig& config() const noexcept { return config_; }

 protected:
  /// One batch across `batch` sticks. Both modes gate the active sticks
  /// on a common start t0 = max(stick cursors) staggered by thread
  /// spawn; pipelined mode (submit) additionally floors t0 at the
  /// submission instant. Aligned mode (the run_timed shim) is
  /// byte-identical to the pre-async run_timed. Completion timestamps
  /// are mapped onto the caller's clock through a serial engine queue
  /// (start = max(submit, engine free), complete = start + span): the
  /// mvnc cursors carry the device-simulation epoch (boot + graph
  /// allocation), which must not leak into serving timelines.
  BatchExec execute_batch(std::int64_t images, int batch, double submit_s,
                          bool aligned) override;

 private:
  void open_all();
  void close_all();

  std::shared_ptr<const ModelBundle> bundle_;
  VpuTargetConfig config_;
  std::vector<void*> device_handles_;
  std::vector<void*> graph_handles_;
  /// Caller-clock instant the engine frees (see execute_batch).
  double next_free_s_ = 0.0;
  /// mvnc host generation our handles belong to. A later host_reset (for
  /// example another VpuTarget's open_all) invalidates every handle, so
  /// close_all must not feed them back into the API.
  std::uint64_t host_generation_ = 0;
};

}  // namespace ncsw::core
