#include "core/vpu_target.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "mvnc/mvnc.h"
#include "myriad/myriad.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::core {

using mvnc::mvncStatus;

VpuTarget::VpuTarget(std::shared_ptr<const ModelBundle> bundle,
                     const VpuTargetConfig& config)
    : bundle_(std::move(bundle)), config_(config) {
  if (!bundle_) throw std::invalid_argument("VpuTarget: null bundle");
  if (config_.devices < 1) throw std::invalid_argument("VpuTarget: devices < 1");
  open_all();
}

VpuTarget::~VpuTarget() { close_all(); }

void VpuTarget::open_all() {
  mvnc::HostConfig host;
  host.devices = config_.devices;
  host.topology = config_.topology;
  host.ncs = config_.ncs;
  host.degraded_device = config_.degraded_device;
  host.degraded_factor = config_.degraded_factor;
  mvnc::host_reset(host);

  for (int d = 0; d < config_.devices; ++d) {
    char name[64];
    if (mvnc::mvncGetDeviceName(d, name, sizeof(name)) != mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: device enumeration failed");
    }
    void* dev = nullptr;
    if (mvnc::mvncOpenDevice(name, &dev) != mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: mvncOpenDevice failed");
    }
    device_handles_.push_back(dev);

    void* graph = nullptr;
    const auto& blob = bundle_->graph_blob;
    if (mvnc::mvncAllocateGraph(dev, &graph, blob.data(),
                                static_cast<unsigned int>(blob.size())) !=
        mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: mvncAllocateGraph failed");
    }
    graph_handles_.push_back(graph);
    // Functional bundles ship their network + FP16 weights inside the
    // graph file (graphc::serialize_package), so the stick computes real
    // outputs with no further setup.
  }
}

void VpuTarget::close_all() {
  for (void* g : graph_handles_) mvnc::mvncDeallocateGraph(g);
  graph_handles_.clear();
  for (void* d : device_handles_) mvnc::mvncCloseDevice(d);
  device_handles_.clear();
}

std::string VpuTarget::name() const {
  return "Intel Movidius Myriad 2 VPU x" + std::to_string(config_.devices) +
         " (NCS, FP16)";
}

double VpuTarget::tdp_w(int batch) const {
  const int active = std::clamp(batch, 1, config_.devices);
  return myriad::TdpConstants::kNcsStickW * active;
}

TimedRun VpuTarget::run_timed(std::int64_t images, int batch) {
  if (images < 1) throw std::invalid_argument("run_timed: images < 1");
  if (batch < 1 || batch > max_batch()) {
    throw std::invalid_argument("run_timed: bad batch for VPU target");
  }
  const int active = batch;  // the paper couples sticks to batch size
  const double gap = active > 1 ? config_.thread_gap_s : config_.single_gap_s;

  // Align all active sticks on a common start, staggered by thread spawn.
  double t0 = 0.0;
  for (int d = 0; d < active; ++d) {
    t0 = std::max(t0, mvnc::host_time(graph_handles_[d]).value_or(0.0));
  }
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(bundle_->compiled_f16.input_bytes()), 0);

  TimedRun run;
  run.images = images;
  double last_completion = t0;
  for (int d = 0; d < active; ++d) {
    void* graph = graph_handles_[d];
    mvnc::set_host_time(graph, t0 + (active > 1 ? d * config_.thread_spawn_s
                                                : 0.0));
    mvnc::set_inter_op_gap(graph, gap);
  }
  // Deterministic replay of the threaded runner: images are issued across
  // the sticks in assignment order, so all device timelines (and the
  // shared USB hub channels they contend on) advance together. The
  // paper's policy is static round-robin; kLeastLoaded instead hands the
  // next image to whichever stick's host cursor is earliest.
  std::vector<bool> alive(static_cast<std::size_t>(active), true);
  int alive_count = active;
  auto& reg = util::metrics();
  static util::Counter& m_images = reg.counter("core.sched.images");
  static util::Counter& m_retries =
      reg.counter("core.sched.failover_retries");
  std::vector<std::uint64_t> assigned(static_cast<std::size_t>(active), 0);
  for (std::int64_t i = 0; i < images; ++i) {
    // Each image retries on another stick when its stick vanishes
    // (MVNC_GONE — an unplugged NCS): the runner degrades gracefully
    // instead of aborting the batch.
    for (;;) {
      if (alive_count == 0) {
        throw std::runtime_error("run_timed: all sticks are gone");
      }
      std::size_t pick = static_cast<std::size_t>(i % active);
      if (config_.scheduling == Scheduling::kLeastLoaded || !alive[pick]) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t d = 0; d < static_cast<std::size_t>(active); ++d) {
          if (!alive[d]) continue;
          const double t = mvnc::host_time(graph_handles_[d]).value_or(best);
          if (t < best) {
            best = t;
            pick = d;
          }
        }
      }
      void* graph = graph_handles_[pick];
      const auto load_st = mvnc::mvncLoadTensor(
          graph, input.data(), static_cast<unsigned int>(input.size()),
          nullptr);
      if (load_st == mvnc::MVNC_GONE) {
        alive[pick] = false;
        --alive_count;
        m_retries.add(1);
        continue;
      }
      if (load_st != mvnc::MVNC_OK) {
        throw std::runtime_error("run_timed: mvncLoadTensor failed");
      }
      void* out = nullptr;
      unsigned int out_len = 0;
      const auto get_st = mvnc::mvncGetResult(graph, &out, &out_len, nullptr);
      if (get_st == mvnc::MVNC_GONE) {
        alive[pick] = false;
        --alive_count;
        m_retries.add(1);
        continue;  // the in-flight inference was lost: redo the image
      }
      if (get_st != mvnc::MVNC_OK) {
        throw std::runtime_error("run_timed: mvncGetResult failed");
      }
      const auto ticket = mvnc::last_ticket(graph);
      if (!ticket) throw std::runtime_error("run_timed: missing ticket");
      run.per_image_ms.add((ticket->result_ready - ticket->issue) * 1e3);
      last_completion = std::max(last_completion, ticket->result_ready);
      ++assigned[pick];
      break;
    }
  }
  m_images.add(static_cast<std::uint64_t>(images));
  for (std::size_t d = 0; d < assigned.size(); ++d) {
    if (assigned[d] > 0) {
      reg.counter("core.sched.assigned.dev" + std::to_string(d))
          .add(assigned[d]);
    }
  }
  auto& tr = util::tracer();
  if (tr.enabled()) {
    tr.complete("core", "run_timed", tr.lane("scheduler"), t0, last_completion,
                {util::TraceArg::num("images", images),
                 util::TraceArg::num("batch", static_cast<std::int64_t>(batch)),
                 util::TraceArg::str("policy",
                                     config_.scheduling ==
                                             Scheduling::kLeastLoaded
                                         ? "least-loaded"
                                         : "round-robin")});
  }
  run.seconds = last_completion - t0;
  return run;
}

std::vector<Prediction> VpuTarget::classify(
    const std::vector<tensor::TensorF>& inputs) {
  if (!bundle_->functional()) {
    throw std::logic_error("VpuTarget::classify: timing-only bundle");
  }
  std::vector<Prediction> results(inputs.size());
  const int active =
      static_cast<int>(std::min<std::size_t>(inputs.size(),
                                             graph_handles_.size()));
  if (active == 0) return results;

  auto worker = [&](int d) {
    void* graph = graph_handles_[static_cast<std::size_t>(d)];
    for (std::size_t i = static_cast<std::size_t>(d); i < inputs.size();
         i += static_cast<std::size_t>(active)) {
      // Host-side FP32 -> FP16 conversion (the OpenEXR-half step).
      const auto half_input =
          tensor::tensor_cast<ncsw::fp16::half>(inputs[i]);
      mvncStatus st = mvnc::mvncLoadTensor(
          graph, half_input.data(),
          static_cast<unsigned int>(half_input.numel() *
                                    sizeof(ncsw::fp16::half)),
          nullptr);
      if (st != mvnc::MVNC_OK) {
        throw std::runtime_error("classify: mvncLoadTensor failed");
      }
      void* out = nullptr;
      unsigned int out_len = 0;
      st = mvnc::mvncGetResult(graph, &out, &out_len, nullptr);
      if (st != mvnc::MVNC_OK) {
        throw std::runtime_error("classify: mvncGetResult failed");
      }
      const auto* halves = static_cast<const ncsw::fp16::half*>(out);
      const std::size_t n = out_len / sizeof(ncsw::fp16::half);
      std::vector<float> probs(n);
      for (std::size_t k = 0; k < n; ++k) {
        probs[k] = static_cast<float>(halves[k]);
      }
      results[i] = make_prediction(std::move(probs));
    }
  };

  if (config_.parallel_host_threads && active > 1) {
    // Worker exceptions must not escape their threads (std::terminate);
    // capture the first and rethrow on the caller.
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(active));
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (int d = 0; d < active; ++d) {
      threads.emplace_back([&, d] {
        try {
          worker(d);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (int d = 0; d < active; ++d) worker(d);
  }
  return results;
}

std::vector<float> VpuTarget::layer_times_ms() const {
  std::vector<float> times(bundle_->compiled_f16.layers.size());
  unsigned int len = static_cast<unsigned int>(times.size() * sizeof(float));
  if (mvnc::mvncGetGraphOption(graph_handles_.at(0), mvnc::MVNC_TIME_TAKEN,
                               times.data(), &len) != mvnc::MVNC_OK) {
    throw std::runtime_error("layer_times_ms: option query failed");
  }
  times.resize(len / sizeof(float));
  return times;
}

}  // namespace ncsw::core
