#include "core/vpu_target.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "mvnc/mvnc.h"
#include "myriad/myriad.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::core {

using mvnc::mvncStatus;

VpuTarget::VpuTarget(std::shared_ptr<const ModelBundle> bundle,
                     const VpuTargetConfig& config)
    : bundle_(std::move(bundle)), config_(config) {
  if (!bundle_) throw std::invalid_argument("VpuTarget: null bundle");
  if (config_.devices < 1) throw std::invalid_argument("VpuTarget: devices < 1");
  open_all();
}

VpuTarget::~VpuTarget() { close_all(); }

void VpuTarget::open_all() {
  mvnc::HostConfig host;
  host.devices = config_.devices;
  host.topology = config_.topology;
  host.ncs = config_.ncs;
  host.degraded_device = config_.degraded_device;
  host.degraded_factor = config_.degraded_factor;
  host.faults = config_.faults;
  host.check = config_.check;
  mvnc::host_reset(host);
  host_generation_ = mvnc::host_generation();

  for (int d = 0; d < config_.devices; ++d) {
    char name[64];
    if (mvnc::mvncGetDeviceName(d, name, sizeof(name)) != mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: device enumeration failed");
    }
    void* dev = nullptr;
    if (mvnc::mvncOpenDevice(name, &dev) != mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: mvncOpenDevice failed");
    }
    device_handles_.push_back(dev);

    void* graph = nullptr;
    const auto& blob = bundle_->graph_blob;
    if (mvnc::mvncAllocateGraph(dev, &graph, blob.data(),
                                static_cast<unsigned int>(blob.size())) !=
        mvnc::MVNC_OK) {
      throw std::runtime_error("VpuTarget: mvncAllocateGraph failed");
    }
    graph_handles_.push_back(graph);
    mvnc::set_watchdog(graph, config_.health.watchdog_s);
    // Functional bundles ship their network + FP16 weights inside the
    // graph file (graphc::serialize_package), so the stick computes real
    // outputs with no further setup.
  }
}

void VpuTarget::close_all() {
  if (mvnc::host_generation() == host_generation_) {
    for (std::size_t d = 0; d < graph_handles_.size(); ++d) {
      void* g = graph_handles_[d];
      if (!g) continue;
      // Drain before deallocate on every exit path: a stick quarantined
      // after watchdog timeouts can still hold queued results here (its
      // images were replayed elsewhere), and deallocating over them is
      // the verifier's undrained-at-dealloc class. Lift the watchdog so
      // the drain itself cannot time out, and consult pending_results —
      // probing GetResult with nothing outstanding is a violation too.
      mvnc::set_watchdog(g, std::numeric_limits<double>::infinity());
      int drained = 0;
      for (int left = mvnc::pending_results(g); left > 0; --left) {
        void* out = nullptr;
        unsigned int out_len = 0;
        if (mvnc::mvncGetResult(g, &out, &out_len, nullptr) !=
            mvnc::MVNC_OK) {
          break;  // detached/unplugged stick: its queue died with it
        }
        ++drained;
      }
      if (drained > 0) {
        // Cold path only: fault-free teardowns must not materialise
        // health instruments (byte-identity guard in test_faults).
        util::metrics()
            .counter("core.health.dev" + std::to_string(d) +
                     ".shutdown_drains")
            .add(static_cast<std::uint64_t>(drained));
      }
      mvnc::mvncDeallocateGraph(g);
    }
    for (void* d : device_handles_) mvnc::mvncCloseDevice(d);
  }
  // Otherwise a later host_reset (another target's open_all) already
  // invalidated every handle — feeding the stale pointers back into the
  // API could hit an address reused by the new host's handles.
  graph_handles_.clear();
  device_handles_.clear();
}

std::string VpuTarget::name() const {
  return "Intel Movidius Myriad 2 VPU x" + std::to_string(config_.devices) +
         " (NCS, FP16)";
}

double VpuTarget::tdp_w(int batch) const {
  const int active = std::clamp(batch, 1, config_.devices);
  return myriad::TdpConstants::kNcsStickW * active;
}

Target::BatchExec VpuTarget::execute_batch(std::int64_t images, int batch,
                                           double submit_s, bool aligned) {
  const int active = batch;  // the paper couples sticks to batch size
  const double gap = active > 1 ? config_.thread_gap_s : config_.single_gap_s;

  // Align all active sticks on a common start, staggered by thread
  // spawn — the synchronous runner's barrier, preserved verbatim in
  // aligned mode so the fig6 goldens stay byte-identical. Pipelined
  // submissions keep the same barrier (letting sticks free-run
  // desynchronises their transfers on the shared USB hub and costs
  // throughput) but additionally floor it at the submission instant, so
  // a ticket never starts before it was submitted.
  double t0 = aligned ? 0.0 : submit_s;
  for (int d = 0; d < active; ++d) {
    t0 = std::max(t0, mvnc::host_time(graph_handles_[d]).value_or(0.0));
  }
  std::vector<std::uint8_t> input(
      static_cast<std::size_t>(bundle_->compiled_f16.input_bytes()), 0);

  TimedRun run;
  run.images = images;
  double last_completion = t0;
  for (int d = 0; d < active; ++d) {
    void* graph = graph_handles_[d];
    mvnc::set_host_time(graph, t0 + (active > 1 ? d * config_.thread_spawn_s
                                                : 0.0));
    mvnc::set_inter_op_gap(graph, gap);
  }
  // Deterministic replay of the threaded runner: images are issued across
  // the sticks in assignment order, so all device timelines (and the
  // shared USB hub channels they contend on) advance together. The
  // paper's policy is static round-robin; kLeastLoaded instead hands the
  // next image to whichever stick's host cursor is earliest.
  const std::size_t nactive = static_cast<std::size_t>(active);
  auto& reg = util::metrics();
  auto& tr = util::tracer();
  static util::Counter& m_images = reg.counter("core.sched.images");
  static util::Counter& m_retries =
      reg.counter("core.sched.failover_retries");
  std::vector<std::uint64_t> assigned(nactive, 0);

  // Per-stick health records: every fault maps to a retry / backoff /
  // quarantine decision through them (see docs/architecture.md). On a
  // fault-free schedule none of the cold-path helpers below run, keeping
  // the call sequence — and thus all timing — identical to a runner
  // without fault handling.
  std::vector<StickHealth> health;
  health.reserve(nactive);
  for (int d = 0; d < active; ++d) health.emplace_back(d, config_.health);
  int recoveries = 0;

  auto dev_counter = [&reg](std::size_t d,
                            const char* metric) -> util::Counter& {
    return reg.counter("core.health.dev" + std::to_string(d) + "." + metric);
  };
  auto cursor = [&](std::size_t d) {
    return mvnc::host_time(graph_handles_[d]).value_or(0.0);
  };
  auto fault_instant = [&](std::size_t d, const char* name) {
    if (tr.enabled()) {
      tr.instant("core.health", name,
                 tr.lane("dev" + std::to_string(d) + " health"), cursor(d));
    }
  };
  // The stick went MVNC_GONE (detached or unplugged): quarantine it; only
  // a successful replug + graph re-allocation brings it back.
  auto on_gone = [&](std::size_t d) {
    dev_counter(d, "gone").add(1);
    fault_instant(d, "gone");
    health[d].on_gone(cursor(d));
    dev_counter(d, "quarantines").add(1);
    m_retries.add(1);
  };
  // A retryable failure (`why` names the counter): back off and retry on
  // the same stick, or — once retries are exhausted — quarantine it so
  // the image is replayed elsewhere. True = caller should retry here.
  auto transient_retry = [&](std::size_t d, const char* why) -> bool {
    StickHealth& h = health[d];
    dev_counter(d, why).add(1);
    fault_instant(d, why);
    const double now = cursor(d);
    const double delay = h.on_transient_failure(now);
    if (h.state() == HealthState::kQuarantined) {
      dev_counter(d, "quarantines").add(1);
      return false;
    }
    dev_counter(d, "transient_retries").add(1);
    mvnc::set_host_time(graph_handles_[d], now + delay);
    return true;
  };
  // Probe a quarantined stick at its scheduled probe time. True = the
  // stick is schedulable again (on probation).
  auto probe = [&](std::size_t d) -> bool {
    StickHealth& h = health[d];
    const double t = h.next_probe_time();
    dev_counter(d, "probes").add(1);
    if (h.needs_replug()) {
      const auto ready = mvnc::replug_device(device_handles_[d], t);
      bool replugged = false;
      if (ready) {
        // Firmware is back but the old graph handle is stale: re-allocate
        // from the blob (it carries the network + FP16 weights, so the
        // functional payload reattaches with it).
        mvnc::mvncDeallocateGraph(graph_handles_[d]);
        graph_handles_[d] = nullptr;
        void* graph = nullptr;
        const auto& blob = bundle_->graph_blob;
        if (mvnc::mvncAllocateGraph(device_handles_[d], &graph, blob.data(),
                                    static_cast<unsigned int>(blob.size())) ==
            mvnc::MVNC_OK) {
          graph_handles_[d] = graph;
          mvnc::set_host_time(graph, std::max(*ready, t));
          mvnc::set_inter_op_gap(graph, gap);
          mvnc::set_watchdog(graph, config_.health.watchdog_s);
          dev_counter(d, "replug_recoveries").add(1);
          replugged = true;
        }
      }
      if (!replugged) {
        h.on_probe_failure(t);
        if (h.state() == HealthState::kDead) dev_counter(d, "dead").add(1);
        return false;
      }
    } else {
      // Transient quarantine: re-admit at the probe time and retire stale
      // queued results left over from before the quarantine (their images
      // were already replayed elsewhere). Only retrieve what is actually
      // outstanding — a GetResult with nothing in flight is a protocol
      // violation.
      mvnc::set_host_time(graph_handles_[d], t);
      for (int left = mvnc::pending_results(graph_handles_[d]); left > 0;
           --left) {
        void* out = nullptr;
        unsigned int out_len = 0;
        if (mvnc::mvncGetResult(graph_handles_[d], &out, &out_len,
                                nullptr) != mvnc::MVNC_OK) {
          break;
        }
        dev_counter(d, "stale_results_drained").add(1);
      }
    }
    const double since = h.quarantined_since();
    const int failed_probes = h.probes();
    h.on_probe_success();
    ++recoveries;
    dev_counter(d, "recoveries").add(1);
    if (tr.enabled()) {
      tr.complete("core.health", "quarantine",
                  tr.lane("dev" + std::to_string(d) + " health"), since,
                  std::max(t, since),
                  {util::TraceArg::num(
                      "failed_probes",
                      static_cast<std::int64_t>(failed_probes))});
    }
    return true;
  };
  // Run one image on stick `d`. True = image completed (stats recorded);
  // false = the stick dropped out and the image must be replayed.
  auto attempt_image = [&](std::size_t d) -> bool {
    for (;;) {  // LoadTensor with bounded retry
      const auto st = mvnc::mvncLoadTensor(
          graph_handles_[d], input.data(),
          static_cast<unsigned int>(input.size()), nullptr);
      if (st == mvnc::MVNC_OK) break;
      if (st == mvnc::MVNC_GONE) {
        on_gone(d);
        return false;
      }
      if (st == mvnc::MVNC_BUSY) {
        // FIFO full (a scripted busy storm, or stale inferences from an
        // earlier timeout): retire the oldest queued result and retry
        // the load instead of aborting the batch. When nothing is
        // outstanding the BUSY came from a scripted storm, not the FIFO
        // — probing GetResult then would be a protocol violation.
        if (mvnc::pending_results(graph_handles_[d]) > 0) {
          void* out = nullptr;
          unsigned int out_len = 0;
          if (mvnc::mvncGetResult(graph_handles_[d], &out, &out_len,
                                  nullptr) == mvnc::MVNC_OK) {
            dev_counter(d, "busy_drains").add(1);
            continue;  // slot freed; the drained image was already replayed
          }
        }
        if (!transient_retry(d, "busy")) return false;
        continue;
      }
      if (st == mvnc::MVNC_ERROR) {
        if (!transient_retry(d, "usb_errors")) return false;
        continue;
      }
      throw std::runtime_error("run_timed: mvncLoadTensor failed");
    }
    for (;;) {  // GetResult with bounded retry
      void* out = nullptr;
      unsigned int out_len = 0;
      const auto st =
          mvnc::mvncGetResult(graph_handles_[d], &out, &out_len, nullptr);
      if (st == mvnc::MVNC_OK) {
        const auto ticket = mvnc::last_ticket(graph_handles_[d]);
        if (!ticket) throw std::runtime_error("run_timed: missing ticket");
        run.per_image_ms.add((ticket->result_ready - ticket->issue) * 1e3);
        last_completion = std::max(last_completion, ticket->result_ready);
        ++assigned[d];
        health[d].on_success();
        return true;
      }
      if (st == mvnc::MVNC_GONE) {
        on_gone(d);  // the in-flight inference is gone with the stick
        return false;
      }
      if (st == mvnc::MVNC_TIMEOUT) {
        if (!transient_retry(d, "timeouts")) return false;
        continue;
      }
      throw std::runtime_error("run_timed: mvncGetResult failed");
    }
  };

  std::int64_t completed = 0;
  bool exhausted = false;
  for (std::int64_t i = 0; i < images && !exhausted; ++i) {
    // Each image retries on another stick when its stick drops out: the
    // runner degrades gracefully instead of aborting the batch, and
    // quarantined sticks are probed back in as the fleet's clock reaches
    // their backoff deadlines.
    for (;;) {
      double fleet_now = -std::numeric_limits<double>::infinity();
      for (std::size_t d = 0; d < nactive; ++d) {
        if (health[d].schedulable()) {
          fleet_now = std::max(fleet_now, cursor(d));
        }
      }
      for (std::size_t d = 0; d < nactive; ++d) {
        if (health[d].state() == HealthState::kQuarantined &&
            health[d].next_probe_time() <= fleet_now) {
          probe(d);
        }
      }
      // Pick a stick: the paper's static round-robin, falling back to
      // the earliest-free schedulable stick when the assigned one is out.
      std::size_t pick = static_cast<std::size_t>(i % active);
      if (config_.scheduling == Scheduling::kLeastLoaded ||
          !health[pick].schedulable()) {
        double best = std::numeric_limits<double>::infinity();
        std::size_t found = nactive;
        for (std::size_t d = 0; d < nactive; ++d) {
          if (!health[d].schedulable()) continue;
          const double t = cursor(d);
          if (t < best) {
            best = t;
            found = d;
          }
        }
        pick = found;
      }
      if (pick >= nactive) {
        // Nothing schedulable: wait for the earliest quarantine probe,
        // or give up once every stick is dead.
        std::size_t q = nactive;
        double earliest = std::numeric_limits<double>::infinity();
        for (std::size_t d = 0; d < nactive; ++d) {
          if (health[d].state() != HealthState::kQuarantined) continue;
          if (health[d].next_probe_time() < earliest) {
            earliest = health[d].next_probe_time();
            q = d;
          }
        }
        if (q < nactive) {
          probe(q);
          continue;
        }
        if (!config_.allow_partial) {
          throw std::runtime_error("run_timed: all sticks are gone");
        }
        run.images_lost = images - i;
        exhausted = true;
        break;
      }
      if (attempt_image(pick)) {
        ++completed;
        break;
      }
      ++run.images_replayed;
      dev_counter(pick, "images_replayed").add(1);
    }
  }
  run.images = completed;
  run.sticks_recovered = recoveries;
  for (const auto& h : health) {
    if (h.state() == HealthState::kDead) ++run.sticks_dead;
  }
  m_images.add(static_cast<std::uint64_t>(completed));
  for (std::size_t d = 0; d < assigned.size(); ++d) {
    if (assigned[d] > 0) {
      reg.counter("core.sched.assigned.dev" + std::to_string(d))
          .add(assigned[d]);
    }
  }
  // The one-span-per-run "scheduler" lane only makes sense for aligned
  // runs; pipelined submissions overlap, and the serve dispatcher draws
  // their ticket spans on its own per-slot lanes instead.
  if (aligned && tr.enabled()) {
    tr.complete("core", "run_timed", tr.lane("scheduler"), t0, last_completion,
                {util::TraceArg::num("images", images),
                 util::TraceArg::num("batch", static_cast<std::int64_t>(batch)),
                 util::TraceArg::str("policy",
                                     config_.scheduling ==
                                             Scheduling::kLeastLoaded
                                         ? "least-loaded"
                                         : "round-robin")});
  }
  run.seconds = last_completion - t0;
  // Map the execution span onto the caller's submission timeline. The
  // mvnc cursors live on the device-simulation epoch (which includes
  // device boot and graph allocation), so completion timestamps are
  // derived from the span, not read off the cursors: the engine is a
  // serial queue that picks the batch up when it frees.
  BatchExec exec;
  exec.start_s = std::max(submit_s, next_free_s_);
  exec.complete_s = exec.start_s + run.seconds;
  next_free_s_ = exec.complete_s;
  exec.run = std::move(run);
  return exec;
}

std::vector<Prediction> VpuTarget::classify(
    const std::vector<tensor::TensorF>& inputs) {
  if (!bundle_->functional()) {
    throw std::logic_error("VpuTarget::classify: timing-only bundle");
  }
  std::vector<Prediction> results(inputs.size());
  const int active =
      static_cast<int>(std::min<std::size_t>(inputs.size(),
                                             graph_handles_.size()));
  if (active == 0) return results;

  auto worker = [&](int d) {
    void* graph = graph_handles_[static_cast<std::size_t>(d)];
    const StickHealth backoffs(d, config_.health);
    // Bounded transient retry (BUSY / ERROR / TIMEOUT): back off on the
    // stick's own timeline and reissue; anything else aborts the batch
    // (the caller surfaces the first worker error, e.g. MVNC_GONE).
    auto transient = [&](mvncStatus st, int& attempt) -> bool {
      if (st != mvnc::MVNC_BUSY && st != mvnc::MVNC_ERROR &&
          st != mvnc::MVNC_TIMEOUT) {
        return false;
      }
      if (attempt >= config_.health.max_retries) return false;
      const double now = mvnc::host_time(graph).value_or(0.0);
      mvnc::set_host_time(graph, now + backoffs.backoff(attempt));
      ++attempt;
      return true;
    };
    for (std::size_t i = static_cast<std::size_t>(d); i < inputs.size();
         i += static_cast<std::size_t>(active)) {
      // Host-side FP32 -> FP16 conversion (the OpenEXR-half step).
      const auto half_input =
          tensor::tensor_cast<ncsw::fp16::half>(inputs[i]);
      mvncStatus st;
      int attempt = 0;
      for (;;) {
        st = mvnc::mvncLoadTensor(
            graph, half_input.data(),
            static_cast<unsigned int>(half_input.numel() *
                                      sizeof(ncsw::fp16::half)),
            nullptr);
        if (st == mvnc::MVNC_OK || !transient(st, attempt)) break;
      }
      if (st != mvnc::MVNC_OK) {
        throw std::runtime_error("classify: mvncLoadTensor failed");
      }
      void* out = nullptr;
      unsigned int out_len = 0;
      attempt = 0;
      for (;;) {
        st = mvnc::mvncGetResult(graph, &out, &out_len, nullptr);
        if (st == mvnc::MVNC_OK || !transient(st, attempt)) break;
      }
      if (st != mvnc::MVNC_OK) {
        throw std::runtime_error("classify: mvncGetResult failed");
      }
      const auto* halves = static_cast<const ncsw::fp16::half*>(out);
      const std::size_t n = out_len / sizeof(ncsw::fp16::half);
      std::vector<float> probs(n);
      ncsw::fp16::half_to_float_span(halves, probs.data(), n);
      results[i] = make_prediction(std::move(probs));
    }
  };

  if (config_.parallel_host_threads && active > 1) {
    // Worker exceptions must not escape their threads (std::terminate);
    // capture the first and rethrow on the caller.
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(active));
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (int d = 0; d < active; ++d) {
      threads.emplace_back([&, d] {
        try {
          worker(d);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (int d = 0; d < active; ++d) worker(d);
  }
  return results;
}

std::vector<float> VpuTarget::layer_times_ms() const {
  std::vector<float> times(bundle_->compiled_f16.layers.size());
  unsigned int len = static_cast<unsigned int>(times.size() * sizeof(float));
  if (mvnc::mvncGetGraphOption(graph_handles_.at(0), mvnc::MVNC_TIME_TAKEN,
                               times.data(), &len) != mvnc::MVNC_OK) {
    throw std::runtime_error("layer_times_ms: option query failed");
  }
  times.resize(len / sizeof(float));
  return times;
}

}  // namespace ncsw::core
