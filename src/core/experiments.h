// Experiment drivers: one function per figure of the paper's evaluation
// (Section IV/V). The bench binaries print these results; the integration
// tests assert the paper's qualitative shape on them (who wins, by what
// factor, where the crossovers are).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vpu_target.h"
#include "dataset/synthetic.h"
#include "nn/googlenet.h"

namespace ncsw::core::experiments {

/// Common settings for the timing figures.
struct TimingSettings {
  std::int64_t images_per_subset = 10000;  ///< the paper's subset size
  int subsets = 5;                         ///< the paper's 5 groups
  int devices = 8;                         ///< sticks in the testbed
  int batch = 8;                           ///< batch size (Fig. 6a)
};

/// Fig. 6a — inference throughput (img/s) per validation subset at batch 8
/// on CPU, GPU and the 8-stick multi-VPU target.
struct SubsetThroughput {
  std::string subset;
  double cpu = 0, gpu = 0, vpu = 0;          ///< img/s
  double cpu_sd = 0, gpu_sd = 0, vpu_sd = 0; ///< stddev of per-image ms
};
std::vector<SubsetThroughput> fig6a(const TimingSettings& s = {});

/// Fig. 6b — normalised performance scaling per batch size (active VPU
/// chips are coupled to the batch size).
struct ScalingRow {
  int batch = 1;
  double cpu = 1, gpu = 1, vpu = 1;  ///< speedup vs the batch-1 baseline
};
struct ScalingResult {
  double cpu_base_ms = 0, gpu_base_ms = 0, vpu_base_ms = 0;  ///< batch-1 ms
  std::vector<ScalingRow> rows;
};
ScalingResult fig6b(std::int64_t images = 10000,
                    const std::vector<int>& batches = {1, 2, 4, 8},
                    int devices = 8);

/// Fig. 7 — functional error-rate experiment settings.
struct ErrorSettings {
  dataset::DatasetConfig data;       ///< defaults: 5 subsets
  nn::TinyGoogLeNetConfig net;       ///< functional network geometry
  std::int64_t images_per_subset = 400;  ///< functional runs are real work
  int vpu_devices = 8;
  std::uint64_t weight_seed = 0xbadcafeULL;
};
/// One row per subset: FP32 (CPU) and FP16 (VPU) top-1 error and the mean
/// absolute confidence difference after filtering miss-predictions.
struct ErrorRow {
  std::string subset;
  std::int64_t images = 0;
  double cpu_error = 0;   ///< Fig. 7a, FP32
  double vpu_error = 0;   ///< Fig. 7a, FP16
  double conf_diff = 0;   ///< Fig. 7b
};
std::vector<ErrorRow> fig7(const ErrorSettings& s = {});

/// Fig. 8a — throughput per Watt of TDP (Eq. 1) per batch size.
struct WattRow {
  int batch = 1;
  double cpu = 0, gpu = 0, vpu = 0;  ///< img/s/W
};
std::vector<WattRow> fig8a(std::int64_t images = 10000,
                           const std::vector<int>& batches = {1, 2, 4, 8},
                           int devices = 8);

/// Fig. 8b — throughput per batch size with the VPU curve continued past
/// the 8 available sticks (batch 16 is the paper's projection; here it is
/// simulated with 16 sticks and flagged `vpu_projected`).
struct ProjectionRow {
  int batch = 1;
  double cpu = 0, gpu = 0, vpu = 0;  ///< img/s
  bool vpu_projected = false;
};
std::vector<ProjectionRow> fig8b(
    std::int64_t images = 10000,
    const std::vector<int>& batches = {1, 2, 4, 8, 16},
    int devices_available = 8);

}  // namespace ncsw::core::experiments
