#include "core/source.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "imgproc/ppm.h"

namespace ncsw::core {

ImageFolderSource::ImageFolderSource(
    std::shared_ptr<const dataset::SyntheticImageNet> data, int subset,
    std::int64_t limit)
    : data_(std::move(data)), subset_(subset) {
  if (!data_) throw std::invalid_argument("ImageFolderSource: null dataset");
  if (subset_ < -1 || subset_ >= data_->subsets()) {
    throw std::invalid_argument("ImageFolderSource: bad subset");
  }
  const std::int64_t per = data_->images_per_subset();
  total_ = subset_ == -1 ? per * data_->subsets() : per;
  if (limit >= 0) total_ = std::min(total_, limit);
}

std::optional<SourceItem> ImageFolderSource::next() {
  if (cursor_ >= total_) return std::nullopt;
  const std::int64_t per = data_->images_per_subset();
  const int subset =
      subset_ == -1 ? static_cast<int>(cursor_ / per) : subset_;
  const int index = static_cast<int>(subset_ == -1 ? cursor_ % per : cursor_);
  ++cursor_;

  auto sample = data_->sample(subset, index);
  SourceItem item;
  item.image = std::move(sample.image);
  item.label = sample.label;
  item.id = dataset::subset_name(subset) + "/" + std::to_string(index);
  return item;
}

DirectorySource::DirectorySource(const std::string& path) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(path)) {
    throw std::invalid_argument("DirectorySource: not a directory: " + path);
  }
  for (const auto& entry : fs::directory_iterator(path)) {
    if (entry.is_regular_file() && entry.path().extension() == ".ppm") {
      files_.push_back(entry.path().string());
    }
  }
  std::sort(files_.begin(), files_.end());
}

std::optional<SourceItem> DirectorySource::next() {
  if (cursor_ >= files_.size()) return std::nullopt;
  const std::string& file = files_[cursor_++];
  SourceItem item;
  item.image = imgproc::load_ppm(file);
  item.id = file;
  return item;
}

StreamSource::StreamSource(Producer producer, std::size_t queue_capacity)
    : producer_(std::move(producer)),
      capacity_(std::max<std::size_t>(1, queue_capacity)) {
  if (!producer_) throw std::invalid_argument("StreamSource: null producer");
  thread_ = std::thread([this] { producer_loop(); });
}

StreamSource::~StreamSource() {
  close();
  if (thread_.joinable()) thread_.join();
}

void StreamSource::close() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

void StreamSource::producer_loop() {
  for (;;) {
    std::optional<SourceItem> item = producer_();
    std::unique_lock lock(mutex_);
    if (!item) {
      done_ = true;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [this] { return stop_ || queue_.size() < capacity_; });
    if (stop_) {
      // Leaving on close() still marks the stream finished, so a consumer
      // that only watches done_ (or races the close) cannot block forever.
      done_ = true;
      cv_.notify_all();
      return;
    }
    queue_.push_back(std::move(*item));
    cv_.notify_all();
  }
}

std::optional<SourceItem> StreamSource::next() {
  std::unique_lock lock(mutex_);
  // stop_ must be part of the predicate: close() (and the destructor)
  // would otherwise never wake a consumer blocked here on an empty queue.
  cv_.wait(lock, [this] { return stop_ || done_ || !queue_.empty(); });
  if (stop_ || queue_.empty()) return std::nullopt;
  SourceItem item = std::move(queue_.front());
  queue_.pop_front();
  cv_.notify_all();
  return item;
}

void StreamSource::reset() {
  throw std::logic_error("StreamSource::reset: streams cannot rewind");
}

MpiStreamSource::MpiStreamSource(std::vector<Producer> producers,
                                 std::size_t queue_capacity)
    : producers_(std::move(producers)),
      capacity_(std::max<std::size_t>(1, queue_capacity)) {
  if (producers_.empty()) {
    throw std::invalid_argument("MpiStreamSource: no producers");
  }
  for (const auto& p : producers_) {
    if (!p) throw std::invalid_argument("MpiStreamSource: null producer");
  }
  live_producers_ = producers_.size();
  threads_.reserve(producers_.size());
  for (std::size_t rank = 0; rank < producers_.size(); ++rank) {
    threads_.emplace_back([this, rank] { rank_loop(rank); });
  }
}

MpiStreamSource::~MpiStreamSource() {
  close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void MpiStreamSource::close() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

void MpiStreamSource::rank_loop(std::size_t rank) {
  for (;;) {
    std::optional<SourceItem> item = producers_[rank]();
    std::unique_lock lock(mutex_);
    // Every exit path must decrement live_producers_: the consumer
    // predicate counts on the last leaving rank to fire it at shutdown.
    if (!item || stop_) {
      --live_producers_;
      cv_.notify_all();
      return;
    }
    // Backpressure. A manual wait loop (not the predicate overload) so
    // stats_.producer_waits counts every re-wait: a rank that wakes but
    // loses the race for the freed slot to another rank goes back to
    // sleep, and that is a second wait the stats must show.
    while (!stop_ && queue_.size() >= capacity_) {
      ++stats_.producer_waits;
      cv_.wait(lock);
    }
    if (stop_) {
      --live_producers_;
      cv_.notify_all();
      return;
    }
    queue_.push_back(std::move(*item));
    ++stats_.produced;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    cv_.notify_all();
  }
}

std::optional<SourceItem> MpiStreamSource::next() {
  std::unique_lock lock(mutex_);
  // stop_ in the predicate keeps a consumer blocked here from hanging
  // when close() (or the destructor) shuts the stream down.
  cv_.wait(lock, [this] {
    return stop_ || live_producers_ == 0 || !queue_.empty();
  });
  if (stop_ || queue_.empty()) return std::nullopt;
  SourceItem item = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.consumed;
  cv_.notify_all();
  return item;
}

void MpiStreamSource::reset() {
  throw std::logic_error("MpiStreamSource::reset: streams cannot rewind");
}

MpiStreamSource::Stats MpiStreamSource::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace ncsw::core
