// Target abstraction — the right-hand side of the paper's Fig. 3 class
// diagram. A Target is "where to conduct inference": the Intel CPU, the
// NVIDIA GPU, or a group of one-to-many NCS devices. Targets offer two
// services:
//
//  * run_timed()  — a throughput run of N images at a batch size on the
//    simulated clock (how every performance figure is produced), and
//  * classify()   — functional inference on real tensors (how the
//    error-rate figures are produced).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "tensor/tensor.h"
#include "util/stats.h"

namespace ncsw::core {

/// Functional classification output for one image.
struct Prediction {
  int label = -1;           ///< argmax class
  float confidence = 0.0f;  ///< probability of `label`
  std::vector<float> probs; ///< full distribution
};

/// Result of a timed (simulated) throughput run.
struct TimedRun {
  std::int64_t images = 0;
  double seconds = 0.0;               ///< simulated makespan
  util::RunningStats per_image_ms;    ///< distribution of per-image latency
  /// Self-healing bookkeeping (multi-VPU target under fault injection;
  /// all zero on fault-free runs and on CPU/GPU targets).
  std::int64_t images_replayed = 0;   ///< re-issued after a stick failure
  std::int64_t images_lost = 0;       ///< abandoned (allow_partial runs only)
  int sticks_recovered = 0;           ///< quarantine exits during the run
  int sticks_dead = 0;                ///< sticks unrecoverable at the end

  /// Images per simulated second.
  double throughput() const noexcept {
    return seconds > 0.0 ? static_cast<double>(images) / seconds : 0.0;
  }
};

/// Abstract inference target.
class Target {
 public:
  virtual ~Target() = default;

  /// Full device description.
  virtual std::string name() const = 0;
  /// Column label used by the figures ("CPU", "GPU", "VPU (Multi)").
  virtual std::string short_name() const = 0;

  /// TDP used by Eq. (1) at a given batch size. For the multi-VPU target
  /// the paper couples the number of active sticks to the batch size, so
  /// TDP grows with it; CPU/GPU TDP is constant.
  virtual double tdp_w(int batch) const = 0;

  /// Largest batch size this target accepts.
  virtual int max_batch() const = 0;

  /// Simulated throughput run of `images` inputs at batch size `batch`.
  virtual TimedRun run_timed(std::int64_t images, int batch) = 0;

  /// Advance the target's internal simulated clock to at least `t_s`
  /// seconds. Targets whose device timelines persist across run_timed
  /// calls (the multi-VPU target's per-stick host cursors) use this to
  /// align with an outer scheduler — e.g. the serve dispatcher issuing a
  /// batch at simulated time t after the sticks went idle — so their
  /// trace lanes line up with the scheduler's. Host targets keep no
  /// persistent clock; the default is a no-op.
  virtual void advance_clock(double /*t_s*/) {}

  /// Functional inference on preprocessed FP32 inputs (each 1xCxHxW).
  /// Requires a functional model bundle.
  virtual std::vector<Prediction> classify(
      const std::vector<tensor::TensorF>& inputs) = 0;
};

/// Build a Prediction from a probability vector.
Prediction make_prediction(std::vector<float> probs);

}  // namespace ncsw::core
