// Target abstraction — the right-hand side of the paper's Fig. 3 class
// diagram. A Target is "where to conduct inference": the Intel CPU, the
// NVIDIA GPU, or a group of one-to-many NCS devices. Targets offer three
// services:
//
//  * submit()/poll()/wait() — the non-blocking batch API mirroring the
//    NCAPI's LoadTensor/GetResult split at host granularity: a batch is
//    submitted for execution on the simulated clock and a Ticket tracks
//    it to completion, so an outer scheduler (serve::Server) can keep
//    several batches in flight per target and pipeline load / execute /
//    retrieve across heterogeneous engines (docs/async-targets.md),
//  * run_timed() — the synchronous compatibility shim (submit + wait of
//    one aligned batch); how every performance figure is produced, and
//  * classify() — functional inference on real tensors (how the
//    error-rate figures are produced).
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "tensor/tensor.h"
#include "util/stats.h"

namespace ncsw::core {

/// Functional classification output for one image.
struct Prediction {
  int label = -1;           ///< argmax class
  float confidence = 0.0f;  ///< probability of `label`
  std::vector<float> probs; ///< full distribution
};

/// Result of a timed (simulated) throughput run.
struct TimedRun {
  std::int64_t images = 0;
  double seconds = 0.0;               ///< simulated makespan
  util::RunningStats per_image_ms;    ///< distribution of per-image latency
  /// Self-healing bookkeeping (multi-VPU target under fault injection;
  /// all zero on fault-free runs and on CPU/GPU targets).
  std::int64_t images_replayed = 0;   ///< re-issued after a stick failure
  std::int64_t images_lost = 0;       ///< abandoned (allow_partial runs only)
  int sticks_recovered = 0;           ///< quarantine exits during the run
  int sticks_dead = 0;                ///< sticks unrecoverable at the end

  /// Images per simulated second.
  double throughput() const noexcept {
    return seconds > 0.0 ? static_cast<double>(images) / seconds : 0.0;
  }
};

/// Handle to one submitted batch. Opaque; ids are per-target and never
/// reused within a target's lifetime.
struct Ticket {
  std::uint64_t id = 0;
};

/// Lifecycle of a submission (docs/async-targets.md has the state
/// machine): submitted -> completed | failed | cancelled. There are no
/// other transitions; completed/failed/cancelled are terminal.
enum class TicketState : int {
  kSubmitted = 0,  ///< in flight: `now` has not reached complete_s yet
  kCompleted,      ///< result ready; wait() returns the TimedRun
  kFailed,         ///< execution threw; wait() rethrows
  kCancelled,      ///< cancelled before retrieval; wait() throws
};

/// Stable lowercase name ("submitted", "completed", "failed",
/// "cancelled").
const char* ticket_state_name(TicketState s);

/// Completion record of a submission, on the simulated clock.
struct TicketInfo {
  TicketState state = TicketState::kSubmitted;
  std::int64_t images = 0;
  int batch = 0;
  double submit_s = 0.0;    ///< when the submission entered the window
  double start_s = 0.0;     ///< when execution began (>= submit_s)
  double complete_s = 0.0;  ///< when the last result lands on the host
};

/// Abstract inference target.
///
/// The async surface is deliberately single-threaded, like the serve
/// event loop driving it: submissions execute on the simulated clock
/// and tickets carry completion timestamps, so "polling" is a clock
/// comparison, not a wait on another thread. Not thread-safe.
class Target {
 public:
  virtual ~Target() = default;

  /// Full device description.
  virtual std::string name() const = 0;
  /// Column label used by the figures ("CPU", "GPU", "VPU (Multi)").
  virtual std::string short_name() const = 0;

  /// TDP used by Eq. (1) at a given batch size. For the multi-VPU target
  /// the paper couples the number of active sticks to the batch size, so
  /// TDP grows with it; CPU/GPU TDP is constant.
  virtual double tdp_w(int batch) const = 0;

  /// Largest batch size this target accepts.
  virtual int max_batch() const = 0;

  // ---- Non-blocking submit/poll surface (docs/async-targets.md) ----

  /// Bounded in-flight window — the paper's queue-depth knob at host
  /// granularity: how many submissions may be outstanding (submitted,
  /// failed or cancelled but not yet retired) before submit() refuses.
  int inflight_window() const noexcept { return window_; }
  /// Resize the window (clamped to >= 1). Outstanding tickets keep their
  /// slots; a shrink only throttles future submissions.
  void set_inflight_window(int window);
  /// Outstanding submissions occupying window slots.
  int inflight() const noexcept { return static_cast<int>(tickets_.size()); }
  bool window_full() const noexcept { return inflight() >= window_; }

  /// Queue `images` inputs at batch size `batch`, submitted at simulated
  /// time `submit_s`. Execution begins no earlier than `submit_s` and no
  /// earlier than work already in flight (per-engine FIFO). Throws
  /// std::invalid_argument on bad images/batch and std::runtime_error
  /// when the in-flight window is full (backpressure — wait() or
  /// cancel() a ticket first). A submission whose execution fails is
  /// *accepted*: its ticket reports TicketState::kFailed and wait()
  /// rethrows the failure.
  Ticket submit(std::int64_t images, int batch, double submit_s);

  /// State of `t` as of simulated time `now_s`: kSubmitted until the
  /// completion timestamp is reached, then kCompleted (failed/cancelled
  /// tickets report their terminal state regardless of `now_s`). Knows
  /// recently retired tickets too; throws std::out_of_range for ids this
  /// target never issued or retired long ago.
  TicketState poll(Ticket t, double now_s) const;

  /// Full lifecycle record of `t` (outstanding or recently retired);
  /// throws std::out_of_range like poll().
  TicketInfo info(Ticket t) const;

  /// Block (advance the simulated clock) until `t` completes, retire it
  /// and return its TimedRun, freeing the window slot. Rethrows the
  /// execution failure of a kFailed ticket; throws std::logic_error for
  /// a cancelled ticket and std::out_of_range for an unknown one.
  TimedRun wait(Ticket t);

  /// Cancel an outstanding ticket: its results are discarded and its
  /// window slot freed (simulated device time already committed to it is
  /// not reclaimed — cancellation is a host-side drain, not an abort).
  /// Returns false when `t` is not outstanding.
  bool cancel(Ticket t);

  /// Cancel every outstanding ticket (drain); returns how many.
  int cancel_outstanding();

  /// Synchronous compatibility shim: submit one batch aligned the way
  /// the pre-async runners aligned it (the multi-VPU target gates all
  /// active sticks on a common start; see execute_batch) and wait for
  /// it. Byte-identical to the historical synchronous call — the fig6
  /// golden tests and tests/test_async_targets.cpp hold it to that.
  TimedRun run_timed(std::int64_t images, int batch);

  /// Functional inference on preprocessed FP32 inputs (each 1xCxHxW).
  /// Requires a functional model bundle.
  virtual std::vector<Prediction> classify(
      const std::vector<tensor::TensorF>& inputs) = 0;

 protected:
  /// What one submission executed to. `start_s` is when the engine
  /// actually began (>= the submission time when the engine was busy);
  /// `complete_s` is when the last result landed.
  struct BatchExec {
    TimedRun run;
    double start_s = 0.0;
    double complete_s = 0.0;
  };

  /// Execute one batch submitted at `submit_s`. `aligned` selects the
  /// historical synchronous-run semantics (the run_timed shim: the
  /// multi-VPU target aligns all active sticks on a common staggered
  /// start); the async path passes false and lets each engine pick the
  /// batch up as it frees. Implementations may throw; the base class
  /// converts throws into kFailed tickets (rethrown by wait()).
  virtual BatchExec execute_batch(std::int64_t images, int batch,
                                  double submit_s, bool aligned) = 0;

 private:
  struct TicketRec {
    TicketInfo info;
    TimedRun run;
    std::exception_ptr error;
  };

  Ticket submit_impl(std::int64_t images, int batch, double submit_s,
                     bool aligned);
  const TicketRec* find(Ticket t) const;
  void retire(std::uint64_t id, TicketState final_state);

  /// Retired-ticket history kept for poll()/info() (bounded).
  static constexpr std::size_t kRetiredKept = 64;

  int window_ = 1;
  std::uint64_t next_ticket_ = 1;
  double horizon_s_ = 0.0;  ///< latest completion seen (shim submit time)
  std::unordered_map<std::uint64_t, TicketRec> tickets_;  ///< outstanding
  std::deque<std::pair<std::uint64_t, TicketInfo>> retired_;
};

/// Build a Prediction from a probability vector.
Prediction make_prediction(std::vector<float> probs);

}  // namespace ncsw::core
