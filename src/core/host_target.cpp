#include "core/host_target.h"

#include <stdexcept>

#include "devices/calibration.h"
#include "nn/executor.h"
#include "util/rng.h"

namespace ncsw::core {

Prediction make_prediction(std::vector<float> probs) {
  Prediction p;
  p.probs = std::move(probs);
  for (std::size_t i = 0; i < p.probs.size(); ++i) {
    if (p.label < 0 || p.probs[i] > p.confidence) {
      p.label = static_cast<int>(i);
      p.confidence = p.probs[i];
    }
  }
  return p;
}

HostTarget::HostTarget(std::shared_ptr<const ModelBundle> bundle,
                       devices::HostDeviceModel model, std::string short_name,
                       int max_batch, std::uint64_t jitter_seed)
    : bundle_(std::move(bundle)),
      model_(std::move(model)),
      short_name_(std::move(short_name)),
      max_batch_(max_batch),
      jitter_seed_(jitter_seed) {
  if (!bundle_) throw std::invalid_argument("HostTarget: null bundle");
  if (max_batch_ < 1) throw std::invalid_argument("HostTarget: max_batch < 1");
}

Target::BatchExec HostTarget::execute_batch(std::int64_t images, int batch,
                                            double submit_s, bool /*aligned*/) {
  TimedRun run;
  run.images = images;
  std::int64_t remaining = images;
  while (remaining > 0) {
    const std::int64_t n = std::min<std::int64_t>(batch, remaining);
    // Partial trailing batches still pay the full-batch latency profile of
    // their actual size.
    // The fast tier scales the whole batch profile by its calibrated
    // single-thread kernel speedup (devices/calibration.h).
    const double per_image =
        model_.per_image_s(static_cast<int>(n), bundle_->macs) /
        (fast_ ? devices::calibration::kHostFastSpeedupX : 1.0);
    // Deterministic run-to-run noise (the figures' error bars).
    const std::uint64_t h = util::hash_mix(jitter_seed_, batches_run_++);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double jitter =
        1.0 + devices::calibration::kHostJitterFrac * (2.0 * u - 1.0);
    const double batch_time = per_image * static_cast<double>(n) * jitter;
    run.seconds += batch_time;
    const double ms = batch_time / static_cast<double>(n) * 1e3;
    for (std::int64_t i = 0; i < n; ++i) run.per_image_ms.add(ms);
    remaining -= n;
  }
  // The host engine is one serial queue: this submission starts once the
  // previous one drains (aligned and pipelined paths agree, since the
  // model carries no cross-batch state beyond the jitter stream).
  BatchExec exec;
  exec.run = std::move(run);
  exec.start_s = std::max(submit_s, next_free_s_);
  exec.complete_s = exec.start_s + exec.run.seconds;
  next_free_s_ = exec.complete_s;
  return exec;
}

void HostTarget::set_fast(bool fast) {
  fast_ = fast;
  // Quantization is a graph-load-time pass: run it once per target, not
  // per classify() call (timing-only bundles carry no weights to
  // prepare).
  if (fast_ && bundle_->functional() && quant_.size() == 0) {
    quant_ = nn::quantize_weights(bundle_->graph, bundle_->weights_f32);
  }
}

std::vector<Prediction> HostTarget::classify(
    const std::vector<tensor::TensorF>& inputs) {
  if (!bundle_->functional()) {
    throw std::logic_error("HostTarget::classify: timing-only bundle");
  }
  // Caffe-style batch processing: the input blob is resized to the batch
  // and the whole batch runs through the network in one pass (paper
  // Section III: "the traditional Caffe batched execution ... resizes the
  // input blob layer").
  constexpr std::int64_t kBatch = 8;
  const tensor::Shape item_shape =
      bundle_->graph.layer(bundle_->graph.input_id()).out_shape;
  std::vector<Prediction> out;
  out.reserve(inputs.size());
  for (std::size_t start = 0; start < inputs.size();
       start += static_cast<std::size_t>(kBatch)) {
    const std::int64_t n = std::min<std::int64_t>(
        kBatch, static_cast<std::int64_t>(inputs.size() - start));
    tensor::TensorF blob(item_shape.with_batch(n));
    for (std::int64_t b = 0; b < n; ++b) {
      const auto& input = inputs[start + static_cast<std::size_t>(b)];
      if (input.shape() != item_shape) {
        throw std::invalid_argument("classify: input shape " +
                                    input.shape().to_string() +
                                    ", expected " + item_shape.to_string());
      }
      std::copy(input.data(), input.data() + input.numel(),
                blob.batch_ptr(b));
    }
    nn::ExecOptions opts;
    if (fast_) {
      opts.fast = true;
      opts.quant = &quant_;
    }
    auto probs =
        nn::run_probabilities(bundle_->graph, bundle_->weights_f32, blob, opts);
    for (auto& row : probs) out.push_back(make_prediction(std::move(row)));
  }
  return out;
}

std::unique_ptr<HostTarget> make_cpu_target(
    std::shared_ptr<const ModelBundle> bundle) {
  return std::make_unique<HostTarget>(std::move(bundle),
                                      devices::make_cpu_model(), "CPU",
                                      /*max_batch=*/64, 0xc0ffeeULL);
}

std::unique_ptr<HostTarget> make_gpu_target(
    std::shared_ptr<const ModelBundle> bundle) {
  return std::make_unique<HostTarget>(std::move(bundle),
                                      devices::make_gpu_model(), "GPU",
                                      /*max_batch=*/64, 0x6e0f0eULL);
}

}  // namespace ncsw::core
