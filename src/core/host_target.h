// CPU and GPU targets: functional FP32 inference through the engine plus
// the calibrated Caffe-MKL / Caffe-cuDNN batch timing models.
#pragma once

#include "core/target.h"
#include "devices/host_models.h"
#include "nn/quant.h"

namespace ncsw::core {

/// Shared implementation for the two host-side reference targets.
class HostTarget : public Target {
 public:
  HostTarget(std::shared_ptr<const ModelBundle> bundle,
             devices::HostDeviceModel model, std::string short_name,
             int max_batch, std::uint64_t jitter_seed);

  std::string name() const override { return model_.name(); }
  std::string short_name() const override { return short_name_; }
  double tdp_w(int) const override { return model_.tdp_w(); }
  int max_batch() const override { return max_batch_; }

  std::vector<Prediction> classify(
      const std::vector<tensor::TensorF>& inputs) override;

  /// The underlying analytic model (for tests and tables).
  const devices::HostDeviceModel& model() const noexcept { return model_; }

  /// Opt this target into the fast host tier (docs/performance.md):
  /// classify() runs the fused/quantized kernels (weights prepared once,
  /// here) and the analytic batch timings are divided by the calibrated
  /// calibration::kHostFastSpeedupX. Off by default; the default path is
  /// untouched.
  void set_fast(bool fast);

  /// Whether the fast tier is enabled.
  bool fast() const noexcept { return fast_; }

 protected:
  /// One batch on the host engine. The engine is a single serial queue:
  /// a submission starts when the previous one finishes (never before
  /// its own submit time), so in-flight submissions pipeline FIFO.
  BatchExec execute_batch(std::int64_t images, int batch, double submit_s,
                          bool aligned) override;

 private:
  std::shared_ptr<const ModelBundle> bundle_;
  devices::HostDeviceModel model_;
  std::string short_name_;
  int max_batch_;
  std::uint64_t jitter_seed_;
  std::uint64_t batches_run_ = 0;  // advances the jitter stream
  double next_free_s_ = 0.0;      // when the serial engine queue drains
  bool fast_ = false;             // fast host tier enabled
  nn::QuantizedWeights quant_;    // fast-tier weights (set_fast, once)
};

/// The paper's CPU target (Caffe-MKL, FP32).
std::unique_ptr<HostTarget> make_cpu_target(
    std::shared_ptr<const ModelBundle> bundle);

/// The paper's GPU target (Caffe-cuDNN, FP32; the paper confirms its
/// confidences match the CPU, so classify() runs the same FP32 engine).
std::unique_ptr<HostTarget> make_gpu_target(
    std::shared_ptr<const ModelBundle> bundle);

}  // namespace ncsw::core
