#include "core/experiments.h"

#include <memory>

#include "core/application.h"
#include "core/host_target.h"

namespace ncsw::core::experiments {

namespace {

struct TimingRig {
  std::shared_ptr<const ModelBundle> bundle;
  std::unique_ptr<HostTarget> cpu;
  std::unique_ptr<HostTarget> gpu;
  std::unique_ptr<VpuTarget> vpu;

  explicit TimingRig(int devices) {
    bundle = ModelBundle::googlenet_reference();
    cpu = make_cpu_target(bundle);
    gpu = make_gpu_target(bundle);
    VpuTargetConfig cfg;
    cfg.devices = devices;
    vpu = std::make_unique<VpuTarget>(bundle, cfg);
  }
};

}  // namespace

std::vector<SubsetThroughput> fig6a(const TimingSettings& s) {
  TimingRig rig(s.devices);
  std::vector<SubsetThroughput> rows;
  rows.reserve(static_cast<std::size_t>(s.subsets));
  for (int subset = 0; subset < s.subsets; ++subset) {
    SubsetThroughput row;
    row.subset = dataset::subset_name(subset);
    const auto cpu = rig.cpu->run_timed(s.images_per_subset, s.batch);
    const auto gpu = rig.gpu->run_timed(s.images_per_subset, s.batch);
    const auto vpu = rig.vpu->run_timed(s.images_per_subset, s.batch);
    row.cpu = cpu.throughput();
    row.gpu = gpu.throughput();
    row.vpu = vpu.throughput();
    row.cpu_sd = cpu.per_image_ms.stddev();
    row.gpu_sd = gpu.per_image_ms.stddev();
    row.vpu_sd = vpu.per_image_ms.stddev();
    rows.push_back(row);
  }
  return rows;
}

ScalingResult fig6b(std::int64_t images, const std::vector<int>& batches,
                    int devices) {
  TimingRig rig(devices);
  ScalingResult result;
  auto per_image_ms = [images](Target& t, int batch) {
    const auto run = t.run_timed(images, batch);
    return run.seconds * 1e3 / static_cast<double>(run.images);
  };
  result.cpu_base_ms = per_image_ms(*rig.cpu, 1);
  result.gpu_base_ms = per_image_ms(*rig.gpu, 1);
  result.vpu_base_ms = per_image_ms(*rig.vpu, 1);
  for (int b : batches) {
    ScalingRow row;
    row.batch = b;
    row.cpu = result.cpu_base_ms / per_image_ms(*rig.cpu, b);
    row.gpu = result.gpu_base_ms / per_image_ms(*rig.gpu, b);
    row.vpu = result.vpu_base_ms / per_image_ms(*rig.vpu, b);
    result.rows.push_back(row);
  }
  return result;
}

std::vector<ErrorRow> fig7(const ErrorSettings& s) {
  dataset::DatasetConfig data_cfg = s.data;
  data_cfg.images_per_subset =
      static_cast<int>(s.images_per_subset);
  auto data = std::make_shared<dataset::SyntheticImageNet>(data_cfg);

  nn::TinyGoogLeNetConfig net_cfg = s.net;
  net_cfg.num_classes = data->num_classes();
  auto bundle = ModelBundle::tiny_functional(*data, net_cfg, s.weight_seed);

  Preprocessor prep;
  prep.input_size = net_cfg.input_size;
  prep.means = data->means();
  Application app(prep);
  app.add_target(make_cpu_target(bundle));
  VpuTargetConfig vcfg;
  vcfg.devices = s.vpu_devices;
  app.add_target(std::make_shared<VpuTarget>(bundle, vcfg));

  std::vector<ErrorRow> rows;
  rows.reserve(static_cast<std::size_t>(data->subsets()));
  for (int subset = 0; subset < data->subsets(); ++subset) {
    ImageFolderSource source(data, subset, s.images_per_subset);
    auto jobs = app.run_on_all_targets(source);
    ErrorRow row;
    row.subset = dataset::subset_name(subset);
    row.images = static_cast<std::int64_t>(jobs[0].items.size());
    row.cpu_error = jobs[0].top1_error();
    row.vpu_error = jobs[1].top1_error();
    row.conf_diff = confidence_difference(jobs[0], jobs[1]);
    rows.push_back(row);
  }
  return rows;
}

std::vector<WattRow> fig8a(std::int64_t images, const std::vector<int>& batches,
                           int devices) {
  TimingRig rig(devices);
  std::vector<WattRow> rows;
  for (int b : batches) {
    WattRow row;
    row.batch = b;
    row.cpu = rig.cpu->run_timed(images, b).throughput() / rig.cpu->tdp_w(b);
    row.gpu = rig.gpu->run_timed(images, b).throughput() / rig.gpu->tdp_w(b);
    row.vpu = rig.vpu->run_timed(images, b).throughput() / rig.vpu->tdp_w(b);
    rows.push_back(row);
  }
  return rows;
}

std::vector<ProjectionRow> fig8b(std::int64_t images,
                                 const std::vector<int>& batches,
                                 int devices_available) {
  int max_batch = devices_available;
  for (int b : batches) max_batch = std::max(max_batch, b);
  // Open enough sticks to *simulate* the projected region.
  TimingRig rig(max_batch);
  std::vector<ProjectionRow> rows;
  for (int b : batches) {
    ProjectionRow row;
    row.batch = b;
    row.cpu = rig.cpu->run_timed(images, b).throughput();
    row.gpu = rig.gpu->run_timed(images, b).throughput();
    row.vpu = rig.vpu->run_timed(images, b).throughput();
    row.vpu_projected = b > devices_available;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace ncsw::core::experiments
