#include "core/model.h"

#include <stdexcept>
#include <string>

#include "nn/zoo.h"

namespace ncsw::core {

std::shared_ptr<const ModelBundle> ModelBundle::googlenet_reference() {
  auto bundle = std::make_shared<ModelBundle>();
  bundle->graph = nn::build_googlenet();
  bundle->compiled_f16 =
      graphc::compile(bundle->graph, graphc::Precision::kFP16);
  bundle->graph_blob = graphc::serialize(bundle->compiled_f16);
  bundle->macs = bundle->compiled_f16.total_macs();
  return bundle;
}

std::shared_ptr<const ModelBundle> ModelBundle::zoo_reference(
    const std::string& name) {
  auto bundle = std::make_shared<ModelBundle>();
  bundle->graph = nn::build_named_network(name);  // throws on unknown names
  bundle->compiled_f16 =
      graphc::compile(bundle->graph, graphc::Precision::kFP16);
  bundle->graph_blob = graphc::serialize(bundle->compiled_f16);
  bundle->macs = bundle->compiled_f16.total_macs();
  return bundle;
}

std::shared_ptr<const ModelBundle> ModelBundle::tiny_functional(
    const dataset::SyntheticImageNet& data,
    const nn::TinyGoogLeNetConfig& config, std::uint64_t weight_seed) {
  nn::TinyGoogLeNetConfig cfg = config;
  cfg.num_classes = data.num_classes();

  auto bundle = std::make_shared<ModelBundle>();
  bundle->graph = nn::build_tiny_googlenet(cfg);
  bundle->weights_f32 = nn::init_msra(bundle->graph, weight_seed);
  nn::fit_template_classifier(bundle->graph, bundle->weights_f32,
                              "loss3/classifier",
                              data.prototype_tensors(cfg.input_size));
  bundle->weights_f16 = nn::to_fp16(bundle->weights_f32);
  bundle->compiled_f16 =
      graphc::compile(bundle->graph, graphc::Precision::kFP16);
  // Self-contained graph file: structure + FP16 weights embedded, so the
  // stick can execute functionally from the blob alone.
  bundle->graph_blob = graphc::serialize_package(
      bundle->compiled_f16, &bundle->graph, &bundle->weights_f16);
  bundle->macs = bundle->compiled_f16.total_macs();
  return bundle;
}

}  // namespace ncsw::core
