// Model bundle: everything a Target needs to run one network — the graph,
// its FP32 master weights, the FP16 conversion for the VPU, and the
// compiled graph file. Mirrors the artefacts of the paper's toolchain
// (prototxt + caffemodel + mvNCCompile output).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dataset/synthetic.h"
#include "graphc/compiler.h"
#include "nn/googlenet.h"

namespace ncsw::core {

/// Immutable model artefacts shared by all targets (held by shared_ptr so
/// targets can keep it alive).
struct ModelBundle {
  nn::Graph graph{"empty"};
  nn::WeightsF weights_f32;           ///< empty for timing-only bundles
  nn::WeightsH weights_f16;
  graphc::CompiledGraph compiled_f16; ///< what ships to the stick
  std::vector<std::uint8_t> graph_blob;  ///< serialised compiled_f16
  std::int64_t macs = 0;

  /// True when the bundle carries real parameters (functional inference).
  bool functional() const noexcept { return weights_f32.size() > 0; }

  /// Network input edge (square).
  int input_size() const noexcept {
    return static_cast<int>(compiled_f16.input_shape.h);
  }
  /// Number of output classes.
  int num_classes() const noexcept {
    return static_cast<int>(compiled_f16.num_outputs);
  }

  /// Timing-only bundle of the full BVLC GoogLeNet (no weights): drives
  /// all throughput / scaling / power figures.
  static std::shared_ptr<const ModelBundle> googlenet_reference();

  /// Timing-only bundle of a named zoo network ("googlenet", "alexnet",
  /// "squeezenet", "tiny"; see nn::build_named_network). The blobs back
  /// the multi-tenant model-zoo serving layer (core::StickFleet /
  /// serve::ZooServer), where per-model graph sizes drive swap costs.
  /// Throws std::invalid_argument for unknown names.
  static std::shared_ptr<const ModelBundle> zoo_reference(
      const std::string& name);

  /// Functional TinyGoogLeNet bundle: MSRA-initialised features with the
  /// final classifier template-fitted against `data`'s class prototypes.
  /// Drives the error-rate figures.
  static std::shared_ptr<const ModelBundle> tiny_functional(
      const dataset::SyntheticImageNet& data,
      const nn::TinyGoogLeNetConfig& config = {},
      std::uint64_t weight_seed = 0xbadcafeULL);
};

}  // namespace ncsw::core
