#include "myriad/myriad.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"

namespace ncsw::myriad {

Myriad2::Myriad2(const MyriadConfig& config) : config_(config) {
  if (config_.num_shaves < 1 || config_.clock_hz <= 0 ||
      config_.ddr_bandwidth <= 0) {
    throw std::invalid_argument("Myriad2: invalid configuration");
  }
}

double Myriad2::peak_macs_per_s(graphc::Precision precision) const noexcept {
  const double per_shave = precision == graphc::Precision::kFP16
                               ? config_.fp16_macs_per_cycle
                               : config_.fp32_macs_per_cycle;
  return config_.clock_hz * per_shave * config_.num_shaves;
}

double Myriad2::efficiency(nn::LayerKind kind) const noexcept {
  switch (kind) {
    case nn::LayerKind::kConv:
      return config_.eff_conv;
    case nn::LayerKind::kFC:
      return config_.eff_fc;
    case nn::LayerKind::kMaxPool:
    case nn::LayerKind::kAvgPool:
      return config_.eff_pool;
    case nn::LayerKind::kLRN:
      return config_.eff_lrn;
    case nn::LayerKind::kReLU:
    case nn::LayerKind::kSoftmax:
      return config_.eff_elementwise;
    case nn::LayerKind::kConcat:
    case nn::LayerKind::kDropout:
    case nn::LayerKind::kInput:
      return 1.0;  // pure data movement; compute term is zero anyway
  }
  return 1.0;
}

InferenceProfile Myriad2::execute(const graphc::CompiledGraph& graph) const {
  if (graph.layers.empty()) {
    throw std::invalid_argument("Myriad2::execute: empty graph");
  }
  sim::Engine engine;
  sim::Resource shaves("shave-array", config_.num_shaves);
  sim::Resource ddr("lpddr3", 1);

  const double peak = peak_macs_per_s(graph.precision) /
                      static_cast<double>(config_.num_shaves);

  InferenceProfile profile;
  profile.layers.reserve(graph.layers.size());

  double shave_busy_total = 0.0;
  // The LEON scheduler issues layers strictly in order; `cursor` is the
  // time at which the next layer may be dispatched.
  double cursor = 0.0;

  for (const auto& layer : graph.layers) {
    if (layer.kind == nn::LayerKind::kInput) {
      LayerProfile lp;
      lp.name = layer.name;
      lp.kind = layer.kind;
      lp.start_s = cursor;
      profile.layers.push_back(lp);
      continue;
    }
    // RISC dispatch.
    cursor += config_.risc_layer_overhead_s;
    const double layer_start = cursor;

    // Compute: split the layer's MACs into its compiled tiles and
    // schedule them on the SHAVE array via the event engine.
    double compute_end = layer_start;
    double busy_this_layer = 0.0;
    if (layer.macs > 0) {
      const double eff = efficiency(layer.kind);
      double tile_s = static_cast<double>(layer.macs) /
                      static_cast<double>(layer.tiles) / (peak * eff);
      if (!layer.fits_cmx) tile_s *= config_.cmx_miss_penalty;
      tile_s += config_.tile_dispatch_s;
      for (std::int32_t t = 0; t < layer.tiles; ++t) {
        const double start = shaves.reserve(layer_start, tile_s);
        const double end = start + tile_s;
        engine.schedule_at(end, [] {});
        compute_end = std::max(compute_end, end);
        busy_this_layer += tile_s;
      }
    }

    // Data movement: weights always stream from DDR; activations stream
    // from DDR only when the working set misses CMX (otherwise they live
    // in the scratchpad and move at CMX speed).
    const double act_bw =
        layer.fits_cmx ? config_.cmx_bandwidth : config_.ddr_bandwidth;
    const double act_s =
        static_cast<double>(layer.in_bytes + layer.out_bytes) / act_bw;
    const double weight_s =
        static_cast<double>(layer.weight_bytes) / config_.ddr_bandwidth;
    double dma_end = layer_start;
    if (weight_s > 0.0 || !layer.fits_cmx) {
      const double ddr_dur = weight_s + (layer.fits_cmx ? 0.0 : act_s);
      const double start = ddr.reserve(layer_start, ddr_dur);
      dma_end = start + ddr_dur;
      engine.schedule_at(dma_end, [] {});
    }
    const double cmx_end = layer_start + (layer.fits_cmx ? act_s : 0.0);

    const double layer_end = std::max({compute_end, dma_end, cmx_end});
    engine.run_until(layer_end);

    LayerProfile lp;
    lp.name = layer.name;
    lp.kind = layer.kind;
    lp.start_s = layer_start;
    lp.time_s = layer_end - layer_start;
    lp.compute_s = compute_end - layer_start;
    lp.dma_s = std::max(dma_end, cmx_end) - layer_start;
    lp.tiles = layer.tiles;
    const double span = lp.time_s * static_cast<double>(config_.num_shaves);
    lp.shave_utilization = span > 0.0 ? busy_this_layer / span : 0.0;
    profile.layers.push_back(lp);

    shave_busy_total += busy_this_layer;
    cursor = layer_end;
  }

  profile.total_s = cursor;
  profile.sim_events = engine.events_executed();

  // Energy: active SHAVE islands while busy, idle power otherwise; the
  // DDR island while streaming; the base island for the whole run.
  const double shave_idle_time =
      profile.total_s * static_cast<double>(config_.num_shaves) -
      shave_busy_total;
  profile.energy_j = shave_busy_total * config_.p_shave_active +
                     std::max(0.0, shave_idle_time) * config_.p_shave_idle +
                     ddr.busy_time() * config_.p_ddr_active +
                     profile.total_s * config_.p_base;
  profile.avg_power_w =
      profile.total_s > 0.0 ? profile.energy_j / profile.total_s : 0.0;

  // Chip-level occupancy aggregates: how busy the SHAVE array and the
  // DDR interface were over this execution, and the per-layer spread.
  auto& reg = util::metrics();
  static util::Counter& m_execs = reg.counter("myriad.executions");
  static util::Counter& m_layers = reg.counter("myriad.layers");
  static util::Histogram& m_layer_ms = reg.histogram("myriad.layer_ms");
  static util::Histogram& m_shave_util =
      reg.histogram("myriad.shave_util",
                    {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  m_execs.add(1);
  m_layers.add(profile.layers.size());
  for (const auto& lp : profile.layers) {
    if (lp.time_s <= 0.0) continue;
    m_layer_ms.record(lp.time_s * 1e3);
    m_shave_util.record(lp.shave_utilization);
  }
  reg.gauge("myriad.last.shave_busy_frac")
      .set(profile.total_s > 0.0
               ? shave_busy_total /
                     (profile.total_s * static_cast<double>(config_.num_shaves))
               : 0.0);
  reg.gauge("myriad.last.ddr_busy_frac")
      .set(profile.total_s > 0.0 ? ddr.busy_time() / profile.total_s : 0.0);
  return profile;
}

}  // namespace ncsw::myriad
