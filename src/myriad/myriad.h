// Myriad 2 VPU (MA2450) performance & power simulator.
//
// Models the SoC the paper describes in Section II: 12 SHAVE VLIW vector
// processors at 600 MHz with native FP16 (128-bit VAU = 8 half lanes), the
// 2 MB multi-ported CMX scratchpad, the 4 GB LPDDR3 global memory, the
// LEON RISC runtime scheduler, and the 20 power islands. A compiled graph
// (graphc::CompiledGraph) is executed layer by layer on a discrete-event
// engine: the RISC core dispatches each layer, its tiles are scheduled
// across the SHAVE array, and its activation/weight traffic occupies the
// DDR interface; a layer completes when both its compute and its data
// movement have drained. Energy is integrated from per-island busy time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graphc/compiler.h"
#include "sim/engine.h"

namespace ncsw::myriad {

/// Architectural + calibration parameters of the simulated chip.
/// Defaults describe the MA2450 inside the NCS; the SHAVE efficiency
/// factors are calibrated so one GoogLeNet inference costs ~100 ms
/// (paper Section IV-A: 100.7 ms single-VPU, which includes the USB
/// transfer modelled by the NCS layer, not here).
struct MyriadConfig {
  int num_shaves = 12;                  ///< SHAVE vector processors
  double clock_hz = 600e6;              ///< nominal frequency
  double fp16_macs_per_cycle = 8.0;     ///< 128-bit VAU = 8 half MACs/cycle
  double fp32_macs_per_cycle = 4.0;     ///< FP32 halves the vector width
  double ddr_bandwidth = 4.0e9;         ///< LPDDR3 effective bytes/s
  double cmx_bandwidth = 12.0e9;        ///< CMX aggregate bytes/s
  /// Per-layer-kind fraction of peak MAC throughput actually sustained.
  double eff_conv = 0.321;
  double eff_fc = 0.10;
  double eff_pool = 0.18;
  double eff_lrn = 0.12;
  double eff_elementwise = 0.40;
  /// Penalty multiplier on compute when a layer's working set cannot be
  /// tiled into CMX and weights stream from DDR mid-loop.
  double cmx_miss_penalty = 1.35;
  /// LEON RISC runtime scheduler cost to launch one layer.
  double risc_layer_overhead_s = 18e-6;
  /// Per-tile dispatch cost (added to each tile's execution).
  double tile_dispatch_s = 1.2e-6;

  // ---- power islands (Watts) -------------------------------------------
  double p_shave_active = 0.052;  ///< one SHAVE island, executing
  double p_shave_idle = 0.004;    ///< one SHAVE island, clock-gated
  double p_ddr_active = 0.30;     ///< DDR interface while streaming
  double p_base = 0.16;           ///< RISC cores + CMX + clocking, always on
};

/// Per-layer execution record (what the NCAPI exposes as
/// TIME_TAKEN per layer).
struct LayerProfile {
  std::string name;
  nn::LayerKind kind = nn::LayerKind::kInput;
  double start_s = 0.0;
  double time_s = 0.0;     ///< wall time of the layer (max of compute, DMA)
  double compute_s = 0.0;  ///< SHAVE busy time / num_shaves (critical path)
  double dma_s = 0.0;      ///< DDR occupancy
  std::int32_t tiles = 0;
  double shave_utilization = 0.0;  ///< busy / (span * num_shaves)
};

/// Result of executing one inference on the simulated chip.
struct InferenceProfile {
  std::vector<LayerProfile> layers;
  double total_s = 0.0;        ///< end-to-end on-chip execution time
  double energy_j = 0.0;       ///< integrated over the power islands
  double avg_power_w = 0.0;    ///< energy / total
  std::uint64_t sim_events = 0;
};

/// The chip simulator. Stateless between executions apart from the
/// configuration; safe to share across threads with external locking.
class Myriad2 {
 public:
  explicit Myriad2(const MyriadConfig& config = {});

  const MyriadConfig& config() const noexcept { return config_; }

  /// Execute one inference of `graph` (batch 1) and return the profile.
  /// Throws std::invalid_argument on empty graphs.
  InferenceProfile execute(const graphc::CompiledGraph& graph) const;

  /// Peak MAC/s of the SHAVE array at a precision.
  double peak_macs_per_s(graphc::Precision precision) const noexcept;

  /// Efficiency factor used for a layer kind.
  double efficiency(nn::LayerKind kind) const noexcept;

 private:
  MyriadConfig config_;
};

/// Thermal-design power constants the paper quotes (Section V).
struct TdpConstants {
  static constexpr double kMyriad2ChipW = 0.9;  ///< Myriad 2 TDP
  static constexpr double kNcsStickW = 2.5;     ///< NCS peak consumption
  static constexpr double kXeonE52609v2W = 80.0;
  static constexpr double kQuadroK4000W = 80.0;
};

}  // namespace ncsw::myriad
