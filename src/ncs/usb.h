// USB host-side topology model.
//
// The paper's testbed (Fig. 5) attaches 8 NCS sticks to one workstation:
// 6 through two USB 3.0 hubs (3 sticks each) and 2 directly on
// motherboard root ports. A hub's upstream link is shared by its sticks,
// so transfers to siblings serialise; root ports are dedicated. The
// benchmark ablation also models USB 2.0 links, where the input transfer
// stops being negligible.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/metrics.h"

namespace ncsw::ncs {

/// Electrical parameters of one upstream link.
struct UsbLinkParams {
  /// Effective bulk-transfer bandwidth (bytes/s). USB 3.0 SuperSpeed
  /// sustains ~350 MB/s of bulk payload in practice; USB 2.0 ~35 MB/s.
  double bandwidth = 350e6;
  /// Fixed per-transfer cost (submission, protocol handshake).
  double per_transfer_latency = 120e-6;
};

/// Convenience constructors.
UsbLinkParams usb3_link() noexcept;
UsbLinkParams usb2_link() noexcept;

/// One shared upstream link (a root port, or a hub's uplink). Transfers
/// on the same channel serialise in request order; thread-safe.
class UsbChannel {
 public:
  UsbChannel(std::string name, const UsbLinkParams& params);

  /// Reserve the channel for `bytes`, starting no earlier than `earliest`
  /// (simulated seconds). Returns [start, end) of the transfer.
  struct Window {
    sim::SimTime start;
    sim::SimTime end;
  };
  Window transfer(sim::SimTime earliest, std::int64_t bytes);

  /// Pure transfer duration for `bytes` on this link (no queueing).
  sim::SimTime duration(std::int64_t bytes) const noexcept;

  const std::string& name() const noexcept { return name_; }
  /// Total busy time accumulated.
  sim::SimTime busy_time() const;
  /// Number of transfers completed.
  std::uint64_t transfers() const;

 private:
  std::string name_;
  UsbLinkParams params_;
  mutable std::mutex mutex_;
  sim::IntervalResource link_;
  // Registry instruments survive registry resets, so these stay valid.
  util::Counter& m_bytes_;
  util::Counter& m_transfers_;
};

/// Maps each stick to its upstream channel.
class UsbTopology {
 public:
  /// `channel_of_device[i]` = channel index of stick i.
  UsbTopology(std::vector<int> channel_of_device,
              std::vector<UsbLinkParams> channels);

  /// The paper's testbed for `devices` sticks (1..8): sticks 0-2 on hub A,
  /// 3-5 on hub B, 6-7 on dedicated root ports (all USB 3.0). For more
  /// than 8 sticks (the paper's Fig. 8b projection), extras get dedicated
  /// root ports.
  static UsbTopology paper_testbed(int devices);

  /// All sticks behind one shared hub.
  static UsbTopology single_hub(int devices, const UsbLinkParams& link);

  /// Every stick on its own root port.
  static UsbTopology all_direct(int devices, const UsbLinkParams& link);

  int device_count() const noexcept {
    return static_cast<int>(channel_of_device_.size());
  }
  int channel_count() const noexcept {
    return static_cast<int>(channels_.size());
  }

  /// Channel serving stick `device`; throws std::out_of_range.
  UsbChannel& channel_for(int device);

  /// Channel by index (for utilisation reporting).
  const UsbChannel& channel(int index) const {
    return *channels_.at(static_cast<std::size_t>(index));
  }

 private:
  std::vector<int> channel_of_device_;
  std::vector<std::unique_ptr<UsbChannel>> channels_;
};

}  // namespace ncsw::ncs
