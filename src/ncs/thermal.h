// First-order thermal model of the Neural Compute Stick.
//
// The real NCSDK exposes device temperature and two throttling
// thresholds (TEMP_LIM_LOWER / TEMP_LIM_HIGHER): past the lower limit the
// runtime drops performance one notch; past the higher limit it drops
// hard until the stick cools. The stick is a closed plastic enclosure
// with no heatsink, so sustained inference genuinely throttles — a
// practical limit on the paper's multi-VPU scaling that its TDP-based
// analysis abstracts away. We model the junction temperature as a
// single-pole RC low-pass of dissipated power.
#pragma once

#include <vector>

namespace ncsw::ncs {

/// Thermal parameters (defaults approximate a bare NCS in free air).
struct ThermalParams {
  double ambient_c = 25.0;          ///< ambient temperature
  double resistance_c_per_w = 18.0; ///< junction->ambient thermal resistance
  double time_constant_s = 95.0;    ///< RC time constant
  double temp_lim_lower_c = 70.0;   ///< soft throttle threshold (NCSDK)
  double temp_lim_higher_c = 80.0;  ///< hard throttle threshold (NCSDK)
  double soft_throttle_factor = 1.25;  ///< execution-time multiplier
  double hard_throttle_factor = 2.0;   ///< execution-time multiplier
};

/// Throttling level derived from the current temperature.
enum class ThrottleLevel : int { kNone = 0, kSoft = 1, kHard = 2 };

/// Temperature integrator. Advance it with (duration, power) segments;
/// query temperature and the throttle level.
class ThermalModel {
 public:
  explicit ThermalModel(const ThermalParams& params = {});

  const ThermalParams& params() const noexcept { return params_; }

  /// Update thresholds (mvncSetDeviceOption). Lower must stay below
  /// higher; throws std::invalid_argument otherwise.
  void set_limits(double lower_c, double higher_c);

  /// Integrate a segment of `duration` seconds at `power` Watts
  /// (power = 0 models an idle gap). Negative durations are ignored.
  void advance(double duration_s, double power_w) noexcept;

  /// Current junction temperature (°C).
  double temperature_c() const noexcept { return temp_c_; }

  /// Throttle level at the current temperature (with 2 °C of hysteresis
  /// when already throttling, like the firmware).
  ThrottleLevel level() const noexcept;

  /// Execution-time multiplier for the current level.
  double slowdown() const noexcept;

  /// Steady-state temperature for a constant power draw.
  double steady_state_c(double power_w) const noexcept {
    return params_.ambient_c + power_w * params_.resistance_c_per_w;
  }

  /// Recent temperature samples, most recent last (MVNC_THERMAL_STATS).
  const std::vector<float>& history() const noexcept { return history_; }

  /// Times the model crossed into soft/hard throttling.
  int soft_events() const noexcept { return soft_events_; }
  int hard_events() const noexcept { return hard_events_; }

 private:
  void record() noexcept;

  ThermalParams params_;
  double temp_c_;
  ThrottleLevel current_ = ThrottleLevel::kNone;
  int soft_events_ = 0;
  int hard_events_ = 0;
  std::vector<float> history_;
  static constexpr std::size_t kHistoryCap = 128;
};

}  // namespace ncsw::ncs
