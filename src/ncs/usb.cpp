#include "ncs/usb.h"

#include "util/trace.h"

namespace ncsw::ncs {

UsbLinkParams usb3_link() noexcept { return UsbLinkParams{350e6, 120e-6}; }
UsbLinkParams usb2_link() noexcept { return UsbLinkParams{35e6, 250e-6}; }

UsbChannel::UsbChannel(std::string name, const UsbLinkParams& params)
    : name_(std::move(name)),
      params_(params),
      link_(name_),
      m_bytes_(util::metrics().counter("usb." + name_ + ".bytes")),
      m_transfers_(util::metrics().counter("usb." + name_ + ".transfers")) {
  if (params_.bandwidth <= 0 || params_.per_transfer_latency < 0) {
    throw std::invalid_argument("UsbChannel: bad link parameters");
  }
}

sim::SimTime UsbChannel::duration(std::int64_t bytes) const noexcept {
  if (bytes <= 0) return params_.per_transfer_latency;
  return params_.per_transfer_latency +
         static_cast<double>(bytes) / params_.bandwidth;
}

UsbChannel::Window UsbChannel::transfer(sim::SimTime earliest,
                                        std::int64_t bytes) {
  const sim::SimTime dur = duration(bytes);
  Window window;
  {
    std::lock_guard lock(mutex_);
    const sim::SimTime start = link_.reserve(earliest, dur);
    window = Window{start, start + dur};
  }
  m_transfers_.add(1);
  if (bytes > 0) m_bytes_.add(static_cast<std::uint64_t>(bytes));
  auto& t = util::tracer();
  if (t.enabled()) {
    // Queueing delay (hub contention) shows as the gap between `earliest`
    // and the span start; the span itself is pure wire occupancy.
    t.complete("usb", "transfer", t.lane("usb " + name_), window.start,
               window.end,
               {util::TraceArg::num("bytes", static_cast<std::int64_t>(bytes)),
                util::TraceArg::num("queued_us",
                                    (window.start - earliest) * 1e6)});
  }
  return window;
}

sim::SimTime UsbChannel::busy_time() const {
  std::lock_guard lock(mutex_);
  return link_.busy_time();
}

std::uint64_t UsbChannel::transfers() const {
  std::lock_guard lock(mutex_);
  return link_.reservations();
}

UsbTopology::UsbTopology(std::vector<int> channel_of_device,
                         std::vector<UsbLinkParams> channels)
    : channel_of_device_(std::move(channel_of_device)) {
  channels_.reserve(channels.size());
  for (std::size_t i = 0; i < channels.size(); ++i) {
    channels_.push_back(std::make_unique<UsbChannel>(
        "usb-ch" + std::to_string(i), channels[i]));
  }
  for (int ch : channel_of_device_) {
    if (ch < 0 || ch >= channel_count()) {
      throw std::invalid_argument("UsbTopology: device mapped to bad channel");
    }
  }
}

UsbTopology UsbTopology::paper_testbed(int devices) {
  if (devices < 1) throw std::invalid_argument("paper_testbed: devices < 1");
  std::vector<int> map;
  std::vector<UsbLinkParams> channels;
  // Channel 0: hub A uplink; channel 1: hub B uplink; 2+: root ports.
  channels.push_back(usb3_link());
  channels.push_back(usb3_link());
  int next_root = 2;
  for (int d = 0; d < devices; ++d) {
    if (d < 3) {
      map.push_back(0);
    } else if (d < 6) {
      map.push_back(1);
    } else {
      channels.push_back(usb3_link());
      map.push_back(next_root++);
    }
  }
  return UsbTopology(std::move(map), std::move(channels));
}

UsbTopology UsbTopology::single_hub(int devices, const UsbLinkParams& link) {
  if (devices < 1) throw std::invalid_argument("single_hub: devices < 1");
  return UsbTopology(std::vector<int>(static_cast<std::size_t>(devices), 0),
                     {link});
}

UsbTopology UsbTopology::all_direct(int devices, const UsbLinkParams& link) {
  if (devices < 1) throw std::invalid_argument("all_direct: devices < 1");
  std::vector<int> map;
  std::vector<UsbLinkParams> channels;
  for (int d = 0; d < devices; ++d) {
    map.push_back(d);
    channels.push_back(link);
  }
  return UsbTopology(std::move(map), std::move(channels));
}

UsbChannel& UsbTopology::channel_for(int device) {
  const int ch = channel_of_device_.at(static_cast<std::size_t>(device));
  return *channels_[static_cast<std::size_t>(ch)];
}

}  // namespace ncsw::ncs
