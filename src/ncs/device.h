// Neural Compute Stick device model.
//
// One stick = one simulated Myriad 2 plus a USB upstream channel and the
// RISC-hosted runtime: firmware boot on open, a FIFO of queued inferences
// (mvncLoadTensor returns once the input is transferred and execution is
// queued; mvncGetResult blocks until the head of the FIFO completes —
// the MPI-like non-blocking split of Listing 1). All timing lives on the
// shared simulated clock; per-inference execution time comes from the
// Myriad 2 layer-by-layer simulation plus a small deterministic jitter
// that stands in for run-to-run measurement noise.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graphc/compiler.h"
#include "myriad/myriad.h"
#include "ncs/thermal.h"
#include "ncs/usb.h"
#include "sim/fault.h"
#include "util/metrics.h"

namespace ncsw::ncs {

/// Stick-level parameters on top of the chip model.
struct NcsConfig {
  myriad::MyriadConfig chip;       ///< the Myriad 2 inside
  double firmware_boot_s = 1.1;    ///< mvncOpenDevice firmware load
  double command_overhead_s = 50e-6;  ///< RISC command handling per op
  double graph_alloc_per_mb_s = 9e-3; ///< graph file upload+parse per MiB
  double exec_jitter_frac = 0.004;    ///< +/- uniform jitter on exec time
  int fifo_depth = 2;                 ///< queued inferences (NCSDK default)
  /// Host-side gap inserted between completing one inference and issuing
  /// the next on the same stick (thread wake-up / dispatch cost). NCSw
  /// sets this larger in multi-threaded mode (paper: "a small penalty ...
  /// due to the thread-management overhead").
  double inter_op_gap_s = 0.0;
  /// Stick power overhead beyond the chip (USB PHY, DDR device, VRs).
  double stick_overhead_w = 1.1;
  /// Stick power when idle (firmware loaded, no inference running).
  double idle_power_w = 0.35;
  /// Thermal model parameters; set `thermal_enabled = false` to get the
  /// paper's idealised (temperature-free) behaviour.
  ThermalParams thermal;
  bool thermal_enabled = true;
  /// Global LPDDR3 capacity of the MA2450 variant (paper Section II-A:
  /// "a global stacked memory of 4GB LPDDR3"). The runtime reserves some
  /// for firmware and buffers.
  std::int64_t lpddr_bytes = 4ll * 1024 * 1024 * 1024;
  std::int64_t runtime_reserved_bytes = 64ll * 1024 * 1024;
};

/// Thrown by allocate_graph when the graph's memory footprint exceeds the
/// stick's LPDDR3 (mvnc maps it to MVNC_OUT_OF_MEMORY).
class OutOfDeviceMemory : public std::runtime_error {
 public:
  explicit OutOfDeviceMemory(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by device operations after unplug() (mvnc maps it to
/// MVNC_GONE).
class DeviceUnplugged : public std::runtime_error {
 public:
  explicit DeviceUnplugged(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown while the stick is off the bus during a scripted detach window
/// (mvnc also maps it to MVNC_GONE). Unlike a permanent unplug, the stick
/// re-enumerates at the window's end and replug() recovers it.
class DeviceDetached : public DeviceUnplugged {
 public:
  explicit DeviceDetached(const std::string& what) : DeviceUnplugged(what) {}
};

/// Thrown by load_tensor when the input transfer lands in a scripted
/// kUsbTransferError window (mvnc maps it to MVNC_ERROR). Transient: the
/// same call succeeds once the window has passed. No device state changes.
class TransientUsbError : public std::runtime_error {
 public:
  explicit TransientUsbError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by get_result when the result would not land within the
/// caller's watchdog budget (mvnc maps it to MVNC_TIMEOUT). The queued
/// inference stays on the FIFO — retrying later can still succeed.
class DeviceTimeout : public std::runtime_error {
 public:
  DeviceTimeout(const std::string& what, sim::SimTime gave_up)
      : std::runtime_error(what), gave_up_at(gave_up) {}
  /// Simulated time at which the host stopped waiting.
  sim::SimTime gave_up_at;
};

/// Completion record for one queued inference.
struct InferenceTicket {
  std::uint64_t seq = 0;        ///< per-device inference sequence number
  sim::SimTime issue = 0.0;     ///< when the host issued the load
  sim::SimTime input_done = 0.0;  ///< input transfer complete (load returns)
  sim::SimTime exec_start = 0.0;
  sim::SimTime exec_end = 0.0;
  sim::SimTime result_ready = 0.0;  ///< output landed on the host
  void* user_param = nullptr;
};

/// One simulated stick. Thread-safe: NCSw drives each stick from its own
/// host thread while sticks share USB channels.
class NcsDevice {
 public:
  /// `channel` must outlive the device.
  NcsDevice(int id, UsbChannel& channel, const NcsConfig& config);

  int id() const noexcept { return id_; }
  const NcsConfig& config() const noexcept { return config_; }
  /// Device name as enumerated by the NCAPI.
  std::string name() const { return "/sim/ncs" + std::to_string(id_); }

  /// Boot the firmware. Returns the simulated time at which the device is
  /// ready. Idempotent (re-open is an error).
  sim::SimTime open(sim::SimTime host_time);
  bool is_open() const;

  /// Simulate yanking the stick out of its port: all subsequent
  /// operations fail (mvnc maps them to MVNC_GONE) and queued inferences
  /// are lost. Irreversible for this device instance.
  void unplug();
  bool unplugged() const;

  /// Install the scripted fault windows this stick consumes (a slice of
  /// the host's FaultPlan). Call before driving inferences; an empty
  /// timeline (the default) keeps every path byte-identical to a
  /// fault-free device.
  void set_fault_timeline(sim::FaultTimeline timeline);

  /// True when a scripted detach window has taken the stick off the bus
  /// (firmware state lost; operations throw DeviceDetached until replug).
  bool detached() const;

  /// Hot-replug a detached stick at `host_time`: once the detach window
  /// has passed, the stick re-enumerates and the firmware boots again.
  /// Returns the simulated ready time, or nullopt while the stick is
  /// still off the bus (or was permanently unplugged / is not detached).
  /// The host must re-allocate its graph afterwards.
  std::optional<sim::SimTime> replug(sim::SimTime host_time);

  /// In-flight inferences destroyed by detach windows so far.
  std::uint64_t results_lost() const;

  /// Upload and allocate a compiled graph. Replaces any previous graph.
  /// Returns the time the allocation finished. Throws when not open.
  sim::SimTime allocate_graph(const graphc::CompiledGraph& graph,
                              sim::SimTime host_time);
  bool has_graph() const;
  /// The allocated graph (throws when absent).
  const graphc::CompiledGraph& graph() const;

  /// The chip-level profile of the allocated graph (layer times, energy).
  const myriad::InferenceProfile& profile() const;

  /// Queue one inference: transfers the input over USB and schedules
  /// execution behind whatever is already queued. Fails (returns nullopt)
  /// when the FIFO is full — callers then retrieve a result first.
  std::optional<InferenceTicket> load_tensor(sim::SimTime host_time,
                                             void* user_param = nullptr);

  /// Pop the oldest queued inference; `host_time` is when the host started
  /// waiting. The returned ticket's result_ready accounts for the output
  /// transfer. Returns nullopt when the FIFO is empty. When the result
  /// would land more than `watchdog_s` after `host_time` (a scripted
  /// kGetTimeout stall, or a genuinely slow inference against a tight
  /// budget), throws DeviceTimeout and leaves the FIFO untouched.
  std::optional<InferenceTicket> get_result(
      sim::SimTime host_time,
      double watchdog_s = std::numeric_limits<double>::infinity());

  /// Number of inferences currently queued.
  int queued() const;

  /// Total inferences completed (results retrieved).
  std::uint64_t completed() const;

  /// Simulated time the device finished its last retrieved result.
  sim::SimTime last_completion() const;

  /// Average stick power while executing (chip avg power + overhead).
  double active_power_w() const;

  /// Energy consumed by completed inferences (chip + stick overhead
  /// during execution windows).
  double energy_j() const;

  /// Current junction temperature (°C) of the thermal model.
  double temperature_c() const;
  /// Current throttle level.
  ThrottleLevel throttle_level() const;
  /// Times the device entered soft / hard throttling.
  int soft_throttle_events() const;
  int hard_throttle_events() const;
  /// Recent temperature samples (MVNC_THERMAL_STATS), most recent last.
  std::vector<float> thermal_history() const;
  /// Update the throttle thresholds (mvncSetDeviceOption); throws
  /// std::invalid_argument on inconsistent limits.
  void set_temp_limits(double lower_c, double higher_c);
  /// Current (lower, higher) throttle thresholds of the live model.
  std::pair<double, double> temp_limits() const;

 private:
  sim::SimTime jittered_exec_time(std::uint64_t seq) const;
  /// Emit the trace spans of a freshly scheduled inference (caller holds
  /// mutex_; no-op when tracing is off).
  void trace_inference(const InferenceTicket& t) const;
  /// Firmware download + boot shared by open() and replug() (caller holds
  /// mutex_). Sets open_/ready_at_ and emits the named trace span.
  sim::SimTime boot_locked(sim::SimTime host_time, const char* span_name);
  /// Consume scripted detach events due at `t`: take the stick off the
  /// bus, drop in-flight work, reset firmware state (caller holds mutex_).
  void latch_detach_locked(sim::SimTime t);
  /// Lazily fetched per-device fault counter (cold path only).
  util::Counter& fault_counter(const char* metric) const;

  const int id_;
  UsbChannel& channel_;
  const NcsConfig config_;

  // Cached registry instruments (valid across registry resets).
  util::Counter& m_inferences_;
  util::Counter& m_fifo_rejects_;
  util::Gauge& m_temp_c_;
  util::Histogram& m_exec_ms_;
  util::Histogram& m_queue_wait_ms_;

  mutable std::mutex mutex_;
  bool open_ = false;
  bool unplugged_ = false;
  sim::FaultTimeline faults_;
  bool detached_ = false;
  sim::SimTime reattach_at_ = 0.0;   ///< end of the latched detach window
  std::size_t detach_cursor_ = 0;    ///< next unconsumed detach event
  std::uint64_t results_lost_ = 0;   ///< in-flight work killed by detaches
  sim::SimTime ready_at_ = 0.0;
  std::optional<graphc::CompiledGraph> graph_;
  myriad::InferenceProfile profile_;
  std::deque<InferenceTicket> fifo_;
  sim::SimTime shave_free_at_ = 0.0;  ///< when the SHAVE array frees up
  std::uint64_t next_seq_ = 0;
  std::uint64_t completed_ = 0;
  sim::SimTime last_completion_ = 0.0;
  double energy_j_ = 0.0;
  ThermalModel thermal_;
  sim::SimTime thermal_clock_ = 0.0;  ///< model integrated up to here
};

}  // namespace ncsw::ncs
