#include "ncs/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncsw::ncs {

ThermalModel::ThermalModel(const ThermalParams& params)
    : params_(params), temp_c_(params.ambient_c) {
  if (params_.resistance_c_per_w <= 0 || params_.time_constant_s <= 0 ||
      params_.soft_throttle_factor < 1 || params_.hard_throttle_factor < 1) {
    throw std::invalid_argument("ThermalModel: bad parameters");
  }
  set_limits(params_.temp_lim_lower_c, params_.temp_lim_higher_c);
  record();
}

void ThermalModel::set_limits(double lower_c, double higher_c) {
  if (!(lower_c < higher_c) || lower_c <= params_.ambient_c) {
    throw std::invalid_argument("ThermalModel: limits must satisfy "
                                "ambient < lower < higher");
  }
  params_.temp_lim_lower_c = lower_c;
  params_.temp_lim_higher_c = higher_c;
}

void ThermalModel::advance(double duration_s, double power_w) noexcept {
  if (duration_s <= 0.0) return;
  // Exact solution of dT/dt = (T_target - T) / tau with
  // T_target = ambient + P * R.
  const double target = steady_state_c(std::max(0.0, power_w));
  const double decay = std::exp(-duration_s / params_.time_constant_s);
  temp_c_ = target + (temp_c_ - target) * decay;

  // Hysteresis: step the published level one notch at a time.
  const double hysteresis =
      current_ == ThrottleLevel::kNone ? 0.0 : 2.0;
  if (temp_c_ >= params_.temp_lim_higher_c) {
    if (current_ != ThrottleLevel::kHard) ++hard_events_;
    current_ = ThrottleLevel::kHard;
  } else if (temp_c_ >= params_.temp_lim_lower_c - hysteresis) {
    if (current_ == ThrottleLevel::kNone) ++soft_events_;
    current_ = ThrottleLevel::kSoft;
  } else {
    current_ = ThrottleLevel::kNone;
  }
  record();
}

ThrottleLevel ThermalModel::level() const noexcept { return current_; }

double ThermalModel::slowdown() const noexcept {
  switch (current_) {
    case ThrottleLevel::kNone:
      return 1.0;
    case ThrottleLevel::kSoft:
      return params_.soft_throttle_factor;
    case ThrottleLevel::kHard:
      return params_.hard_throttle_factor;
  }
  return 1.0;
}

void ThermalModel::record() noexcept {
  history_.push_back(static_cast<float>(temp_c_));
  if (history_.size() > kHistoryCap) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() -
                                                   kHistoryCap));
  }
}

}  // namespace ncsw::ncs
