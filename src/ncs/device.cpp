#include "ncs/device.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"
#include "util/trace.h"

namespace ncsw::ncs {

NcsDevice::NcsDevice(int id, UsbChannel& channel, const NcsConfig& config)
    : id_(id),
      channel_(channel),
      config_(config),
      m_inferences_(util::metrics().counter(
          "ncs.dev" + std::to_string(id) + ".inferences")),
      m_fifo_rejects_(util::metrics().counter(
          "ncs.dev" + std::to_string(id) + ".fifo_rejects")),
      m_temp_c_(util::metrics().gauge(
          "ncs.dev" + std::to_string(id) + ".temp_c")),
      m_exec_ms_(util::metrics().histogram("ncs.exec_ms")),
      m_queue_wait_ms_(util::metrics().histogram("ncs.queue_wait_ms")),
      thermal_(config.thermal) {
  if (config_.fifo_depth < 1) {
    throw std::invalid_argument("NcsDevice: fifo_depth < 1");
  }
}

sim::SimTime NcsDevice::open(sim::SimTime host_time) {
  std::lock_guard lock(mutex_);
  if (open_) throw std::logic_error("NcsDevice::open: already open");
  return boot_locked(host_time, "boot");
}

sim::SimTime NcsDevice::boot_locked(sim::SimTime host_time,
                                    const char* span_name) {
  // Firmware image download (~1.8 MB over USB) then boot.
  const auto window =
      channel_.transfer(host_time, 1'800'000);
  ready_at_ = window.end + config_.firmware_boot_s;
  open_ = true;
  auto& t = util::tracer();
  if (t.enabled()) {
    t.complete("ncs", span_name,
               t.lane("dev" + std::to_string(id_) + " host"),
               window.start, ready_at_);
  }
  return ready_at_;
}

bool NcsDevice::is_open() const {
  std::lock_guard lock(mutex_);
  return open_;
}

void NcsDevice::unplug() {
  std::lock_guard lock(mutex_);
  unplugged_ = true;
  fifo_.clear();  // in-flight inferences are lost with the link
}

bool NcsDevice::unplugged() const {
  std::lock_guard lock(mutex_);
  return unplugged_;
}

void NcsDevice::set_fault_timeline(sim::FaultTimeline timeline) {
  std::lock_guard lock(mutex_);
  faults_ = std::move(timeline);
  detach_cursor_ = 0;
}

bool NcsDevice::detached() const {
  std::lock_guard lock(mutex_);
  return detached_;
}

std::uint64_t NcsDevice::results_lost() const {
  std::lock_guard lock(mutex_);
  return results_lost_;
}

util::Counter& NcsDevice::fault_counter(const char* metric) const {
  // Cold path (only reached when a scripted fault fires), so the registry
  // lookup cost is irrelevant — and lazy creation keeps fault-free runs'
  // metric namespace identical to a build without fault injection.
  return util::metrics().counter("ncs.dev" + std::to_string(id_) + "." +
                                 metric);
}

void NcsDevice::latch_detach_locked(sim::SimTime t) {
  if (faults_.empty()) return;
  bool latched = false;
  while (const auto* ev = faults_.next_detach(t, &detach_cursor_)) {
    latched = true;
    detached_ = true;
    reattach_at_ = std::max(reattach_at_, ev->end);
  }
  if (!latched) return;
  // The stick dropped off the bus: in-flight inferences and all firmware
  // state (boot + allocated graph) are gone until a hot replug.
  results_lost_ += fifo_.size();
  fault_counter("detaches").add(1);
  if (!fifo_.empty()) {
    fault_counter("results_lost").add(fifo_.size());
  }
  fifo_.clear();
  open_ = false;
  graph_.reset();
  auto& tr = util::tracer();
  if (tr.enabled()) {
    tr.instant("ncs.fault", "detach",
               tr.lane("dev" + std::to_string(id_) + " host"), t);
  }
}

std::optional<sim::SimTime> NcsDevice::replug(sim::SimTime host_time) {
  std::lock_guard lock(mutex_);
  if (unplugged_) return std::nullopt;  // permanently gone
  latch_detach_locked(host_time);
  if (!detached_) return std::nullopt;  // nothing to recover
  if (host_time < reattach_at_) return std::nullopt;  // still off the bus
  detached_ = false;
  fault_counter("replugs").add(1);
  // Fresh enumeration: the firmware boots again; the host must then
  // re-allocate its graph.
  return boot_locked(host_time, "replug");
}

sim::SimTime NcsDevice::allocate_graph(const graphc::CompiledGraph& graph,
                                       sim::SimTime host_time) {
  std::lock_guard lock(mutex_);
  if (!open_) throw std::logic_error("NcsDevice::allocate_graph: not open");
  if (!fifo_.empty()) {
    throw std::logic_error("NcsDevice::allocate_graph: inferences in flight");
  }
  // LPDDR3 capacity check: weights + double-buffered activations + IO.
  const std::int64_t footprint =
      graph.total_weight_bytes() + 2 * graph.total_activation_bytes() +
      graph.input_bytes() + graph.output_bytes();
  const std::int64_t available =
      config_.lpddr_bytes - config_.runtime_reserved_bytes;
  if (footprint > available) {
    throw OutOfDeviceMemory(
        "NcsDevice::allocate_graph: graph needs " +
        std::to_string(footprint) + " bytes, stick has " +
        std::to_string(available));
  }
  // Upload the graph file + weights, then let the RISC runtime parse and
  // place buffers.
  const std::int64_t blob_bytes =
      graph.total_weight_bytes() + 64 * static_cast<std::int64_t>(graph.layers.size());
  const auto window =
      channel_.transfer(std::max(host_time, ready_at_), blob_bytes);
  const double parse_s = config_.graph_alloc_per_mb_s *
                         (static_cast<double>(blob_bytes) / (1024.0 * 1024.0));
  ready_at_ = window.end + parse_s;

  myriad::Myriad2 chip(config_.chip);
  profile_ = chip.execute(graph);
  graph_ = graph;
  shave_free_at_ = ready_at_;
  auto& t = util::tracer();
  if (t.enabled()) {
    t.complete("ncs", "allocate_graph",
               t.lane("dev" + std::to_string(id_) + " host"), window.start,
               ready_at_,
               {util::TraceArg::str("net", graph.net_name),
                util::TraceArg::num("blob_bytes", blob_bytes)});
  }
  return ready_at_;
}

bool NcsDevice::has_graph() const {
  std::lock_guard lock(mutex_);
  return graph_.has_value();
}

const graphc::CompiledGraph& NcsDevice::graph() const {
  std::lock_guard lock(mutex_);
  if (!graph_) throw std::logic_error("NcsDevice::graph: none allocated");
  return *graph_;
}

const myriad::InferenceProfile& NcsDevice::profile() const {
  std::lock_guard lock(mutex_);
  if (!graph_) throw std::logic_error("NcsDevice::profile: none allocated");
  return profile_;
}

sim::SimTime NcsDevice::jittered_exec_time(std::uint64_t seq) const {
  // Deterministic per (device, inference): stands in for run-to-run noise.
  const std::uint64_t h = util::hash_mix(
      0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id_), seq);
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double factor = 1.0 + config_.exec_jitter_frac * (2.0 * u - 1.0);
  return profile_.total_s * factor;
}

std::optional<InferenceTicket> NcsDevice::load_tensor(sim::SimTime host_time,
                                                      void* user_param) {
  std::lock_guard lock(mutex_);
  if (unplugged_) throw DeviceUnplugged("NcsDevice::load_tensor");
  latch_detach_locked(host_time);
  if (detached_) throw DeviceDetached("NcsDevice::load_tensor: detached");
  if (!open_ || !graph_) {
    throw std::logic_error("NcsDevice::load_tensor: device not ready");
  }
  if (!faults_.empty() &&
      faults_.active(sim::FaultKind::kBusyStorm, host_time)) {
    // Scripted FIFO storm: the firmware rejects the load exactly as if
    // the inference FIFO were full.
    m_fifo_rejects_.add(1);
    fault_counter("busy_storm_rejects").add(1);
    return std::nullopt;  // MVNC_BUSY
  }
  if (static_cast<int>(fifo_.size()) >= config_.fifo_depth) {
    m_fifo_rejects_.add(1);
    return std::nullopt;  // MVNC_BUSY
  }
  sim::SimTime issue = std::max(host_time, ready_at_);
  sim::SimTime xfer_earliest = issue + config_.command_overhead_s;
  if (!faults_.empty()) {
    if (faults_.active(sim::FaultKind::kUsbTransferError, xfer_earliest)) {
      fault_counter("usb_errors").add(1);
      auto& tr = util::tracer();
      if (tr.enabled()) {
        tr.instant("ncs.fault", "usb-error",
                   tr.lane("dev" + std::to_string(id_) + " host"),
                   xfer_earliest);
      }
      throw TransientUsbError("NcsDevice::load_tensor: transfer error");
    }
    // A stalled bus delays the transfer to the end of the stall window.
    const sim::SimTime clear =
        faults_.clear_of(sim::FaultKind::kUsbStall, xfer_earliest);
    if (clear != xfer_earliest) {
      fault_counter("usb_stalls").add(1);
      xfer_earliest = clear;
    }
  }
  InferenceTicket t;
  t.seq = next_seq_++;
  t.user_param = user_param;
  t.issue = issue;

  // Input tensor DMA over the (possibly shared) USB channel, preceded by
  // the RISC command handshake.
  const auto window = channel_.transfer(xfer_earliest, graph_->input_bytes());
  t.input_done = window.end;

  // Execution starts once the SHAVE array frees up and the input landed.
  t.exec_start = std::max(t.input_done, shave_free_at_);
  double exec_time = jittered_exec_time(t.seq);
  const sim::FaultEvent* forced_throttle =
      faults_.empty()
          ? nullptr
          : faults_.active(sim::FaultKind::kThermalThrottle, t.exec_start);
  if (config_.thermal_enabled) {
    // Integrate the idle gap since the last modelled point, then apply
    // the throttle level the firmware sees *at dispatch time*.
    thermal_.advance(t.exec_start - thermal_clock_, config_.idle_power_w);
    exec_time *= thermal_.slowdown();
  }
  if (forced_throttle) {
    // Scripted hard-throttle window (an overheated enclosure): the
    // firmware stretches execution regardless of the modelled junction
    // temperature.
    exec_time *= forced_throttle->magnitude > 1.0
                     ? forced_throttle->magnitude
                     : config_.thermal.hard_throttle_factor;
    fault_counter("forced_throttles").add(1);
  }
  if (config_.thermal_enabled) {
    thermal_.advance(exec_time,
                     profile_.avg_power_w + config_.stick_overhead_w);
    thermal_clock_ = t.exec_start + exec_time;
  }
  t.exec_end = t.exec_start + exec_time;
  shave_free_at_ = t.exec_end;

  if (config_.thermal_enabled) {
    m_temp_c_.set(thermal_.temperature_c());
  }
  trace_inference(t);

  fifo_.push_back(t);
  return t;
}

void NcsDevice::trace_inference(const InferenceTicket& t) const {
  auto& tr = util::tracer();
  if (!tr.enabled()) return;
  const std::string dev = "dev" + std::to_string(id_);
  tr.complete("ncs", "exec", tr.lane(dev + " shave"), t.exec_start,
              t.exec_end,
              {util::TraceArg::num("seq", static_cast<std::int64_t>(t.seq)),
               util::TraceArg::num("queue_wait_ms",
                                   (t.exec_start - t.input_done) * 1e3)});
  if (config_.thermal_enabled) {
    tr.counter(dev + " temp_c", t.exec_start, thermal_.temperature_c());
  }
  if (tr.layers_enabled() && profile_.total_s > 0.0) {
    // Project the chip profile's layer offsets onto this inference's
    // execution window (thermal throttling / jitter stretch it
    // uniformly, which is exactly how the firmware slows down).
    const double scale = (t.exec_end - t.exec_start) / profile_.total_s;
    const int lane = tr.lane(dev + " layers");
    for (const auto& lp : profile_.layers) {
      if (lp.time_s <= 0.0) continue;
      const double start = t.exec_start + lp.start_s * scale;
      tr.complete(
          "myriad.layer", lp.name, lane, start, start + lp.time_s * scale,
          {util::TraceArg::str("kind", nn::layer_kind_name(lp.kind)),
           util::TraceArg::num("compute_ms", lp.compute_s * 1e3),
           util::TraceArg::num("dma_ms", lp.dma_s * 1e3),
           util::TraceArg::num("tiles", static_cast<std::int64_t>(lp.tiles)),
           util::TraceArg::num("shave_util", lp.shave_utilization)});
    }
  }
}

std::optional<InferenceTicket> NcsDevice::get_result(sim::SimTime host_time,
                                                     double watchdog_s) {
  std::lock_guard lock(mutex_);
  if (unplugged_) throw DeviceUnplugged("NcsDevice::get_result");
  latch_detach_locked(host_time);
  if (detached_) throw DeviceDetached("NcsDevice::get_result: detached");
  if (!open_ || !graph_) {
    throw std::logic_error("NcsDevice::get_result: device not ready");
  }
  if (fifo_.empty()) return std::nullopt;
  InferenceTicket t = fifo_.front();

  // Output transfer can only start when the execution finished and the
  // host asked for it.
  sim::SimTime start =
      std::max(host_time, t.exec_end) + config_.command_overhead_s;
  if (!faults_.empty()) {
    // A result-delivery stall (firmware wedged, FIFO interrupt lost):
    // the output cannot leave the stick before the window closes.
    const sim::SimTime clear =
        faults_.clear_of(sim::FaultKind::kGetTimeout, start);
    if (clear != start) {
      fault_counter("result_stalls").add(1);
      start = clear;
    }
  }
  // Watchdog: give up before committing anything when the result cannot
  // land within the caller's budget. The inference stays queued, so a
  // later retry (after the stall clears) still succeeds.
  if (start + channel_.duration(graph_->output_bytes()) - host_time >
      watchdog_s) {
    throw DeviceTimeout("NcsDevice::get_result: watchdog expired",
                        host_time + watchdog_s);
  }
  fifo_.pop_front();
  const auto window = channel_.transfer(start, graph_->output_bytes());
  t.result_ready = window.end;

  ++completed_;
  last_completion_ = std::max(last_completion_, t.result_ready);
  energy_j_ += profile_.energy_j +
               (t.exec_end - t.exec_start) * config_.stick_overhead_w;
  m_inferences_.add(1);
  m_exec_ms_.record((t.exec_end - t.exec_start) * 1e3);
  m_queue_wait_ms_.record((t.exec_start - t.input_done) * 1e3);
  return t;
}

int NcsDevice::queued() const {
  std::lock_guard lock(mutex_);
  return static_cast<int>(fifo_.size());
}

std::uint64_t NcsDevice::completed() const {
  std::lock_guard lock(mutex_);
  return completed_;
}

sim::SimTime NcsDevice::last_completion() const {
  std::lock_guard lock(mutex_);
  return last_completion_;
}

double NcsDevice::active_power_w() const {
  std::lock_guard lock(mutex_);
  return profile_.avg_power_w + config_.stick_overhead_w;
}

double NcsDevice::energy_j() const {
  std::lock_guard lock(mutex_);
  return energy_j_;
}

double NcsDevice::temperature_c() const {
  std::lock_guard lock(mutex_);
  return thermal_.temperature_c();
}

ThrottleLevel NcsDevice::throttle_level() const {
  std::lock_guard lock(mutex_);
  return thermal_.level();
}

int NcsDevice::soft_throttle_events() const {
  std::lock_guard lock(mutex_);
  return thermal_.soft_events();
}

int NcsDevice::hard_throttle_events() const {
  std::lock_guard lock(mutex_);
  return thermal_.hard_events();
}

std::vector<float> NcsDevice::thermal_history() const {
  std::lock_guard lock(mutex_);
  return thermal_.history();
}

void NcsDevice::set_temp_limits(double lower_c, double higher_c) {
  std::lock_guard lock(mutex_);
  thermal_.set_limits(lower_c, higher_c);
}

std::pair<double, double> NcsDevice::temp_limits() const {
  std::lock_guard lock(mutex_);
  return {thermal_.params().temp_lim_lower_c,
          thermal_.params().temp_lim_higher_c};
}

}  // namespace ncsw::ncs
