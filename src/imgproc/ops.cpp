#include "imgproc/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncsw::imgproc {

Image resize_bilinear(const Image& src, int out_w, int out_h) {
  if (src.empty()) throw std::invalid_argument("resize_bilinear: empty image");
  if (out_w <= 0 || out_h <= 0) {
    throw std::invalid_argument("resize_bilinear: non-positive output size");
  }
  if (out_w == src.width() && out_h == src.height()) return src;

  Image dst(out_w, out_h);
  // Half-pixel-centre mapping (matches OpenCV INTER_LINEAR).
  const float sx = static_cast<float>(src.width()) / static_cast<float>(out_w);
  const float sy =
      static_cast<float>(src.height()) / static_cast<float>(out_h);
  for (int y = 0; y < out_h; ++y) {
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0,
                              src.height() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (int x = 0; x < out_w; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      const int x0 =
          std::clamp(static_cast<int>(std::floor(fx)), 0, src.width() - 1);
      const int x1 = std::min(x0 + 1, src.width() - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      for (int c = 0; c < 3; ++c) {
        const float top = static_cast<float>(src.at(x0, y0, c)) * (1 - wx) +
                          static_cast<float>(src.at(x1, y0, c)) * wx;
        const float bot = static_cast<float>(src.at(x0, y1, c)) * (1 - wx) +
                          static_cast<float>(src.at(x1, y1, c)) * wx;
        const float v = top * (1 - wy) + bot * wy;
        dst.at(x, y, c) =
            static_cast<std::uint8_t>(std::clamp(v + 0.5f, 0.0f, 255.0f));
      }
    }
  }
  return dst;
}

Image center_crop(const Image& src, int crop_w, int crop_h) {
  if (crop_w <= 0 || crop_h <= 0 || crop_w > src.width() ||
      crop_h > src.height()) {
    throw std::invalid_argument("center_crop: crop does not fit");
  }
  const int x0 = (src.width() - crop_w) / 2;
  const int y0 = (src.height() - crop_h) / 2;
  Image dst(crop_w, crop_h);
  for (int y = 0; y < crop_h; ++y) {
    for (int x = 0; x < crop_w; ++x) {
      for (int c = 0; c < 3; ++c) {
        dst.at(x, y, c) = src.at(x0 + x, y0 + y, c);
      }
    }
  }
  return dst;
}

tensor::TensorF to_tensor_f32(const Image& image, const ChannelMeans& means) {
  if (image.empty()) throw std::invalid_argument("to_tensor_f32: empty image");
  tensor::TensorF t(tensor::Shape{1, 3, image.height(), image.width()});
  const float mean[3] = {means.r, means.g, means.b};
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < image.height(); ++y) {
      for (int x = 0; x < image.width(); ++x) {
        t.at(0, c, y, x) = static_cast<float>(image.at(x, y, c)) - mean[c];
      }
    }
  }
  return t;
}

tensor::TensorH to_tensor_f16(const Image& image, const ChannelMeans& means) {
  return tensor::tensor_cast<ncsw::fp16::half>(to_tensor_f32(image, means));
}

double mean_abs_pixel_diff(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mean_abs_pixel_diff: size mismatch");
  }
  double sum = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    sum += std::abs(static_cast<double>(pa[i]) - static_cast<double>(pb[i]));
  }
  return pa.empty() ? 0.0 : sum / static_cast<double>(pa.size());
}

}  // namespace ncsw::imgproc
