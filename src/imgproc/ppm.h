// Binary PPM (P6) codec — the repository's on-disk image format, standing
// in for the JPEG decode path (OpenCV) of the paper's testbed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "imgproc/image.h"

namespace ncsw::imgproc {

/// Serialise to a P6 PPM byte stream (maxval 255).
std::vector<std::uint8_t> encode_ppm(const Image& image);

/// Parse a P6 PPM byte stream. Accepts whitespace/comments in the header.
/// Throws std::runtime_error on malformed input.
Image decode_ppm(const std::vector<std::uint8_t>& bytes);

/// Write `image` to `path` as P6 PPM.
void save_ppm(const Image& image, const std::string& path);

/// Read a P6 PPM from `path`.
Image load_ppm(const std::string& path);

}  // namespace ncsw::imgproc
