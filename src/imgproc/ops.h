// Host-side pre-processing pipeline: resize -> crop -> CHW float tensor
// with per-channel mean subtraction -> optional FP16 conversion. Mirrors
// the paper's OpenCV + OpenEXR-half path feeding the NCS.
#pragma once

#include "imgproc/image.h"
#include "tensor/tensor.h"

namespace ncsw::imgproc {

/// Bilinear resize to (out_w, out_h).
Image resize_bilinear(const Image& src, int out_w, int out_h);

/// Centered crop of size (crop_w, crop_h); must fit inside the source.
Image center_crop(const Image& src, int crop_w, int crop_h);

/// Per-channel means (RGB order) in 0..255 pixel units. Defaults are the
/// ILSVRC-2012 training-set means the paper retrieves for GoogLeNet.
struct ChannelMeans {
  float r = 123.68f;
  float g = 116.78f;
  float b = 103.94f;
};

/// Convert to a 1 x 3 x H x W FP32 tensor: CHW layout, channel means
/// subtracted (pixel values stay in 0..255 scale, Caffe-style).
tensor::TensorF to_tensor_f32(const Image& image,
                              const ChannelMeans& means = {});

/// Same pipeline but the result is rounded to FP16 (the NCS input format).
tensor::TensorH to_tensor_f16(const Image& image,
                              const ChannelMeans& means = {});

/// Mean absolute per-pixel difference between two images of equal size
/// (0..255 scale); throws on size mismatch.
double mean_abs_pixel_diff(const Image& a, const Image& b);

}  // namespace ncsw::imgproc
