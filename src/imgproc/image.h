// Minimal image type: 8-bit interleaved RGB, the format the dataset
// generator produces and the PPM codec serialises. Stands in for the
// OpenCV decode path the paper used on the host.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ncsw::imgproc {

/// 8-bit RGB image, row-major, interleaved (R,G,B per pixel).
class Image {
 public:
  Image() = default;

  /// Black image of the given size.
  Image(int width, int height) : width_(width), height_(height) {
    if (width <= 0 || height <= 0) {
      throw std::invalid_argument("Image: non-positive dimensions");
    }
    pixels_.assign(static_cast<std::size_t>(width) * height * 3, 0);
  }

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return pixels_.empty(); }

  /// Raw interleaved buffer (size = width*height*3).
  const std::vector<std::uint8_t>& pixels() const noexcept { return pixels_; }
  std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  /// Channel c (0=R,1=G,2=B) of pixel (x, y); no bounds checks.
  std::uint8_t at(int x, int y, int c) const noexcept {
    return pixels_[(static_cast<std::size_t>(y) * width_ + x) * 3 + c];
  }
  std::uint8_t& at(int x, int y, int c) noexcept {
    return pixels_[(static_cast<std::size_t>(y) * width_ + x) * 3 + c];
  }

  /// Byte size of the pixel buffer.
  std::size_t byte_size() const noexcept { return pixels_.size(); }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace ncsw::imgproc
