#include "imgproc/ppm.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ncsw::imgproc {

std::vector<std::uint8_t> encode_ppm(const Image& image) {
  if (image.empty()) throw std::invalid_argument("encode_ppm: empty image");
  char header[64];
  const int len = std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n",
                                image.width(), image.height());
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(len) + image.byte_size());
  out.insert(out.end(), header, header + len);
  out.insert(out.end(), image.pixels().begin(), image.pixels().end());
  return out;
}

namespace {
// Header tokenizer: skips whitespace and '#' comments.
class HeaderReader {
 public:
  explicit HeaderReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::string next_token() {
    skip_space_and_comments();
    std::string tok;
    while (pos_ < bytes_.size() && !std::isspace(bytes_[pos_])) {
      tok.push_back(static_cast<char>(bytes_[pos_++]));
    }
    if (tok.empty()) throw std::runtime_error("decode_ppm: truncated header");
    return tok;
  }

  /// Position just after the single whitespace byte that terminates the
  /// maxval token (per the PPM spec, raster begins immediately after it).
  std::size_t raster_start() {
    if (pos_ >= bytes_.size() || !std::isspace(bytes_[pos_])) {
      throw std::runtime_error("decode_ppm: missing raster separator");
    }
    return pos_ + 1;
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < bytes_.size()) {
      if (std::isspace(bytes_[pos_])) {
        ++pos_;
      } else if (bytes_[pos_] == '#') {
        while (pos_ < bytes_.size() && bytes_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

int parse_positive_int(const std::string& tok, const char* what) {
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(tok, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("decode_ppm: bad ") + what);
  }
  if (pos != tok.size() || v <= 0 || v > 1 << 20) {
    throw std::runtime_error(std::string("decode_ppm: bad ") + what);
  }
  return static_cast<int>(v);
}
}  // namespace

Image decode_ppm(const std::vector<std::uint8_t>& bytes) {
  HeaderReader reader(bytes);
  if (reader.next_token() != "P6") {
    throw std::runtime_error("decode_ppm: not a P6 PPM");
  }
  const int width = parse_positive_int(reader.next_token(), "width");
  const int height = parse_positive_int(reader.next_token(), "height");
  const int maxval = parse_positive_int(reader.next_token(), "maxval");
  if (maxval != 255) {
    throw std::runtime_error("decode_ppm: only maxval 255 supported");
  }
  const std::size_t start = reader.raster_start();
  const std::size_t expected =
      static_cast<std::size_t>(width) * height * 3;
  if (bytes.size() < start + expected) {
    throw std::runtime_error("decode_ppm: truncated raster");
  }
  Image img(width, height);
  std::copy(bytes.begin() + static_cast<std::ptrdiff_t>(start),
            bytes.begin() + static_cast<std::ptrdiff_t>(start + expected),
            img.pixels().begin());
  return img;
}

void save_ppm(const Image& image, const std::string& path) {
  const auto bytes = encode_ppm(image);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("save_ppm: cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("save_ppm: write failed " + path);
}

Image load_ppm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("load_ppm: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return decode_ppm(bytes);
}

}  // namespace ncsw::imgproc
