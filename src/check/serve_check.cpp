#include "check/serve_check.h"

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::check {

const char* serve_violation_name(ServeViolationKind kind) {
  switch (kind) {
    case ServeViolationKind::kWindowExceeded:
      return "window-exceeded";
    case ServeViolationKind::kWaitAfterCancel:
      return "wait-after-cancel";
    case ServeViolationKind::kDoubleWait:
      return "double-wait";
    case ServeViolationKind::kPollAfterRetire:
      return "poll-after-retire";
    case ServeViolationKind::kUnknownTicket:
      return "unknown-ticket";
    case ServeViolationKind::kRequestConservation:
      return "request-conservation";
    case ServeViolationKind::kDuplicateDelivery:
      return "duplicate-delivery";
    case ServeViolationKind::kLedgerConservation:
      return "ledger-conservation";
    case ServeViolationKind::kNegativeLive:
      return "negative-live";
    case ServeViolationKind::kSwapWhileInflight:
      return "swap-while-inflight";
    case ServeViolationKind::kWrongModelDispatch:
      return "wrong-model-dispatch";
    case ServeViolationKind::kResidencyConservation:
      return "residency-conservation";
  }
  return "?";
}

std::string ServeViolation::to_string() const {
  std::string out = serve_violation_name(kind);
  if (!scope.empty()) out += " on " + scope;
  out += " at t=" + std::to_string(sim_time) + "s: " + detail;
  return out;
}

void ServeVerifier::configure(CheckMode mode) {
  std::unique_lock lock(mutex_);
  delivered_.clear();
  recorded_.clear();
  for (auto& c : counts_) c = 0;
  total_ = 0;
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ServeVerifier::report(std::unique_lock<std::mutex>& lock,
                           ServeViolationKind kind, std::string scope,
                           double t, std::string detail) {
  ServeViolation v;
  v.kind = kind;
  v.scope = std::move(scope);
  v.sim_time = t;
  v.detail = std::move(detail);

  ++counts_[static_cast<int>(kind)];
  ++total_;
  if (recorded_.size() < kMaxRecorded) recorded_.push_back(v);
  const bool strict = mode() == CheckMode::kStrict;
  lock.unlock();

  util::metrics()
      .counter(std::string("check.violation.") + serve_violation_name(kind))
      .add(1);
  util::metrics().counter("check.violations").add(1);
  auto& tr = util::tracer();
  if (tr.enabled()) {
    tr.instant("check",
               std::string("violation:") + serve_violation_name(kind),
               tr.lane("serve check"), t);
  }
  NCSW_LOG_WARN << "serving contract violation: " << v.to_string();
  if (strict) throw ServeViolationError(std::move(v));
}

void ServeVerifier::on_submit(const void* target, const std::string& name,
                              std::uint64_t id, int inflight, int window,
                              double t) {
  (void)target;
  if (!enabled()) return;
  if (inflight <= window) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kWindowExceeded, name, t,
         "ticket " + std::to_string(id) + " accepted with " +
             std::to_string(inflight) + " submission(s) in flight (window " +
             std::to_string(window) + ")");
}

void ServeVerifier::miss(const char* call, ServeViolationKind evicted_kind,
                         const void* target, const std::string& name,
                         std::uint64_t id, std::uint64_t last_issued,
                         double t) {
  (void)target;
  std::unique_lock lock(mutex_);
  if (id >= 1 && id <= last_issued) {
    // The target issued this id once; it has since fallen off the
    // bounded retired ring. The defined error (std::out_of_range from
    // poll/info, std::logic_error semantics for wait) still fires in
    // kLog mode — stale state is never served.
    report(lock, evicted_kind, name, t,
           std::string(call) + " on ticket " + std::to_string(id) +
               ", evicted from the retired ring (last " +
               std::to_string(last_issued) + " issued; ring keeps 64)");
    return;
  }
  report(lock, ServeViolationKind::kUnknownTicket, name, t,
         std::string(call) + " on ticket " + std::to_string(id) +
             ", which this target never issued");
}

void ServeVerifier::on_poll_miss(const void* target, const std::string& name,
                                 std::uint64_t id, std::uint64_t last_issued,
                                 double t) {
  if (!enabled()) return;
  miss("poll/info", ServeViolationKind::kPollAfterRetire, target, name, id,
       last_issued, t);
}

void ServeVerifier::on_wait_retired(const void* target,
                                    const std::string& name, std::uint64_t id,
                                    const char* state, double t) {
  (void)target;
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const bool cancelled = std::string(state) == "cancelled";
  report(lock,
         cancelled ? ServeViolationKind::kWaitAfterCancel
                   : ServeViolationKind::kDoubleWait,
         name, t,
         "wait on ticket " + std::to_string(id) + " already " + state +
             (cancelled ? "; its result was discarded at cancellation"
                        : "; a TimedRun is handed out exactly once"));
}

void ServeVerifier::on_wait_miss(const void* target, const std::string& name,
                                 std::uint64_t id, std::uint64_t last_issued,
                                 double t) {
  if (!enabled()) return;
  miss("wait", ServeViolationKind::kDoubleWait, target, name, id, last_issued,
       t);
}

void ServeVerifier::on_cancel_miss(const void* target,
                                   const std::string& name, std::uint64_t id,
                                   std::uint64_t last_issued, double t) {
  if (!enabled()) return;
  // Cancelling a retired ticket is the documented drain idiom (returns
  // false); only an id the target never issued is flagged.
  if (id >= 1 && id <= last_issued) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kUnknownTicket, name, t,
         "cancel on ticket " + std::to_string(id) +
             ", which this target never issued");
}

void ServeVerifier::on_session_finish(
    const std::string& label, std::int64_t offered, std::int64_t rejected,
    std::int64_t completed, std::int64_t dropped,
    std::int64_t dropped_deadline, std::int64_t dropped_inflight,
    std::int64_t dropped_failover, std::int64_t unaccounted, double t) {
  if (!enabled()) return;
  const std::string scope =
      label.empty() ? std::string("serve") : "serve " + label;
  std::unique_lock lock(mutex_);
  if (unaccounted != 0) {
    report(lock, ServeViolationKind::kRequestConservation, scope, t,
           std::to_string(unaccounted) +
               " request(s) still queued or in flight at finish()");
    return;
  }
  const std::int64_t by_reason =
      dropped_deadline + dropped_inflight + dropped_failover;
  if (by_reason != dropped) {
    report(lock, ServeViolationKind::kRequestConservation, scope, t,
           "drop reasons sum to " + std::to_string(by_reason) + " but " +
               std::to_string(dropped) + " request(s) were dropped");
    return;
  }
  if (completed + rejected + dropped != offered) {
    report(lock, ServeViolationKind::kRequestConservation, scope, t,
           std::to_string(offered) + " offered != " +
               std::to_string(completed) + " completed + " +
               std::to_string(rejected) + " rejected + " +
               std::to_string(dropped) + " dropped");
  }
}

void ServeVerifier::on_swap_begin(const std::string& stick,
                                  const std::string& from_model,
                                  const std::string& to_model, int inflight,
                                  double t) {
  if (!enabled()) return;
  if (inflight == 0) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kSwapWhileInflight, stick, t,
         "swap " + from_model + " -> " + to_model + " started with " +
             std::to_string(inflight) +
             " ticket(s) outstanding; drain before deallocating");
}

void ServeVerifier::on_zoo_dispatch(const std::string& stick,
                                    const std::string& resident,
                                    const std::string& requested, double t) {
  if (!enabled()) return;
  if (resident == requested) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kWrongModelDispatch, stick, t,
         "dispatching " + requested + " work to a stick resident with " +
             (resident.empty() ? std::string("no graph") : resident));
}

void ServeVerifier::on_zoo_finish(const std::string& scope,
                                  std::int64_t offered, std::int64_t completed,
                                  std::int64_t rejected, std::int64_t dropped,
                                  std::int64_t installs, std::int64_t evicts,
                                  std::int64_t resident, double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  if (completed + rejected + dropped != offered) {
    report(lock, ServeViolationKind::kResidencyConservation, scope, t,
           std::to_string(offered) + " offered != " +
               std::to_string(completed) + " completed + " +
               std::to_string(rejected) + " rejected + " +
               std::to_string(dropped) + " dropped");
    return;
  }
  if (installs - evicts != resident) {
    report(lock, ServeViolationKind::kResidencyConservation, scope, t,
           std::to_string(installs) + " install(s) - " +
               std::to_string(evicts) + " evict(s) != " +
               std::to_string(resident) + " resident graph(s)");
  }
}

void ServeVerifier::on_cluster_begin() {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  delivered_.clear();
}

void ServeVerifier::on_ledger_deliver(std::int64_t id, int node, double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  if (delivered_.insert(id).second) return;
  report(lock, ServeViolationKind::kDuplicateDelivery, "cluster", t,
         "request " + std::to_string(id) +
             " delivered a second time (node " + std::to_string(node) +
             "); duplicates are counted, never delivered");
}

void ServeVerifier::on_ledger_live(std::int64_t id, int live, double t) {
  if (!enabled()) return;
  if (live >= 0) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kNegativeLive, "cluster", t,
         "request " + std::to_string(id) + " live-copy count is " +
             std::to_string(live) +
             "; a copy finished that was never offered");
}

void ServeVerifier::on_cluster_finish(std::int64_t offered,
                                      std::int64_t completed,
                                      std::int64_t rejected,
                                      std::int64_t deadline,
                                      std::int64_t lost, double t) {
  if (!enabled()) return;
  if (completed + rejected + deadline + lost == offered) return;
  std::unique_lock lock(mutex_);
  report(lock, ServeViolationKind::kLedgerConservation, "cluster", t,
         std::to_string(offered) + " admitted != " +
             std::to_string(completed) + " completed + " +
             std::to_string(rejected) + " rejected + " +
             std::to_string(deadline) + " deadline + " +
             std::to_string(lost) + " lost");
}

std::uint64_t ServeVerifier::count(ServeViolationKind kind) const {
  std::unique_lock lock(mutex_);
  return counts_[static_cast<int>(kind)];
}

std::uint64_t ServeVerifier::total() const {
  std::unique_lock lock(mutex_);
  return total_;
}

std::vector<ServeViolation> ServeVerifier::violations() const {
  std::unique_lock lock(mutex_);
  return recorded_;
}

void ServeVerifier::clear_violations() {
  std::unique_lock lock(mutex_);
  recorded_.clear();
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

ServeVerifier& serve_verifier() {
  static ServeVerifier instance;
  return instance;
}

}  // namespace ncsw::check
