// Schedule-perturbation determinism checker (DPOR-lite).
//
// The serving stack's headline guarantee is byte-identical replay: a
// given arrival trace (plus fault plan) always produces the same
// report, because every event loop breaks same-timestamp ties in a
// fixed order. That guarantee is only meaningful if the *results* are
// independent of the tie order — i.e. same-timestamp events commute.
// If they don't (say, an arrival and a completion racing for the last
// queue slot), the "determinism" is an artifact of one arbitrary
// serialisation, and any refactor that reorders the scan silently
// changes results.
//
// This harness checks commutativity directly: it re-runs a scenario
// under seeded random permutations of each same-timestamp event group
// (via the serve::TieBreak hook threaded through ServerConfig and
// ClusterConfig) and asserts the final report fingerprint is invariant.
// On divergence it minimises to a single deviating tie decision — the
// smallest schedule change that flips the result — and reports it.
//
// Exercised by tools/ncsw_schedfuzz and the CI schedfuzz smoke job.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "serve/server.h"

namespace ncsw::check {

/// A run's result reduced to an ordered list of (key, value) pairs.
/// Two runs are considered identical iff their fingerprints are equal;
/// the keys make a divergence report human-readable.
using Fingerprint = std::vector<std::pair<std::string, std::string>>;

/// Canonical fingerprints of the serving reports: every scalar counter
/// plus a digest of the per-request record log, so a divergence in any
/// individual request's fate is caught even when the totals agree.
Fingerprint fingerprint(const serve::ServeReport& r);
Fingerprint fingerprint(const cluster::ClusterReport& r);

/// One schedule-sensitive workload: runs to completion under the given
/// tie-break hook (empty = the production fixed order) and returns the
/// result fingerprint. Must be a pure function of the hook — fresh
/// Server/Cluster, same trace, same fault plan on every call.
using Scenario = std::function<Fingerprint(const serve::TieBreak&)>;

struct SchedFuzzConfig {
  /// Perturbed runs per scenario (seeds 1..N; seed 0 is the baseline).
  int seeds = 16;
  /// On divergence, search for the single deviating tie decision that
  /// reproduces it.
  bool minimize = true;
  /// Stop a scenario after this many diverging seeds.
  int max_divergences = 4;
};

/// One seed whose perturbed schedule produced a different result.
struct ScheduleDivergence {
  std::uint64_t seed = 0;
  /// Tie decisions (groups with >1 candidate) taken in the diverging run.
  std::int64_t decisions = 0;
  /// Index of the single decision that reproduces the divergence on its
  /// own (-1 when minimisation was off or found no single culprit).
  std::int64_t minimized_index = -1;
  /// Human description of that decision: time, chosen event, default.
  std::string minimized_choice;
  /// "key: baseline -> perturbed" lines (bounded).
  std::vector<std::string> diffs;

  std::string to_string() const;
};

struct SchedFuzzReport {
  int seeds_run = 0;
  std::int64_t ties_seen = 0;   ///< tie groups with >1 candidate
  std::int64_t perturbed = 0;   ///< groups where a non-default pick ran
  std::vector<ScheduleDivergence> divergences;

  bool ok() const noexcept { return divergences.empty(); }
};

/// Run the scenario once at the fixed order, then `config.seeds` times
/// under seeded random tie permutations, comparing fingerprints.
SchedFuzzReport fuzz_schedule(const Scenario& scenario,
                              const SchedFuzzConfig& config = {});

}  // namespace ncsw::check
