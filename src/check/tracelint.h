// Offline protocol invariants over a recorded trace file.
//
// The runtime verifiers (check/protocol.h, check/serve_check.h) watch
// live calls; the trace lint replays a Chrome trace-event JSON produced
// by the tracer (util/trace.h, schema ncsw-trace-v1) and re-checks what
// must hold in the *artifact*: the simulated clock only moves forward,
// spans on one lane nest properly, and the LoadTensor/GetResult seq
// numbers on each "dev<N> host" lane pair up FIFO-wise. On top of the
// device-lane checks, v2 cross-checks the serving layers: every serve
// session's request spans must account for its summary-span counters,
// ticket spans must carry exactly the completed work, spans must never
// end before they start (completion preceding dispatch), and cluster
// summary spans must conserve requests across node failover — offered
// == completed + rejected + deadline + lost, hedge/replay instants
// matching their counters, and node-session completions summing to the
// cluster's first-wins completions plus counted duplicates. This
// catches instrumentation bugs (a span emitted with a stale cursor) and
// accounting bugs, and lets CI validate traces from any bench without
// re-running it. Driven by tools/ncsw_lint.cpp.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/json.h"

namespace ncsw::check {

/// One invariant failure found in a trace file.
struct LintIssue {
  std::string kind;    ///< stable slug: "bad-schema", "non-monotonic-ts",
                       ///< "span-overlap", "unmatched-complete",
                       ///< "seq-inversion", "recorded-violation",
                       ///< "negative-duration", "serve-accounting",
                       ///< "ticket-accounting", "cluster-conservation",
                       ///< "cluster-event-mismatch",
                       ///< "cluster-request-conservation",
                       ///< "zoo-accounting"
  std::string lane;    ///< lane (thread) name, empty for file-level issues
  double ts_us = 0.0;  ///< timestamp of the offending event (microseconds)
  std::string detail;

  std::string to_string() const;
};

/// Knobs for lint_trace.
struct LintOptions {
  /// Accept traces containing "violation:*" instants from the runtime
  /// verifier instead of flagging them (for linting known-bad runs).
  bool allow_violations = false;
};

/// Lint result. `ok()` == no issues.
struct LintReport {
  std::vector<LintIssue> issues;
  std::size_t events = 0;        ///< non-metadata events inspected
  std::size_t spans = 0;         ///< complete ('X') spans inspected
  std::size_t pairs = 0;         ///< LoadTensor/GetResult seq pairs matched
  std::size_t lost_results = 0;  ///< issued seqs dropped by a device loss

  bool ok() const { return issues.empty(); }
  /// Multi-line human-readable summary (one line per issue + totals).
  std::string to_string() const;
};

/// Check a parsed ncsw-trace-v1 document.
LintReport lint_trace(const util::JsonValue& doc,
                      const LintOptions& opts = {});

/// Parse + lint raw JSON text. nullopt (and `error`) on malformed JSON.
std::optional<LintReport> lint_trace_text(const std::string& text,
                                          const LintOptions& opts = {},
                                          std::string* error = nullptr);

}  // namespace ncsw::check
