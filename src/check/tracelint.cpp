#include "check/tracelint.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <string>

namespace ncsw::check {

namespace {

// Lane-name helpers. Host lanes are "[prefix ]dev<N> host" (mvnc API
// spans carrying seq args), health lanes "[prefix ]dev<N> health" (the
// runner's fault instants). The shared key is the name minus the suffix,
// so prefixed bench phases ("overlap-on dev0 host") pair independently.
bool strip_suffix(const std::string& name, const std::string& suffix,
                  std::string* key) {
  if (name.size() <= suffix.size()) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string head = name.substr(0, name.size() - suffix.size());
  // The token before the suffix must be "dev<digits>".
  const auto last_space = head.find_last_of(' ');
  const std::string tok =
      last_space == std::string::npos ? head : head.substr(last_space + 1);
  if (tok.size() < 4 || tok.compare(0, 3, "dev") != 0) return false;
  for (std::size_t i = 3; i < tok.size(); ++i) {
    if (tok[i] < '0' || tok[i] > '9') return false;
  }
  *key = head;
  return true;
}

// Device key of any per-device lane ("[prefix ]dev<N> <role>" for role in
// host/health/shave/layers/...): everything before the final word, when
// it ends in a "dev<digits>" token. Empty when the lane is not
// device-scoped ("scheduler", "usb usb-ch0").
std::string dev_key(const std::string& name) {
  const auto last_space = name.find_last_of(' ');
  if (last_space == std::string::npos) return {};
  std::string key;
  if (!strip_suffix(name, name.substr(last_space), &key)) return {};
  return key;
}

struct LaneState {
  std::vector<double> open_ends;   // span-nesting stack (end ts, us)
  std::deque<double> issued_seqs;  // LoadTensor seqs awaiting GetResult
};

// Serve-lane key: lanes are "[label ]serve <role>" where role is
// "sched", "queue", "slot<k>" or "<target> w<k>". `key` gets the label
// prefix (including its trailing space, empty for the plain Server) so
// every lane of one session shares a key; `role` gets the part after
// "serve ". False for non-serve lanes.
bool serve_key(const std::string& name, std::string* key,
               std::string* role) {
  static const std::string kTok = "serve ";
  std::size_t at;
  if (name.compare(0, kTok.size(), kTok) == 0) {
    at = 0;
  } else {
    at = name.find(" " + kTok);
    if (at == std::string::npos) return false;
    ++at;  // past the separating space
  }
  *key = name.substr(0, at);
  *role = name.substr(at + kTok.size());
  return !role->empty();
}

// Per-session rollup for the serve accounting checks, keyed by the
// session's lane prefix. Counter sums accumulate across summary spans
// so traces whose phases reuse a label (and therefore its lanes) are
// still checked in aggregate.
struct ServeRollup {
  std::int64_t summaries = 0;      // "serve" summary spans seen
  std::int64_t offered = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;
  std::int64_t request_spans = 0;  // per-request slot-lane spans
  std::int64_t request_completed = 0;  // ... with outcome "completed"
  std::int64_t ticket_spans = 0;
  std::int64_t ticket_completed = 0;   // sum of ticket "completed" args
  double last_ts = 0.0;            // summary-span ts for issue anchoring
};

// Whole-trace cluster rollup (cluster lanes are unprefixed, so phases
// in one process share them; the checks therefore run in aggregate).
struct ClusterRollup {
  std::int64_t summaries = 0;
  std::int64_t completed = 0;
  std::int64_t replayed = 0;
  std::int64_t hedged = 0;
  std::int64_t duplicates = 0;
  std::int64_t replay_instants = 0;
  std::int64_t hedge_instants = 0;
  double last_ts = 0.0;
};

// Whole-trace zoo rollup: "zoo run" summary spans (serve::ZooServer)
// against the "swap" spans the stick fleet emitted. Zoo lanes can be
// phase-prefixed, so — like the cluster rollup — the swap-count check
// runs in aggregate over the file; it assumes every fleet swap in the
// trace was driven by a ZooServer run (true for every zoo bench).
struct ZooRollup {
  std::int64_t summaries = 0;
  std::int64_t swaps = 0;       // summed "swaps" summary args
  std::int64_t swap_spans = 0;  // cat "zoo" name "swap" spans seen
  double last_ts = 0.0;
};

// Timestamps and durations are serialised with %.12g (12 significant
// digits), so back-to-back spans can disagree by half an ulp of the
// 12th digit — an error that grows with the magnitude of the simulated
// clock. Anything inside this slack is "touching", not overlapping.
double ts_slack_us(double ts) {
  return std::max(1e-3, std::abs(ts) * 1e-8);
}

double num_or(const util::JsonValue* v, double fallback) {
  return v && v->is_number() ? v->number : fallback;
}

std::string str_or(const util::JsonValue* v, const std::string& fallback) {
  return v && v->is_string() ? v->string : fallback;
}

}  // namespace

std::string LintIssue::to_string() const {
  std::string out = kind;
  if (!lane.empty()) out += " on lane \"" + lane + "\"";
  out += " at ts=" + util::JsonWriter::number(ts_us) + "us: " + detail;
  return out;
}

std::string LintReport::to_string() const {
  std::string out;
  for (const LintIssue& issue : issues) {
    out += "lint: " + issue.to_string() + "\n";
  }
  out += "lint: " + std::to_string(events) + " event(s), " +
         std::to_string(spans) + " span(s), " + std::to_string(pairs) +
         " issue/complete pair(s), " + std::to_string(lost_results) +
         " result(s) lost to device loss, " + std::to_string(issues.size()) +
         " issue(s)\n";
  return out;
}

LintReport lint_trace(const util::JsonValue& doc, const LintOptions& opts) {
  LintReport report;
  auto flag = [&](std::string kind, std::string lane, double ts_us,
                  std::string detail) {
    report.issues.push_back(
        {std::move(kind), std::move(lane), ts_us, std::move(detail)});
  };

  const util::JsonValue* other = doc.find("otherData");
  const std::string schema =
      other ? str_or(other->find("schema"), "") : std::string();
  if (schema != "ncsw-trace-v1") {
    flag("bad-schema", "", 0.0,
         "otherData.schema is \"" + schema + "\", expected ncsw-trace-v1");
    return report;  // nothing below is meaningful on a foreign file
  }
  if (str_or(other->find("clock"), "") != "simulated") {
    flag("bad-schema", "", 0.0, "otherData.clock is not \"simulated\"");
  }
  if (num_or(other->find("dropped_events"), 0.0) != 0.0) {
    flag("dropped-events", "", 0.0,
         "tracer dropped events past its capacity; pairing is unsound");
  }
  const util::JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    flag("bad-schema", "", 0.0, "traceEvents missing or not an array");
    return report;
  }

  // Pass 1: lane names from the thread_name metadata events.
  std::map<int, std::string> lane_names;
  for (const util::JsonValue& ev : events->array) {
    if (str_or(ev.find("ph"), "") != "M") continue;
    if (str_or(ev.find("name"), "") != "thread_name") continue;
    const int tid = static_cast<int>(num_or(ev.find("tid"), -1.0));
    lane_names[tid] = str_or(ev.at_path({"args", "name"}), "");
  }
  auto lane_name = [&](int tid) {
    const auto it = lane_names.find(tid);
    return it != lane_names.end() ? it->second
                                  : "tid" + std::to_string(tid);
  };
  // Health lane key -> host lane tid, to clear queues on "gone", and
  // key -> every lane of that device, to retire its open spans too.
  std::map<std::string, int> host_tid_by_key;
  std::map<std::string, std::vector<int>> tids_by_key;
  for (const auto& [tid, name] : lane_names) {
    std::string key;
    if (strip_suffix(name, " host", &key)) host_tid_by_key[key] = tid;
    key = dev_key(name);
    if (!key.empty()) tids_by_key[key].push_back(tid);
  }

  // Pass 2: walk events in file order (the writer sorts by timestamp).
  std::map<int, LaneState> lanes;
  std::map<std::string, ServeRollup> serves;
  ClusterRollup clus;
  ZooRollup zoo;
  auto as_count = [](double v) {
    return static_cast<std::int64_t>(std::llround(v));
  };
  double last_ts = 0.0;
  bool first = true;
  for (const util::JsonValue& ev : events->array) {
    const std::string ph = str_or(ev.find("ph"), "");
    if (ph == "M") continue;
    const int tid = static_cast<int>(num_or(ev.find("tid"), 0.0));
    const double ts = num_or(ev.find("ts"), 0.0);
    const std::string name = str_or(ev.find("name"), "");
    ++report.events;

    // The simulated clock only moves forward in the serialised file.
    if (!first && ts < last_ts) {
      flag("non-monotonic-ts", lane_name(tid), ts,
           "event \"" + name + "\" at " + util::JsonWriter::number(ts) +
               "us after " + util::JsonWriter::number(last_ts) + "us");
    }
    first = false;
    if (ts > last_ts) last_ts = ts;

    if (ph == "i") {
      if (!opts.allow_violations && name.rfind("violation:", 0) == 0) {
        flag("recorded-violation", lane_name(tid), ts,
             "runtime verifier recorded \"" + name + "\"");
      }
      if (lane_name(tid) == "cluster events") {
        if (name == "hedge") ++clus.hedge_instants;
        if (name == "replay") ++clus.replay_instants;
      }
      std::string key;
      if (name == "gone" && strip_suffix(lane_name(tid), " health", &key)) {
        // The stick dropped off the bus: results queued on its host lane
        // died with the link and will never be retrieved.
        const auto it = host_tid_by_key.find(key);
        if (it != host_tid_by_key.end()) {
          auto& q = lanes[it->second].issued_seqs;
          report.lost_results += q.size();
          q.clear();
        }
        // Spans emitted before the loss (a queued exec stretching past
        // the detach) no longer bound the re-enumerated device's work.
        const auto lt = tids_by_key.find(key);
        if (lt != tids_by_key.end()) {
          for (const int dev_tid : lt->second) {
            lanes[dev_tid].open_ends.clear();
          }
        }
      }
      continue;
    }
    if (ph != "X") continue;
    ++report.spans;
    const double dur = num_or(ev.find("dur"), 0.0);
    const double end = ts + dur;
    LaneState& lane = lanes[tid];

    // A complete span ending before it starts means a completion was
    // recorded earlier than its dispatch — broken causality.
    if (dur < 0.0) {
      flag("negative-duration", lane_name(tid), ts,
           "span \"" + name + "\" has dur " + util::JsonWriter::number(dur) +
               "us: completion precedes dispatch");
    }

    // Serving-layer accounting rollups, cross-checked after the walk.
    {
      std::string skey, role;
      if (serve_key(lane_name(tid), &skey, &role)) {
        ServeRollup& sr = serves[skey];
        if (name == "serve" && role == "sched") {
          ++sr.summaries;
          sr.offered += as_count(num_or(ev.at_path({"args", "offered"}), 0));
          sr.rejected += as_count(num_or(ev.at_path({"args", "rejected"}), 0));
          sr.completed +=
              as_count(num_or(ev.at_path({"args", "completed"}), 0));
          sr.last_ts = ts;
        } else if (name == "request" && role.rfind("slot", 0) == 0) {
          ++sr.request_spans;
          if (str_or(ev.at_path({"args", "outcome"}), "") == "completed") {
            ++sr.request_completed;
          }
        } else if (name == "ticket") {
          ++sr.ticket_spans;
          sr.ticket_completed +=
              as_count(num_or(ev.at_path({"args", "completed"}), 0));
        }
      } else if (name == "cluster" && lane_name(tid) == "cluster sched") {
        ++clus.summaries;
        const std::int64_t offered =
            as_count(num_or(ev.at_path({"args", "offered"}), 0));
        const std::int64_t completed =
            as_count(num_or(ev.at_path({"args", "completed"}), 0));
        const std::int64_t rejected =
            as_count(num_or(ev.at_path({"args", "rejected"}), 0));
        const std::int64_t deadline =
            as_count(num_or(ev.at_path({"args", "deadline"}), 0));
        const std::int64_t lost =
            as_count(num_or(ev.at_path({"args", "lost"}), 0));
        clus.completed += completed;
        clus.replayed += as_count(num_or(ev.at_path({"args", "replayed"}), 0));
        clus.hedged += as_count(num_or(ev.at_path({"args", "hedged"}), 0));
        clus.duplicates +=
            as_count(num_or(ev.at_path({"args", "duplicates"}), 0));
        clus.last_ts = ts;
        // Request conservation across node failover: every offered
        // request leaves exactly one way.
        if (offered != completed + rejected + deadline + lost) {
          flag("cluster-conservation", lane_name(tid), ts,
               "offered " + std::to_string(offered) + " != completed " +
                   std::to_string(completed) + " + rejected " +
                   std::to_string(rejected) + " + deadline " +
                   std::to_string(deadline) + " + lost " +
                   std::to_string(lost));
        }
      } else if (name == "zoo run") {
        ++zoo.summaries;
        const std::int64_t offered =
            as_count(num_or(ev.at_path({"args", "offered"}), 0));
        const std::int64_t accepted =
            as_count(num_or(ev.at_path({"args", "accepted"}), 0));
        const std::int64_t completed =
            as_count(num_or(ev.at_path({"args", "completed"}), 0));
        const std::int64_t rejected =
            as_count(num_or(ev.at_path({"args", "rejected"}), 0));
        const std::int64_t dropped =
            as_count(num_or(ev.at_path({"args", "dropped"}), 0));
        const std::int64_t hits =
            as_count(num_or(ev.at_path({"args", "hits"}), 0));
        const std::int64_t misses =
            as_count(num_or(ev.at_path({"args", "misses"}), 0));
        zoo.swaps += as_count(num_or(ev.at_path({"args", "swaps"}), 0));
        zoo.last_ts = ts;
        // Zoo terminal-state closure: every offered request leaves the
        // run exactly one way, and the hit/miss classification covers
        // exactly what admission accepted.
        if (offered != completed + rejected + dropped) {
          flag("zoo-accounting", lane_name(tid), ts,
               "offered " + std::to_string(offered) + " != completed " +
                   std::to_string(completed) + " + rejected " +
                   std::to_string(rejected) + " + dropped " +
                   std::to_string(dropped));
        } else if (hits + misses != accepted) {
          flag("zoo-accounting", lane_name(tid), ts,
               "hits " + std::to_string(hits) + " + misses " +
                   std::to_string(misses) + " != accepted " +
                   std::to_string(accepted));
        }
      } else if (name == "swap" && str_or(ev.find("cat"), "") == "zoo") {
        ++zoo.swap_spans;
      }
    }

    // Spans on one lane must nest or be disjoint; partial overlap means
    // a stale host cursor at emission.
    auto& stack = lane.open_ends;
    const double slack = ts_slack_us(ts);
    while (!stack.empty() && stack.back() <= ts + slack) stack.pop_back();
    if (!stack.empty() && end > stack.back() + slack) {
      flag("span-overlap", lane_name(tid), ts,
           "span \"" + name + "\" [" + util::JsonWriter::number(ts) + ", " +
               util::JsonWriter::number(end) +
               "]us partially overlaps an enclosing span ending at " +
               util::JsonWriter::number(stack.back()) + "us");
    } else {
      stack.push_back(end);
    }

    // FIFO issue/complete pairing on the mvnc host lanes.
    std::string key;
    if (!strip_suffix(lane_name(tid), " host", &key)) continue;
    const util::JsonValue* seq_arg = ev.at_path({"args", "seq"});
    if (!seq_arg || !seq_arg->is_number()) continue;
    const double seq = seq_arg->number;
    if (name == "LoadTensor") {
      lane.issued_seqs.push_back(seq);
    } else if (name == "GetResult") {
      auto& q = lane.issued_seqs;
      // Results whose seqs were skipped died in a detach window that was
      // replugged before its "gone" instant (the device re-enumerated);
      // count them as losses, not errors.
      while (!q.empty() && q.front() < seq) {
        q.pop_front();
        ++report.lost_results;
      }
      if (!q.empty() && q.front() == seq) {
        q.pop_front();
        ++report.pairs;
      } else if (q.empty()) {
        flag("unmatched-complete", lane_name(tid), ts,
             "GetResult seq " + util::JsonWriter::number(seq) +
                 " without a matching LoadTensor");
      } else {
        flag("seq-inversion", lane_name(tid), ts,
             "GetResult seq " + util::JsonWriter::number(seq) +
                 " but the oldest outstanding LoadTensor is seq " +
                 util::JsonWriter::number(q.front()));
      }
    }
  }

  // v2 accounting checks over the rollups. The per-request and ticket
  // checks are gated on at least one such span being present: sessions
  // recorded with trace_requests off (or with the tracer unarmed at
  // dispatch time) legitimately emit summaries only.
  std::int64_t serve_completed_total = 0;
  bool serve_summaries_seen = false;
  for (const auto& [key, sr] : serves) {
    if (sr.summaries == 0) continue;
    serve_summaries_seen = true;
    serve_completed_total += sr.completed;
    const std::string lane = key + "serve sched";
    if (sr.request_spans > 0) {
      const std::int64_t accepted = sr.offered - sr.rejected;
      if (sr.request_spans != accepted) {
        flag("serve-accounting", lane, sr.last_ts,
             std::to_string(sr.request_spans) +
                 " request span(s) but the summary admitted " +
                 std::to_string(accepted) + " (offered " +
                 std::to_string(sr.offered) + " - rejected " +
                 std::to_string(sr.rejected) + ")");
      } else if (sr.request_completed != sr.completed) {
        flag("serve-accounting", lane, sr.last_ts,
             std::to_string(sr.request_completed) +
                 " request span(s) with outcome \"completed\" but the "
                 "summary completed " +
                 std::to_string(sr.completed));
      }
    }
    if (sr.ticket_spans > 0 && sr.ticket_completed != sr.completed) {
      flag("ticket-accounting", lane, sr.last_ts,
           "ticket spans carry " + std::to_string(sr.ticket_completed) +
               " completed request(s) but the summary completed " +
               std::to_string(sr.completed));
    }
  }
  // Every fleet swap span must be claimed by some zoo run's `swaps`
  // counter (and vice versa): a mismatch means swaps ran outside the
  // accounted serving path, or a run under-reported its stalls.
  if (zoo.summaries > 0 && zoo.swap_spans != zoo.swaps) {
    flag("zoo-accounting", "zoo sched", zoo.last_ts,
         std::to_string(zoo.swap_spans) +
             " swap span(s) but zoo run summaries swapped " +
             std::to_string(zoo.swaps));
  }
  if (clus.summaries > 0) {
    // Hedge/replay duplicate accounting: every counted hedge or
    // failover replay leaves its instant on the event lane, and vice
    // versa. Lanes are shared by every phase in the process, so the
    // check runs in aggregate.
    if (clus.hedge_instants != clus.hedged) {
      flag("cluster-event-mismatch", "cluster events", clus.last_ts,
           std::to_string(clus.hedge_instants) +
               " hedge instant(s) but cluster summaries hedged " +
               std::to_string(clus.hedged));
    }
    if (clus.replay_instants != clus.replayed) {
      flag("cluster-event-mismatch", "cluster events", clus.last_ts,
           std::to_string(clus.replay_instants) +
               " replay instant(s) but cluster summaries replayed " +
               std::to_string(clus.replayed));
    }
    // First-completion-wins: node sessions complete every copy they
    // serve, the cluster delivers each request once and counts the
    // rest as duplicates.
    if (serve_summaries_seen &&
        serve_completed_total != clus.completed + clus.duplicates) {
      flag("cluster-request-conservation", "cluster sched", clus.last_ts,
           "node sessions completed " +
               std::to_string(serve_completed_total) +
               " request(s) but cluster summaries delivered " +
               std::to_string(clus.completed) + " + " +
               std::to_string(clus.duplicates) + " duplicate(s)");
    }
  }
  return report;
}

std::optional<LintReport> lint_trace_text(const std::string& text,
                                          const LintOptions& opts,
                                          std::string* error) {
  const auto doc = util::json_parse(text, error);
  if (!doc) return std::nullopt;
  return lint_trace(*doc, opts);
}

}  // namespace ncsw::check
