// NCAPI protocol verifier.
//
// The paper's multi-VPU throughput rests on a precise usage contract for
// the NCAPI's MPI-like non-blocking LoadTensor / GetResult split: issue
// and completion must pair up FIFO-wise per graph, the stick's queue
// depth bounds the number of in-flight inferences, and handle lifetimes
// (open -> allocated -> {tensors in flight ...} -> deallocated -> closed)
// must nest. The verifier shadows every mvnc:: call with a per-device /
// per-graph state machine and flags contract violations with structured
// reports, so refactors of the threaded runner break loudly under test
// instead of silently corrupting a benchmark.
//
// Modes (mvnc::HostConfig::check):
//  - kOff: every hook is one relaxed atomic load, nothing is recorded;
//    behaviour and output are byte-identical to a build without the
//    verifier.
//  - kLog: violations are recorded (check.violation.* counters, a trace
//    instant on the offending device's "check" lane, a bounded report
//    list) and the API call returns its normal status code.
//  - kStrict: as kLog, then the violation is thrown as ProtocolViolation.
//  - kDefault: resolve kOff/kLog/kStrict from set_default_mode() or the
//    NCSW_CHECK environment variable ("log" / "strict"), falling back to
//    kOff. CI exports NCSW_CHECK=strict so the whole test and bench
//    suite runs under the verifier.
//
// The violation catalogue and the state machine diagram live in
// docs/checking.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "mvnc/mvnc.h"

namespace ncsw::check {

/// Verifier operating mode.
enum class CheckMode : int {
  kDefault = 0,  ///< resolve from set_default_mode() / $NCSW_CHECK / kOff
  kOff = 1,
  kLog = 2,
  kStrict = 3,
};

/// Stable lowercase name ("off", "log", "strict", "default").
const char* check_mode_name(CheckMode mode);

/// Parse "off" / "log" / "strict" (anything else: kOff).
CheckMode parse_check_mode(const std::string& text);

/// Process-wide default used when a HostConfig asks for kDefault. Takes
/// precedence over $NCSW_CHECK; pass kDefault to fall back to the
/// environment again (the initial state).
void set_default_mode(CheckMode mode);

/// Resolve kDefault through set_default_mode() / $NCSW_CHECK.
CheckMode resolve_mode(CheckMode requested);

/// The contract-violation classes the verifier detects.
enum class ViolationKind : int {
  kOverIssue = 0,         ///< LoadTensor with the FIFO already at depth
  kUnmatchedGetResult,    ///< GetResult with no outstanding LoadTensor
  kUseAfterDealloc,       ///< graph call after DeallocateGraph
  kUseAfterClose,         ///< graph call after its device was closed
  kDoubleClose,           ///< CloseDevice on an already-closed handle
  kDoubleOpen,            ///< OpenDevice while a handle is already open
  kUndrainedAtDealloc,    ///< DeallocateGraph/CloseDevice with results queued
  kReplugWithoutRealloc,  ///< stale graph driven after a successful replug
  kWatchdogMisuse,        ///< zero budget, or budget change with work in flight
};

constexpr int kViolationKindCount = 9;

/// Stable kebab-case name ("over-issue", "unmatched-get-result", ...),
/// used for metrics ("check.violation.<name>") and trace instants.
const char* violation_name(ViolationKind kind);

/// One detected contract violation.
struct Violation {
  ViolationKind kind = ViolationKind::kOverIssue;
  int device = -1;        ///< stick id, -1 when not tied to a device
  double sim_time = 0.0;  ///< simulated host time at the offending call
  std::string detail;     ///< human-readable description

  /// "over-issue on dev0 at t=1.25s: ..." — the thrown what() string.
  std::string to_string() const;
};

/// Thrown by the verifier in kStrict mode.
class ProtocolViolation : public std::logic_error {
 public:
  explicit ProtocolViolation(Violation v)
      : std::logic_error(v.to_string()), violation(std::move(v)) {}
  Violation violation;
};

/// Shadows the NCAPI with per-device / per-graph state machines. All
/// hooks are no-ops in kOff mode (one relaxed atomic load). Thread-safe:
/// the mvnc entry points call in from every host thread.
class ProtocolVerifier {
 public:
  /// Install `mode` (kDefault is resolved first) and forget all tracked
  /// state and recorded violations. Called by mvnc::host_reset.
  void configure(CheckMode mode);

  CheckMode mode() const noexcept {
    return static_cast<CheckMode>(mode_.load(std::memory_order_relaxed));
  }
  bool enabled() const noexcept { return mode() != CheckMode::kOff; }

  // -- Hooks, one per NCAPI entry point (called with the call's result). --
  void on_open(const void* device, int id, mvnc::mvncStatus st, double t);
  void on_close(const void* device, mvnc::mvncStatus st, double t);
  void on_allocate(const void* device, const void* graph, int fifo_depth,
                   mvnc::mvncStatus st, double t);
  void on_deallocate(const void* graph, mvnc::mvncStatus st, double t);
  void on_load(const void* graph, mvnc::mvncStatus st, double t);
  void on_get(const void* graph, mvnc::mvncStatus st, double t);
  /// set_watchdog was called with `timeout_s` (only successful sets).
  void on_watchdog(const void* graph, double timeout_s, double t);
  /// replug_device succeeded: graphs allocated before it are now stale.
  void on_replug(const void* device, double t);

  // -- Report access (for tests and tools). --
  std::uint64_t count(ViolationKind kind) const;
  std::uint64_t total() const;
  /// Recorded violations, oldest first (bounded; see kMaxRecorded).
  std::vector<Violation> violations() const;
  /// Drop recorded violations and counts; tracked handles survive.
  void clear_violations();

  /// Recorded-violation list cap; counts keep accumulating past it.
  static constexpr std::size_t kMaxRecorded = 256;

 private:
  struct DeviceRec {
    int id = -1;
    bool open = false;
    std::uint64_t replug_epoch = 0;  ///< bumped on every successful replug
  };
  struct GraphRec {
    const void* device = nullptr;
    int device_id = -1;
    int fifo_depth = 0;
    int in_flight = 0;
    std::uint64_t replug_epoch = 0;  ///< device epoch at allocation
    bool deallocated = false;
    bool device_closed = false;
  };

  /// Record + count + trace the violation; throws in kStrict. Caller
  /// holds mutex_ (it is released before the throw).
  void report(std::unique_lock<std::mutex>& lock, ViolationKind kind,
              int device, double t, std::string detail);
  /// The graph is stale after a replug / deallocated / orphaned by close:
  /// emit the matching violation if so and return true. Caller holds lock.
  bool flag_dead_graph(std::unique_lock<std::mutex>& lock, const void* graph,
                       const GraphRec& rec, double t, const char* call);

  std::atomic<int> mode_{static_cast<int>(CheckMode::kOff)};

  mutable std::mutex mutex_;
  std::unordered_map<const void*, DeviceRec> devices_;
  std::unordered_map<const void*, GraphRec> graphs_;
  std::vector<Violation> recorded_;
  std::uint64_t counts_[kViolationKindCount] = {};
  std::uint64_t total_ = 0;
};

/// The process-wide verifier the mvnc entry points report to.
ProtocolVerifier& verifier();

}  // namespace ncsw::check
