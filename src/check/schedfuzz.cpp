#include "check/schedfuzz.h"

#include <cstdio>
#include <memory>
#include <random>
#include <sstream>

namespace ncsw::check {

namespace {

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt(std::int64_t v) { return std::to_string(v); }

/// FNV-1a over a byte stream: the record logs can hold thousands of
/// entries, so they enter the fingerprint as one digest key each.
class Digest {
 public:
  void mix(const std::string& s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    h_ ^= 0xffULL;  // field separator
    h_ *= 0x100000001b3ULL;
  }
  void mix(double v) { mix(fmt(v)); }
  void mix(std::int64_t v) { mix(fmt(v)); }
  void mix(int v) { mix(static_cast<std::int64_t>(v)); }
  std::string str() const {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h_));
    return buf;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

Fingerprint fingerprint(const serve::ServeReport& r) {
  Fingerprint fp;
  fp.emplace_back("offered", fmt(r.offered));
  fp.emplace_back("accepted", fmt(r.accepted));
  fp.emplace_back("rejected", fmt(r.rejected));
  fp.emplace_back("completed", fmt(r.completed));
  fp.emplace_back("dropped", fmt(r.dropped));
  fp.emplace_back("dropped_deadline", fmt(r.dropped_deadline));
  fp.emplace_back("dropped_inflight", fmt(r.dropped_inflight));
  fp.emplace_back("dropped_failover", fmt(r.dropped_failover));
  fp.emplace_back("first_arrival_s", fmt(r.first_arrival_s));
  fp.emplace_back("last_complete_s", fmt(r.last_complete_s));
  fp.emplace_back("p50_ms", fmt(r.p50_ms));
  fp.emplace_back("p95_ms", fmt(r.p95_ms));
  fp.emplace_back("p99_ms", fmt(r.p99_ms));
  fp.emplace_back("max_queue_depth",
                  fmt(static_cast<std::int64_t>(r.max_queue_depth)));
  Digest recs;
  for (const auto& rec : r.records) {
    recs.mix(rec.request.id);
    recs.mix(static_cast<int>(rec.outcome));
    recs.mix(static_cast<int>(rec.drop_reason));
    recs.mix(rec.target);
    recs.mix(rec.dispatch_s);
    recs.mix(rec.complete_s);
  }
  fp.emplace_back("records", recs.str());
  Digest tgts;
  for (const auto& t : r.targets) {
    tgts.mix(t.label);
    tgts.mix(t.batches);
    tgts.mix(t.images);
    tgts.mix(t.busy_s);
    tgts.mix(t.max_inflight);
  }
  fp.emplace_back("targets", tgts.str());
  return fp;
}

Fingerprint fingerprint(const cluster::ClusterReport& r) {
  Fingerprint fp;
  fp.emplace_back("offered", fmt(r.offered));
  fp.emplace_back("completed", fmt(r.completed));
  fp.emplace_back("rejected", fmt(r.rejected));
  fp.emplace_back("dropped_deadline", fmt(r.dropped_deadline));
  fp.emplace_back("requests_lost", fmt(r.requests_lost));
  fp.emplace_back("requests_replayed", fmt(r.requests_replayed));
  fp.emplace_back("requests_hedged", fmt(r.requests_hedged));
  fp.emplace_back("requests_spilled", fmt(r.requests_spilled));
  fp.emplace_back("duplicate_completions", fmt(r.duplicate_completions));
  fp.emplace_back("node_kills", fmt(static_cast<std::int64_t>(r.node_kills)));
  fp.emplace_back("node_wedges", fmt(static_cast<std::int64_t>(r.node_wedges)));
  fp.emplace_back("node_rejoins",
                  fmt(static_cast<std::int64_t>(r.node_rejoins)));
  fp.emplace_back("nodes_dead", fmt(static_cast<std::int64_t>(r.nodes_dead)));
  fp.emplace_back("first_arrival_s", fmt(r.first_arrival_s));
  fp.emplace_back("last_complete_s", fmt(r.last_complete_s));
  fp.emplace_back("p50_ms", fmt(r.p50_ms));
  fp.emplace_back("p95_ms", fmt(r.p95_ms));
  fp.emplace_back("p99_ms", fmt(r.p99_ms));
  Digest recs;
  for (const auto& rec : r.records) {
    recs.mix(rec.id);
    recs.mix(static_cast<int>(rec.state));
    recs.mix(rec.arrival_s);
    recs.mix(rec.finish_s);
    recs.mix(rec.node);
    recs.mix(rec.replays);
    recs.mix(rec.hedges);
    recs.mix(rec.evicted_s);
  }
  fp.emplace_back("records", recs.str());
  Digest nodes;
  for (const auto& n : r.nodes) {
    nodes.mix(n.serve.completed);
    nodes.mix(n.serve.offered);
    nodes.mix(n.health);
    nodes.mix(n.routed);
    nodes.mix(n.evicted);
    nodes.mix(n.crashes);
    nodes.mix(n.wedges);
    nodes.mix(n.rejoins);
  }
  fp.emplace_back("nodes", nodes.str());
  return fp;
}

namespace {

/// One tie group (>1 candidate) encountered during a perturbed run.
struct Decision {
  double t = 0.0;
  std::vector<serve::LoopEvent> cands;
  std::size_t pick = 0;
};

std::string describe_event(const serve::LoopEvent& ev) {
  std::string s = serve::loop_event_kind_name(ev.kind);
  if (ev.node != 0) s += "@n" + std::to_string(ev.node);
  return s;
}

std::string describe(const Decision& d) {
  std::ostringstream os;
  os << "t=" << fmt(d.t) << ": ran " << describe_event(d.cands[d.pick])
     << " before " << describe_event(d.cands[0]) << " (tie of "
     << d.cands.size() << ": ";
  for (std::size_t i = 0; i < d.cands.size(); ++i) {
    if (i) os << " < ";
    os << describe_event(d.cands[i]);
  }
  os << ")";
  return os.str();
}

std::vector<std::string> diff_fingerprints(const Fingerprint& base,
                                           const Fingerprint& got,
                                           std::size_t cap = 8) {
  std::vector<std::string> out;
  const std::size_t n = std::min(base.size(), got.size());
  for (std::size_t i = 0; i < n && out.size() < cap; ++i) {
    if (base[i] != got[i]) {
      out.push_back(base[i].first + ": " + base[i].second + " -> " +
                    got[i].second);
    }
  }
  if (base.size() != got.size() && out.size() < cap) {
    out.push_back("fingerprint size: " + std::to_string(base.size()) +
                  " -> " + std::to_string(got.size()));
  }
  return out;
}

struct PerturbedRun {
  Fingerprint fp;
  std::vector<Decision> log;
  std::int64_t ties = 0;
  std::int64_t perturbed = 0;
  std::string error;  ///< non-empty when the scenario threw
};

PerturbedRun run_seeded(const Scenario& scenario, std::uint64_t seed) {
  PerturbedRun run;
  // splitmix64 of the seed so seeds 1,2,3... give unrelated streams.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  auto rng = std::make_shared<std::mt19937_64>(z ^ (z >> 31));
  auto log = std::make_shared<std::vector<Decision>>();
  serve::TieBreak tb = [rng, log](double t,
                                  const std::vector<serve::LoopEvent>& tied)
      -> std::size_t {
    if (tied.size() < 2) return 0;
    const std::size_t pick =
        std::uniform_int_distribution<std::size_t>(0, tied.size() - 1)(*rng);
    log->push_back({t, tied, pick});
    return pick;
  };
  try {
    run.fp = scenario(tb);
  } catch (const std::exception& e) {
    run.error = e.what();
  }
  run.log = std::move(*log);
  run.ties = static_cast<std::int64_t>(run.log.size());
  for (const auto& d : run.log) {
    if (d.pick != 0) ++run.perturbed;
  }
  return run;
}

/// Re-run with exactly one decision deviating from the fixed order.
Fingerprint run_single_deviation(const Scenario& scenario, std::size_t index,
                                 std::size_t pick, std::string* error) {
  auto counter = std::make_shared<std::size_t>(0);
  serve::TieBreak tb = [counter, index, pick](
                           double, const std::vector<serve::LoopEvent>& tied)
      -> std::size_t {
    if (tied.size() < 2) return 0;
    return (*counter)++ == index ? pick % tied.size() : 0;
  };
  try {
    return scenario(tb);
  } catch (const std::exception& e) {
    *error = e.what();
    return {};
  }
}

}  // namespace

std::string ScheduleDivergence::to_string() const {
  std::ostringstream os;
  os << "seed " << seed << " diverged after " << decisions
     << " tie decisions";
  if (minimized_index >= 0) {
    os << "; minimized to decision #" << minimized_index << " ("
       << minimized_choice << ")";
  } else if (!minimized_choice.empty()) {
    os << "; " << minimized_choice;
  }
  for (const auto& d : diffs) os << "\n  " << d;
  return os.str();
}

SchedFuzzReport fuzz_schedule(const Scenario& scenario,
                              const SchedFuzzConfig& config) {
  SchedFuzzReport report;
  const Fingerprint baseline = scenario(serve::TieBreak{});
  for (int seed = 1; seed <= config.seeds; ++seed) {
    PerturbedRun run = run_seeded(scenario, static_cast<std::uint64_t>(seed));
    ++report.seeds_run;
    report.ties_seen += run.ties;
    report.perturbed += run.perturbed;
    const bool diverged = !run.error.empty() || run.fp != baseline;
    if (!diverged) continue;

    ScheduleDivergence div;
    div.seed = static_cast<std::uint64_t>(seed);
    div.decisions = run.ties;
    if (!run.error.empty()) {
      div.diffs.push_back("exception: " + run.error);
    } else {
      div.diffs = diff_fingerprints(baseline, run.fp);
    }
    if (config.minimize) {
      for (std::size_t k = 0; k < run.log.size(); ++k) {
        if (run.log[k].pick == 0) continue;
        std::string err;
        const Fingerprint fp =
            run_single_deviation(scenario, k, run.log[k].pick, &err);
        if (!err.empty() || fp != baseline) {
          div.minimized_index = static_cast<std::int64_t>(k);
          div.minimized_choice = describe(run.log[k]);
          if (!err.empty()) {
            div.diffs.push_back("minimized run threw: " + err);
          }
          break;
        }
      }
      if (div.minimized_index < 0) {
        div.minimized_choice =
            "no single tie decision reproduces it (order-dependent chain)";
      }
    }
    report.divergences.push_back(std::move(div));
    if (static_cast<int>(report.divergences.size()) >=
        config.max_divergences) {
      break;
    }
  }
  return report;
}

}  // namespace ncsw::check
