#include "check/protocol.h"

#include <cstdlib>

#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::check {

namespace {

// Process-wide default for HostConfig::check == kDefault. kDefault here
// means "unset, fall through to $NCSW_CHECK".
std::atomic<int> g_default_mode{static_cast<int>(CheckMode::kDefault)};

}  // namespace

const char* check_mode_name(CheckMode mode) {
  switch (mode) {
    case CheckMode::kDefault:
      return "default";
    case CheckMode::kOff:
      return "off";
    case CheckMode::kLog:
      return "log";
    case CheckMode::kStrict:
      return "strict";
  }
  return "?";
}

CheckMode parse_check_mode(const std::string& text) {
  if (text == "log") return CheckMode::kLog;
  if (text == "strict") return CheckMode::kStrict;
  return CheckMode::kOff;
}

void set_default_mode(CheckMode mode) {
  g_default_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

CheckMode resolve_mode(CheckMode requested) {
  if (requested != CheckMode::kDefault) return requested;
  const auto def =
      static_cast<CheckMode>(g_default_mode.load(std::memory_order_relaxed));
  if (def != CheckMode::kDefault) return def;
  if (const char* env = std::getenv("NCSW_CHECK")) {
    return parse_check_mode(env);
  }
  return CheckMode::kOff;
}

const char* violation_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kOverIssue:
      return "over-issue";
    case ViolationKind::kUnmatchedGetResult:
      return "unmatched-get-result";
    case ViolationKind::kUseAfterDealloc:
      return "use-after-dealloc";
    case ViolationKind::kUseAfterClose:
      return "use-after-close";
    case ViolationKind::kDoubleClose:
      return "double-close";
    case ViolationKind::kDoubleOpen:
      return "double-open";
    case ViolationKind::kUndrainedAtDealloc:
      return "undrained-at-dealloc";
    case ViolationKind::kReplugWithoutRealloc:
      return "replug-without-realloc";
    case ViolationKind::kWatchdogMisuse:
      return "watchdog-misuse";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::string out = violation_name(kind);
  if (device >= 0) {
    out += " on dev" + std::to_string(device);
  }
  out += " at t=" + std::to_string(sim_time) + "s: " + detail;
  return out;
}

void ProtocolVerifier::configure(CheckMode mode) {
  const CheckMode resolved = resolve_mode(mode);
  std::unique_lock lock(mutex_);
  devices_.clear();
  graphs_.clear();
  recorded_.clear();
  for (auto& c : counts_) c = 0;
  total_ = 0;
  mode_.store(static_cast<int>(resolved), std::memory_order_relaxed);
}

void ProtocolVerifier::report(std::unique_lock<std::mutex>& lock,
                              ViolationKind kind, int device, double t,
                              std::string detail) {
  Violation v;
  v.kind = kind;
  v.device = device;
  v.sim_time = t;
  v.detail = std::move(detail);

  ++counts_[static_cast<int>(kind)];
  ++total_;
  if (recorded_.size() < kMaxRecorded) recorded_.push_back(v);
  const bool strict = mode() == CheckMode::kStrict;
  lock.unlock();

  util::metrics()
      .counter(std::string("check.violation.") + violation_name(kind))
      .add(1);
  util::metrics().counter("check.violations").add(1);
  auto& tr = util::tracer();
  if (tr.enabled()) {
    const std::string lane = v.device >= 0
                                 ? "dev" + std::to_string(v.device) + " check"
                                 : std::string("check");
    tr.instant("check", std::string("violation:") + violation_name(kind),
               tr.lane(lane), t);
  }
  NCSW_LOG_WARN << "ncapi protocol violation: " << v.to_string();
  if (strict) throw ProtocolViolation(std::move(v));
}

bool ProtocolVerifier::flag_dead_graph(std::unique_lock<std::mutex>& lock,
                                       const void* graph, const GraphRec& rec,
                                       double t, const char* call) {
  (void)graph;
  if (rec.deallocated) {
    report(lock, ViolationKind::kUseAfterDealloc, rec.device_id, t,
           std::string(call) + " on a deallocated graph handle");
    return true;
  }
  if (rec.device_closed) {
    report(lock, ViolationKind::kUseAfterClose, rec.device_id, t,
           std::string(call) + " on a graph whose device was closed");
    return true;
  }
  const auto dev = devices_.find(rec.device);
  if (dev != devices_.end() && dev->second.replug_epoch != rec.replug_epoch) {
    report(lock, ViolationKind::kReplugWithoutRealloc, rec.device_id, t,
           std::string(call) +
               " on a graph allocated before the device was replugged; "
               "re-allocate the graph after replug_device()");
    return true;
  }
  return false;
}

void ProtocolVerifier::on_open(const void* device, int id, mvnc::mvncStatus st,
                               double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  if (st == mvnc::MVNC_OK) {
    auto& rec = devices_[device];
    rec.id = id;
    rec.open = true;
    return;
  }
  if (st == mvnc::MVNC_BUSY) {
    const auto it = devices_.find(device);
    if (it != devices_.end() && it->second.open) {
      report(lock, ViolationKind::kDoubleOpen, it->second.id, t,
             "OpenDevice while a handle to the device is already open");
    }
  }
}

void ProtocolVerifier::on_close(const void* device, mvnc::mvncStatus st,
                                double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = devices_.find(device);
  if (it == devices_.end()) return;  // never tracked (reset or garbage)
  if (st == mvnc::MVNC_OK) {
    it->second.open = false;
    // CloseDevice invalidates the device's graph handles (legal); queued
    // results that were never retrieved are a contract violation.
    for (auto& [handle, rec] : graphs_) {
      if (rec.device != device || rec.deallocated || rec.device_closed) {
        continue;
      }
      rec.device_closed = true;
      if (rec.in_flight > 0) {
        const int lost = rec.in_flight;
        rec.in_flight = 0;
        report(lock, ViolationKind::kUndrainedAtDealloc, rec.device_id, t,
               std::to_string(lost) +
                   " result(s) still queued when CloseDevice invalidated "
                   "the graph");
        return;  // strict threw; log mode reported the first offender
      }
    }
    return;
  }
  if (st == mvnc::MVNC_INVALID_PARAMETERS && !it->second.open) {
    report(lock, ViolationKind::kDoubleClose, it->second.id, t,
           "CloseDevice on an already-closed device handle");
  }
}

void ProtocolVerifier::on_allocate(const void* device, const void* graph,
                                   int fifo_depth, mvnc::mvncStatus st,
                                   double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto dev = devices_.find(device);
  if (st == mvnc::MVNC_OK) {
    GraphRec rec;
    rec.device = device;
    rec.fifo_depth = fifo_depth;
    if (dev != devices_.end()) {
      rec.device_id = dev->second.id;
      rec.replug_epoch = dev->second.replug_epoch;
    }
    graphs_[graph] = rec;  // address reuse replaces the retired record
    return;
  }
  if (st == mvnc::MVNC_INVALID_PARAMETERS && dev != devices_.end() &&
      !dev->second.open) {
    report(lock, ViolationKind::kUseAfterClose, dev->second.id, t,
           "AllocateGraph on a closed device handle");
  }
}

void ProtocolVerifier::on_deallocate(const void* graph, mvnc::mvncStatus st,
                                     double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) return;
  GraphRec& rec = it->second;
  if (st == mvnc::MVNC_OK) {
    const int undrained = rec.in_flight;
    rec.in_flight = 0;
    rec.deallocated = true;
    if (undrained > 0) {
      report(lock, ViolationKind::kUndrainedAtDealloc, rec.device_id, t,
             std::to_string(undrained) +
                 " result(s) still queued at DeallocateGraph");
    }
    return;
  }
  if (st == mvnc::MVNC_INVALID_PARAMETERS) {
    flag_dead_graph(lock, graph, rec, t, "DeallocateGraph");
  }
}

void ProtocolVerifier::on_load(const void* graph, mvnc::mvncStatus st,
                               double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) return;
  GraphRec& rec = it->second;
  if (flag_dead_graph(lock, graph, rec, t, "LoadTensor")) return;
  switch (st) {
    case mvnc::MVNC_OK:
      ++rec.in_flight;
      break;
    case mvnc::MVNC_BUSY:
      if (rec.in_flight >= rec.fifo_depth) {
        report(lock, ViolationKind::kOverIssue, rec.device_id, t,
               "LoadTensor with " + std::to_string(rec.in_flight) +
                   " inference(s) already in flight (FIFO depth " +
                   std::to_string(rec.fifo_depth) +
                   "); drain a result first");
      }
      break;
    case mvnc::MVNC_GONE:
      rec.in_flight = 0;  // queued inferences died with the link
      break;
    default:
      break;
  }
}

void ProtocolVerifier::on_get(const void* graph, mvnc::mvncStatus st,
                              double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) return;
  GraphRec& rec = it->second;
  if (flag_dead_graph(lock, graph, rec, t, "GetResult")) return;
  switch (st) {
    case mvnc::MVNC_OK:
      if (rec.in_flight > 0) --rec.in_flight;
      break;
    case mvnc::MVNC_NO_DATA:
      report(lock, ViolationKind::kUnmatchedGetResult, rec.device_id, t,
             "GetResult with no outstanding LoadTensor (check "
             "pending_results() before draining)");
      break;
    case mvnc::MVNC_GONE:
      rec.in_flight = 0;
      break;
    default:
      break;  // MVNC_TIMEOUT keeps the inference queued: no change
  }
}

void ProtocolVerifier::on_watchdog(const void* graph, double timeout_s,
                                   double t) {
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) return;
  GraphRec& rec = it->second;
  if (timeout_s == 0.0) {
    report(lock, ViolationKind::kWatchdogMisuse, rec.device_id, t,
           "zero watchdog budget guarantees MVNC_TIMEOUT on every "
           "GetResult");
    return;
  }
  if (rec.in_flight > 0) {
    report(lock, ViolationKind::kWatchdogMisuse, rec.device_id, t,
           "watchdog changed with " + std::to_string(rec.in_flight) +
               " inference(s) in flight");
  }
}

void ProtocolVerifier::on_replug(const void* device, double t) {
  (void)t;
  if (!enabled()) return;
  std::unique_lock lock(mutex_);
  const auto it = devices_.find(device);
  if (it == devices_.end()) return;
  // Graphs allocated before this point are stale; driving one is a
  // kReplugWithoutRealloc flagged at the offending call.
  ++it->second.replug_epoch;
}

std::uint64_t ProtocolVerifier::count(ViolationKind kind) const {
  std::unique_lock lock(mutex_);
  return counts_[static_cast<int>(kind)];
}

std::uint64_t ProtocolVerifier::total() const {
  std::unique_lock lock(mutex_);
  return total_;
}

std::vector<Violation> ProtocolVerifier::violations() const {
  std::unique_lock lock(mutex_);
  return recorded_;
}

void ProtocolVerifier::clear_violations() {
  std::unique_lock lock(mutex_);
  recorded_.clear();
  for (auto& c : counts_) c = 0;
  total_ = 0;
}

ProtocolVerifier& verifier() {
  static ProtocolVerifier instance;
  return instance;
}

}  // namespace ncsw::check
