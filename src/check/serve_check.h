// Serving-layer runtime verifier: the protocol.h idea lifted one level
// up the stack. PR3's ProtocolVerifier shadows the NCAPI's
// LoadTensor/GetResult contract; the layers PRs 5-7 grew on top of it
// (async core::Target tickets, serve::Session admission/dispatch, the
// src/cluster ledger) carry contracts of their own that nothing
// re-checked at runtime:
//
//  * Ticket lifecycle (docs/async-targets.md): submit -> poll/wait ->
//    retire legality, the in-flight window as a hard bound, wait() at
//    most once, poll()/info() answered from the bounded retired ring
//    only while the ticket is still in it.
//  * Request conservation (serve::Session): every offered request must
//    reach exactly one terminal outcome by finish() —
//    offered == completed + rejected + dropped, with the drop count
//    partitioned by DropReason and nothing still queued or in flight.
//  * Ledger conservation (cluster): admitted == completed + rejected +
//    deadline-dropped + lost at the end of a run (crash replays conserve
//    requests — a replayed copy is the same ledger entry), first
//    completion wins with duplicates counted but never delivered twice,
//    and the live-copy count never goes negative.
//
// The hooks are wired into core::Target, serve::Session::finish and the
// cluster event loop, so every bench and test exercises them; modes
// match protocol.h:
//
//  - kOff: one relaxed atomic load per hook, nothing recorded;
//    behaviour and output are byte-identical to an unchecked build.
//  - kLog: violations are recorded (check.violation.* counters, a
//    "serve check" trace instant, a bounded list) and the API call
//    proceeds to its documented behaviour (which for the misuse classes
//    is itself a defined exception).
//  - kStrict: as kLog, then ServeViolationError is thrown.
//  - kDefault: resolved through set_default_mode() / $NCSW_CHECK per
//    hook, so `--check` on a bench and CI's NCSW_CHECK=strict arm this
//    verifier and the NCAPI one together.
//
// The violation catalogue lives in docs/checking.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/protocol.h"

namespace ncsw::check {

/// The serving-layer contract-violation classes.
enum class ServeViolationKind : int {
  kWindowExceeded = 0,   ///< accepted submissions exceed the in-flight window
  kWaitAfterCancel,      ///< wait() on a cancelled ticket
  kDoubleWait,           ///< wait() on an already-waited (retired) ticket
  kPollAfterRetire,      ///< poll/info on a ticket evicted from the ring
  kUnknownTicket,        ///< poll/info/wait/cancel of an id never issued
  kRequestConservation,  ///< session finished with requests unaccounted
  kDuplicateDelivery,    ///< cluster delivered one request id twice
  kLedgerConservation,   ///< cluster totals do not partition admitted
  kNegativeLive,         ///< a ledger live-copy count went below zero
  kSwapWhileInflight,    ///< graph swap started with tickets outstanding
  kWrongModelDispatch,   ///< work dispatched to a stick resident elsewhere
  kResidencyConservation,  ///< zoo installs/evicts/residents do not balance
};

constexpr int kServeViolationKindCount = 12;

/// Stable kebab-case name ("window-exceeded", "wait-after-cancel", ...),
/// used for metrics ("check.violation.<name>") and trace instants.
const char* serve_violation_name(ServeViolationKind kind);

/// One detected serving-layer violation.
struct ServeViolation {
  ServeViolationKind kind = ServeViolationKind::kWindowExceeded;
  std::string scope;      ///< target short name / session label / "cluster"
  double sim_time = 0.0;  ///< simulated time at the offending call
  std::string detail;

  /// "double-wait on VPU at t=1.25s: ..." — the thrown what() string.
  std::string to_string() const;
};

/// Thrown by the verifier in kStrict mode.
class ServeViolationError : public std::logic_error {
 public:
  explicit ServeViolationError(ServeViolation v)
      : std::logic_error(v.to_string()), violation(std::move(v)) {}
  ServeViolation violation;
};

/// Shadows the async Target API, serve::Session accounting and the
/// cluster ledger. All hooks are no-ops in kOff mode. Thread-safe like
/// ProtocolVerifier (the serving loops are single-threaded, but tests
/// run sessions from several threads of one process).
class ServeVerifier {
 public:
  /// Install `mode` and forget all tracked state and recorded
  /// violations. Pass CheckMode::kDefault to resolve through
  /// set_default_mode() / $NCSW_CHECK at each hook (the initial state).
  void configure(CheckMode mode);

  CheckMode mode() const noexcept {
    const auto raw =
        static_cast<CheckMode>(mode_.load(std::memory_order_relaxed));
    return raw == CheckMode::kDefault ? resolve_mode(raw) : raw;
  }
  bool enabled() const noexcept { return mode() != CheckMode::kOff; }

  // -- Ticket lifecycle (called from core::Target). --
  /// A submission was accepted; `inflight` is the window occupancy with
  /// it included. Flags kWindowExceeded when inflight > window (a
  /// rejected submit is legal backpressure and never reaches here).
  void on_submit(const void* target, const std::string& name,
                 std::uint64_t id, int inflight, int window, double t);
  /// poll()/info() missed both the outstanding map and the retired
  /// ring. `last_issued` is the target's newest ticket id (0 = none).
  void on_poll_miss(const void* target, const std::string& name,
                    std::uint64_t id, std::uint64_t last_issued, double t);
  /// wait() hit a retired ticket (terminal `state`), or missed
  /// entirely (`known` false distinguishes ring-evicted from never
  /// issued via `last_issued`).
  void on_wait_retired(const void* target, const std::string& name,
                       std::uint64_t id, const char* state, double t);
  void on_wait_miss(const void* target, const std::string& name,
                    std::uint64_t id, std::uint64_t last_issued, double t);
  /// cancel() of an id this target never issued (cancel of a retired
  /// ticket returns false and is legal).
  void on_cancel_miss(const void* target, const std::string& name,
                      std::uint64_t id, std::uint64_t last_issued, double t);

  // -- Request conservation (called from serve::Session::finish). --
  /// `unaccounted` is what is still queued or in flight at finish().
  void on_session_finish(const std::string& label, std::int64_t offered,
                         std::int64_t rejected, std::int64_t completed,
                         std::int64_t dropped, std::int64_t dropped_deadline,
                         std::int64_t dropped_inflight,
                         std::int64_t dropped_failover,
                         std::int64_t unaccounted, double t);

  // -- Graph residency (called from core::StickFleet / serve::ZooServer).
  /// A stick is about to swap its resident graph. `inflight` is the
  /// stick target's outstanding-ticket count at the swap decision;
  /// anything above zero is kSwapWhileInflight — the drain-then-swap
  /// lifecycle (docs/architecture.md) was bypassed.
  void on_swap_begin(const std::string& stick, const std::string& from_model,
                     const std::string& to_model, int inflight, double t);
  /// Work for `requested` is being dispatched to `stick`, whose resident
  /// model is `resident`. A mismatch is kWrongModelDispatch: the router
  /// handed a tenant's request to a stick serving another tenant.
  void on_zoo_dispatch(const std::string& stick, const std::string& resident,
                       const std::string& requested, double t);
  /// A zoo serving run ended. Requests must partition (offered ==
  /// completed + rejected + dropped) and residency must conserve:
  /// `installs` - `evicts` must equal `resident` graphs still installed.
  void on_zoo_finish(const std::string& scope, std::int64_t offered,
                     std::int64_t completed, std::int64_t rejected,
                     std::int64_t dropped, std::int64_t installs,
                     std::int64_t evicts, std::int64_t resident, double t);

  // -- Ledger conservation (called from the cluster event loop). --
  /// A cluster run is starting: forget per-run delivery/live state.
  void on_cluster_begin();
  /// A completion is being *delivered* (counted into the report as the
  /// request's first completion). A second delivery for the same id is
  /// kDuplicateDelivery — duplicates must be counted, never delivered.
  void on_ledger_deliver(std::int64_t id, int node, double t);
  /// A ledger live-copy count changed to `live`.
  void on_ledger_live(std::int64_t id, int live, double t);
  /// The run ended; the terminal states must partition `offered`.
  void on_cluster_finish(std::int64_t offered, std::int64_t completed,
                         std::int64_t rejected, std::int64_t deadline,
                         std::int64_t lost, double t);

  // -- Report access (for tests and tools). --
  std::uint64_t count(ServeViolationKind kind) const;
  std::uint64_t total() const;
  /// Recorded violations, oldest first (bounded; see kMaxRecorded).
  std::vector<ServeViolation> violations() const;
  /// Drop recorded violations and counts; tracked state survives.
  void clear_violations();

  /// Recorded-violation list cap; counts keep accumulating past it.
  static constexpr std::size_t kMaxRecorded = 256;

 private:
  /// Record + count + trace the violation; throws in kStrict. Caller
  /// holds mutex_ (it is released before the throw).
  void report(std::unique_lock<std::mutex>& lock, ServeViolationKind kind,
              std::string scope, double t, std::string detail);
  void miss(const char* call, ServeViolationKind evicted_kind,
            const void* target, const std::string& name, std::uint64_t id,
            std::uint64_t last_issued, double t);

  /// kDefault = resolve per hook (the initial state), so CI's
  /// NCSW_CHECK and a bench's --check are honoured without an explicit
  /// configure() call.
  std::atomic<int> mode_{static_cast<int>(CheckMode::kDefault)};

  mutable std::mutex mutex_;
  std::unordered_set<std::int64_t> delivered_;  ///< per cluster run
  std::vector<ServeViolation> recorded_;
  std::uint64_t counts_[kServeViolationKindCount] = {};
  std::uint64_t total_ = 0;
};

/// The process-wide verifier the serving layers report to.
ServeVerifier& serve_verifier();

}  // namespace ncsw::check
