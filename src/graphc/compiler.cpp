#include "graphc/compiler.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "nn/serialize.h"
#include "nn/weights.h"
#include "util/binio.h"

namespace ncsw::graphc {

const char* precision_name(Precision p) noexcept {
  return p == Precision::kFP16 ? "FP16" : "FP32";
}

std::int64_t CompiledGraph::total_macs() const noexcept {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.macs;
  return total;
}

std::int64_t CompiledGraph::total_weight_bytes() const noexcept {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.weight_bytes;
  return total;
}

std::int64_t CompiledGraph::total_activation_bytes() const noexcept {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.in_bytes + l.out_bytes;
  return total;
}

std::int64_t CompiledGraph::input_bytes() const noexcept {
  return input_shape.numel() * bytes_per_scalar(precision);
}

std::int64_t CompiledGraph::output_bytes() const noexcept {
  return num_outputs * bytes_per_scalar(precision);
}

namespace {

std::int64_t layer_macs(const nn::Graph& graph, int id) {
  const nn::Layer& l = graph.layer(id);
  const tensor::Shape& out = l.out_shape;
  switch (l.kind) {
    case nn::LayerKind::kConv: {
      const tensor::Shape& in = graph.layer(l.inputs[0]).out_shape;
      return out.numel() * in.c * l.conv.kernel * l.conv.kernel;
    }
    case nn::LayerKind::kFC: {
      const tensor::Shape& in = graph.layer(l.inputs[0]).out_shape;
      return static_cast<std::int64_t>(l.fc.out_features) * in.chw();
    }
    case nn::LayerKind::kMaxPool:
    case nn::LayerKind::kAvgPool: {
      if (l.pool.global) {
        const tensor::Shape& in = graph.layer(l.inputs[0]).out_shape;
        return in.numel();  // one pass over the input
      }
      return out.numel() * l.pool.kernel * l.pool.kernel;
    }
    case nn::LayerKind::kLRN:
      // square + windowed sum + pow + divide, approx local_size + 2 ops/elt
      return out.numel() * (l.lrn.local_size + 2);
    case nn::LayerKind::kReLU:
    case nn::LayerKind::kSoftmax:
      return out.numel();
    case nn::LayerKind::kConcat:
    case nn::LayerKind::kDropout:
    case nn::LayerKind::kInput:
      return 0;
  }
  return 0;
}

}  // namespace

CompiledGraph compile(const nn::Graph& graph, Precision precision,
                      const CompileOptions& options) {
  graph.validate();
  if (options.macs_per_tile <= 0 || options.cmx_budget_bytes <= 0) {
    throw std::logic_error("compile: bad options");
  }
  const std::int64_t elt = bytes_per_scalar(precision);

  CompiledGraph out;
  out.net_name = graph.name();
  out.precision = precision;
  out.input_shape = graph.layer(graph.input_id()).out_shape;
  out.num_outputs = graph.output_shape().numel();
  out.layers.reserve(static_cast<std::size_t>(graph.size()));

  for (int id = 0; id < graph.size(); ++id) {
    const nn::Layer& l = graph.layer(id);
    LayerCost cost;
    cost.id = id;
    cost.kind = l.kind;
    cost.name = l.name;
    cost.out_shape = l.out_shape;
    cost.in_shape =
        l.inputs.empty() ? l.out_shape : graph.layer(l.inputs[0]).out_shape;
    cost.macs = layer_macs(graph, id);

    std::int64_t in_elems = 0;
    for (int in : l.inputs) in_elems += graph.layer(in).out_shape.numel();
    cost.in_bytes = in_elems * elt;
    cost.out_bytes = l.out_shape.numel() * elt;

    if (nn::Graph::has_weights(l.kind)) {
      const auto [ws, bs] = nn::param_shapes(graph, id);
      cost.weight_bytes = (ws.numel() + bs.numel()) * elt;
    }

    // Tiling: compute-bound layers are split into ~macs_per_tile quanta;
    // pure data movers by 16 KiB chunks. At least one tile each.
    if (cost.macs > 0) {
      cost.tiles = static_cast<std::int32_t>(std::max<std::int64_t>(
          1, (cost.macs + options.macs_per_tile - 1) / options.macs_per_tile));
    } else {
      const std::int64_t bytes = cost.in_bytes + cost.out_bytes;
      cost.tiles = static_cast<std::int32_t>(
          std::max<std::int64_t>(1, bytes / (16 * 1024)));
    }

    // CMX residency: one tile's activations plus the layer's weights must
    // fit; otherwise the executor streams weights from DDR (slower path).
    const std::int64_t tile_act_bytes =
        (cost.in_bytes + cost.out_bytes) / cost.tiles;
    cost.fits_cmx =
        tile_act_bytes + cost.weight_bytes <= options.cmx_budget_bytes;

    out.layers.push_back(std::move(cost));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialisation — little-endian, magic "NCSG"; version 1 carries the cost
// records, version 2 appends an optional functional payload (network
// structure + FP16 weights), making the file self-contained like a real
// NCS graph file.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMagic = 0x4753434eu;  // "NCSG"
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;

void put_shape(util::BinWriter& w, const tensor::Shape& s) {
  w.put(s.n);
  w.put(s.c);
  w.put(s.h);
  w.put(s.w);
}

tensor::Shape get_shape(util::BinReader& r) {
  tensor::Shape s;
  s.n = r.get<std::int64_t>();
  s.c = r.get<std::int64_t>();
  s.h = r.get<std::int64_t>();
  s.w = r.get<std::int64_t>();
  if (!s.valid()) throw std::runtime_error("graph file: invalid shape");
  return s;
}

void write_compiled(util::BinWriter& w, const CompiledGraph& graph) {
  w.put(static_cast<std::uint8_t>(graph.precision));
  w.put_string(graph.net_name);
  put_shape(w, graph.input_shape);
  w.put(graph.num_outputs);
  w.put(static_cast<std::uint32_t>(graph.layers.size()));
  for (const auto& l : graph.layers) {
    w.put(l.id);
    w.put(static_cast<std::uint8_t>(l.kind));
    w.put_string(l.name);
    w.put(l.macs);
    w.put(l.in_bytes);
    w.put(l.out_bytes);
    w.put(l.weight_bytes);
    w.put(l.tiles);
    w.put(static_cast<std::uint8_t>(l.fits_cmx ? 1 : 0));
    put_shape(w, l.in_shape);
    put_shape(w, l.out_shape);
  }
}

CompiledGraph read_compiled(util::BinReader& r) {
  CompiledGraph g;
  const auto prec = r.get<std::uint8_t>();
  if (prec > 1) throw std::runtime_error("graph file: bad precision");
  g.precision = static_cast<Precision>(prec);
  g.net_name = r.get_string();
  g.input_shape = get_shape(r);
  g.num_outputs = r.get<std::int64_t>();
  if (g.num_outputs <= 0) throw std::runtime_error("graph file: bad outputs");
  const auto count = r.get<std::uint32_t>();
  if (count == 0 || count > 1u << 16) {
    throw std::runtime_error("graph file: bad layer count");
  }
  g.layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LayerCost l;
    l.id = r.get<std::int32_t>();
    const auto kind = r.get<std::uint8_t>();
    if (kind > static_cast<std::uint8_t>(nn::LayerKind::kDropout)) {
      throw std::runtime_error("graph file: bad layer kind");
    }
    l.kind = static_cast<nn::LayerKind>(kind);
    l.name = r.get_string();
    l.macs = r.get<std::int64_t>();
    l.in_bytes = r.get<std::int64_t>();
    l.out_bytes = r.get<std::int64_t>();
    l.weight_bytes = r.get<std::int64_t>();
    l.tiles = r.get<std::int32_t>();
    l.fits_cmx = r.get<std::uint8_t>() != 0;
    l.in_shape = get_shape(r);
    l.out_shape = get_shape(r);
    if (l.macs < 0 || l.in_bytes < 0 || l.out_bytes < 0 ||
        l.weight_bytes < 0 || l.tiles < 1) {
      throw std::runtime_error("graph file: negative cost fields");
    }
    g.layers.push_back(std::move(l));
  }
  return g;
}

}  // namespace

std::vector<std::uint8_t> serialize(const CompiledGraph& graph) {
  util::BinWriter w;
  w.put(kMagic);
  w.put(kVersionV1);
  write_compiled(w, graph);
  return w.take();
}

std::vector<std::uint8_t> serialize_package(const CompiledGraph& graph,
                                            const nn::Graph* net,
                                            const nn::WeightsH* weights) {
  if ((net == nullptr) != (weights == nullptr)) {
    throw std::logic_error(
        "serialize_package: net and weights must come together");
  }
  util::BinWriter w;
  w.put(kMagic);
  w.put(kVersionV2);
  write_compiled(w, graph);
  w.put(static_cast<std::uint8_t>(net ? 1 : 0));
  if (net) {
    nn::write_graph(w, *net);
    nn::write_weights(w, *weights);
  }
  return w.take();
}

GraphPackage deserialize_package(const std::vector<std::uint8_t>& bytes) {
  util::BinReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic) {
    throw std::runtime_error("graph file: bad magic");
  }
  const auto version = r.get<std::uint32_t>();
  if (version != kVersionV1 && version != kVersionV2) {
    throw std::runtime_error("graph file: unsupported version");
  }
  GraphPackage pkg;
  pkg.compiled = read_compiled(r);
  if (version == kVersionV2) {
    pkg.functional = r.get<std::uint8_t>() != 0;
    if (pkg.functional) {
      pkg.net = nn::read_graph(r);
      pkg.weights = nn::read_weights_f16(r);
      try {
        nn::check_weights(pkg.net, pkg.weights);
      } catch (const std::logic_error& e) {
        // Corrupted payload: surface as a format error, like every other
        // malformed-input path.
        throw std::runtime_error(std::string("graph file: ") + e.what());
      }
      const auto in_shape = pkg.net.layer(pkg.net.input_id()).out_shape;
      if (in_shape.numel() != pkg.compiled.input_shape.numel()) {
        throw std::runtime_error(
            "graph file: functional payload input mismatch");
      }
    }
  }
  if (!r.done()) throw std::runtime_error("graph file: trailing bytes");
  return pkg;
}

CompiledGraph deserialize(const std::vector<std::uint8_t>& bytes) {
  return deserialize_package(bytes).compiled;
}

}  // namespace ncsw::graphc
