// Graph compiler: lowers an nn::Graph to a device-neutral cost blob.
//
// This is the stand-in for the NCSDK's `mvNCCompile` step: the paper's
// framework ships a pre-compiled graph file to the stick via
// mvncAllocateGraph. Our compiled form records, per layer, the work
// (multiply-accumulates), the data movement (activation and weight
// bytes at the chosen precision) and a CMX tiling plan; the Myriad 2
// simulator executes exactly this plan, and the CPU/GPU device models
// price their work from the same numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/weights.h"

namespace ncsw::graphc {

/// Numeric precision a graph is compiled for.
enum class Precision : std::uint8_t { kFP16 = 0, kFP32 = 1 };

/// Bytes per scalar for a precision.
constexpr std::int64_t bytes_per_scalar(Precision p) noexcept {
  return p == Precision::kFP16 ? 2 : 4;
}

/// "FP16" / "FP32".
const char* precision_name(Precision p) noexcept;

/// Per-layer cost record.
struct LayerCost {
  std::int32_t id = 0;               ///< layer id in the source graph
  nn::LayerKind kind = nn::LayerKind::kInput;
  std::string name;
  std::int64_t macs = 0;             ///< multiply-accumulate count (batch 1)
  std::int64_t in_bytes = 0;         ///< activation bytes read
  std::int64_t out_bytes = 0;        ///< activation bytes written
  std::int64_t weight_bytes = 0;     ///< parameter bytes (incl. bias)
  std::int32_t tiles = 1;            ///< work quanta for the SHAVE array
  bool fits_cmx = true;              ///< working set fits the 2MB CMX
  tensor::Shape in_shape;            ///< primary input shape (batch 1)
  tensor::Shape out_shape;           ///< output shape (batch 1)
};

/// A compiled network.
struct CompiledGraph {
  std::string net_name;
  Precision precision = Precision::kFP16;
  tensor::Shape input_shape;   ///< batch-1 input
  std::int64_t num_outputs = 0;  ///< elements of the final layer
  std::vector<LayerCost> layers;

  /// Sum of layer MACs.
  std::int64_t total_macs() const noexcept;
  /// Sum of parameter bytes.
  std::int64_t total_weight_bytes() const noexcept;
  /// Sum of activation traffic (in + out) bytes.
  std::int64_t total_activation_bytes() const noexcept;
  /// Input tensor bytes at the compiled precision.
  std::int64_t input_bytes() const noexcept;
  /// Output tensor bytes at the compiled precision.
  std::int64_t output_bytes() const noexcept;
};

/// Compiler tuning knobs.
struct CompileOptions {
  /// Target work-quantum size: the compiler splits each layer into tiles
  /// of roughly this many MACs so the SHAVE scheduler has useful
  /// granularity. Data-movement layers are tiled by bytes / 16 KiB.
  std::int64_t macs_per_tile = 200'000;
  /// CMX capacity available for one layer's working set (bytes). The
  /// MA2450 has 2 MiB of CMX; the runtime reserves part of it.
  std::int64_t cmx_budget_bytes = 1'900'000;
};

/// Compile a validated graph. Throws std::logic_error on invalid graphs.
CompiledGraph compile(const nn::Graph& graph, Precision precision,
                      const CompileOptions& options = {});

/// Serialise to the on-disk graph-file format (magic "NCSG", version 1:
/// cost records only).
std::vector<std::uint8_t> serialize(const CompiledGraph& graph);

/// Parse a graph file (either version); throws std::runtime_error on
/// malformed input. Any embedded functional payload is ignored.
CompiledGraph deserialize(const std::vector<std::uint8_t>& bytes);

/// A parsed graph file including the optional functional payload.
struct GraphPackage {
  CompiledGraph compiled;
  bool functional = false;   ///< true when net + weights are present
  nn::Graph net{"empty"};    ///< network structure (when functional)
  nn::WeightsH weights;      ///< FP16 parameters (when functional)
};

/// Serialise a *self-contained* graph file (version 2): the cost records
/// plus the network structure and its FP16 weights — the role the real
/// NCS graph file plays (mvNCCompile embeds the caffemodel weights).
/// Pass net/weights as nullptr for a timing-only v2 file.
std::vector<std::uint8_t> serialize_package(const CompiledGraph& graph,
                                            const nn::Graph* net,
                                            const nn::WeightsH* weights);

/// Parse either format into a package (v1 files yield functional=false).
GraphPackage deserialize_package(const std::vector<std::uint8_t>& bytes);

}  // namespace ncsw::graphc
