// Discrete-event simulation core.
//
// The Myriad 2 model executes a compiled network by scheduling tile /
// DMA / scheduler events on this engine; the resulting simulated clock is
// what the benchmark harnesses report, standing in for wall-clock
// measurements on the paper's physical testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace ncsw::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Milliseconds -> SimTime.
constexpr SimTime from_ms(double ms) noexcept { return ms * 1e-3; }
/// Microseconds -> SimTime.
constexpr SimTime from_us(double us) noexcept { return us * 1e-6; }
/// SimTime -> milliseconds.
constexpr double to_ms(SimTime t) noexcept { return t * 1e3; }

/// Single-threaded event calendar. Events scheduled for the same time fire
/// in schedule order (stable FIFO tie-break), which keeps runs
/// deterministic.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime now() const noexcept { return now_; }

  /// Schedule `cb` to run `delay` seconds from now (>= 0).
  void schedule(SimTime delay, Callback cb);

  /// Schedule `cb` at absolute time `when` (>= now()).
  void schedule_at(SimTime when, Callback cb);

  /// Run until the calendar is empty. Returns the final time.
  SimTime run();

  /// Run until the calendar is empty or `deadline` is reached (events at
  /// exactly `deadline` still fire). Returns the final time.
  SimTime run_until(SimTime deadline);

  /// Number of events executed so far.
  std::uint64_t events_executed() const noexcept { return executed_; }

  /// True when no events are pending.
  bool idle() const noexcept { return queue_.empty(); }

  /// Reset time and drop all pending events.
  void reset();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// A serially-reusable resource (a bus, a DMA engine, a pool of identical
/// servers). Reservations are granted in request order; each reservation
/// occupies one server for [start, start+duration).
class Resource {
 public:
  /// `servers` parallel units (1 = fully serialised resource).
  explicit Resource(std::string name, int servers = 1);

  /// Reserve one server for `duration`, no earlier than `earliest`.
  /// Returns the granted start time; the server is busy until
  /// start + duration.
  SimTime reserve(SimTime earliest, SimTime duration);

  /// Earliest time a new reservation could start.
  SimTime next_free(SimTime earliest) const noexcept;

  /// Total busy time accumulated over all reservations.
  SimTime busy_time() const noexcept { return busy_; }
  /// Number of reservations granted.
  std::uint64_t reservations() const noexcept { return count_; }
  const std::string& name() const noexcept { return name_; }

  /// Forget all state (free at t = 0).
  void reset();

 private:
  std::string name_;
  std::vector<SimTime> free_at_;  // one entry per server
  SimTime busy_ = 0.0;
  std::uint64_t count_ = 0;
};

/// A serialised resource whose reservations may arrive out of
/// chronological order: each reservation first-fits into the earliest idle
/// gap at or after `earliest`. This makes the result independent of the
/// order in which concurrent clients issue their requests — exactly what a
/// shared USB hub uplink needs when several stick timelines are simulated
/// one after another.
class IntervalResource {
 public:
  explicit IntervalResource(std::string name);

  /// Reserve `duration` starting no earlier than `earliest`; returns the
  /// granted start time.
  SimTime reserve(SimTime earliest, SimTime duration);

  SimTime busy_time() const noexcept { return busy_; }
  std::uint64_t reservations() const noexcept { return count_; }
  const std::string& name() const noexcept { return name_; }

  /// Drop all reservations.
  void reset();

  /// Gaps older than this (relative to the latest reservation start) are
  /// forgotten: requests can no longer back-fill them. Keeps the interval
  /// list bounded for million-reservation benchmark runs; harmless for
  /// clients whose earliest times progress monotonically (all of ours).
  static constexpr SimTime kPruneWindow = 5.0;

 private:
  struct Interval {
    SimTime start;
    SimTime end;
  };
  void prune();

  std::string name_;
  std::vector<Interval> intervals_;  // sorted by start, non-overlapping
  SimTime busy_ = 0.0;
  std::uint64_t count_ = 0;
  SimTime floor_ = 0.0;      ///< no reservation may start before this
  SimTime max_start_ = 0.0;  ///< latest granted start
};

}  // namespace ncsw::sim
