#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"

namespace ncsw::sim {

namespace {

// Process-wide dispatch counters. Engines are created per graph
// execution, so aggregation lives in the registry, not the engine.
util::Counter& events_counter() {
  static util::Counter& c = util::metrics().counter("sim.engine.events");
  return c;
}

util::Counter& runs_counter() {
  static util::Counter& c = util::metrics().counter("sim.engine.runs");
  return c;
}

}  // namespace

void Engine::schedule(SimTime delay, Callback cb) {
  if (delay < 0.0) throw std::invalid_argument("Engine::schedule: delay < 0");
  schedule_at(now_ + delay, std::move(cb));
}

void Engine::schedule_at(SimTime when, Callback cb) {
  if (when < now_) {
    throw std::invalid_argument("Engine::schedule_at: time in the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

SimTime Engine::run() {
  const std::uint64_t before = executed_;
  while (!queue_.empty()) {
    // Copy out then pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.cb();
  }
  events_counter().add(executed_ - before);
  runs_counter().add(1);
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  const std::uint64_t before = executed_;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.cb();
  }
  now_ = std::max(now_, deadline);
  events_counter().add(executed_ - before);
  runs_counter().add(1);
  return now_;
}

void Engine::reset() {
  queue_ = {};
  now_ = 0.0;
  next_seq_ = 0;
  executed_ = 0;
}

Resource::Resource(std::string name, int servers) : name_(std::move(name)) {
  if (servers < 1) throw std::invalid_argument("Resource: servers < 1");
  free_at_.assign(static_cast<std::size_t>(servers), 0.0);
}

SimTime Resource::reserve(SimTime earliest, SimTime duration) {
  if (duration < 0.0) {
    throw std::invalid_argument("Resource::reserve: negative duration");
  }
  // Pick the server that frees up first.
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const SimTime start = std::max(earliest, *it);
  *it = start + duration;
  busy_ += duration;
  ++count_;
  return start;
}

SimTime Resource::next_free(SimTime earliest) const noexcept {
  const SimTime first = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(earliest, first);
}

void Resource::reset() {
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  busy_ = 0.0;
  count_ = 0;
}

IntervalResource::IntervalResource(std::string name)
    : name_(std::move(name)) {}

SimTime IntervalResource::reserve(SimTime earliest, SimTime duration) {
  if (duration < 0.0) {
    throw std::invalid_argument("IntervalResource::reserve: negative duration");
  }
  if (earliest < floor_) earliest = floor_;
  // First-fit: find the earliest gap at/after `earliest` wide enough.
  SimTime cursor = earliest;
  std::size_t pos = 0;
  for (; pos < intervals_.size(); ++pos) {
    const Interval& iv = intervals_[pos];
    if (iv.end <= cursor) continue;          // fully before the cursor
    if (cursor + duration <= iv.start) break;  // fits in the gap before iv
    cursor = std::max(cursor, iv.end);       // skip past this busy interval
  }
  intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(pos),
                    Interval{cursor, cursor + duration});
  // Keep the vector sorted: the insert position preserves start order
  // because cursor >= intervals_[pos-1].end and cursor + duration <=
  // intervals_[pos].start.
  busy_ += duration;
  ++count_;
  max_start_ = std::max(max_start_, cursor);
  prune();
  return cursor;
}

void IntervalResource::prune() {
  const SimTime cutoff = max_start_ - kPruneWindow;
  if (cutoff <= floor_) return;
  std::size_t keep = 0;
  while (keep < intervals_.size() && intervals_[keep].end < cutoff) ++keep;
  if (keep == 0) return;
  floor_ = std::max(floor_, intervals_[keep - 1].end);
  intervals_.erase(intervals_.begin(),
                   intervals_.begin() + static_cast<std::ptrdiff_t>(keep));
}

void IntervalResource::reset() {
  intervals_.clear();
  busy_ = 0.0;
  count_ = 0;
  floor_ = 0.0;
  max_start_ = 0.0;
}

}  // namespace ncsw::sim
