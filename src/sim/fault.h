// Deterministic fault injection on the simulated clock.
//
// A FaultPlan is a script of transient-fault windows keyed to sim::SimTime
// — the same plan always produces the same run, so recovery behaviour is
// testable byte-for-byte. The plan is configured on the mvnc simulation
// host (mvnc::HostConfig::faults); each NcsDevice consumes its slice of
// the plan (a FaultTimeline) and converts active windows into the fault
// responses a real USB-attached stick exhibits: transfer errors and
// stalls, FIFO busy storms, result-delivery stalls (watchdog timeouts),
// forced hard-throttle windows, and detach/reattach (hot-replug) events.
//
// Fault windows are half-open intervals [start, end) in simulated
// seconds. With an empty plan every query is a no-op, so the machinery
// is zero-cost and byte-identical to a fault-free build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace ncsw::sim {

/// What goes wrong during a fault window. The first six kinds are
/// stick-granularity (consumed by `ncs::NcsDevice`); the node-* kinds are
/// node-granularity (consumed by the cluster layer, `src/cluster`, where
/// `device` holds a serve-node id instead of a stick id).
enum class FaultKind : int {
  kUsbTransferError = 0,  ///< input transfer fails (NCAPI: MVNC_ERROR, retryable)
  kUsbStall,              ///< transfers issued in the window start at its end
  kBusyStorm,             ///< LoadTensor rejected regardless of FIFO occupancy
  kGetTimeout,            ///< result delivery stalled until the window ends
  kThermalThrottle,       ///< execution stretched by `magnitude` (hard throttle)
  kDetach,                ///< stick off the bus for [start, end); replug after
  kNodeCrash,             ///< serve node down for [start, end); may rejoin after
  kNodeWedge,             ///< node runtime wedged: accepts work, completes none
                          ///< until the window ends (the fault-injection paper's
                          ///< "whole-runtime hang" failure mode)
};

/// Stable lowercase name ("usb-error", "detach", ...) for traces/tables.
const char* fault_kind_name(FaultKind kind);

/// One scripted fault window.
struct FaultEvent {
  int device = -1;          ///< stick id, or -1 for every stick
  FaultKind kind = FaultKind::kUsbTransferError;
  SimTime start = 0.0;      ///< window opens (inclusive)
  SimTime end = 0.0;        ///< window closes (exclusive)
  double magnitude = 0.0;   ///< kind-specific (kThermalThrottle: exec multiplier)
};

/// The per-device view of a plan: events applying to one stick, sorted by
/// start time. Cheap value type held by NcsDevice.
class FaultTimeline {
 public:
  FaultTimeline() = default;
  explicit FaultTimeline(std::vector<FaultEvent> events);

  bool empty() const noexcept { return events_.empty(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// The active window of `kind` covering time `t` (nullptr when none).
  const FaultEvent* active(FaultKind kind, SimTime t) const noexcept;

  /// Earliest time >= `t` not covered by any window of `kind` (chains
  /// back-to-back windows). Equals `t` when no window covers it.
  SimTime clear_of(FaultKind kind, SimTime t) const noexcept;

  /// The next unconsumed detach event with start <= `t`, scanning from
  /// `*cursor`; advances `*cursor` past consumed events. Used by the
  /// device to latch detachment exactly once per scripted event.
  const FaultEvent* next_detach(SimTime t, std::size_t* cursor) const noexcept;

 private:
  std::vector<FaultEvent> events_;  // sorted by (start, kind)
};

/// A scripted set of fault windows for a simulated host.
class FaultPlan {
 public:
  /// Append one window; `duration` must be > 0 for the event to ever
  /// match (zero-length windows are legal and inert). Throws
  /// std::invalid_argument for non-finite, negative-start, or inverted
  /// (end < start) windows — those would silently never fire.
  void add(int device, FaultKind kind, SimTime start, SimTime duration,
           double magnitude = 0.0);
  void add(const FaultEvent& event);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Slice for one stick: events targeting `device` or all devices (-1).
  FaultTimeline timeline_for(int device) const;

  /// Deterministic pseudo-random storm for chaos sweeps: for each of
  /// `devices` sticks, transient windows (error / stall / busy / timeout /
  /// throttle) arrive as a Poisson process of `rate` per second over
  /// [0, horizon), each lasting ~`mean_duration`. Same arguments => same
  /// plan, always.
  static FaultPlan scripted_storm(std::uint64_t seed, int devices, double rate,
                                  SimTime horizon, SimTime mean_duration);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace ncsw::sim
