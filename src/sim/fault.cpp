#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace ncsw::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kUsbTransferError: return "usb-error";
    case FaultKind::kUsbStall: return "usb-stall";
    case FaultKind::kBusyStorm: return "busy-storm";
    case FaultKind::kGetTimeout: return "get-timeout";
    case FaultKind::kThermalThrottle: return "thermal-throttle";
    case FaultKind::kDetach: return "detach";
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kNodeWedge: return "node-wedge";
  }
  return "unknown";
}

namespace {

bool event_before(const FaultEvent& a, const FaultEvent& b) noexcept {
  if (a.start != b.start) return a.start < b.start;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

}  // namespace

FaultTimeline::FaultTimeline(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(), event_before);
}

const FaultEvent* FaultTimeline::active(FaultKind kind,
                                        SimTime t) const noexcept {
  for (const auto& ev : events_) {
    if (ev.start > t) break;
    if (ev.kind == kind && t >= ev.start && t < ev.end) return &ev;
  }
  return nullptr;
}

SimTime FaultTimeline::clear_of(FaultKind kind, SimTime t) const noexcept {
  // Windows are sorted by start; chase chained windows forward.
  for (const auto& ev : events_) {
    if (ev.kind != kind) continue;
    if (ev.start > t) break;
    if (t >= ev.start && t < ev.end) t = ev.end;
  }
  return t;
}

const FaultEvent* FaultTimeline::next_detach(SimTime t,
                                             std::size_t* cursor) const noexcept {
  while (*cursor < events_.size()) {
    const FaultEvent& ev = events_[*cursor];
    if (ev.kind != FaultKind::kDetach) {
      ++*cursor;
      continue;
    }
    if (ev.start > t) return nullptr;  // not yet due
    ++*cursor;
    return &ev;
  }
  return nullptr;
}

namespace {

void validate_window(FaultKind kind, SimTime start, SimTime end) {
  if (!std::isfinite(start) || start < 0.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") +
                                fault_kind_name(kind) +
                                " window start must be finite and >= 0, got " +
                                std::to_string(start));
  }
  if (!std::isfinite(end) || end < start) {
    throw std::invalid_argument(
        std::string("FaultPlan: ") + fault_kind_name(kind) +
        " window is inverted or non-finite: [" + std::to_string(start) + ", " +
        std::to_string(end) + ")");
  }
}

}  // namespace

void FaultPlan::add(int device, FaultKind kind, SimTime start,
                    SimTime duration, double magnitude) {
  validate_window(kind, start, start + duration);
  FaultEvent ev;
  ev.device = device;
  ev.kind = kind;
  ev.start = start;
  ev.end = start + duration;
  ev.magnitude = magnitude;
  events_.push_back(ev);
}

void FaultPlan::add(const FaultEvent& event) {
  validate_window(event.kind, event.start, event.end);
  events_.push_back(event);
}

FaultTimeline FaultPlan::timeline_for(int device) const {
  std::vector<FaultEvent> slice;
  for (const auto& ev : events_) {
    if (ev.device == device || ev.device < 0) slice.push_back(ev);
  }
  return FaultTimeline(std::move(slice));
}

FaultPlan FaultPlan::scripted_storm(std::uint64_t seed, int devices,
                                    double rate, SimTime horizon,
                                    SimTime mean_duration) {
  FaultPlan plan;
  if (rate <= 0.0 || horizon <= 0.0 || devices < 1) return plan;
  // Transient kinds only: detach events are scripted explicitly so that
  // recovery scenarios stay under test control.
  static constexpr FaultKind kTransient[] = {
      FaultKind::kUsbTransferError, FaultKind::kUsbStall,
      FaultKind::kBusyStorm, FaultKind::kGetTimeout,
      FaultKind::kThermalThrottle};
  for (int d = 0; d < devices; ++d) {
    util::Xoshiro256 rng(util::hash_mix(seed, static_cast<std::uint64_t>(d)));
    SimTime t = 0.0;
    for (;;) {
      // Poisson arrivals: exponential inter-arrival times.
      t += -std::log(1.0 - rng.uniform()) / rate;
      if (t >= horizon) break;
      const auto kind = kTransient[rng.uniform_u64(std::size(kTransient))];
      const SimTime duration =
          mean_duration * (0.5 + rng.uniform());  // 0.5x .. 1.5x the mean
      const double magnitude =
          kind == FaultKind::kThermalThrottle ? 1.5 + rng.uniform() : 0.0;
      plan.add(d, kind, t, duration, magnitude);
    }
  }
  return plan;
}

}  // namespace ncsw::sim
