#include "serve/residency.h"

#include <limits>
#include <stdexcept>

namespace ncsw::serve {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kStatic: return "static";
    case Placement::kLru: return "lru";
    case Placement::kCostAware: return "cost-aware";
  }
  return "?";
}

Placement placement_from_name(const std::string& name) {
  if (name == "static") return Placement::kStatic;
  if (name == "lru") return Placement::kLru;
  if (name == "cost-aware" || name == "cost") return Placement::kCostAware;
  throw std::invalid_argument("unknown placement '" + name +
                              "' (static | lru | cost-aware)");
}

ResidencyManager::ResidencyManager(int sticks, int models,
                                   ResidencyConfig config)
    : config_(config), models_(models) {
  if (sticks < 1) throw std::invalid_argument("ResidencyManager: sticks < 1");
  if (models < 1) throw std::invalid_argument("ResidencyManager: models < 1");
  if (config_.min_residency_s < 0.0) {
    throw std::invalid_argument("ResidencyManager: negative hysteresis");
  }
  state_.resize(static_cast<std::size_t>(sticks));
  cost_s_.assign(static_cast<std::size_t>(models), 0.0);
}

void ResidencyManager::set_swap_cost(int model, double cost_s) {
  cost_s_.at(model) = cost_s;
}

void ResidencyManager::install(int stick, int model, double now_s) {
  if (model < 0 || model >= models_) {
    throw std::out_of_range("ResidencyManager::install: bad model");
  }
  Stick& s = state_.at(stick);
  s.model = model;
  s.installed_s = now_s;
  s.last_use_s = now_s;
}

void ResidencyManager::touch(int stick, double now_s) {
  Stick& s = state_.at(stick);
  if (now_s > s.last_use_s) s.last_use_s = now_s;
}

bool ResidencyManager::is_resident(int model) const {
  for (const auto& s : state_) {
    if (s.model == model) return true;
  }
  return false;
}

std::vector<int> ResidencyManager::sticks_of(int model) const {
  std::vector<int> out;
  for (std::size_t d = 0; d < state_.size(); ++d) {
    if (state_[d].model == model) out.push_back(static_cast<int>(d));
  }
  return out;
}

double ResidencyManager::earliest_unlock_s() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& s : state_) {
    const double unlock =
        s.model < 0 ? 0.0 : s.installed_s + config_.min_residency_s;
    if (unlock < earliest) earliest = unlock;
  }
  return earliest;
}

SwapPlan ResidencyManager::plan_swap(int model, double now_s) const {
  if (model < 0 || model >= models_) {
    throw std::out_of_range("ResidencyManager::plan_swap: bad model");
  }
  SwapPlan plan;
  if (config_.placement == Placement::kStatic) {
    // The pinning decides; hysteresis does not apply (there is no other
    // stick the model could go to).
    plan.stick = model % sticks();
    plan.victim = state_[static_cast<std::size_t>(plan.stick)].model;
    return plan;
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d < state_.size(); ++d) {
    const Stick& s = state_[d];
    if (s.model >= 0 &&
        now_s < s.installed_s + config_.min_residency_s) {
      continue;  // still inside its hysteresis window
    }
    // LRU scores by recency alone; cost-aware adds the price of
    // re-loading the victim, so cold-but-expensive residents survive
    // over cold-and-cheap ones (GreedyDual). An empty stick scores
    // -inf either way and is always taken first.
    double score;
    if (s.model < 0) {
      score = -std::numeric_limits<double>::infinity();
    } else if (config_.placement == Placement::kCostAware) {
      score = s.last_use_s + cost_s_[static_cast<std::size_t>(s.model)];
    } else {
      score = s.last_use_s;
    }
    if (score < best) {
      best = score;
      plan.stick = static_cast<int>(d);
      plan.victim = s.model;
    }
  }
  return plan;
}

}  // namespace ncsw::serve
