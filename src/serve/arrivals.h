// Open-loop arrival processes for the serving frontend. An open-loop
// load generator decides *when* requests arrive independently of how
// fast the server drains them (Schroeder et al., "Open Versus Closed");
// that is what exposes queueing, admission and batching behaviour the
// closed-loop figure benches never see. All processes are seeded and
// pure, so a given (rate, seed) always replays the same arrival trace.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/rng.h"

namespace ncsw::serve {

/// Poisson process: i.i.d. exponential inter-arrival times at
/// `rate_per_s` requests per simulated second.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate_per_s, std::uint64_t seed)
      : rng_(seed), rate_(rate_per_s) {
    if (!(rate_per_s > 0.0) || !std::isfinite(rate_per_s)) {
      throw std::invalid_argument("PoissonArrivals: rate must be > 0");
    }
  }

  /// Absolute simulated time of the next arrival (non-decreasing).
  double next() {
    // Inverse-CDF sampling; 1 - uniform() is in (0, 1], so the log is
    // finite and the increment strictly positive.
    t_ += -std::log(1.0 - rng_.uniform()) / rate_;
    return t_;
  }

 private:
  util::Xoshiro256 rng_;
  double rate_;
  double t_ = 0.0;
};

/// Fixed-interval arrivals (deterministic pacing) — handy for tests that
/// need exact queue occupancy at known times.
class UniformArrivals {
 public:
  explicit UniformArrivals(double interval_s, double start_s = 0.0)
      : interval_(interval_s), t_(start_s - interval_s) {
    if (!(interval_s >= 0.0) || !std::isfinite(interval_s)) {
      throw std::invalid_argument("UniformArrivals: bad interval");
    }
  }

  double next() { return t_ += interval_; }

 private:
  double interval_;
  double t_;
};

}  // namespace ncsw::serve
