// The always-on serving frontend: admission control + dynamic batching
// + a heterogeneous dispatcher over the paper's Target abstraction.
//
// The paper's Section III closes with applications that "run a specific
// subset of inputs on a GPU, and at the same time another subset on ...
// several VPUs"; ext_mixed_targets plans that split *offline* with
// core::plan_partition. This layer is the online generalisation: an
// open-loop stream of requests flows through
//
//   arrivals --> [admission queue] --> [batcher] --> [dispatcher] --> Targets
//                 bounded, reject      size/timeout   online per-target
//                 on full; deadline    hybrid flush   throughput EWMA,
//                 drops                               submit/poll window
//                                                     per target, picks
//                                                     the one that clears
//                                                     work fastest
//
// entirely on the simulated clock: the server is a single-threaded
// discrete-event loop (arrival / ticket-completion / flush-timeout /
// deadline-drop events processed in time order with a fixed tie-break),
// so a given arrival trace always produces byte-identical results. The
// feedback estimator replaces plan_partition's one-shot split: when a
// batch returns slow — e.g. the health machinery quarantined a stick
// mid-batch — the target's throughput estimate sinks and the dispatcher
// rebalances the following batches toward the healthy engines.
//
// The dispatcher pipelines over the async Target API
// (docs/async-targets.md): each batch becomes a core::Ticket via
// Target::submit and the event loop advances on ticket completion
// timestamps, so up to inflight_window batches overlap per target — the
// serving-side analogue of NCAPI's LoadTensor/GetResult split — instead
// of the dispatcher blocking on each shard. A target whose ticket fails
// (every stick gone) has its outstanding tickets cancelled and is taken
// out of rotation; the failure only propagates once no target is left.
//
// Observability (schemas in docs/architecture.md): serve.* counters and
// gauges in the metrics registry (incl. per-target serve.inflight.*
// window occupancy), and when the tracer is armed, ticket spans on per-
// window "serve <target> w<k>" lanes, queue instants + a queue-depth
// counter track, and a per-request lifecycle span (request ⊃ queued +
// service) on a bounded pool of "serve slot<k>" lanes so spans on every
// lane nest.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "core/source.h"
#include "core/target.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace ncsw::serve {

/// Service-level objective class of a request. Multi-tenant serving
/// (serve::ZooServer, the cluster router) differentiates admission and
/// hedging by class; the plain Server treats every class alike unless
/// ServerConfig::class_quota says otherwise.
enum class SloClass : int {
  kInteractive = 0,  ///< latency-sensitive; hedged, dispatched first
  kStandard = 1,     ///< the default
  kBatch = 2,        ///< throughput work; never hedged, evicted first
};

constexpr int kSloClassCount = 3;

/// Stable lowercase name ("interactive", "standard", "batch").
const char* slo_class_name(SloClass c);

/// One inference request entering the frontend (one image of work).
struct Request {
  std::int64_t id = 0;
  double arrival_s = 0.0;  ///< simulated arrival time (non-decreasing)
  int label = -1;          ///< optional ground-truth passthrough
  std::string tag;         ///< stable identifier for traces / joins
  SloClass slo = SloClass::kStandard;  ///< admission/hedging class
};

/// What became of a request.
enum class Outcome : int {
  kCompleted = 0,  ///< served; latency_s() is meaningful
  kRejected = 1,   ///< bounced at admission (queue full)
  kDropped = 2,    ///< left the queue past its deadline, or lost in-flight
};

/// Stable lowercase name ("completed", "rejected", "dropped").
const char* outcome_name(Outcome o);

/// Why a kDropped request was dropped (kNone otherwise). Admission
/// rejects are a separate Outcome, not a drop reason.
enum class DropReason : int {
  kNone = 0,
  kDeadline,      ///< aged out of the admission queue (queue_deadline_s)
  kInflightLost,  ///< lost mid-batch (every stick died under allow_partial)
  kFailover,      ///< abandoned when its target or node left rotation
};

/// Stable lowercase name ("none", "deadline", "inflight-lost", "failover").
const char* drop_reason_name(DropReason r);

/// The event classes the serving event loops arbitrate between. The
/// Server loop uses the first two plus kArrive/kFlush; the cluster loop
/// (src/cluster) uses all of them. Listed in each loop's fixed
/// tie-break priority order.
enum class LoopEventKind : int {
  kComplete = 0,
  kDrop,
  kFault,
  kProbe,
  kReady,
  kHedge,
  kArrive,
  kFlush,
};

/// Stable lowercase name ("complete", "drop", "fault", ...).
const char* loop_event_kind_name(LoopEventKind kind);

/// One candidate event at the time an event loop is about to process.
/// `node` is the cluster node index (0 in the single-session Server).
struct LoopEvent {
  LoopEventKind kind = LoopEventKind::kComplete;
  int node = 0;
  double t = 0.0;
};

/// Schedule-perturbation hook (check/schedfuzz.h): when several events
/// are due at exactly the same timestamp, the loop collects them all
/// (in its fixed priority order) and asks the hook which to process
/// next; the loop re-evaluates after each event. Index 0 reproduces the
/// fixed order. An empty hook keeps the production single-pass scan —
/// byte-identical behaviour and no per-iteration allocation.
using TieBreak =
    std::function<std::size_t(double t, const std::vector<LoopEvent>& tied)>;

/// Per-request lifecycle log entry.
struct RequestRecord {
  Request request;
  Outcome outcome = Outcome::kCompleted;
  DropReason drop_reason = DropReason::kNone;
  int target = -1;          ///< index into the server's target list, -1 none
  double dispatch_s = 0.0;  ///< when its batch left the queue
  double complete_s = 0.0;  ///< batch completion / drop / reject time

  double latency_s() const noexcept { return complete_s - request.arrival_s; }
  double queue_wait_s() const noexcept {
    return dispatch_s - request.arrival_s;
  }
};

/// Frontend policy knobs.
struct ServerConfig {
  /// Admission bound: requests allowed to wait in the queue; an arrival
  /// finding it full is rejected (clamped to >= 1).
  std::size_t queue_capacity = 64;
  /// A request not dispatched within this much simulated time of its
  /// arrival is dropped from the queue (infinity = never).
  double queue_deadline_s = std::numeric_limits<double>::infinity();
  /// Flush a partial batch once its oldest member waited this long.
  double batch_timeout_s = 0.050;
  /// Global batch cap, clamped to each target's max_batch() (>= 1).
  int max_batch = 8;
  /// EWMA weight of a new completed-batch throughput observation.
  double estimator_gain = 0.25;
  /// Assumed img/s for a target with no completed batch yet (free
  /// unobserved targets are explored first regardless).
  double prior_tput = 25.0;
  /// Emit per-request slot-lane spans when the tracer is armed (batch
  /// spans and queue instants are always emitted when it is).
  bool trace_requests = true;
  /// Per-class admission bound: at most this many queued requests of
  /// each SloClass (indexed by the enum). The default (unbounded) keeps
  /// admission byte-identical to the class-blind frontend; a zoo/cluster
  /// deployment caps kBatch below queue_capacity so bulk tenants cannot
  /// starve interactive ones out of the shared queue.
  std::array<std::size_t, kSloClassCount> class_quota = {
      std::numeric_limits<std::size_t>::max(),
      std::numeric_limits<std::size_t>::max(),
      std::numeric_limits<std::size_t>::max()};
  /// In-flight window applied to every target at the start of a run
  /// (Target::set_inflight_window): how many submitted batches may
  /// overlap per target. 0 = leave each target's own window untouched
  /// (targets default to 1, i.e. the classic one-batch-per-target
  /// dispatcher).
  int inflight_window = 0;
  /// Same-timestamp event-order perturbation hook for the determinism
  /// fuzzer (check/schedfuzz.h). Leave empty in production: the loop
  /// then runs its fixed tie-break (complete < drop < arrive < flush)
  /// byte-identically.
  TieBreak tie_break;
};

/// Per-target serving statistics.
struct TargetStats {
  std::string label;  ///< target short name
  std::int64_t batches = 0;
  std::int64_t images = 0;
  double busy_s = 0.0;     ///< total simulated service time (flights can
                           ///< overlap, so this may exceed the makespan)
  double tput_est = 0.0;   ///< final online throughput estimate (img/s)
  int window = 1;          ///< in-flight window the run used
  int max_inflight = 0;    ///< peak concurrently submitted batches
  /// Self-healing rollups summed over this target's TimedRuns.
  std::int64_t images_replayed = 0;
  std::int64_t images_lost = 0;
  int sticks_recovered = 0;
  int sticks_dead = 0;
};

/// Per-SloClass rollup inside a ServeReport (computed from the request
/// records at finish(); zero for classes the trace never used).
struct ClassStats {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  double p99_ms = 0.0;  ///< completed requests of this class only
};

/// Result of serving one arrival trace.
struct ServeReport {
  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t completed = 0;
  /// `dropped` broken out by DropReason (sums to `dropped`).
  std::int64_t dropped_deadline = 0;
  std::int64_t dropped_inflight = 0;
  std::int64_t dropped_failover = 0;
  double first_arrival_s = 0.0;
  double last_complete_s = 0.0;
  util::RunningStats latency_ms;  ///< completed requests only
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::size_t max_queue_depth = 0;
  /// Per-SloClass accounting, indexed by the enum. Each class partitions
  /// (offered == completed + rejected + dropped) and the classes sum to
  /// the session totals.
  std::array<ClassStats, kSloClassCount> classes{};
  std::vector<TargetStats> targets;
  /// Per-request log in arrival order (one entry per offered request).
  std::vector<RequestRecord> records;

  /// Wall of the simulated run: first arrival to last completion.
  double makespan_s() const noexcept {
    return last_complete_s > first_arrival_s
               ? last_complete_s - first_arrival_s
               : 0.0;
  }
  /// Completed requests per simulated second — the serving metric that
  /// admission control protects (rejected work costs nothing here).
  double goodput() const noexcept {
    const double m = makespan_s();
    return m > 0.0 ? static_cast<double>(completed) / m : 0.0;
  }
};

/// A steppable serving session: the Server event loop's state machine
/// (admission queue, batcher, EWMA dispatcher, per-request records and
/// traces) factored out so higher layers can interleave several
/// sessions on one discrete-event clock. Server::run drives exactly one
/// session per trace; the cluster router (src/cluster) drives one per
/// serve node, injecting routed arrivals, fault-mapped completion
/// times, and failover evictions between events.
///
/// The caller owns the clock: it asks the session for its next event
/// times (next_complete_s / next_drop_s / next_flush_s), picks the
/// earliest across all its event sources, and invokes the matching
/// handler with that time. Handlers never move session time backwards.
/// Driven in the Server's event order with an empty label, no observer
/// and no completion map, a session is byte-identical (records, traces,
/// metrics) to the pre-refactor monolithic loop.
///
/// Not thread-safe; single use (offer/step until done, then finish()).
class Session {
 public:
  /// Hooks for a routing layer above the session. Callbacks fire from
  /// inside session methods, so an observer must not call back into the
  /// session re-entrantly — defer follow-up work (e.g. failover
  /// replays) until the session call returns.
  class Observer {
   public:
    virtual ~Observer() = default;
    /// A request's batch left the queue. `promised_complete_s` is the
    /// engine's own completion timestamp, before any completion map —
    /// the basis for deadline-aware hedging.
    virtual void on_dispatched(const Request& req, double dispatch_s,
                               double promised_complete_s) {
      (void)req; (void)dispatch_s; (void)promised_complete_s;
    }
    /// A batch retired: `completed` of its requests finished OK.
    virtual void on_batch_completed(int target, double dispatch_s,
                                    double complete_s,
                                    std::int64_t completed) {
      (void)target; (void)dispatch_s; (void)complete_s; (void)completed;
    }
    /// A request reached a terminal state (not fired for evict_all —
    /// the evicted requests are the return value there).
    virtual void on_finished(const Request& req, Outcome outcome,
                             DropReason reason, double at_s) {
      (void)req; (void)outcome; (void)reason; (void)at_s;
    }
  };

  /// Maps an engine-promised ticket completion time to the time the
  /// session's event loop will observe (identity when empty). The
  /// cluster uses this to model node wedges: completions promised
  /// inside a wedge window slip to the window's end.
  using CompletionMap = std::function<double(double)>;

  /// `label` namespaces observability: metrics become
  /// "serve.<label>.*" and trace lanes "<label> serve ..." (empty label
  /// = the Server's classic "serve.*" names). Targets stay caller-owned.
  Session(std::vector<core::Target*> targets, ServerConfig config,
          std::string label = {}, Observer* observer = nullptr,
          CompletionMap completion_map = {});
  ~Session();  // out of line: TargetState is incomplete here
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Admit one request at time `now`. Returns false when bounced at
  /// admission (queue full); `force` bypasses the capacity check for
  /// failover replays that must not bounce.
  bool offer(const Request& req, double now, bool force = false);

  /// Next event times (+inf when that event class is not scheduled).
  double next_complete_s() const noexcept;
  double next_drop_s() const noexcept;
  double next_flush_s() const noexcept;

  /// Event handlers; call with the time returned by the matching
  /// next_*_s(). May throw only when every target has failed.
  void on_complete(double now);
  void on_drop(double now);
  void on_flush(double now);

  /// Node failover: cancel every in-flight ticket and drain the queue,
  /// marking all affected requests kDropped/kFailover at `now`, and
  /// return them (in-flight first, then queued, both in order) for
  /// replay elsewhere. Targets stay usable (rejoin resubmits to them).
  std::vector<Request> evict_all(double now);

  /// Seal the session: final percentiles, per-target stats, scheduler
  /// span. Call exactly once, after the last event.
  ServeReport finish();

  bool has_capacity() const noexcept;
  /// Room for one more request of class `slo`: queue capacity AND the
  /// class's quota both have headroom. With default quotas this is
  /// exactly has_capacity() — the router's class-aware admission probe.
  bool has_capacity_for(SloClass slo) const noexcept;
  std::size_t queue_depth() const noexcept { return pending_.size(); }
  std::size_t inflight() const noexcept;  ///< requests inside tickets
  bool idle() const noexcept;             ///< nothing queued or in flight
  bool all_disabled() const noexcept;     ///< every target failed
  const std::string& label() const noexcept { return label_; }

 private:
  struct Flight;
  struct TargetState;

  void bind_observability();
  std::string mname(const std::string& suffix) const;
  util::Gauge& inflight_gauge(std::size_t i);
  void alloc_slot(std::size_t idx);
  void emit_request_spans(std::size_t idx, double end_s);
  void sample_depth();
  double head_arrival() const;
  void mark_dropped(std::size_t idx, DropReason reason);
  void drop_head();
  int pick_target(bool idle_only) const;
  void dispatch(int which, std::size_t n);
  void try_dispatch(bool force);
  void drop_flight(const Flight& fl, DropReason reason);
  void fail_target(int which, std::exception_ptr err);
  void complete_flight(int which, std::size_t fidx);

  ServerConfig config_;
  std::string label_;
  std::string lane_prefix_;
  Observer* observer_ = nullptr;
  CompletionMap map_;
  std::vector<TargetState> states_;
  ServeReport report_;
  std::deque<std::size_t> pending_;
  /// Queued requests per SloClass (class_quota admission bookkeeping).
  std::array<std::size_t, kSloClassCount> queued_by_class_{};
  double now_ = 0.0;

  util::Counter* m_offered_ = nullptr;
  util::Counter* m_accepted_ = nullptr;
  util::Counter* m_rejected_ = nullptr;
  util::Counter* m_dropped_ = nullptr;
  util::Counter* m_drop_deadline_ = nullptr;
  util::Counter* m_drop_inflight_ = nullptr;
  util::Counter* m_drop_failover_ = nullptr;
  util::Counter* m_completed_ = nullptr;
  util::Counter* m_batches_ = nullptr;
  util::Counter* m_disabled_ = nullptr;
  util::Gauge* g_depth_ = nullptr;
  util::Histogram* h_batch_ = nullptr;
  util::Histogram* h_latency_ = nullptr;

  int queue_lane_ = -1;
  int sched_lane_ = -1;
  std::priority_queue<int, std::vector<int>, std::greater<>> free_slots_;
  int next_slot_ = 0;
  std::vector<int> slot_of_;
  /// When each request claimed its slot lane (admission time). Request
  /// spans start here, not at arrival_s: a failover replay keeps its
  /// original arrival, which may predate the recycled lane's previous
  /// span — spans on a slot lane must stay disjoint.
  std::vector<double> slot_claim_s_;
};

/// The serving frontend. Owns no targets — callers keep them alive for
/// the server's lifetime. Not thread-safe (one run at a time).
class Server {
 public:
  Server(std::vector<core::Target*> targets, ServerConfig config = {});

  /// Serve a finite arrival trace (sorted by arrival_s; throws
  /// std::invalid_argument otherwise) to completion.
  ServeReport run(const std::vector<Request>& requests);

  /// Pull up to `limit` items (-1 = until exhaustion) from `source`,
  /// stamping each with the next arrival time from `next_arrival_s`
  /// (e.g. PoissonArrivals), then serve the trace: Sources produce the
  /// payloads, the arrival process produces the times.
  ServeReport run(core::Source& source,
                  const std::function<double()>& next_arrival_s,
                  std::int64_t limit = -1);

  const ServerConfig& config() const noexcept { return config_; }
  std::size_t target_count() const noexcept { return targets_.size(); }

 private:
  ServerConfig config_;
  std::vector<core::Target*> targets_;
};

}  // namespace ncsw::serve
