// The always-on serving frontend: admission control + dynamic batching
// + a heterogeneous dispatcher over the paper's Target abstraction.
//
// The paper's Section III closes with applications that "run a specific
// subset of inputs on a GPU, and at the same time another subset on ...
// several VPUs"; ext_mixed_targets plans that split *offline* with
// core::plan_partition. This layer is the online generalisation: an
// open-loop stream of requests flows through
//
//   arrivals --> [admission queue] --> [batcher] --> [dispatcher] --> Targets
//                 bounded, reject      size/timeout   online per-target
//                 on full; deadline    hybrid flush   throughput EWMA,
//                 drops                               submit/poll window
//                                                     per target, picks
//                                                     the one that clears
//                                                     work fastest
//
// entirely on the simulated clock: the server is a single-threaded
// discrete-event loop (arrival / ticket-completion / flush-timeout /
// deadline-drop events processed in time order with a fixed tie-break),
// so a given arrival trace always produces byte-identical results. The
// feedback estimator replaces plan_partition's one-shot split: when a
// batch returns slow — e.g. the health machinery quarantined a stick
// mid-batch — the target's throughput estimate sinks and the dispatcher
// rebalances the following batches toward the healthy engines.
//
// The dispatcher pipelines over the async Target API
// (docs/async-targets.md): each batch becomes a core::Ticket via
// Target::submit and the event loop advances on ticket completion
// timestamps, so up to inflight_window batches overlap per target — the
// serving-side analogue of NCAPI's LoadTensor/GetResult split — instead
// of the dispatcher blocking on each shard. A target whose ticket fails
// (every stick gone) has its outstanding tickets cancelled and is taken
// out of rotation; the failure only propagates once no target is left.
//
// Observability (schemas in docs/architecture.md): serve.* counters and
// gauges in the metrics registry (incl. per-target serve.inflight.*
// window occupancy), and when the tracer is armed, ticket spans on per-
// window "serve <target> w<k>" lanes, queue instants + a queue-depth
// counter track, and a per-request lifecycle span (request ⊃ queued +
// service) on a bounded pool of "serve slot<k>" lanes so spans on every
// lane nest.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "core/source.h"
#include "core/target.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace ncsw::serve {

/// One inference request entering the frontend (one image of work).
struct Request {
  std::int64_t id = 0;
  double arrival_s = 0.0;  ///< simulated arrival time (non-decreasing)
  int label = -1;          ///< optional ground-truth passthrough
  std::string tag;         ///< stable identifier for traces / joins
};

/// What became of a request.
enum class Outcome : int {
  kCompleted = 0,  ///< served; latency_s() is meaningful
  kRejected = 1,   ///< bounced at admission (queue full)
  kDropped = 2,    ///< left the queue past its deadline, or lost in-flight
};

/// Stable lowercase name ("completed", "rejected", "dropped").
const char* outcome_name(Outcome o);

/// Per-request lifecycle log entry.
struct RequestRecord {
  Request request;
  Outcome outcome = Outcome::kCompleted;
  int target = -1;          ///< index into the server's target list, -1 none
  double dispatch_s = 0.0;  ///< when its batch left the queue
  double complete_s = 0.0;  ///< batch completion / drop / reject time

  double latency_s() const noexcept { return complete_s - request.arrival_s; }
  double queue_wait_s() const noexcept {
    return dispatch_s - request.arrival_s;
  }
};

/// Frontend policy knobs.
struct ServerConfig {
  /// Admission bound: requests allowed to wait in the queue; an arrival
  /// finding it full is rejected (clamped to >= 1).
  std::size_t queue_capacity = 64;
  /// A request not dispatched within this much simulated time of its
  /// arrival is dropped from the queue (infinity = never).
  double queue_deadline_s = std::numeric_limits<double>::infinity();
  /// Flush a partial batch once its oldest member waited this long.
  double batch_timeout_s = 0.050;
  /// Global batch cap, clamped to each target's max_batch() (>= 1).
  int max_batch = 8;
  /// EWMA weight of a new completed-batch throughput observation.
  double estimator_gain = 0.25;
  /// Assumed img/s for a target with no completed batch yet (free
  /// unobserved targets are explored first regardless).
  double prior_tput = 25.0;
  /// Emit per-request slot-lane spans when the tracer is armed (batch
  /// spans and queue instants are always emitted when it is).
  bool trace_requests = true;
  /// In-flight window applied to every target at the start of a run
  /// (Target::set_inflight_window): how many submitted batches may
  /// overlap per target. 0 = leave each target's own window untouched
  /// (targets default to 1, i.e. the classic one-batch-per-target
  /// dispatcher).
  int inflight_window = 0;
};

/// Per-target serving statistics.
struct TargetStats {
  std::string label;  ///< target short name
  std::int64_t batches = 0;
  std::int64_t images = 0;
  double busy_s = 0.0;     ///< total simulated service time (flights can
                           ///< overlap, so this may exceed the makespan)
  double tput_est = 0.0;   ///< final online throughput estimate (img/s)
  int window = 1;          ///< in-flight window the run used
  int max_inflight = 0;    ///< peak concurrently submitted batches
  /// Self-healing rollups summed over this target's TimedRuns.
  std::int64_t images_replayed = 0;
  std::int64_t images_lost = 0;
  int sticks_recovered = 0;
  int sticks_dead = 0;
};

/// Result of serving one arrival trace.
struct ServeReport {
  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t completed = 0;
  double first_arrival_s = 0.0;
  double last_complete_s = 0.0;
  util::RunningStats latency_ms;  ///< completed requests only
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::size_t max_queue_depth = 0;
  std::vector<TargetStats> targets;
  /// Per-request log in arrival order (one entry per offered request).
  std::vector<RequestRecord> records;

  /// Wall of the simulated run: first arrival to last completion.
  double makespan_s() const noexcept {
    return last_complete_s > first_arrival_s
               ? last_complete_s - first_arrival_s
               : 0.0;
  }
  /// Completed requests per simulated second — the serving metric that
  /// admission control protects (rejected work costs nothing here).
  double goodput() const noexcept {
    const double m = makespan_s();
    return m > 0.0 ? static_cast<double>(completed) / m : 0.0;
  }
};

/// The serving frontend. Owns no targets — callers keep them alive for
/// the server's lifetime. Not thread-safe (one run at a time).
class Server {
 public:
  Server(std::vector<core::Target*> targets, ServerConfig config = {});

  /// Serve a finite arrival trace (sorted by arrival_s; throws
  /// std::invalid_argument otherwise) to completion.
  ServeReport run(const std::vector<Request>& requests);

  /// Pull up to `limit` items (-1 = until exhaustion) from `source`,
  /// stamping each with the next arrival time from `next_arrival_s`
  /// (e.g. PoissonArrivals), then serve the trace: Sources produce the
  /// payloads, the arrival process produces the times.
  ServeReport run(core::Source& source,
                  const std::function<double()>& next_arrival_s,
                  std::int64_t limit = -1);

  const ServerConfig& config() const noexcept { return config_; }
  std::size_t target_count() const noexcept { return targets_.size(); }

 private:
  struct TargetState;

  ServerConfig config_;
  std::vector<core::Target*> targets_;
};

}  // namespace ncsw::serve
