// Residency policy for the multi-tenant model zoo: which of M compiled
// graphs lives on which of K sticks, and who gets evicted on a miss.
//
// Pure policy — no mvnc calls. The ZooServer event loop owns the clock
// and the fleet; this class owns the placement state (resident model,
// install time, last use per stick) and answers two questions:
//
//   * where does a request for model m run right now (hit: the resident
//     stick set), and
//   * on a miss, which stick should give up its graph (plan_swap).
//
// Three placements:
//
//   kStatic    — model m is pinned to stick m % K, the offline
//                partitioning a zoo without a residency layer would
//                hard-code. Misses always swap the pinned stick, so two
//                models sharing a stick thrash no matter how expensive
//                their graphs are. The bench baseline.
//   kLru       — evict the least-recently-used stick. Classic, but
//                blind to the fact that re-loading alexnet costs ~50x
//                squeezenet (graph blob MiBs through mvncAllocateGraph).
//   kCostAware — GreedyDual-style: evict the stick minimising
//                last_use + swap_in_cost(resident), i.e. prefer victims
//                that are cold AND cheap to bring back. Costs come from
//                the fleet's calibration pass (StickFleet::swap_in_cost_s).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ncsw::serve {

/// Placement policy selector.
enum class Placement : int { kStatic = 0, kLru, kCostAware };

/// Stable lowercase name ("static", "lru", "cost-aware").
const char* placement_name(Placement p);

/// Parse a placement name (the bench's --placement flag). Throws
/// std::invalid_argument on anything else.
Placement placement_from_name(const std::string& name);

struct ResidencyConfig {
  Placement placement = Placement::kCostAware;
  /// A freshly installed graph may not be evicted again within this much
  /// simulated time (anti-thrash hysteresis; 0 = none). Ignored by
  /// kStatic, whose victim is forced by the pinning.
  double min_residency_s = 0.0;
};

/// Swap decision for a missing model.
struct SwapPlan {
  int stick = -1;   ///< victim stick, -1 = no stick may swap right now
  int victim = -1;  ///< model being evicted there (-1 = stick was empty)
};

class ResidencyManager {
 public:
  ResidencyManager(int sticks, int models, ResidencyConfig config = {});

  int sticks() const noexcept { return static_cast<int>(state_.size()); }
  int models() const noexcept { return models_; }
  const ResidencyConfig& config() const noexcept { return config_; }

  /// Price of bringing model `m` onto a stick (kCostAware scoring).
  void set_swap_cost(int model, double cost_s);
  double swap_cost(int model) const { return cost_s_.at(model); }

  /// Record that `stick` now holds `model` (initial residency, or after
  /// the fleet completed a swap).
  void install(int stick, int model, double now_s);
  /// Record a dispatch to `stick` (recency for LRU / cost-aware).
  void touch(int stick, double now_s);

  int resident(int stick) const { return state_.at(stick).model; }
  bool is_resident(int model) const;
  /// Sticks currently holding `model`, ascending.
  std::vector<int> sticks_of(int model) const;

  /// Victim choice for a missing `model` at `now_s`. kStatic returns
  /// the pinned stick unconditionally; kLru/kCostAware return the
  /// best-scoring stick outside its hysteresis window, or stick = -1
  /// when every stick is still inside one (the caller queues the work
  /// until a window expires or a hit frees capacity).
  SwapPlan plan_swap(int model, double now_s) const;

  /// Earliest time some stick leaves its hysteresis window (the instant
  /// a stalled plan_swap can succeed again). Now or earlier when any
  /// stick is already evictable; the ZooServer's idle-stall event.
  double earliest_unlock_s() const;

 private:
  struct Stick {
    int model = -1;
    double installed_s = 0.0;
    double last_use_s = 0.0;
  };

  ResidencyConfig config_;
  int models_ = 0;
  std::vector<Stick> state_;
  std::vector<double> cost_s_;
};

}  // namespace ncsw::serve
