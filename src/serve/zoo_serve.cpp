#include "serve/zoo_serve.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "check/serve_check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace ncsw::serve {

namespace {

/// Terminal state of one zoo request.
enum class ZooOutcome : int { kQueued = 0, kCompleted, kRejected, kDropped };

struct Rec {
  ZooRequest req;
  ZooOutcome outcome = ZooOutcome::kQueued;
  double dispatch_s = 0.0;
  double complete_s = 0.0;
};

/// Scheduling priority of a queue head: class first (interactive jumps
/// ahead of batch regardless of age), then arrival, then model index as
/// the deterministic tie-break.
struct HeadKey {
  bool has = false;
  int cls = 0;
  double arrival_s = 0.0;
  int model = 0;

  bool before(const HeadKey& o) const noexcept {
    if (has != o.has) return has;
    if (cls != o.cls) return cls < o.cls;
    if (arrival_s != o.arrival_s) return arrival_s < o.arrival_s;
    return model < o.model;
  }
};

/// One outstanding ticket on one stick.
struct Flight {
  bool active = false;
  core::Ticket ticket;
  int model = -1;
  std::vector<std::size_t> recs;
  double dispatch_s = 0.0;
  double complete_s = 0.0;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ZooServer::ZooServer(core::StickFleet& fleet, ZooConfig config)
    : fleet_(fleet), config_(config) {
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (config_.max_batch < 1) {
    throw std::invalid_argument("ZooServer: max_batch < 1");
  }
  if (!(config_.queue_deadline_s > 0.0)) {
    throw std::invalid_argument("ZooServer: queue_deadline_s <= 0");
  }
}

ZooReport ZooServer::run(const std::vector<ZooRequest>& requests) {
  const int K = fleet_.devices();
  const int M = fleet_.models();

  // The residency manager mirrors the fleet's current placement and
  // prices evictions with the fleet's calibrated swap-in costs.
  ResidencyManager rm(K, M, config_.residency);
  for (int m = 0; m < M; ++m) rm.set_swap_cost(m, fleet_.swap_in_cost_s(m));
  for (int d = 0; d < K; ++d) {
    if (fleet_.resident_model(d) >= 0) {
      rm.install(d, fleet_.resident_model(d), 0.0);
    }
  }

  std::vector<Rec> recs;
  recs.reserve(requests.size());
  // queues[m][c]: FIFO of record indices for model m, class c. Per-class
  // sub-queues keep the head of each (model, class) pair the earliest
  // deadline of that pair, so deadline drops only ever scan heads.
  std::vector<std::array<std::deque<std::size_t>, kSloClassCount>> queues(
      static_cast<std::size_t>(M));
  std::size_t queued_total = 0;
  std::array<std::size_t, kSloClassCount> queued_by_class{};

  std::vector<Flight> flights(static_cast<std::size_t>(K));
  std::vector<double> busy_until(static_cast<std::size_t>(K), 0.0);
  std::vector<char> swap_pending(static_cast<std::size_t>(K), 0);

  ZooReport report;
  report.models.resize(static_cast<std::size_t>(M));
  for (int m = 0; m < M; ++m) report.models[m].name = fleet_.model_name(m);
  const std::int64_t swaps0 = fleet_.swaps();

  double last_arrival = -kInf;
  for (const auto& r : requests) {
    if (r.arrival_s < last_arrival) {
      throw std::invalid_argument("ZooServer: arrivals not sorted");
    }
    if (r.model < 0 || r.model >= M) {
      throw std::invalid_argument("ZooServer: model index out of range");
    }
    last_arrival = r.arrival_s;
  }
  report.first_arrival_s = requests.empty() ? 0.0 : requests[0].arrival_s;

  const auto head_key = [&](int m) {
    HeadKey key;
    for (int c = 0; c < static_cast<int>(kSloClassCount); ++c) {
      const auto& q = queues[m][c];
      if (q.empty()) continue;
      key.has = true;
      key.cls = c;
      key.arrival_s = recs[q.front()].req.arrival_s;
      key.model = m;
      return key;
    }
    return key;
  };

  const auto stick_free = [&](int d, double now) {
    return !flights[d].active && busy_until[d] <= now;
  };

  // One scheduling pass at `now`: repeatedly take the best-priority
  // action (dispatch resident work, or swap a missing model in) until
  // no free stick can make progress. Every action consumes a free
  // stick, so the pass terminates.
  const auto pass = [&](double now) {
    for (;;) {
      HeadKey best;
      int best_stick = -1;
      bool best_is_swap = false;
      for (int d = 0; d < K; ++d) {
        if (!stick_free(d, now)) continue;
        const int r = fleet_.resident_model(d);
        if (r < 0) continue;
        const HeadKey key = head_key(r);
        if (key.has && key.before(best)) {
          best = key;
          best_stick = d;
          best_is_swap = false;
        }
      }
      for (int m = 0; m < M; ++m) {
        if (rm.is_resident(m)) continue;
        const HeadKey key = head_key(m);
        if (!key.has || !key.before(best)) continue;
        const SwapPlan plan = rm.plan_swap(m, now);
        if (plan.stick < 0 || !stick_free(plan.stick, now)) continue;
        best = key;
        best_stick = plan.stick;
        best_is_swap = true;
      }
      if (!best.has) return;

      if (best_is_swap) {
        // swap_to drains + deallocates + allocates under the verifiers
        // and emits the swap trace span on the stick's lane.
        const double done = fleet_.swap_to(best_stick, best.model, now);
        rm.install(best_stick, best.model, done);
        report.swaps += 1;
        report.swap_stall_s += done - now;
        report.models[best.model].swaps_in += 1;
        busy_until[best_stick] = done;
        swap_pending[best_stick] = 1;
        continue;
      }

      Flight& f = flights[best_stick];
      f.recs.clear();
      for (int c = 0; c < static_cast<int>(kSloClassCount) &&
                      static_cast<int>(f.recs.size()) < config_.max_batch;
           ++c) {
        auto& q = queues[best.model][c];
        while (!q.empty() &&
               static_cast<int>(f.recs.size()) < config_.max_batch) {
          f.recs.push_back(q.front());
          q.pop_front();
          --queued_total;
          --queued_by_class[c];
        }
      }
      check::serve_verifier().on_zoo_dispatch(
          fleet_.stick(best_stick).short_name(),
          fleet_.model_name(fleet_.resident_model(best_stick)),
          fleet_.model_name(best.model), now);
      auto& stick = fleet_.stick(best_stick);
      f.ticket = stick.submit(static_cast<std::int64_t>(f.recs.size()),
                              /*batch=*/1, now);
      const auto info = stick.info(f.ticket);
      f.active = true;
      f.model = best.model;
      f.dispatch_s = now;
      f.complete_s = info.complete_s;
      busy_until[best_stick] = info.complete_s;
      rm.touch(best_stick, now);
      for (const std::size_t i : f.recs) recs[i].dispatch_s = now;
    }
  };

  auto& tr = util::tracer();
  std::size_t next_arrival = 0;
  double end_s = report.first_arrival_s;
  double last_stall = -kInf;

  for (;;) {
    // Next event of each kind; fixed tie order complete < ready < drop
    // < arrive keeps the loop deterministic.
    double t_complete = kInf;
    int complete_stick = -1;
    for (int d = 0; d < K; ++d) {
      if (flights[d].active && flights[d].complete_s < t_complete) {
        t_complete = flights[d].complete_s;
        complete_stick = d;
      }
    }
    double t_ready = kInf;
    int ready_stick = -1;
    for (int d = 0; d < K; ++d) {
      if (swap_pending[d] && busy_until[d] < t_ready) {
        t_ready = busy_until[d];
        ready_stick = d;
      }
    }
    double t_drop = kInf;
    int drop_model = -1, drop_class = -1;
    if (queued_total > 0 && std::isfinite(config_.queue_deadline_s)) {
      for (int m = 0; m < M; ++m) {
        for (int c = 0; c < static_cast<int>(kSloClassCount); ++c) {
          if (queues[m][c].empty()) continue;
          const double due = recs[queues[m][c].front()].req.arrival_s +
                             config_.queue_deadline_s;
          if (due < t_drop) {
            t_drop = due;
            drop_model = m;
            drop_class = c;
          }
        }
      }
    }
    const double t_arrive = next_arrival < requests.size()
                                ? requests[next_arrival].arrival_s
                                : kInf;

    double now = std::min(std::min(t_complete, t_ready),
                          std::min(t_drop, t_arrive));
    if (now == kInf) {
      if (queued_total == 0) break;
      // All sticks idle, queued work not resident, every stick inside
      // its hysteresis window: advance to the earliest unlock.
      now = std::max(end_s, rm.earliest_unlock_s());
      if (now == last_stall) {
        throw std::logic_error("ZooServer: scheduler stalled");
      }
      last_stall = now;
      pass(now);
      continue;
    }

    if (now == t_complete) {
      Flight& f = flights[complete_stick];
      fleet_.stick(complete_stick).wait(f.ticket);
      for (const std::size_t i : f.recs) {
        recs[i].outcome = ZooOutcome::kCompleted;
        recs[i].complete_s = f.complete_s;
      }
      report.completed += static_cast<std::int64_t>(f.recs.size());
      report.models[f.model].completed +=
          static_cast<std::int64_t>(f.recs.size());
      end_s = std::max(end_s, f.complete_s);
      report.last_complete_s = std::max(report.last_complete_s, f.complete_s);
      if (tr.enabled()) {
        tr.complete("zoo", "batch:" + fleet_.model_name(f.model),
                    tr.lane("zoo " +
                            fleet_.stick(complete_stick).short_name()),
                    f.dispatch_s, f.complete_s,
                    {util::TraceArg::num(
                        "images", static_cast<std::int64_t>(f.recs.size()))});
      }
      f.active = false;
      f.recs.clear();
    } else if (now == t_ready) {
      swap_pending[ready_stick] = 0;
      end_s = std::max(end_s, now);
    } else if (now == t_drop) {
      auto& q = queues[drop_model][drop_class];
      const std::size_t i = q.front();
      q.pop_front();
      --queued_total;
      --queued_by_class[drop_class];
      recs[i].outcome = ZooOutcome::kDropped;
      recs[i].complete_s = now;
      report.dropped += 1;
      end_s = std::max(end_s, now);
    } else {
      const ZooRequest& req = requests[next_arrival++];
      report.offered += 1;
      report.models[req.model].offered += 1;
      const int cls = static_cast<int>(req.slo);
      const bool admit = queued_total < config_.queue_capacity &&
                         queued_by_class[cls] < config_.class_quota[cls];
      recs.push_back(Rec{req, ZooOutcome::kQueued, 0.0, 0.0});
      if (!admit) {
        recs.back().outcome = ZooOutcome::kRejected;
        recs.back().complete_s = req.arrival_s;
        report.rejected += 1;
      } else {
        report.accepted += 1;
        // Admission-time residency is the hit/miss the tenant observes:
        // resident -> the request can run without a swap in front of it.
        if (rm.is_resident(req.model)) {
          report.hits += 1;
        } else {
          report.misses += 1;
        }
        queues[req.model][cls].push_back(recs.size() - 1);
        ++queued_total;
        ++queued_by_class[cls];
      }
      end_s = std::max(end_s, req.arrival_s);
    }

    pass(now);
  }

  // ------------------------------------------------------------ finish
  std::vector<double> lat_ms;
  std::array<std::vector<double>, kSloClassCount> class_lat_ms;
  lat_ms.reserve(recs.size());
  for (const auto& r : recs) {
    auto& cs = report.classes[static_cast<int>(r.req.slo)];
    cs.offered += 1;
    switch (r.outcome) {
      case ZooOutcome::kCompleted: {
        cs.completed += 1;
        const double ms = (r.complete_s - r.req.arrival_s) * 1e3;
        report.latency_ms.add(ms);
        lat_ms.push_back(ms);
        class_lat_ms[static_cast<int>(r.req.slo)].push_back(ms);
        break;
      }
      case ZooOutcome::kRejected:
        cs.rejected += 1;
        break;
      case ZooOutcome::kDropped:
        cs.dropped += 1;
        break;
      case ZooOutcome::kQueued:
        throw std::logic_error("ZooServer: request left queued at finish");
    }
  }
  report.p50_ms = util::percentile(lat_ms, 50.0);
  report.p95_ms = util::percentile(lat_ms, 95.0);
  report.p99_ms = util::percentile(lat_ms, 99.0);
  for (int c = 0; c < static_cast<int>(kSloClassCount); ++c) {
    report.classes[c].p99_ms = util::percentile(class_lat_ms[c], 99.0);
  }
  report.installs = fleet_.installs();
  report.evicts = fleet_.evicts();
  report.resident = fleet_.resident_count();
  (void)swaps0;  // fleet-level swap delta equals report.swaps by design

  auto& metrics = util::metrics();
  metrics.counter("serve.zoo.offered").add(report.offered);
  metrics.counter("serve.zoo.completed").add(report.completed);
  metrics.counter("serve.zoo.hits").add(report.hits);
  metrics.counter("serve.zoo.misses").add(report.misses);

  check::serve_verifier().on_zoo_finish(
      "zoo", report.offered, report.completed, report.rejected,
      report.dropped, report.installs, report.evicts, report.resident, end_s);

  if (tr.enabled()) {
    tr.complete(
        "zoo", "zoo run", tr.lane("zoo sched"), report.first_arrival_s, end_s,
        {util::TraceArg::num("offered", report.offered),
         util::TraceArg::num("accepted", report.accepted),
         util::TraceArg::num("completed", report.completed),
         util::TraceArg::num("rejected", report.rejected),
         util::TraceArg::num("dropped", report.dropped),
         util::TraceArg::num("hits", report.hits),
         util::TraceArg::num("misses", report.misses),
         util::TraceArg::num("swaps", report.swaps)});
  }
  return report;
}

}  // namespace ncsw::serve
