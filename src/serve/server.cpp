#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "util/trace.h"

namespace ncsw::serve {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDropped: return "dropped";
  }
  return "?";
}

namespace {
/// One submitted-but-unretrieved batch (a core::Ticket plus the serve
/// bookkeeping riding with it).
struct Flight {
  core::Ticket ticket;
  double dispatch_s = 0.0;
  double complete_s = 0.0;  ///< ticket completion timestamp
  int wlane = -1;           ///< "serve <label> w<k>" trace slot, -1 none
  std::vector<std::size_t> inflight;  ///< record indices being served
};
}  // namespace

/// Dispatcher-side view of one target.
struct Server::TargetState {
  core::Target* target = nullptr;
  std::string label;
  int max_batch = 1;
  int window = 1;
  double tput_est = 0.0;  ///< img/s EWMA
  bool observed = false;  ///< at least one completed batch
  bool disabled = false;  ///< a ticket failed; out of rotation
  std::deque<Flight> flights;  ///< dispatch order
  /// Free "w<k>" trace-lane slots: a flight takes the lowest free slot
  /// at dispatch and returns it at completion, so each w-lane carries
  /// disjoint ticket spans even when flights retire out of order.
  std::priority_queue<int, std::vector<int>, std::greater<>> free_wlanes;
  int next_wlane = 0;
  TargetStats stats;

  bool has_slot() const {
    return !disabled && static_cast<int>(flights.size()) < window;
  }
};

Server::Server(std::vector<core::Target*> targets, ServerConfig config)
    : config_(config), targets_(std::move(targets)) {
  if (targets_.empty()) {
    throw std::invalid_argument("Server: no targets");
  }
  for (auto* t : targets_) {
    if (!t) throw std::invalid_argument("Server: null target");
  }
  if (config_.queue_capacity < 1) config_.queue_capacity = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (!(config_.batch_timeout_s >= 0.0)) {
    throw std::invalid_argument("Server: bad batch_timeout_s");
  }
  if (!(config_.queue_deadline_s > 0.0)) {
    throw std::invalid_argument("Server: bad queue_deadline_s");
  }
  if (!(config_.estimator_gain > 0.0) || config_.estimator_gain > 1.0) {
    throw std::invalid_argument("Server: estimator_gain must be in (0, 1]");
  }
  if (!(config_.prior_tput > 0.0)) {
    throw std::invalid_argument("Server: prior_tput must be > 0");
  }
  if (config_.inflight_window < 0) {
    throw std::invalid_argument("Server: inflight_window must be >= 0");
  }
}

ServeReport Server::run(core::Source& source,
                        const std::function<double()>& next_arrival_s,
                        std::int64_t limit) {
  if (!next_arrival_s) {
    throw std::invalid_argument("Server::run: null arrival process");
  }
  std::vector<Request> requests;
  std::int64_t id = 0;
  while (limit < 0 || id < limit) {
    auto item = source.next();
    if (!item) break;
    Request req;
    req.id = id++;
    req.arrival_s = next_arrival_s();
    req.label = item->label;
    req.tag = std::move(item->id);
    requests.push_back(std::move(req));
  }
  return run(requests);
}

ServeReport Server::run(const std::vector<Request>& requests) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!std::isfinite(requests[i].arrival_s) ||
        (i > 0 && requests[i].arrival_s < requests[i - 1].arrival_s)) {
      throw std::invalid_argument(
          "Server::run: arrivals must be finite and sorted");
    }
  }

  ServeReport report;
  report.offered = static_cast<std::int64_t>(requests.size());
  report.records.reserve(requests.size());
  for (const auto& req : requests) {
    RequestRecord rec;
    rec.request = req;
    report.records.push_back(std::move(rec));
  }
  auto& records = report.records;

  std::vector<TargetState> states(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    TargetState& ts = states[i];
    ts.target = targets_[i];
    ts.label = targets_[i]->short_name();
    ts.max_batch =
        std::max(1, std::min(config_.max_batch, targets_[i]->max_batch()));
    if (config_.inflight_window > 0) {
      targets_[i]->set_inflight_window(config_.inflight_window);
    }
    ts.window = targets_[i]->inflight_window();
    ts.tput_est = config_.prior_tput;
    ts.stats.label = ts.label;
    ts.stats.window = ts.window;
  }

  auto& reg = util::metrics();
  util::Counter& m_offered = reg.counter("serve.offered");
  util::Counter& m_accepted = reg.counter("serve.accepted");
  util::Counter& m_rejected = reg.counter("serve.rejected");
  util::Counter& m_dropped = reg.counter("serve.dropped");
  util::Counter& m_completed = reg.counter("serve.completed");
  util::Counter& m_batches = reg.counter("serve.batches");
  util::Counter& m_disabled = reg.counter("serve.targets_disabled");
  util::Gauge& g_depth = reg.gauge("serve.queue_depth");
  util::Histogram& h_batch = reg.histogram(
      "serve.batch_size", {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64});
  util::Histogram& h_latency = reg.histogram(
      "serve.latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
  // Per-target window occupancy (how deep the pipeline actually ran).
  auto inflight_gauge = [&reg](std::size_t i) -> util::Gauge& {
    return reg.gauge("serve.inflight.target" + std::to_string(i));
  };

  auto& tr = util::tracer();
  int queue_lane = -1, sched_lane = -1;
  if (tr.enabled()) {
    sched_lane = tr.lane("serve sched");
    queue_lane = tr.lane("serve queue");
  }

  // Per-request trace lanes: a request occupies the lowest free "serve
  // slot<k>" lane from admission to completion/drop, so each slot lane
  // carries disjoint request spans (with queued/service children nested
  // inside) and the whole trace stays lint-clean. The pool is bounded by
  // queue capacity + in-flight work.
  std::priority_queue<int, std::vector<int>, std::greater<>> free_slots;
  int next_slot = 0;
  std::vector<int> slot_of(records.size(), -1);
  const bool trace_req = config_.trace_requests;
  auto alloc_slot = [&](std::size_t idx) {
    if (!tr.enabled() || !trace_req) return;
    int slot;
    if (free_slots.empty()) {
      slot = next_slot++;
    } else {
      slot = free_slots.top();
      free_slots.pop();
    }
    slot_of[idx] = slot;
  };
  auto emit_request_spans = [&](std::size_t idx, double end_s) {
    const int slot = slot_of[idx];
    if (slot < 0) return;
    const RequestRecord& rec = records[idx];
    const double a = rec.request.arrival_s;
    const int lane = tr.lane("serve slot" + std::to_string(slot));
    tr.complete("serve.req", "request", lane, a, end_s,
                {util::TraceArg::num("id", rec.request.id),
                 util::TraceArg::str("outcome", outcome_name(rec.outcome))});
    if (rec.outcome == Outcome::kCompleted) {
      tr.complete("serve.req", "queued", lane, a, rec.dispatch_s,
                  {util::TraceArg::str("target", states[static_cast<
                       std::size_t>(rec.target)].label)});
      tr.complete("serve.req", "service", lane, rec.dispatch_s, end_s);
    } else {
      tr.complete("serve.req", "queued", lane, a, end_s);
    }
    free_slots.push(slot);
    slot_of[idx] = -1;
  };

  std::deque<std::size_t> pending;
  std::size_t next_arrival = 0;
  double now = 0.0;

  auto sample_depth = [&] {
    const auto depth = pending.size();
    g_depth.set(static_cast<double>(depth));
    report.max_queue_depth = std::max(report.max_queue_depth, depth);
    if (tr.enabled()) {
      tr.counter("serve.queue_depth", now, static_cast<double>(depth));
    }
  };
  auto head_arrival = [&] {
    return records[pending.front()].request.arrival_s;
  };
  auto drop_head = [&] {
    const std::size_t idx = pending.front();
    pending.pop_front();
    RequestRecord& rec = records[idx];
    rec.outcome = Outcome::kDropped;
    rec.complete_s = now;
    ++report.dropped;
    m_dropped.add(1);
    if (tr.enabled()) {
      if (queue_lane >= 0) tr.instant("serve", "drop", queue_lane, now);
      emit_request_spans(idx, now);
    }
  };

  // Pick the target with a free window slot expected to clear work
  // fastest: unobserved targets first (everyone gets explored early),
  // then idle engines before double-buffering a busy one (a batch
  // committed to a deep window cannot be rebalanced later), then the
  // highest throughput estimate; ties resolve to the lowest index, which
  // keeps the whole schedule deterministic.
  auto pick_target = [&](bool idle_only) -> int {
    int best = -1;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (!states[i].has_slot()) continue;
      if (idle_only && !states[i].flights.empty()) continue;
      const int ci = static_cast<int>(i);
      if (best < 0) {
        best = ci;
        continue;
      }
      const TargetState& b = states[static_cast<std::size_t>(best)];
      const TargetState& c = states[i];
      if (!c.observed && b.observed) {
        best = ci;
      } else if (c.observed == b.observed) {
        const bool c_idle = c.flights.empty(), b_idle = b.flights.empty();
        if (c_idle != b_idle ? c_idle : c.tput_est > b.tput_est) best = ci;
      }
    }
    return best;
  };

  auto dispatch = [&](int which, std::size_t n) {
    TargetState& ts = states[static_cast<std::size_t>(which)];
    Flight fl;
    fl.dispatch_s = now;
    fl.inflight.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = pending.front();
      pending.pop_front();
      records[idx].dispatch_s = now;
      records[idx].target = which;
      fl.inflight.push_back(idx);
    }
    const int batch = static_cast<int>(std::min<std::size_t>(
        n, static_cast<std::size_t>(ts.max_batch)));
    // Non-blocking hand-off: the ticket's completion timestamp becomes a
    // future event; the loop keeps dispatching to other slots meanwhile.
    // A failed execution still yields a ticket (completing "now"); the
    // wait() at completion surfaces it.
    fl.ticket = ts.target->submit(static_cast<std::int64_t>(n), batch, now);
    fl.complete_s = ts.target->info(fl.ticket).complete_s;
    if (tr.enabled()) {
      if (ts.free_wlanes.empty()) {
        fl.wlane = ts.next_wlane++;
      } else {
        fl.wlane = ts.free_wlanes.top();
        ts.free_wlanes.pop();
      }
    }
    ts.flights.push_back(std::move(fl));
    ts.stats.max_inflight = std::max(
        ts.stats.max_inflight, static_cast<int>(ts.flights.size()));
    inflight_gauge(static_cast<std::size_t>(which))
        .set(static_cast<double>(ts.flights.size()));
    m_batches.add(1);
    h_batch.record(static_cast<double>(n));
    sample_depth();
  };

  // Drop expired heads, then dispatch while a target has a free window
  // slot and either a full batch waiting or (on `force` / an aged head)
  // a partial one. Full batches may double-buffer into a busy engine's
  // spare slots — that is the pipelining win — but partial batches only
  // go to an idle engine: committed early to a busy one they could
  // neither grow with later arrivals nor rebalance to whichever engine
  // actually frees first.
  auto try_dispatch = [&](bool force) {
    for (;;) {
      while (!pending.empty() &&
             now >= head_arrival() + config_.queue_deadline_s) {
        drop_head();
        sample_depth();
      }
      if (pending.empty()) return;
      int which = pick_target(/*idle_only=*/false);
      if (which >= 0) {
        const auto cap = static_cast<std::size_t>(
            states[static_cast<std::size_t>(which)].max_batch);
        if (pending.size() >= cap) {
          dispatch(which, cap);
          force = false;
          continue;
        }
      }
      const bool aged = now - head_arrival() >= config_.batch_timeout_s;
      if (!aged && !force) return;
      which = pick_target(/*idle_only=*/true);
      if (which < 0) return;
      dispatch(which, pending.size());
      force = false;
    }
  };

  // Drop a flight's requests on the floor (execution failed, or the
  // ticket was cancelled when its target left rotation).
  auto drop_flight = [&](const Flight& fl) {
    for (const std::size_t idx : fl.inflight) {
      RequestRecord& rec = records[idx];
      rec.outcome = Outcome::kDropped;
      rec.complete_s = now;
      ++report.dropped;
      m_dropped.add(1);
      if (tr.enabled()) emit_request_spans(idx, now);
    }
  };

  // A ticket failed (e.g. every stick gone without allow_partial): take
  // the target out of rotation — cancel its outstanding tickets, drop
  // the affected requests — and keep serving on the remaining targets.
  // Only when no target is left does the failure propagate to the
  // caller, as the old blocking dispatcher's did.
  auto fail_target = [&](int which, std::exception_ptr err) {
    TargetState& ts = states[static_cast<std::size_t>(which)];
    for (const Flight& fl : ts.flights) {
      ts.target->cancel(fl.ticket);
      drop_flight(fl);
    }
    ts.target->cancel_outstanding();
    ts.flights.clear();
    ts.disabled = true;
    m_disabled.add(1);
    inflight_gauge(static_cast<std::size_t>(which)).set(0.0);
    const bool any_left = std::any_of(
        states.begin(), states.end(),
        [](const TargetState& s) { return !s.disabled; });
    if (!any_left) std::rethrow_exception(err);
  };

  auto complete_flight = [&](int which, std::size_t fidx) {
    TargetState& ts = states[static_cast<std::size_t>(which)];
    Flight fl = std::move(ts.flights[fidx]);
    ts.flights.erase(ts.flights.begin() +
                     static_cast<std::ptrdiff_t>(fidx));
    core::TimedRun run;
    try {
      run = ts.target->wait(fl.ticket);
    } catch (...) {
      drop_flight(fl);
      if (tr.enabled() && fl.wlane >= 0) ts.free_wlanes.push(fl.wlane);
      fail_target(which, std::current_exception());
      return;
    }
    // The engine's own execution span — not dispatch-to-retrieval, which
    // under a deep window also counts time queued behind earlier flights
    // and would sink every estimate at exactly the moment the pipeline
    // fills.
    const double duration = run.seconds;
    const auto issued = static_cast<std::int64_t>(fl.inflight.size());
    const std::int64_t ok = std::min<std::int64_t>(run.images, issued);
    for (std::size_t k = 0; k < fl.inflight.size(); ++k) {
      const std::size_t idx = fl.inflight[k];
      RequestRecord& rec = records[idx];
      rec.complete_s = now;
      if (static_cast<std::int64_t>(k) < ok) {
        rec.outcome = Outcome::kCompleted;
        ++report.completed;
        const double ms = rec.latency_s() * 1e3;
        report.latency_ms.add(ms);
        h_latency.record(ms);
      } else {
        // Lost in flight: every stick died mid-batch under allow_partial.
        rec.outcome = Outcome::kDropped;
        ++report.dropped;
        m_dropped.add(1);
      }
      if (tr.enabled()) emit_request_spans(idx, now);
    }
    report.last_complete_s = std::max(report.last_complete_s, now);
    m_completed.add(static_cast<std::uint64_t>(ok));
    reg.counter("serve.target" + std::to_string(which) + ".images")
        .add(static_cast<std::uint64_t>(ok));

    // Feedback: fold the observed clearing rate (dispatch to retrieval,
    // including time queued behind earlier flights) into the estimate. A
    // batch slowed by retries/quarantines (or with lost images) sinks the
    // estimate, steering later batches to healthier targets.
    const double observed =
        duration > 0.0 ? static_cast<double>(ok) / duration : 0.0;
    if (!ts.observed) {
      ts.tput_est = observed;
      ts.observed = true;
    } else {
      ts.tput_est = (1.0 - config_.estimator_gain) * ts.tput_est +
                    config_.estimator_gain * observed;
    }
    ++ts.stats.batches;
    ts.stats.images += ok;
    ts.stats.busy_s += duration;
    ts.stats.tput_est = ts.tput_est;
    ts.stats.images_replayed += run.images_replayed;
    ts.stats.images_lost += run.images_lost;
    ts.stats.sticks_recovered += run.sticks_recovered;
    ts.stats.sticks_dead = run.sticks_dead;
    if (tr.enabled() && fl.wlane >= 0) {
      // The ticket span: one per submission, on the w-lane the flight
      // held. Lanes are recycled through the free heap, so spans on a
      // lane are disjoint even when tickets retire out of order.
      const int lane =
          tr.lane("serve " + ts.label + " w" + std::to_string(fl.wlane));
      tr.complete("serve", "ticket", lane, fl.dispatch_s, now,
                  {util::TraceArg::num(
                       "ticket", static_cast<std::int64_t>(fl.ticket.id)),
                   util::TraceArg::num("n", issued),
                   util::TraceArg::num("completed", ok),
                   util::TraceArg::num("tput_obs", observed),
                   util::TraceArg::num("tput_est", ts.tput_est)});
      ts.free_wlanes.push(fl.wlane);
    }
    inflight_gauge(static_cast<std::size_t>(which))
        .set(static_cast<double>(ts.flights.size()));
  };

  enum class Ev { kNone, kComplete, kDrop, kArrive, kFlush };
  for (;;) {
    // Earliest ticket completion across every in-flight submission.
    // Flights on one target can retire out of dispatch order (a narrow
    // batch on few sticks can finish before an earlier wide one), so
    // scan them all; ties resolve to the lowest target index, then the
    // earliest-dispatched flight — deterministic replay again.
    double t_complete = kInf;
    int done_target = -1;
    std::size_t done_flight = 0;
    for (std::size_t i = 0; i < states.size(); ++i) {
      const auto& flights = states[i].flights;
      for (std::size_t j = 0; j < flights.size(); ++j) {
        if (flights[j].complete_s < t_complete) {
          t_complete = flights[j].complete_s;
          done_target = static_cast<int>(i);
          done_flight = j;
        }
      }
    }
    const double t_arrive = next_arrival < records.size()
                                ? records[next_arrival].request.arrival_s
                                : kInf;
    double t_drop = kInf, t_flush = kInf;
    if (!pending.empty()) {
      t_drop = head_arrival() + config_.queue_deadline_s;
      // A flush pushes a partial batch to an idle engine, so it only
      // schedules when one exists; otherwise the next completion
      // re-evaluates dispatch anyway.
      for (const auto& ts : states) {
        if (!ts.disabled && ts.flights.empty()) {
          t_flush = head_arrival() + config_.batch_timeout_s;
          break;
        }
      }
    }

    // Fixed tie-break order keeps the replay deterministic: completions
    // free capacity before drops fire, drops before new arrivals are
    // admitted, arrivals before a flush batches them up.
    Ev ev = Ev::kNone;
    double t = kInf;
    if (t_complete < t) { t = t_complete; ev = Ev::kComplete; }
    if (t_drop < t) { t = t_drop; ev = Ev::kDrop; }
    if (t_arrive < t) { t = t_arrive; ev = Ev::kArrive; }
    if (t_flush < t) { t = t_flush; ev = Ev::kFlush; }
    if (ev == Ev::kNone) break;
    now = std::max(now, t);

    switch (ev) {
      case Ev::kComplete:
        complete_flight(done_target, done_flight);
        try_dispatch(false);
        break;
      case Ev::kDrop:
        try_dispatch(false);  // expired-head sweep runs first
        break;
      case Ev::kArrive: {
        const std::size_t idx = next_arrival++;
        m_offered.add(1);
        if (pending.size() >= config_.queue_capacity) {
          RequestRecord& rec = records[idx];
          rec.outcome = Outcome::kRejected;
          rec.complete_s = now;
          ++report.rejected;
          m_rejected.add(1);
          if (tr.enabled() && queue_lane >= 0) {
            tr.instant("serve", "reject", queue_lane, now);
          }
        } else {
          pending.push_back(idx);
          ++report.accepted;
          m_accepted.add(1);
          alloc_slot(idx);
          sample_depth();
          try_dispatch(false);
        }
        break;
      }
      case Ev::kFlush:
        try_dispatch(true);
        break;
      case Ev::kNone:
        break;
    }
  }
  g_depth.set(0.0);

  if (!records.empty()) {
    report.first_arrival_s = records.front().request.arrival_s;
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(report.completed));
    for (const auto& rec : records) {
      if (rec.outcome == Outcome::kCompleted) {
        latencies.push_back(rec.latency_s() * 1e3);
      }
    }
    report.p50_ms = util::percentile(latencies, 50.0);
    report.p95_ms = util::percentile(latencies, 95.0);
    report.p99_ms = util::percentile(std::move(latencies), 99.0);
  }
  report.targets.reserve(states.size());
  for (const auto& ts : states) report.targets.push_back(ts.stats);
  if (tr.enabled() && sched_lane >= 0 && !records.empty()) {
    tr.complete("serve", "serve", sched_lane, report.first_arrival_s,
                std::max(report.last_complete_s, report.first_arrival_s),
                {util::TraceArg::num("offered", report.offered),
                 util::TraceArg::num("completed", report.completed),
                 util::TraceArg::num("rejected", report.rejected),
                 util::TraceArg::num("dropped", report.dropped),
                 util::TraceArg::num("goodput", report.goodput())});
  }
  return report;
}

}  // namespace ncsw::serve
