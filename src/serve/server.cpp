#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "check/serve_check.h"
#include "util/trace.h"

namespace ncsw::serve {

const char* loop_event_kind_name(LoopEventKind kind) {
  switch (kind) {
    case LoopEventKind::kComplete: return "complete";
    case LoopEventKind::kDrop:     return "drop";
    case LoopEventKind::kFault:    return "fault";
    case LoopEventKind::kProbe:    return "probe";
    case LoopEventKind::kReady:    return "ready";
    case LoopEventKind::kHedge:    return "hedge";
    case LoopEventKind::kArrive:   return "arrive";
    case LoopEventKind::kFlush:    return "flush";
  }
  return "?";
}

const char* slo_class_name(SloClass c) {
  switch (c) {
    case SloClass::kInteractive: return "interactive";
    case SloClass::kStandard: return "standard";
    case SloClass::kBatch: return "batch";
  }
  return "?";
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDropped: return "dropped";
  }
  return "?";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kDeadline: return "deadline";
    case DropReason::kInflightLost: return "inflight-lost";
    case DropReason::kFailover: return "failover";
  }
  return "?";
}

/// One submitted-but-unretrieved batch (a core::Ticket plus the serve
/// bookkeeping riding with it).
struct Session::Flight {
  core::Ticket ticket;
  double dispatch_s = 0.0;
  double complete_s = 0.0;  ///< ticket completion as the loop observes it
  int wlane = -1;           ///< "serve <label> w<k>" trace slot, -1 none
  std::vector<std::size_t> inflight;  ///< record indices being served
};

/// Dispatcher-side view of one target.
struct Session::TargetState {
  core::Target* target = nullptr;
  std::string label;
  int max_batch = 1;
  int window = 1;
  double tput_est = 0.0;  ///< img/s EWMA
  bool observed = false;  ///< at least one completed batch
  bool disabled = false;  ///< a ticket failed; out of rotation
  std::deque<Flight> flights;  ///< dispatch order
  /// Free "w<k>" trace-lane slots: a flight takes the lowest free slot
  /// at dispatch and returns it at completion, so each w-lane carries
  /// disjoint ticket spans even when flights retire out of order.
  std::priority_queue<int, std::vector<int>, std::greater<>> free_wlanes;
  int next_wlane = 0;
  TargetStats stats;

  bool has_slot() const {
    return !disabled && static_cast<int>(flights.size()) < window;
  }
};

namespace {

void validate_targets(const std::vector<core::Target*>& targets) {
  if (targets.empty()) {
    throw std::invalid_argument("Server: no targets");
  }
  for (auto* t : targets) {
    if (!t) throw std::invalid_argument("Server: null target");
  }
}

ServerConfig validate_config(ServerConfig config) {
  if (config.queue_capacity < 1) config.queue_capacity = 1;
  if (config.max_batch < 1) config.max_batch = 1;
  if (!(config.batch_timeout_s >= 0.0)) {
    throw std::invalid_argument("Server: bad batch_timeout_s");
  }
  if (!(config.queue_deadline_s > 0.0)) {
    throw std::invalid_argument("Server: bad queue_deadline_s");
  }
  if (!(config.estimator_gain > 0.0) || config.estimator_gain > 1.0) {
    throw std::invalid_argument("Server: estimator_gain must be in (0, 1]");
  }
  if (!(config.prior_tput > 0.0)) {
    throw std::invalid_argument("Server: prior_tput must be > 0");
  }
  if (config.inflight_window < 0) {
    throw std::invalid_argument("Server: inflight_window must be >= 0");
  }
  return config;
}

}  // namespace

Session::Session(std::vector<core::Target*> targets, ServerConfig config,
                 std::string label, Observer* observer,
                 CompletionMap completion_map)
    : config_(validate_config(config)),
      label_(std::move(label)),
      lane_prefix_(label_.empty() ? std::string() : label_ + " "),
      observer_(observer),
      map_(std::move(completion_map)) {
  validate_targets(targets);
  states_.resize(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    TargetState& ts = states_[i];
    ts.target = targets[i];
    ts.label = targets[i]->short_name();
    ts.max_batch =
        std::max(1, std::min(config_.max_batch, targets[i]->max_batch()));
    if (config_.inflight_window > 0) {
      targets[i]->set_inflight_window(config_.inflight_window);
    }
    ts.window = targets[i]->inflight_window();
    ts.tput_est = config_.prior_tput;
    ts.stats.label = ts.label;
    ts.stats.window = ts.window;
  }
  bind_observability();
}

Session::~Session() = default;

std::string Session::mname(const std::string& suffix) const {
  return label_.empty() ? "serve." + suffix : "serve." + label_ + "." + suffix;
}

void Session::bind_observability() {
  auto& reg = util::metrics();
  m_offered_ = &reg.counter(mname("offered"));
  m_accepted_ = &reg.counter(mname("accepted"));
  m_rejected_ = &reg.counter(mname("rejected"));
  m_dropped_ = &reg.counter(mname("dropped"));
  m_drop_deadline_ = &reg.counter(mname("drops.deadline"));
  m_drop_inflight_ = &reg.counter(mname("drops.inflight"));
  m_drop_failover_ = &reg.counter(mname("drops.failover"));
  m_completed_ = &reg.counter(mname("completed"));
  m_batches_ = &reg.counter(mname("batches"));
  m_disabled_ = &reg.counter(mname("targets_disabled"));
  g_depth_ = &reg.gauge(mname("queue_depth"));
  h_batch_ = &reg.histogram(mname("batch_size"),
                            {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64});
  h_latency_ = &reg.histogram(
      mname("latency_ms"),
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000});

  auto& tr = util::tracer();
  if (tr.enabled()) {
    sched_lane_ = tr.lane(lane_prefix_ + "serve sched");
    queue_lane_ = tr.lane(lane_prefix_ + "serve queue");
  }
}

util::Gauge& Session::inflight_gauge(std::size_t i) {
  // Per-target window occupancy (how deep the pipeline actually ran).
  return util::metrics().gauge(mname("inflight.target" + std::to_string(i)));
}

// Per-request trace lanes: a request occupies the lowest free "serve
// slot<k>" lane from admission to completion/drop, so each slot lane
// carries disjoint request spans (with queued/service children nested
// inside) and the whole trace stays lint-clean. The pool is bounded by
// queue capacity + in-flight work.
void Session::alloc_slot(std::size_t idx) {
  auto& tr = util::tracer();
  if (!tr.enabled() || !config_.trace_requests) return;
  slot_claim_s_[idx] = now_;
  int slot;
  if (free_slots_.empty()) {
    slot = next_slot_++;
  } else {
    slot = free_slots_.top();
    free_slots_.pop();
  }
  slot_of_[idx] = slot;
}

void Session::emit_request_spans(std::size_t idx, double end_s) {
  const int slot = slot_of_[idx];
  if (slot < 0) return;
  auto& tr = util::tracer();
  const RequestRecord& rec = report_.records[idx];
  const double a = std::max(rec.request.arrival_s, slot_claim_s_[idx]);
  const int lane =
      tr.lane(lane_prefix_ + "serve slot" + std::to_string(slot));
  tr.complete("serve.req", "request", lane, a, end_s,
              {util::TraceArg::num("id", rec.request.id),
               util::TraceArg::str("outcome", outcome_name(rec.outcome))});
  if (rec.outcome == Outcome::kCompleted) {
    tr.complete("serve.req", "queued", lane, a, rec.dispatch_s,
                {util::TraceArg::str("target", states_[static_cast<
                     std::size_t>(rec.target)].label)});
    tr.complete("serve.req", "service", lane, rec.dispatch_s, end_s);
  } else {
    tr.complete("serve.req", "queued", lane, a, end_s);
  }
  free_slots_.push(slot);
  slot_of_[idx] = -1;
}

void Session::sample_depth() {
  const auto depth = pending_.size();
  g_depth_->set(static_cast<double>(depth));
  report_.max_queue_depth = std::max(report_.max_queue_depth, depth);
  auto& tr = util::tracer();
  if (tr.enabled()) {
    tr.counter(mname("queue_depth"), now_, static_cast<double>(depth));
  }
}

double Session::head_arrival() const {
  return report_.records[pending_.front()].request.arrival_s;
}

void Session::mark_dropped(std::size_t idx, DropReason reason) {
  RequestRecord& rec = report_.records[idx];
  rec.outcome = Outcome::kDropped;
  rec.drop_reason = reason;
  rec.complete_s = now_;
  ++report_.dropped;
  m_dropped_->add(1);
  switch (reason) {
    case DropReason::kDeadline:
      ++report_.dropped_deadline;
      m_drop_deadline_->add(1);
      break;
    case DropReason::kInflightLost:
      ++report_.dropped_inflight;
      m_drop_inflight_->add(1);
      break;
    case DropReason::kFailover:
      ++report_.dropped_failover;
      m_drop_failover_->add(1);
      break;
    case DropReason::kNone:
      break;
  }
}

void Session::drop_head() {
  const std::size_t idx = pending_.front();
  pending_.pop_front();
  --queued_by_class_[static_cast<int>(report_.records[idx].request.slo)];
  mark_dropped(idx, DropReason::kDeadline);
  auto& tr = util::tracer();
  if (tr.enabled()) {
    if (queue_lane_ >= 0) tr.instant("serve", "drop", queue_lane_, now_);
    emit_request_spans(idx, now_);
  }
  if (observer_) {
    observer_->on_finished(report_.records[idx].request, Outcome::kDropped,
                           DropReason::kDeadline, now_);
  }
}

// Pick the target with a free window slot expected to clear work
// fastest: unobserved targets first (everyone gets explored early),
// then idle engines before double-buffering a busy one (a batch
// committed to a deep window cannot be rebalanced later), then the
// highest throughput estimate; ties resolve to the lowest index, which
// keeps the whole schedule deterministic.
int Session::pick_target(bool idle_only) const {
  int best = -1;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].has_slot()) continue;
    if (idle_only && !states_[i].flights.empty()) continue;
    const int ci = static_cast<int>(i);
    if (best < 0) {
      best = ci;
      continue;
    }
    const TargetState& b = states_[static_cast<std::size_t>(best)];
    const TargetState& c = states_[i];
    if (!c.observed && b.observed) {
      best = ci;
    } else if (c.observed == b.observed) {
      const bool c_idle = c.flights.empty(), b_idle = b.flights.empty();
      if (c_idle != b_idle ? c_idle : c.tput_est > b.tput_est) best = ci;
    }
  }
  return best;
}

void Session::dispatch(int which, std::size_t n) {
  TargetState& ts = states_[static_cast<std::size_t>(which)];
  Flight fl;
  fl.dispatch_s = now_;
  fl.inflight.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    --queued_by_class_[static_cast<int>(report_.records[idx].request.slo)];
    report_.records[idx].dispatch_s = now_;
    report_.records[idx].target = which;
    fl.inflight.push_back(idx);
  }
  const int batch = static_cast<int>(std::min<std::size_t>(
      n, static_cast<std::size_t>(ts.max_batch)));
  // Non-blocking hand-off: the ticket's completion timestamp becomes a
  // future event; the loop keeps dispatching to other slots meanwhile.
  // A failed execution still yields a ticket (completing "now"); the
  // wait() at completion surfaces it.
  fl.ticket = ts.target->submit(static_cast<std::int64_t>(n), batch, now_);
  const double promised = ts.target->info(fl.ticket).complete_s;
  fl.complete_s = map_ ? map_(promised) : promised;
  auto& tr = util::tracer();
  if (tr.enabled()) {
    if (ts.free_wlanes.empty()) {
      fl.wlane = ts.next_wlane++;
    } else {
      fl.wlane = ts.free_wlanes.top();
      ts.free_wlanes.pop();
    }
  }
  if (observer_) {
    for (const std::size_t idx : fl.inflight) {
      observer_->on_dispatched(report_.records[idx].request, now_, promised);
    }
  }
  ts.flights.push_back(std::move(fl));
  ts.stats.max_inflight = std::max(
      ts.stats.max_inflight, static_cast<int>(ts.flights.size()));
  inflight_gauge(static_cast<std::size_t>(which))
      .set(static_cast<double>(ts.flights.size()));
  m_batches_->add(1);
  h_batch_->record(static_cast<double>(n));
  sample_depth();
}

// Drop expired heads, then dispatch while a target has a free window
// slot and either a full batch waiting or (on `force` / an aged head)
// a partial one. Full batches may double-buffer into a busy engine's
// spare slots — that is the pipelining win — but partial batches only
// go to an idle engine: committed early to a busy one they could
// neither grow with later arrivals nor rebalance to whichever engine
// actually frees first.
void Session::try_dispatch(bool force) {
  for (;;) {
    while (!pending_.empty() &&
           now_ >= head_arrival() + config_.queue_deadline_s) {
      drop_head();
      sample_depth();
    }
    if (pending_.empty()) return;
    int which = pick_target(/*idle_only=*/false);
    if (which >= 0) {
      const auto cap = static_cast<std::size_t>(
          states_[static_cast<std::size_t>(which)].max_batch);
      if (pending_.size() >= cap) {
        dispatch(which, cap);
        force = false;
        continue;
      }
    }
    const bool aged = now_ - head_arrival() >= config_.batch_timeout_s;
    if (!aged && !force) return;
    which = pick_target(/*idle_only=*/true);
    if (which < 0) return;
    dispatch(which, pending_.size());
    force = false;
  }
}

// Drop a flight's requests on the floor (execution failed, or the
// ticket was cancelled when its target left rotation).
void Session::drop_flight(const Flight& fl, DropReason reason) {
  auto& tr = util::tracer();
  for (const std::size_t idx : fl.inflight) {
    mark_dropped(idx, reason);
    if (tr.enabled()) emit_request_spans(idx, now_);
    if (observer_) {
      observer_->on_finished(report_.records[idx].request, Outcome::kDropped,
                             reason, now_);
    }
  }
}

// A ticket failed (e.g. every stick gone without allow_partial): take
// the target out of rotation — cancel its outstanding tickets, drop
// the affected requests — and keep serving on the remaining targets.
// Only when no target is left does the failure propagate to the
// caller, as the old blocking dispatcher's did.
void Session::fail_target(int which, std::exception_ptr err) {
  TargetState& ts = states_[static_cast<std::size_t>(which)];
  for (const Flight& fl : ts.flights) {
    ts.target->cancel(fl.ticket);
    drop_flight(fl, DropReason::kFailover);
  }
  ts.target->cancel_outstanding();
  ts.flights.clear();
  ts.disabled = true;
  m_disabled_->add(1);
  inflight_gauge(static_cast<std::size_t>(which)).set(0.0);
  const bool any_left = std::any_of(
      states_.begin(), states_.end(),
      [](const TargetState& s) { return !s.disabled; });
  if (!any_left) std::rethrow_exception(err);
}

void Session::complete_flight(int which, std::size_t fidx) {
  auto& tr = util::tracer();
  TargetState& ts = states_[static_cast<std::size_t>(which)];
  Flight fl = std::move(ts.flights[fidx]);
  ts.flights.erase(ts.flights.begin() + static_cast<std::ptrdiff_t>(fidx));
  core::TimedRun run;
  try {
    run = ts.target->wait(fl.ticket);
  } catch (...) {
    drop_flight(fl, DropReason::kInflightLost);
    if (tr.enabled() && fl.wlane >= 0) ts.free_wlanes.push(fl.wlane);
    fail_target(which, std::current_exception());
    return;
  }
  // The engine's own execution span — not dispatch-to-retrieval, which
  // under a deep window also counts time queued behind earlier flights
  // and would sink every estimate at exactly the moment the pipeline
  // fills.
  const double duration = run.seconds;
  const auto issued = static_cast<std::int64_t>(fl.inflight.size());
  const std::int64_t ok = std::min<std::int64_t>(run.images, issued);
  for (std::size_t k = 0; k < fl.inflight.size(); ++k) {
    const std::size_t idx = fl.inflight[k];
    RequestRecord& rec = report_.records[idx];
    rec.complete_s = now_;
    if (static_cast<std::int64_t>(k) < ok) {
      rec.outcome = Outcome::kCompleted;
      ++report_.completed;
      const double ms = rec.latency_s() * 1e3;
      report_.latency_ms.add(ms);
      h_latency_->record(ms);
    } else {
      // Lost in flight: every stick died mid-batch under allow_partial.
      mark_dropped(idx, DropReason::kInflightLost);
    }
    if (tr.enabled()) emit_request_spans(idx, now_);
    if (observer_) {
      observer_->on_finished(
          rec.request, rec.outcome,
          rec.outcome == Outcome::kCompleted ? DropReason::kNone
                                             : DropReason::kInflightLost,
          now_);
    }
  }
  report_.last_complete_s = std::max(report_.last_complete_s, now_);
  m_completed_->add(static_cast<std::uint64_t>(ok));
  util::metrics()
      .counter(mname("target" + std::to_string(which) + ".images"))
      .add(static_cast<std::uint64_t>(ok));

  // Feedback: fold the observed clearing rate into the estimate. A
  // batch slowed by retries/quarantines (or with lost images) sinks the
  // estimate, steering later batches to healthier targets.
  const double observed =
      duration > 0.0 ? static_cast<double>(ok) / duration : 0.0;
  if (!ts.observed) {
    ts.tput_est = observed;
    ts.observed = true;
  } else {
    ts.tput_est = (1.0 - config_.estimator_gain) * ts.tput_est +
                  config_.estimator_gain * observed;
  }
  ++ts.stats.batches;
  ts.stats.images += ok;
  ts.stats.busy_s += duration;
  ts.stats.tput_est = ts.tput_est;
  ts.stats.images_replayed += run.images_replayed;
  ts.stats.images_lost += run.images_lost;
  ts.stats.sticks_recovered += run.sticks_recovered;
  ts.stats.sticks_dead = run.sticks_dead;
  if (tr.enabled() && fl.wlane >= 0) {
    // The ticket span: one per submission, on the w-lane the flight
    // held. Lanes are recycled through the free heap, so spans on a
    // lane are disjoint even when tickets retire out of order.
    const int lane = tr.lane(lane_prefix_ + "serve " + ts.label + " w" +
                             std::to_string(fl.wlane));
    tr.complete("serve", "ticket", lane, fl.dispatch_s, now_,
                {util::TraceArg::num(
                     "ticket", static_cast<std::int64_t>(fl.ticket.id)),
                 util::TraceArg::num("n", issued),
                 util::TraceArg::num("completed", ok),
                 util::TraceArg::num("tput_obs", observed),
                 util::TraceArg::num("tput_est", ts.tput_est)});
    ts.free_wlanes.push(fl.wlane);
  }
  inflight_gauge(static_cast<std::size_t>(which))
      .set(static_cast<double>(ts.flights.size()));
  if (observer_) {
    observer_->on_batch_completed(which, fl.dispatch_s, now_, ok);
  }
}

bool Session::offer(const Request& req, double now, bool force) {
  now_ = std::max(now_, now);
  const std::size_t idx = report_.records.size();
  RequestRecord rec;
  rec.request = req;
  report_.records.push_back(std::move(rec));
  slot_of_.push_back(-1);
  slot_claim_s_.push_back(now_);
  ++report_.offered;
  m_offered_->add(1);
  const auto slo = static_cast<int>(req.slo);
  if (!force && (pending_.size() >= config_.queue_capacity ||
                 queued_by_class_[slo] >= config_.class_quota[slo])) {
    RequestRecord& r = report_.records[idx];
    r.outcome = Outcome::kRejected;
    r.complete_s = now_;
    ++report_.rejected;
    m_rejected_->add(1);
    auto& tr = util::tracer();
    if (tr.enabled() && queue_lane_ >= 0) {
      tr.instant("serve", "reject", queue_lane_, now_);
    }
    if (observer_) {
      observer_->on_finished(r.request, Outcome::kRejected, DropReason::kNone,
                             now_);
    }
    return false;
  }
  pending_.push_back(idx);
  ++queued_by_class_[slo];
  ++report_.accepted;
  m_accepted_->add(1);
  alloc_slot(idx);
  sample_depth();
  try_dispatch(false);
  return true;
}

double Session::next_complete_s() const noexcept {
  // Earliest ticket completion across every in-flight submission.
  // Flights on one target can retire out of dispatch order (a narrow
  // batch on few sticks can finish before an earlier wide one), so
  // scan them all.
  double t = std::numeric_limits<double>::infinity();
  for (const auto& ts : states_) {
    for (const auto& fl : ts.flights) t = std::min(t, fl.complete_s);
  }
  return t;
}

double Session::next_drop_s() const noexcept {
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  return head_arrival() + config_.queue_deadline_s;
}

double Session::next_flush_s() const noexcept {
  // A flush pushes a partial batch to an idle engine, so it only
  // schedules when one exists; otherwise the next completion
  // re-evaluates dispatch anyway.
  if (pending_.empty()) return std::numeric_limits<double>::infinity();
  for (const auto& ts : states_) {
    if (!ts.disabled && ts.flights.empty()) {
      return head_arrival() + config_.batch_timeout_s;
    }
  }
  return std::numeric_limits<double>::infinity();
}

void Session::on_complete(double now) {
  now_ = std::max(now_, now);
  // Ties resolve to the lowest target index, then the earliest-
  // dispatched flight — deterministic replay again.
  double t_complete = std::numeric_limits<double>::infinity();
  int done_target = -1;
  std::size_t done_flight = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const auto& flights = states_[i].flights;
    for (std::size_t j = 0; j < flights.size(); ++j) {
      if (flights[j].complete_s < t_complete) {
        t_complete = flights[j].complete_s;
        done_target = static_cast<int>(i);
        done_flight = j;
      }
    }
  }
  if (done_target < 0) return;  // nothing in flight
  complete_flight(done_target, done_flight);
  try_dispatch(false);
}

void Session::on_drop(double now) {
  now_ = std::max(now_, now);
  try_dispatch(false);  // expired-head sweep runs first
}

void Session::on_flush(double now) {
  now_ = std::max(now_, now);
  try_dispatch(true);
}

std::vector<Request> Session::evict_all(double now) {
  now_ = std::max(now_, now);
  auto& tr = util::tracer();
  std::vector<Request> evicted;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    TargetState& ts = states_[i];
    for (const Flight& fl : ts.flights) {
      ts.target->cancel(fl.ticket);
      for (const std::size_t idx : fl.inflight) {
        mark_dropped(idx, DropReason::kFailover);
        evicted.push_back(report_.records[idx].request);
        if (tr.enabled()) emit_request_spans(idx, now_);
      }
      if (tr.enabled() && fl.wlane >= 0) ts.free_wlanes.push(fl.wlane);
    }
    if (!ts.flights.empty()) {
      ts.flights.clear();
      inflight_gauge(i).set(0.0);
    }
  }
  while (!pending_.empty()) {
    const std::size_t idx = pending_.front();
    pending_.pop_front();
    --queued_by_class_[static_cast<int>(report_.records[idx].request.slo)];
    mark_dropped(idx, DropReason::kFailover);
    evicted.push_back(report_.records[idx].request);
    if (tr.enabled()) emit_request_spans(idx, now_);
  }
  sample_depth();
  return evicted;
}

ServeReport Session::finish() {
  g_depth_->set(0.0);
  // Request conservation: every offered request must hold exactly one
  // terminal outcome now. evict_all / drops / completions all route
  // through the record bookkeeping, so anything unaccounted here is a
  // loop bug, not a policy decision.
  auto& sv = check::serve_verifier();
  if (sv.enabled()) {
    sv.on_session_finish(
        label_, report_.offered, report_.rejected, report_.completed,
        report_.dropped, report_.dropped_deadline, report_.dropped_inflight,
        report_.dropped_failover,
        static_cast<std::int64_t>(pending_.size() + inflight()), now_);
  }
  auto& records = report_.records;
  if (!records.empty()) {
    report_.first_arrival_s = records.front().request.arrival_s;
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(report_.completed));
    for (const auto& rec : records) {
      if (rec.outcome == Outcome::kCompleted) {
        latencies.push_back(rec.latency_s() * 1e3);
      }
    }
    report_.p50_ms = util::percentile(latencies, 50.0);
    report_.p95_ms = util::percentile(latencies, 95.0);
    report_.p99_ms = util::percentile(std::move(latencies), 99.0);
    // Per-SloClass rollups from the same records; each class partitions
    // and the classes sum to the session totals by construction.
    std::array<std::vector<double>, kSloClassCount> by_class;
    for (const auto& rec : records) {
      ClassStats& cs = report_.classes[static_cast<int>(rec.request.slo)];
      ++cs.offered;
      switch (rec.outcome) {
        case Outcome::kCompleted:
          ++cs.completed;
          by_class[static_cast<int>(rec.request.slo)].push_back(
              rec.latency_s() * 1e3);
          break;
        case Outcome::kRejected: ++cs.rejected; break;
        case Outcome::kDropped: ++cs.dropped; break;
      }
    }
    for (int c = 0; c < kSloClassCount; ++c) {
      report_.classes[c].p99_ms =
          util::percentile(std::move(by_class[c]), 99.0);
    }
  }
  report_.targets.reserve(states_.size());
  for (const auto& ts : states_) report_.targets.push_back(ts.stats);
  auto& tr = util::tracer();
  if (tr.enabled() && sched_lane_ >= 0 && !records.empty()) {
    tr.complete("serve", "serve", sched_lane_, report_.first_arrival_s,
                std::max(report_.last_complete_s, report_.first_arrival_s),
                {util::TraceArg::num("offered", report_.offered),
                 util::TraceArg::num("completed", report_.completed),
                 util::TraceArg::num("rejected", report_.rejected),
                 util::TraceArg::num("dropped", report_.dropped),
                 util::TraceArg::num("goodput", report_.goodput())});
  }
  return std::move(report_);
}

bool Session::has_capacity() const noexcept {
  return pending_.size() < config_.queue_capacity;
}

bool Session::has_capacity_for(SloClass slo) const noexcept {
  const auto c = static_cast<int>(slo);
  return pending_.size() < config_.queue_capacity &&
         queued_by_class_[c] < config_.class_quota[c];
}

std::size_t Session::inflight() const noexcept {
  std::size_t n = 0;
  for (const auto& ts : states_) {
    for (const auto& fl : ts.flights) n += fl.inflight.size();
  }
  return n;
}

bool Session::idle() const noexcept {
  if (!pending_.empty()) return false;
  for (const auto& ts : states_) {
    if (!ts.flights.empty()) return false;
  }
  return true;
}

bool Session::all_disabled() const noexcept {
  return std::all_of(states_.begin(), states_.end(),
                     [](const TargetState& s) { return s.disabled; });
}

Server::Server(std::vector<core::Target*> targets, ServerConfig config)
    : config_(validate_config(config)), targets_(std::move(targets)) {
  validate_targets(targets_);
}

ServeReport Server::run(core::Source& source,
                        const std::function<double()>& next_arrival_s,
                        std::int64_t limit) {
  if (!next_arrival_s) {
    throw std::invalid_argument("Server::run: null arrival process");
  }
  std::vector<Request> requests;
  std::int64_t id = 0;
  while (limit < 0 || id < limit) {
    auto item = source.next();
    if (!item) break;
    Request req;
    req.id = id++;
    req.arrival_s = next_arrival_s();
    req.label = item->label;
    req.tag = std::move(item->id);
    requests.push_back(std::move(req));
  }
  return run(requests);
}

ServeReport Server::run(const std::vector<Request>& requests) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!std::isfinite(requests[i].arrival_s) ||
        (i > 0 && requests[i].arrival_s < requests[i - 1].arrival_s)) {
      throw std::invalid_argument(
          "Server::run: arrivals must be finite and sorted");
    }
  }

  Session session(targets_, config_);
  std::size_t next_arrival = 0;
  double now = 0.0;

  enum class Ev { kNone, kComplete, kDrop, kArrive, kFlush };
  for (;;) {
    const double t_complete = session.next_complete_s();
    const double t_arrive =
        next_arrival < requests.size() ? requests[next_arrival].arrival_s
                                       : kInf;
    const double t_drop = session.next_drop_s();
    const double t_flush = session.next_flush_s();

    // Fixed tie-break order keeps the replay deterministic: completions
    // free capacity before drops fire, drops before new arrivals are
    // admitted, arrivals before a flush batches them up.
    Ev ev = Ev::kNone;
    double t = kInf;
    if (t_complete < t) { t = t_complete; ev = Ev::kComplete; }
    if (t_drop < t) { t = t_drop; ev = Ev::kDrop; }
    if (t_arrive < t) { t = t_arrive; ev = Ev::kArrive; }
    if (t_flush < t) { t = t_flush; ev = Ev::kFlush; }
    if (ev == Ev::kNone) break;
    if (config_.tie_break) {
      // Determinism fuzzing (check/schedfuzz.h): expose every event
      // class due at exactly t and let the hook pick the one to process
      // this iteration; index 0 is the fixed order above.
      std::vector<LoopEvent> tied;
      if (t_complete == t) tied.push_back({LoopEventKind::kComplete, 0, t});
      if (t_drop == t) tied.push_back({LoopEventKind::kDrop, 0, t});
      if (t_arrive == t) tied.push_back({LoopEventKind::kArrive, 0, t});
      if (t_flush == t) tied.push_back({LoopEventKind::kFlush, 0, t});
      switch (tied[config_.tie_break(t, tied) % tied.size()].kind) {
        case LoopEventKind::kComplete: ev = Ev::kComplete; break;
        case LoopEventKind::kDrop:     ev = Ev::kDrop; break;
        case LoopEventKind::kArrive:   ev = Ev::kArrive; break;
        default:                       ev = Ev::kFlush; break;
      }
    }
    now = std::max(now, t);

    switch (ev) {
      case Ev::kComplete:
        session.on_complete(now);
        break;
      case Ev::kDrop:
        session.on_drop(now);
        break;
      case Ev::kArrive:
        session.offer(requests[next_arrival++], now);
        break;
      case Ev::kFlush:
        session.on_flush(now);
        break;
      case Ev::kNone:
        break;
    }
  }
  return session.finish();
}

}  // namespace ncsw::serve
