// Multi-tenant model-zoo serving: M tenants' models contend for K
// sticks through a residency-managed cache of stick-resident graphs.
//
// The paper serves one network on N sticks; a zoo deployment inverts
// the ratio — more models than sticks, each stick's LPDDR holding one
// compiled graph at a time. This event loop glues the pieces together:
//
//   arrivals --> [admission: shared queue + per-class quota]
//            --> [per-model FIFO queues]
//            --> [scheduler: oldest (class, arrival) head wins;
//                 resident -> dispatch, missing -> ResidencyManager
//                 picks the victim stick -> StickFleet::swap_to]
//            --> per-stick async tickets (core::Target submit/info/wait)
//
// entirely on the simulated clock, single-threaded, with a fixed event
// tie-break (complete < ready < drop < arrive) so a given trace always
// produces byte-identical reports. Swaps ride the drain -> deallocate
// -> allocate lifecycle under the NCAPI protocol verifier, and the
// serve verifier's zoo hooks (swap-while-inflight, wrong-model-dispatch,
// residency-conservation) shadow every decision.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/stick_fleet.h"
#include "serve/residency.h"
#include "serve/server.h"
#include "util/stats.h"

namespace ncsw::serve {

/// One tenant request: one image of work for one zoo model.
struct ZooRequest {
  std::int64_t id = 0;
  double arrival_s = 0.0;  ///< simulated arrival time (non-decreasing)
  int model = 0;           ///< index into the fleet's zoo
  SloClass slo = SloClass::kStandard;
};

/// Zoo frontend policy knobs.
struct ZooConfig {
  ResidencyConfig residency;
  /// Shared admission bound across all model queues (clamped to >= 1).
  std::size_t queue_capacity = 64;
  /// Per-class admission quota (same semantics as ServerConfig's).
  std::array<std::size_t, kSloClassCount> class_quota = {
      std::numeric_limits<std::size_t>::max(),
      std::numeric_limits<std::size_t>::max(),
      std::numeric_limits<std::size_t>::max()};
  /// A request not dispatched within this much simulated time of its
  /// arrival is dropped from its queue (infinity = never).
  double queue_deadline_s = std::numeric_limits<double>::infinity();
  /// Largest number of same-model requests folded into one ticket.
  int max_batch = 4;
};

/// Per-model rollup inside a ZooReport.
struct ZooModelStats {
  std::string name;
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t swaps_in = 0;  ///< times the model was swapped onto a stick
};

/// Result of serving one tenant-mix trace.
struct ZooReport {
  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t dropped = 0;
  std::int64_t completed = 0;
  /// Admission-time residency: the request's model was resident (hit)
  /// or needed a swap-in before it could run (miss). Counted over
  /// accepted requests only, so hits + misses == accepted.
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t swaps = 0;         ///< graph swaps the run performed
  double swap_stall_s = 0.0;      ///< total stick-time spent swapping
  /// Residency-conservation counters copied from the fleet at finish.
  std::int64_t installs = 0;
  std::int64_t evicts = 0;
  std::int64_t resident = 0;
  double first_arrival_s = 0.0;
  double last_complete_s = 0.0;
  util::RunningStats latency_ms;  ///< completed requests only
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::array<ClassStats, kSloClassCount> classes{};
  std::vector<ZooModelStats> models;

  double makespan_s() const noexcept {
    return last_complete_s > first_arrival_s
               ? last_complete_s - first_arrival_s
               : 0.0;
  }
  double goodput() const noexcept {
    const double m = makespan_s();
    return m > 0.0 ? static_cast<double>(completed) / m : 0.0;
  }
  double hit_rate() const noexcept {
    const double n = static_cast<double>(hits + misses);
    return n > 0.0 ? static_cast<double>(hits) / n : 0.0;
  }
};

/// The zoo frontend. The fleet stays caller-owned; the server installs
/// residency state from the fleet's current placement at construction.
/// Not thread-safe; single use (one run per instance).
class ZooServer {
 public:
  ZooServer(core::StickFleet& fleet, ZooConfig config = {});

  /// Serve a finite arrival trace (sorted by arrival_s; throws
  /// std::invalid_argument otherwise) to completion.
  ZooReport run(const std::vector<ZooRequest>& requests);

  const ZooConfig& config() const noexcept { return config_; }

 private:
  core::StickFleet& fleet_;
  ZooConfig config_;
};

}  // namespace ncsw::serve
