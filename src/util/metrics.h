// Counter / gauge / histogram metrics registry.
//
// Aggregated observability next to the tracer's timelines: instrumented
// subsystems register named instruments once and update them on hot
// paths (lock-free for counters/gauges). The registry serialises to
// JSON so benches and tools can attach a metrics snapshot to their
// machine-readable output.
//
// Naming schema (documented in docs/architecture.md): dotted lowercase
// `<subsystem>.<object>.<metric>`, e.g. "sim.engine.events",
// "usb.usb-ch0.bytes", "ncs.dev0.inferences", "core.sched.failover_retries".
//
// Lifetime: instruments are never erased — reset() zeroes values but
// keeps the objects, so references cached by long-lived subsystems stay
// valid across host resets and between bench phases.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ncsw::util {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written sample of a continuous quantity. Lock-free.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of samples over fixed bucket upper bounds (plus the
/// implicit +inf bucket), with count / sum / min / max. Thread-safe.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty = default decades
  /// 1e-6 .. 1e6 (a generic range for seconds, milliseconds and bytes).
  explicit Histogram(std::vector<double> bounds = {});

  void record(double v) noexcept;

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const; ///< 0 when empty
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts: bucket i covers (bounds[i-1], bounds[i]], the
  /// last entry is the +inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named instruments, one namespace per kind. Lookup is mutex-guarded;
/// cache the returned reference on hot paths.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only when the histogram is created by this call.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Zero every instrument; objects (and references to them) survive.
  void reset();

  /// Snapshot as JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,mean,buckets:[{le,count}]}}}.
  /// Names are emitted sorted, so the output is deterministic.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

}  // namespace ncsw::util
