// Manual function multiversioning for the fast-tier kernels
// (docs/performance.md). A hot kernel is written once as a force-inlined
// body, instantiated into per-ISA variants (baseline, x86-64-v3 =
// AVX2+FMA, x86-64-v4 = AVX-512) with NCSW_TARGET_V3/V4, and dispatched
// once at first call via isa_level(). This keeps the rest of the tree —
// in particular every bit-identical kernel, whose results must not
// depend on the ISA the compiler targets — on the portable baseline
// codegen, while the opt-in fast tier gets wide vectors and FMA.
//
// GCC's target_clones attribute is deliberately NOT used: as of GCC 12
// it pessimises the cloned bodies (accumulator arrays spill to the
// stack and vectorise at XMM width only, ~15x slower than the same
// source compiled with -march=x86-64-v3), while the plain target
// attribute on explicit variants produces the expected code.
//
// On toolchains/architectures without the target attribute the macros
// expand to nothing, every variant compiles as baseline code, and the
// fast tier simply runs at baseline speed.
#pragma once

namespace ncsw::util {

/// x86-64 microarchitecture feature level of the running machine.
enum class IsaLevel { kBase, kV3, kV4 };

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
// GCC only: clang spells the target attribute differently ("arch=" takes
// CPU names, not feature levels) and falls back to baseline codegen.
#define NCSW_TARGET_V3 __attribute__((target("arch=x86-64-v3")))
#define NCSW_TARGET_V4 __attribute__((target("arch=x86-64-v4")))
// For the F16C span converters: AVX + the conversion instructions only,
// so they also run on pre-AVX2 machines that still have F16C.
#define NCSW_TARGET_F16C __attribute__((target("avx,f16c")))
inline IsaLevel isa_level() noexcept {
  static const IsaLevel level = [] {
    __builtin_cpu_init();
    // Spelled as individual features (stable across GCC/clang versions)
    // rather than the newer "x86-64-v3" level strings.
    const bool v3 = __builtin_cpu_supports("avx2") &&
                    __builtin_cpu_supports("fma") &&
                    __builtin_cpu_supports("bmi2") &&
                    __builtin_cpu_supports("f16c");
    const bool v4 = v3 && __builtin_cpu_supports("avx512f") &&
                    __builtin_cpu_supports("avx512bw") &&
                    __builtin_cpu_supports("avx512dq") &&
                    __builtin_cpu_supports("avx512vl");
    return v4 ? IsaLevel::kV4 : (v3 ? IsaLevel::kV3 : IsaLevel::kBase);
  }();
  return level;
}
#else
#define NCSW_TARGET_V3
#define NCSW_TARGET_V4
inline IsaLevel isa_level() noexcept { return IsaLevel::kBase; }
#endif

}  // namespace ncsw::util

// Forces a kernel body into its per-ISA variants so each variant
// recompiles the loops at its own vector width.
#define NCSW_FAST_INLINE inline __attribute__((always_inline))

// 8-lane FP32 vector in GCC's generic vector extension, 4-byte aligned
// so it loads/stores from arbitrary float*. Fast-tier kernels write
// their hot loops against this type instead of scalar arrays because
// GCC 12's auto-vectorizer only emits wide code for those loops when
// the panel strides are compile-time constants; the generic-vector
// form lowers unconditionally to the widest ISA the enclosing function
// targets (2 x 16-byte ops on the baseline build, ymm under
// NCSW_TARGET_V3/V4), and a scalar * NCSW_V8F product broadcasts the
// scalar. Keep vectors out of function parameters/returns — locals and
// always_inline bodies only — so the baseline instantiation does not
// trip -Wpsabi ABI notes.
// Both GCC and clang implement the extension; this tree does not
// target other compilers (CMakeLists assumes a GNU-compatible driver).
typedef float NCSW_V8F __attribute__((vector_size(32), aligned(4)));
