// Minimal JSON support for the observability layer: a streaming writer
// with deterministic number formatting (trace files and bench reports
// must be byte-identical across runs of the same build), and a small
// recursive-descent parser used by tests and tools to validate and
// inspect what the writers produced. Not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ncsw::util {

/// Streaming JSON builder. Handles commas and nesting; the caller is
/// responsible for well-formed begin/end pairing (checked with throws).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by exactly one value.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice a pre-rendered JSON fragment as one value (no validation).
  JsonWriter& raw(const std::string& fragment);

  /// The finished document; throws when containers are still open.
  const std::string& str() const;

  /// JSON string escaping (adds no quotes).
  static std::string escape(const std::string& s);
  /// Deterministic number rendering: integers exactly, other finite
  /// values via %.12g, non-finite as null.
  static std::string number(double v);

 private:
  void pre_value();

  std::string out_;
  std::vector<bool> needs_comma_;  // one per open container
  bool pending_key_ = false;
};

/// Parsed JSON document node. Object member order is preserved.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& name) const;
  /// Chained lookup: find(a)->find(b)... ; nullptr on any miss.
  const JsonValue* at_path(const std::vector<std::string>& path) const;

  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
};

/// Parse a complete JSON document. Returns nullopt on malformed input
/// (and sets `error` to a short description when given).
std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error = nullptr);

}  // namespace ncsw::util
