// Leveled logging with a process-wide threshold. Kept deliberately small:
// benches print results through util::Table; logging is for diagnostics.
#pragma once

#include <sstream>
#include <string>

namespace ncsw::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
/// Current threshold (default: kWarn, so library code is quiet).
LogLevel log_level() noexcept;

/// Emit one line to stderr with a level prefix (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ncsw::util

#define NCSW_LOG(level)                                               \
  if (static_cast<int>(level) < static_cast<int>(ncsw::util::log_level())) \
    ;                                                                 \
  else                                                                \
    ncsw::util::detail::LogLine(level)

#define NCSW_LOG_DEBUG NCSW_LOG(ncsw::util::LogLevel::kDebug)
#define NCSW_LOG_INFO NCSW_LOG(ncsw::util::LogLevel::kInfo)
#define NCSW_LOG_WARN NCSW_LOG(ncsw::util::LogLevel::kWarn)
#define NCSW_LOG_ERROR NCSW_LOG(ncsw::util::LogLevel::kError)
