// Deterministic pseudo-random number generation for reproducible
// experiments. Every benchmark and dataset in this repository derives its
// randomness from these generators with fixed seeds so that runs are
// bit-reproducible across machines.
#pragma once

#include <cstdint>
#include <limits>

namespace ncsw::util {

/// SplitMix64 — tiny, fast generator used to seed Xoshiro256** and to hash
/// integer keys into well-distributed 64-bit values (Steele et al., 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mixing function: maps (seed, key) to a decorrelated 64-bit
/// value. Used to derive per-image / per-class seeds without carrying
/// generator state around.
constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t key) noexcept {
  SplitMix64 sm(seed ^ (key * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  return sm.next();
}

/// Xoshiro256** — the repository's general-purpose generator
/// (Blackman & Vigna, 2018). Passes BigCrush; 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initialise the 256-bit state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [0, 1).
  float uniform_float() noexcept { return static_cast<float>(uniform()); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal variate (Marsaglia polar method; cached pair).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ncsw::util
