// Structured tracing on the *simulated* clock.
//
// The simulator's value proposition (seeing LoadTensor / execution /
// GetResult overlap across sticks, USB hub contention, SHAVE occupancy)
// is only demonstrable with an inspectable timeline. This tracer collects
// spans and counter samples keyed to simulated seconds and serialises
// them in the Chrome trace-event JSON format, so any run can be opened
// in Perfetto / chrome://tracing.
//
// Conventions (documented in docs/architecture.md):
//  - times are simulated seconds at the API, microseconds in the file;
//  - a "lane" is a named horizontal track (one per device timeline, USB
//    channel, scheduler, ...) mapped to a Chrome `tid`;
//  - span categories: "mvnc" (API-call lifecycles), "ncs" (device
//    firmware/exec), "usb" (link transfers), "myriad.layer" (per-layer
//    execution, detail level kLayers), "core" (scheduler / runs);
//  - tracing is off by default and costs one relaxed atomic load per
//    call site when disabled.
//
// Thread-safe. Determinism: with tracing driven from one host thread
// (all timed benches), the serialised output is byte-identical across
// runs of the same build; under concurrent emission the events are
// time-sorted on write so the output is still stable for distinct
// timestamps.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ncsw::util {

/// How much the instrumented subsystems emit.
enum class TraceDetail : int {
  kSpans = 0,   ///< per-operation spans (transfers, exec, API calls)
  kLayers = 1,  ///< + one span per network layer per inference
};

/// One key/value pair attached to a span ("args" in the trace format).
/// The value is a pre-rendered JSON scalar.
struct TraceArg {
  std::string key;
  std::string value;

  static TraceArg num(std::string k, double v);
  static TraceArg num(std::string k, std::int64_t v);
  static TraceArg str(std::string k, const std::string& v);
};

/// Collects trace events; usually accessed through the global tracer().
class Tracer {
 public:
  /// Cheap gate for call sites: relaxed atomic load.
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  TraceDetail detail() const noexcept {
    return static_cast<TraceDetail>(detail_.load(std::memory_order_relaxed));
  }
  void set_detail(TraceDetail d) noexcept {
    detail_.store(static_cast<int>(d), std::memory_order_relaxed);
  }
  /// enabled() && detail() >= kLayers, one call.
  bool layers_enabled() const noexcept {
    return enabled() && detail() == TraceDetail::kLayers;
  }

  /// Lane (Chrome `tid`) for `name`, registered on first use. The current
  /// lane prefix is prepended, so phases of one bench can namespace their
  /// timelines (e.g. "overlap-on dev0 shave" vs "overlap-off dev0 shave").
  int lane(const std::string& name);

  /// Prefix applied to subsequently requested lane names.
  void set_lane_prefix(std::string prefix);

  /// Record a complete span [start_s, end_s] (simulated seconds).
  void complete(const std::string& cat, const std::string& name, int lane,
                double start_s, double end_s,
                std::vector<TraceArg> args = {});

  /// Record a counter sample (rendered as a stacked chart by viewers).
  void counter(const std::string& name, double t_s, double value);

  /// Record an instant event (a vertical marker on the lane).
  void instant(const std::string& cat, const std::string& name, int lane,
               double t_s);

  /// Events currently held (excluding dropped ones).
  std::size_t size() const;
  /// Events dropped after the capacity was reached.
  std::uint64_t dropped() const;
  /// Cap on retained events (default 1<<20); new events beyond it are
  /// counted in dropped() instead of stored.
  void set_capacity(std::size_t cap);

  /// Drop all events, lanes, the prefix and the dropped counter.
  /// enabled/detail are preserved.
  void reset();

  /// Serialise as Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;

  /// to_json() to a file; throws std::runtime_error on IO failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X' complete, 'C' counter, 'i' instant
    std::string cat;
    std::string name;
    int tid;
    double ts_us;
    double dur_us;
    std::string args_json;  // rendered "{...}" or empty
  };

  bool push(Event ev);

  std::atomic<bool> enabled_{false};
  std::atomic<int> detail_{static_cast<int>(TraceDetail::kSpans)};

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::vector<std::string> lanes_;  // index = tid
  std::string lane_prefix_;
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
};

/// The process-wide tracer every instrumented subsystem reports to.
Tracer& tracer();

/// Scoped span helper for host-driven sections where the end time is
/// known at scope exit: construct with the start time, call end() with
/// the simulated end time (the destructor emits; a span never ended
/// collapses to zero duration at its start time).
class TraceSpan {
 public:
  TraceSpan(std::string cat, std::string name, int lane, double start_s);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  void arg(std::string key, double v);
  void arg(std::string key, std::int64_t v);
  void arg(std::string key, const std::string& v);
  void end(double end_s);

 private:
  std::string cat_;
  std::string name_;
  int lane_;
  double start_s_;
  double end_s_;
  bool emitted_ = false;
  std::vector<TraceArg> args_;
};

}  // namespace ncsw::util
