#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ncsw::util {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values in the exactly-representable range print as integers
  // so counters and timestamps do not grow stray ".0" / exponent forms.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (needs_comma_.empty()) throw std::logic_error("JsonWriter: unbalanced }");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (needs_comma_.empty()) throw std::logic_error("JsonWriter: unbalanced ]");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (needs_comma_.empty() || pending_key_) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  pre_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(const std::string& fragment) {
  pre_value();
  out_ += fragment;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!needs_comma_.empty() || pending_key_) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error) *error = error_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    error_ = what;
    return false;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (s_.compare(pos_, 4, "true") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (s_.compare(pos_, 5, "false") != 0) return fail("bad literal");
        pos_ += 5;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (s_.compare(pos_, 4, "null") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kNull;
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return fail("bad escape");
        const char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogates kept verbatim —
            // our writers never emit them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      return fail("bad number");
    }
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        return fail("bad fraction");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
        return fail("bad exponent");
      }
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue elem;
      if (!parse_value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected , or ] in array");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      std::string name;
      if (!parse_string(name)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected :");
      ++pos_;
      JsonValue member;
      if (!parse_value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(name), std::move(member));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected , or } in object");
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == name) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::at_path(const std::vector<std::string>& path) const {
  const JsonValue* cur = this;
  for (const auto& p : path) {
    cur = cur->find(p);
    if (!cur) return nullptr;
  }
  return cur;
}

std::optional<JsonValue> json_parse(const std::string& text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ncsw::util
