// Tiny command-line flag parser for the benchmark harnesses and examples:
// `--name=value` / `--name value` / boolean `--name`. Unknown flags are an
// error so typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ncsw::util {

/// Declarative flag set. Register flags with defaults, then parse().
class Cli {
 public:
  /// `program` and `description` are used by help().
  Cli(std::string program, std::string description);

  /// Register flags. `help` is shown by --help.
  void add_int(const std::string& name, std::int64_t def, std::string help);
  void add_double(const std::string& name, double def, std::string help);
  void add_string(const std::string& name, std::string def, std::string help);
  void add_bool(const std::string& name, bool def, std::string help);

  /// Parse argv. Returns false (after printing help) if --help was given.
  /// Throws std::runtime_error on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The program name this Cli was constructed with (used by the bench
  /// helpers to derive default output paths).
  const std::string& program() const noexcept { return program_; }

  /// Render the help text.
  std::string help() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Flag {
    Kind kind;
    std::string value;  // current value, textual
    std::string def;    // default, textual
    std::string help;
  };

  const Flag& find(const std::string& name, Kind kind) const;
  void set_value(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ncsw::util
