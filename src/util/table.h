// Aligned console tables and CSV emission. Every benchmark harness prints
// its figure/table through this so the output format is uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ncsw::util {

/// A simple column-aligned table with an optional title. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (column names).
  void set_header(std::vector<std::string> names);

  /// Append a row of pre-formatted cells.
  void add_row(std::vector<std::string> cells);

  /// Format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2);
  /// Format "mean ± sd".
  static std::string pm(double mean, double sd, int precision = 2);

  /// Number of data rows.
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render as an aligned ASCII table.
  std::string to_string() const;
  /// Render as CSV (header + rows, RFC-4180 quoting).
  std::string to_csv() const;

  /// Print the ASCII rendering to `os`.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Write `content` to `path`; throws std::runtime_error on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace ncsw::util
