#include "util/trace.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/json.h"

namespace ncsw::util {

namespace {

constexpr double kSecondsToUs = 1e6;

std::string render_args(const std::vector<TraceArg>& args) {
  if (args.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += JsonWriter::escape(args[i].key);
    out += "\":";
    out += args[i].value;
  }
  out += '}';
  return out;
}

}  // namespace

TraceArg TraceArg::num(std::string k, double v) {
  return {std::move(k), JsonWriter::number(v)};
}

TraceArg TraceArg::num(std::string k, std::int64_t v) {
  return {std::move(k), std::to_string(v)};
}

TraceArg TraceArg::str(std::string k, const std::string& v) {
  return {std::move(k), '"' + JsonWriter::escape(v) + '"'};
}

int Tracer::lane(const std::string& name) {
  std::lock_guard lock(mutex_);
  const std::string full = lane_prefix_ + name;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i] == full) return static_cast<int>(i);
  }
  lanes_.push_back(full);
  return static_cast<int>(lanes_.size() - 1);
}

void Tracer::set_lane_prefix(std::string prefix) {
  std::lock_guard lock(mutex_);
  lane_prefix_ = std::move(prefix);
}

bool Tracer::push(Event ev) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(ev));
  return true;
}

void Tracer::complete(const std::string& cat, const std::string& name,
                      int lane, double start_s, double end_s,
                      std::vector<TraceArg> args) {
  if (!enabled()) return;
  if (end_s < start_s) end_s = start_s;
  push(Event{'X', cat, name, lane, start_s * kSecondsToUs,
             (end_s - start_s) * kSecondsToUs, render_args(args)});
}

void Tracer::counter(const std::string& name, double t_s, double value) {
  if (!enabled()) return;
  push(Event{'C', "counter", name, 0, t_s * kSecondsToUs, 0.0,
             "{\"value\":" + JsonWriter::number(value) + "}"});
}

void Tracer::instant(const std::string& cat, const std::string& name,
                     int lane, double t_s) {
  if (!enabled()) return;
  push(Event{'i', cat, name, lane, t_s * kSecondsToUs, 0.0, {}});
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Tracer::set_capacity(std::size_t cap) {
  std::lock_guard lock(mutex_);
  capacity_ = cap;
}

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  events_.clear();
  lanes_.clear();
  lane_prefix_.clear();
  dropped_ = 0;
}

std::string Tracer::to_json() const {
  // Copy under the lock, serialise outside it.
  std::vector<Event> events;
  std::vector<std::string> lanes;
  std::uint64_t dropped;
  {
    std::lock_guard lock(mutex_);
    events = events_;
    lanes = lanes_;
    dropped = dropped_;
  }
  // Stable time-order: viewers do not require it, but it makes the file
  // deterministic even when several host threads emitted concurrently
  // (ties keep emission order via stable_sort).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.tid < b.tid;
                   });

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("clock").value("simulated");
  w.key("schema").value("ncsw-trace-v1");
  w.key("dropped_events").value(dropped);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  // Process / lane names first (metadata events).
  w.begin_object();
  w.key("ph").value("M");
  w.key("pid").value(std::int64_t{1});
  w.key("name").value("process_name");
  w.key("args").begin_object().key("name").value("ncsw-sim").end_object();
  w.end_object();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(i));
    w.key("name").value("thread_name");
    w.key("args").begin_object().key("name").value(lanes[i]).end_object();
    w.end_object();
    // Preserve registration order as the viewer's sort order.
    w.begin_object();
    w.key("ph").value("M");
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(i));
    w.key("name").value("thread_sort_index");
    w.key("args")
        .begin_object()
        .key("sort_index")
        .value(static_cast<std::int64_t>(i))
        .end_object();
    w.end_object();
  }
  for (const Event& ev : events) {
    w.begin_object();
    w.key("ph").value(std::string(1, ev.phase));
    w.key("cat").value(ev.cat);
    w.key("name").value(ev.name);
    w.key("pid").value(std::int64_t{1});
    w.key("tid").value(static_cast<std::int64_t>(ev.tid));
    w.key("ts").value(ev.ts_us);
    if (ev.phase == 'X') w.key("dur").value(ev.dur_us);
    if (ev.phase == 'i') w.key("s").value("t");
    if (!ev.args_json.empty()) w.key("args").raw(ev.args_json);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Tracer::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("Tracer::write: cannot open " + path);
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!f) throw std::runtime_error("Tracer::write: write failed: " + path);
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

TraceSpan::TraceSpan(std::string cat, std::string name, int lane,
                     double start_s)
    : cat_(std::move(cat)),
      name_(std::move(name)),
      lane_(lane),
      start_s_(start_s),
      end_s_(start_s) {}

void TraceSpan::arg(std::string key, double v) {
  args_.push_back(TraceArg::num(std::move(key), v));
}

void TraceSpan::arg(std::string key, std::int64_t v) {
  args_.push_back(TraceArg::num(std::move(key), v));
}

void TraceSpan::arg(std::string key, const std::string& v) {
  args_.push_back(TraceArg::str(std::move(key), v));
}

void TraceSpan::end(double end_s) {
  end_s_ = end_s;
  tracer().complete(cat_, name_, lane_, start_s_, end_s_, std::move(args_));
  emitted_ = true;
}

TraceSpan::~TraceSpan() {
  if (!emitted_) {
    tracer().complete(cat_, name_, lane_, start_s_, end_s_, std::move(args_));
  }
}

}  // namespace ncsw::util
