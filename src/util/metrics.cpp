#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/json.h"

namespace ncsw::util {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    for (int e = -6; e <= 6; ++e) {
      bounds_.push_back(std::pow(10.0, static_cast<double>(e)));
    }
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds not increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) noexcept {
  std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard lock(mutex_);
  return counts_;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("min").value(h->min());
    w.key("max").value(h->max());
    w.key("mean").value(h->mean());
    w.key("buckets");
    w.begin_array();
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      w.begin_object();
      w.key("le");
      if (i < bounds.size()) {
        w.value(bounds[i]);
      } else {
        w.value("inf");
      }
      w.key("count").value(counts[i]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MetricsRegistry& metrics() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace ncsw::util
