#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ncsw::util {

void Table::set_header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pm(double mean, double sd, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean, precision,
                sd);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    total += 2 * (widths.empty() ? 0 : widths.size() - 1);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

namespace {
std::string csv_quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f << content;
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace ncsw::util
