#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ncsw::util {

namespace {
// Which pool (if any) owns the current thread. Set once per worker; lets
// parallel_for detect nested calls from its own workers.
thread_local const ThreadPool* t_current_pool = nullptr;

// CPUs the process is allowed to run on (respects container cpusets and
// taskset masks, unlike hardware_concurrency). Empty when the platform
// has no affinity API.
std::vector<int> allowed_cpus() {
  std::vector<int> cpus;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  return cpus;
}

bool pin_to_cpu(std::thread& t, int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(t.native_handle(), sizeof(set), &set) == 0;
#else
  (void)t;
  (void)cpu;
  return false;
#endif
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads, bool pin_workers) {
  threads = std::max<std::size_t>(1, threads);
  worker_queues_.resize(threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (pin_workers) {
    const std::vector<int> cpus = allowed_cpus();
    if (!cpus.empty()) {
      bool all_ok = true;
      std::vector<int> assigned;
      assigned.reserve(threads);
      for (std::size_t i = 0; i < threads; ++i) {
        const int cpu = cpus[i % cpus.size()];
        all_ok = pin_to_cpu(workers_[i], cpu) && all_ok;
        assigned.push_back(cpu);
      }
      if (all_ok) {
        pinned_ = true;
        worker_cpus_ = std::move(assigned);
      }
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::string ThreadPool::affinity_layout() const {
  if (!pinned_) return "none";
  std::string out;
  for (std::size_t i = 0; i < worker_cpus_.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(worker_cpus_[i]);
  }
  return out;
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_current_pool = this;
  auto& own = worker_queues_[index];
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, &own] {
        return stopping_ || !queue_.empty() || !own.empty();
      });
      // Affinity tasks first: they were addressed to this worker, and
      // nobody else can run them.
      if (!own.empty()) {
        task = std::move(own.front());
        own.pop();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      } else {
        if (stopping_) return;
        continue;
      }
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Nested call from one of our own workers: the shard tasks would sit
    // in the queue behind this caller, which blocks on their futures —
    // with every worker nesting, nobody is left to run a shard. Run the
    // whole range inline on this thread instead.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, size());
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace ncsw::util
