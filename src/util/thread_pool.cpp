#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ncsw::util {

namespace {
// Which pool (if any) owns the current thread. Set once per worker; lets
// parallel_for detect nested calls from its own workers.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (on_worker_thread()) {
    // Nested call from one of our own workers: the shard tasks would sit
    // in the queue behind this caller, which blocks on their futures —
    // with every worker nesting, nobody is left to run a shard. Run the
    // whole range inline on this thread instead.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, size());
  std::vector<std::future<void>> futs;
  futs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    futs.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace ncsw::util
