#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ncsw::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

Summary summarize(const std::vector<double>& xs) noexcept {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  Summary s;
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.count() ? rs.min() : 0.0;
  s.max = rs.count() ? rs.max() : 0.0;
  return s;
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

std::string format_mean_stddev(const RunningStats& s, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, s.mean(),
                precision, s.stddev());
  return buf;
}

}  // namespace ncsw::util
