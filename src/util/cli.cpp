#include "util/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace ncsw::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Cli::add_int(const std::string& name, std::int64_t def,
                  std::string help) {
  flags_[name] =
      Flag{Kind::kInt, std::to_string(def), std::to_string(def), std::move(help)};
}

void Cli::add_double(const std::string& name, double def, std::string help) {
  std::ostringstream os;
  os << def;
  flags_[name] = Flag{Kind::kDouble, os.str(), os.str(), std::move(help)};
}

void Cli::add_string(const std::string& name, std::string def,
                     std::string help) {
  flags_[name] = Flag{Kind::kString, def, def, std::move(help)};
}

void Cli::add_bool(const std::string& name, bool def, std::string help) {
  const std::string v = def ? "true" : "false";
  flags_[name] = Flag{Kind::kBool, v, v, std::move(help)};
}

void Cli::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::runtime_error("unknown flag: --" + name + "\n" + help());
  }
  switch (it->second.kind) {
    case Kind::kInt: {
      std::size_t pos = 0;
      try {
        (void)std::stoll(value, &pos);
      } catch (const std::exception&) {
        pos = std::string::npos;
      }
      if (pos != value.size()) {
        throw std::runtime_error("flag --" + name + " expects an integer, got '" +
                                 value + "'");
      }
      break;
    }
    case Kind::kDouble: {
      std::size_t pos = 0;
      try {
        (void)std::stod(value, &pos);
      } catch (const std::exception&) {
        pos = std::string::npos;
      }
      if (pos != value.size()) {
        throw std::runtime_error("flag --" + name + " expects a number, got '" +
                                 value + "'");
      }
      break;
    }
    case Kind::kBool:
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        throw std::runtime_error("flag --" + name +
                                 " expects true/false, got '" + value + "'");
      }
      break;
    case Kind::kString:
      break;
  }
  it->second.value = value;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.kind == Kind::kBool) {
      it->second.value = "true";
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error("flag --" + arg + " is missing a value");
    }
    set_value(arg, argv[++i]);
  }
  return true;
}

const Cli::Flag& Cli::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::runtime_error("flag not registered: --" + name);
  }
  if (it->second.kind != kind) {
    throw std::runtime_error("flag --" + name + " accessed with wrong type");
  }
  return it->second;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double Cli::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

std::string Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string& v = find(name, Kind::kBool).value;
  return v == "true" || v == "1";
}

std::string Cli::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.def << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace ncsw::util
