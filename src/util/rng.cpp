#include "util/rng.h"

#include <cmath>

namespace ncsw::util {

std::uint64_t Xoshiro256::uniform_u64(std::uint64_t n) noexcept {
  // Lemire (2019): unbiased bounded generation without division in the
  // common case.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

}  // namespace ncsw::util
