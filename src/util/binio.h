// Little-endian binary writer/reader shared by every on-disk format in
// the repository (compiled graph files, network structures, weights).
// The Reader validates lengths and never reads past the buffer; all
// format errors surface as std::runtime_error.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ncsw::util {

/// Append-only byte sink.
class BinWriter {
 public:
  /// Write a trivially-copyable value verbatim.
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  /// Write a length-prefixed string (u32 length).
  void put_string(const std::string& s) {
    put(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Write a raw byte range (caller handles any length prefix).
  void put_bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// Write a length-prefixed byte blob (u64 length).
  void put_blob(const std::vector<std::uint8_t>& blob) {
    put(static_cast<std::uint64_t>(blob.size()));
    bytes_.insert(bytes_.end(), blob.begin(), blob.end());
  }

  std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked byte source.
class BinReader {
 public:
  explicit BinReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes.data()), size_(bytes.size()) {}
  BinReader(const std::uint8_t* bytes, std::size_t size)
      : bytes_(bytes), size_(size) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_string(std::uint32_t max_len = 1u << 20) {
    const auto len = get<std::uint32_t>();
    if (len > max_len) throw std::runtime_error("binio: string too long");
    require(len);
    std::string s(reinterpret_cast<const char*>(bytes_ + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<std::uint8_t> get_blob(std::uint64_t max_len = 1ull << 32) {
    const auto len = get<std::uint64_t>();
    if (len > max_len) throw std::runtime_error("binio: blob too long");
    require(static_cast<std::size_t>(len));
    std::vector<std::uint8_t> blob(bytes_ + pos_, bytes_ + pos_ + len);
    pos_ += static_cast<std::size_t>(len);
    return blob;
  }

  /// Copy `size` raw bytes into `out`.
  void get_bytes(void* out, std::size_t size) {
    require(size);
    std::memcpy(out, bytes_ + pos_, size);
    pos_ += size;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > size_) throw std::runtime_error("binio: truncated input");
  }

  const std::uint8_t* bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ncsw::util
