// Minimal fixed-size thread pool. NCSw uses one worker per NCS device
// (the paper used OpenMP threads for the same purpose); the pool is also
// used to parallelise dataset generation and functional inference.
//
// Affinity mode (the fast host tier, docs/performance.md): a pool built
// with pin_workers = true pins worker i to the i-th CPU the process is
// allowed to run on and gives every worker its own FIFO queue reachable
// through submit_to(i, ...). A caller that always routes chunk t to
// worker t keeps each output slab on the core that produced its inputs
// in the previous layer, instead of whichever idle worker grabbed the
// task first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ncsw::util {

/// Fixed-size pool of worker threads executing enqueued tasks FIFO.
/// Destruction drains the queues (all submitted tasks complete).
class ThreadPool {
 public:
  /// Create `threads` workers (>= 1; 0 is clamped to 1). With
  /// `pin_workers`, worker i is pinned to the i-th allowed CPU (round
  /// robin when there are more workers than CPUs); pinning failures
  /// degrade to an unpinned pool, observable through pinned().
  explicit ThreadPool(std::size_t threads, bool pin_workers = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task on the shared queue (any worker may run it); returns
  /// a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Enqueue a task on worker `worker`'s own queue: it runs on that
  /// worker (and, when the pool is pinned, on that worker's core), FIFO
  /// with respect to other tasks submitted to the same worker. Throws
  /// std::out_of_range when `worker` >= size(): affinity routing is
  /// explicit addressing, and silently wrapping a bad index onto another
  /// worker's queue would defeat the placement the caller asked for.
  template <typename F>
  auto submit_to(std::size_t worker, F&& f)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    if (worker >= workers_.size()) {
      throw std::out_of_range("ThreadPool::submit_to: worker " +
                              std::to_string(worker) + " out of range (pool " +
                              std::to_string(workers_.size()) + " workers)");
    }
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit_to after shutdown");
      }
      worker_queues_[worker].emplace([task] { (*task)(); });
    }
    // Per-worker wakeup would need one condition variable per worker;
    // the pools here are small, so a broadcast is cheaper than the
    // bookkeeping.
    cv_.notify_all();
    return fut;
  }

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// True when every worker was successfully pinned to a CPU.
  bool pinned() const noexcept { return pinned_; }

  /// Human-readable worker->CPU map: "0,1,2,3" when pinned, "none" when
  /// the pool is unpinned (pinning off, unsupported, or it failed).
  std::string affinity_layout() const;

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Safe to call from one of the pool's own workers: the shards would
  /// queue behind the (blocked) caller and deadlock a saturated pool, so
  /// a nested call runs every index inline on the calling thread instead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::queue<std::function<void()>>> worker_queues_;
  std::vector<int> worker_cpus_;  // empty when unpinned
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool pinned_ = false;
};

}  // namespace ncsw::util
