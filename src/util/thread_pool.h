// Minimal fixed-size thread pool. NCSw uses one worker per NCS device
// (the paper used OpenMP threads for the same purpose); the pool is also
// used to parallelise dataset generation and functional inference.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ncsw::util {

/// Fixed-size pool of worker threads executing enqueued tasks FIFO.
/// Destruction drains the queue (all submitted tasks complete).
class ThreadPool {
 public:
  /// Create `threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Safe to call from one of the pool's own workers: the shards would
  /// queue behind the (blocked) caller and deadlock a saturated pool, so
  /// a nested call runs every index inline on the calling thread instead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ncsw::util
