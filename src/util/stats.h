// Streaming statistics used to produce the mean ± stddev error bars that
// every figure in the paper reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ncsw::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator into this one (parallel reduction;
  /// Chan et al. pairwise update).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations added so far.
  std::size_t count() const noexcept { return n_; }
  /// Mean of the observations (0 when empty).
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 when n < 2).
  double variance() const noexcept;
  /// Sample standard deviation.
  double stddev() const noexcept;
  /// Standard error of the mean.
  double stderr_mean() const noexcept;
  /// Smallest observation seen (+inf when empty).
  double min() const noexcept { return min_; }
  /// Largest observation seen (-inf when empty).
  double max() const noexcept { return max_; }
  /// Sum of all observations.
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Reset to the empty state.
  void clear() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1.0 / 0.0 * 1.0;  // +inf without <limits> macros
  double max_ = -(1.0 / 0.0);
};

/// Summary of a sample: convenience struct for table printing.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarise a vector of observations.
Summary summarize(const std::vector<double>& xs) noexcept;

/// Exact percentile (linear interpolation between order statistics).
/// `p` in [0,100]. Returns 0 for an empty sample.
double percentile(std::vector<double> xs, double p) noexcept;

/// Format "mean ± stddev" with the given precision, e.g. "77.20 ± 0.31".
std::string format_mean_stddev(const RunningStats& s, int precision = 2);

}  // namespace ncsw::util
