// Precision study (paper Section IV-B): where does FP16 actually diverge
// from FP32 inside the network? Runs the same image through the FP32 and
// FP16 engines with all activations retained and reports the per-layer
// maximum absolute difference — the layer-level view behind Fig. 7b's
// "negligible confidence differences" conclusion.
//
// Build & run:  ./build/examples/precision_study
#include <cstdio>
#include <iostream>

#include "core/model.h"
#include "nn/executor.h"
#include "util/table.h"

using namespace ncsw;

int main() {
  dataset::DatasetConfig data_cfg;
  data_cfg.num_classes = 20;
  const dataset::SyntheticImageNet data(data_cfg);
  auto bundle = core::ModelBundle::tiny_functional(data, {32, 0});

  const auto sample = data.sample(0, 3);
  const auto input_f32 = data.preprocess(sample.image, bundle->input_size());
  const auto input_f16 = tensor::tensor_cast<fp16::half>(input_f32);

  nn::ExecOptions opts;
  opts.keep_all_activations = true;
  const auto run_f32 =
      nn::run_forward(bundle->graph, bundle->weights_f32, input_f32, opts);
  const auto run_f16 =
      nn::run_forward(bundle->graph, bundle->weights_f16, input_f16, opts);

  util::Table table("Per-layer FP32 vs FP16 divergence (one image)");
  table.set_header({"Layer", "Kind", "Shape", "max |FP32-FP16|"});
  for (int id = 0; id < bundle->graph.size(); ++id) {
    const auto& layer = bundle->graph.layer(id);
    const double diff = tensor::max_abs_diff(
        run_f32.activations[static_cast<std::size_t>(id)],
        run_f16.activations[static_cast<std::size_t>(id)]);
    table.add_row({layer.name, nn::layer_kind_name(layer.kind),
                   layer.out_shape.to_string(), util::Table::num(diff, 5)});
  }
  table.print(std::cout);

  const auto& out32 = run_f32.output;
  const auto& out16 = run_f16.output;
  int arg32 = 0, arg16 = 0;
  for (std::int64_t i = 1; i < out32.numel(); ++i) {
    if (out32[i] > out32[arg32]) arg32 = static_cast<int>(i);
    if (static_cast<float>(out16[i]) > static_cast<float>(out16[arg16])) {
      arg16 = static_cast<int>(i);
    }
  }
  std::printf("\nFP32 top-1: class %d (%.4f) | FP16 top-1: class %d (%.4f) "
              "| ground truth: %d\n",
              arg32, out32[arg32], arg16,
              static_cast<float>(out16[arg16]), sample.label);
  std::printf("softmax max divergence: %.5f — divergence grows through the "
              "conv stack but softmax re-normalisation keeps the final "
              "confidences within a fraction of a percent (Fig. 7b).\n",
              tensor::max_abs_diff(out32, out16));
  return 0;
}
