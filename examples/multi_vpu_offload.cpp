// The paper's core scenario (Section III / Fig. 4): batch classification
// of an ILSVRC-style validation subset on a *group of eight NCS sticks*,
// compared against the CPU reference implementation — both through the
// NCSw Source/Target framework.
//
// Build & run:  ./build/examples/multi_vpu_offload [--images N]
#include <cstdio>
#include <memory>

#include "core/application.h"
#include "core/host_target.h"
#include "core/vpu_target.h"
#include "util/cli.h"

using namespace ncsw;

int main(int argc, char** argv) {
  util::Cli cli("multi_vpu_offload",
                "classify a validation subset on 8 sticks vs the CPU");
  cli.add_int("images", 200, "images to classify (functional inference)");
  cli.add_int("devices", 8, "NCS sticks in the group");
  cli.add_int("classes", 50, "synthetic ILSVRC classes");
  if (!cli.parse(argc, argv)) return 0;

  // Dataset + functional model bundle (shared by every target).
  dataset::DatasetConfig data_cfg;
  data_cfg.num_classes = static_cast<int>(cli.get_int("classes"));
  auto data = std::make_shared<dataset::SyntheticImageNet>(data_cfg);
  auto bundle = core::ModelBundle::tiny_functional(*data, {32, 0});
  std::printf("model: %s (%d classes, %.1f MMACs)\n",
              bundle->graph.name().c_str(), bundle->num_classes(),
              static_cast<double>(bundle->macs) / 1e6);

  // NCSw application: one source, two targets (CPU FP32, multi-VPU FP16).
  core::Preprocessor prep;
  prep.input_size = bundle->input_size();
  prep.means = data->means();
  core::Application app(prep);
  app.add_target(core::make_cpu_target(bundle));
  core::VpuTargetConfig vcfg;
  vcfg.devices = static_cast<int>(cli.get_int("devices"));
  auto vpu = std::make_shared<core::VpuTarget>(bundle, vcfg);
  app.add_target(vpu);

  // Classify one subset on both targets over the same drained items.
  core::ImageFolderSource source(data, /*subset=*/0, cli.get_int("images"));
  const auto jobs = app.run_on_all_targets(source);

  std::printf("\n%-12s %-10s %-10s\n", "target", "top-1 err", "images");
  for (const auto& job : jobs) {
    std::printf("%-12s %-10.2f %zu\n", job.target.c_str(),
                job.top1_error() * 100.0, job.items.size());
  }
  std::printf("FP32 vs FP16 confidence difference (misses filtered): %.3f%%\n",
              core::confidence_difference(jobs[0], jobs[1]) * 100.0);

  // Throughput on the simulated clock (GoogLeNet-sized workload).
  auto timing_bundle = core::ModelBundle::googlenet_reference();
  core::VpuTarget timing_vpu(timing_bundle, vcfg);
  auto cpu = core::make_cpu_target(timing_bundle);
  const auto cpu_run = cpu->run_timed(2000, 8);
  const auto vpu_run = timing_vpu.run_timed(2000, vcfg.devices);
  std::printf("\nGoogLeNet throughput (simulated testbed):\n");
  std::printf("  CPU (batch 8):        %6.1f img/s @ %2.0f W TDP -> %.2f img/W\n",
              cpu_run.throughput(), cpu->tdp_w(8),
              cpu_run.throughput() / cpu->tdp_w(8));
  std::printf("  VPU group (%d sticks): %6.1f img/s @ %2.0f W TDP -> %.2f img/W\n",
              vcfg.devices, vpu_run.throughput(),
              timing_vpu.tdp_w(vcfg.devices),
              vpu_run.throughput() / timing_vpu.tdp_w(vcfg.devices));
  return 0;
}
