// General-purpose offload example — the paper's Section VII future work:
// "integrating the VPU chip as a conventional vector processor for
// general-purpose computing". A host application offloads the tensor
// kernels of a small iterative solver step (GEMM + AXPY + DOT) to the
// simulated Myriad 2 through the MDK context and reads back verified
// results plus energy figures.
//
// Build & run:  ./build/examples/gemm_offload [--n 512]
#include <cmath>
#include <cstdio>
#include <vector>

#include "mdk/mdk.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace ncsw;

int main(int argc, char** argv) {
  util::Cli cli("gemm_offload",
                "offload GEMM/AXPY/DOT to the simulated Myriad 2");
  cli.add_int("n", 512, "square matrix dimension");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t n = cli.get_int("n");

  mdk::MdkContext ctx;
  util::Xoshiro256 rng(7);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));

  // 1. The compile step: plan the CMX tiling.
  const auto plan = ctx.plan_gemm(n, n, n, graphc::Precision::kFP32);
  std::printf("GEMM plan: %lldx%lldx%lld tiles of %lldx%lldx%lld, "
              "%lld tasks, %.1f KB CMX per task\n",
              (long long)n, (long long)n, (long long)n,
              (long long)plan.tile_m, (long long)plan.tile_n,
              (long long)plan.tile_k, (long long)plan.tasks,
              static_cast<double>(plan.cmx_bytes_per_task) / 1024.0);

  // 2. Run C = A*B on the chip (functional + timed).
  const auto gemm_stats = ctx.gemm_f32(n, n, n, a.data(), b.data(), c.data());
  std::printf("GEMM: %.3f ms simulated | %.1f GFLOP/s | %.2f W | "
              "%.1f Gflops/W | SHAVE util %.0f%%\n",
              gemm_stats.sim_time_s * 1e3, gemm_stats.gflops,
              gemm_stats.avg_power_w, gemm_stats.gflops_per_w,
              gemm_stats.shave_utilization * 100);

  // Spot-verify one output element against a host dot product.
  double ref = 0;
  for (std::int64_t k = 0; k < n; ++k) ref += a[k] * b[k * n + 3];
  std::printf("verify C[0,3]: device %.5f vs host %.5f (|diff| %.2e)\n",
              c[3], ref, std::abs(c[3] - ref));

  // 3. y += 0.5 * x on the chip (bandwidth-bound).
  std::vector<float> x(n * n, 1.0f), y(n * n, 2.0f);
  const auto axpy_stats = ctx.axpy_f32(n * n, 0.5f, x.data(), y.data());
  std::printf("AXPY (%lld elems): %.3f ms | %.1f GB/s effective\n",
              (long long)(n * n), axpy_stats.sim_time_s * 1e3,
              3.0 * static_cast<double>(n * n) * 4.0 /
                  axpy_stats.sim_time_s / 1e9);

  // 4. dot(x, y) reduction.
  double dot = 0;
  const auto dot_stats = ctx.dot_f32(n * n, x.data(), y.data(), &dot);
  std::printf("DOT: %.4f (expect %.1f) in %.3f ms\n", dot,
              2.5 * static_cast<double>(n * n), dot_stats.sim_time_s * 1e3);

  std::printf("\nenergy for the whole step: %.1f mJ at ~%.2f W — the "
              "co-processor runs HPC tensor kernels inside a 1 W "
              "envelope.\n",
              (gemm_stats.energy_j + axpy_stats.energy_j +
               dot_stats.energy_j) * 1e3,
              gemm_stats.avg_power_w);
  return 0;
}
