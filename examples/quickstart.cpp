// Quickstart: the paper's Listing 1, end to end, against the simulated
// Neural Compute Stick.
//
//   1. configure a simulated host with one NCS stick,
//   2. compile a network to a graph file (the mvNCCompile step),
//   3. open the device and allocate the graph over the NCAPI,
//   4. mvncLoadTensor(...)   -- returns as soon as the input is queued,
//   5. ...overlap other host work...,
//   6. mvncGetResult(...)    -- blocks until the inference finished,
//   7. read the class probabilities and the per-layer profile.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "dataset/synthetic.h"
#include "graphc/compiler.h"
#include "mvnc/mvnc.h"
#include "mvnc/sim_host.h"
#include "nn/executor.h"
#include "nn/googlenet.h"
#include "tensor/tensor.h"

using namespace ncsw;

int main() {
  // --- set up the simulated host (one stick on a USB 3.0 root port) ----
  mvnc::HostConfig host;
  host.devices = 1;
  host.topology = mvnc::HostConfig::Topology::kAllDirect;
  mvnc::host_reset(host);

  // --- build + "train" + compile the network --------------------------
  // TinyGoogLeNet with a template-fitted classifier over the synthetic
  // dataset (stand-in for downloading the BVLC caffemodel).
  dataset::DatasetConfig data_cfg;
  data_cfg.num_classes = 20;
  const dataset::SyntheticImageNet data(data_cfg);

  const nn::TinyGoogLeNetConfig net_cfg{32, data_cfg.num_classes};
  const nn::Graph net = nn::build_tiny_googlenet(net_cfg);
  nn::WeightsF weights = nn::init_msra(net, /*seed=*/7);
  nn::fit_template_classifier(net, weights, "loss3/classifier",
                              data.prototype_tensors(net_cfg.input_size));
  const nn::WeightsH weights_f16 = nn::to_fp16(weights);

  const auto compiled = graphc::compile(net, graphc::Precision::kFP16);
  const auto graph_file = graphc::serialize(compiled);
  std::printf("compiled %s: %zu layers, %.1f MMACs, graph file %zu bytes\n",
              compiled.net_name.c_str(), compiled.layers.size(),
              static_cast<double>(compiled.total_macs()) / 1e6,
              graph_file.size());

  // --- open the stick and allocate the graph (NCAPI) ------------------
  char name[64];
  if (mvnc::mvncGetDeviceName(0, name, sizeof(name)) != mvnc::MVNC_OK) {
    std::fprintf(stderr, "no NCS device found\n");
    return 1;
  }
  void* device = nullptr;
  if (mvnc::mvncOpenDevice(name, &device) != mvnc::MVNC_OK) {
    std::fprintf(stderr, "mvncOpenDevice(%s) failed\n", name);
    return 1;
  }
  std::printf("opened device %s\n", name);

  void* graph = nullptr;
  if (mvnc::mvncAllocateGraph(device, &graph, graph_file.data(),
                              static_cast<unsigned int>(graph_file.size())) !=
      mvnc::MVNC_OK) {
    std::fprintf(stderr, "mvncAllocateGraph failed\n");
    return 1;
  }
  // Attach the functional network so the simulated stick computes real
  // probabilities (a real stick gets the weights inside the graph file).
  mvnc::set_functional_network(graph, &net, &weights_f16);

  // --- classify one image (Listing 1) ---------------------------------
  const auto sample = data.sample(/*subset=*/0, /*index=*/0);
  const auto input_f32 = data.preprocess(sample.image, net_cfg.input_size);
  const auto input_f16 = tensor::tensor_cast<fp16::half>(input_f32);

  // Load the graph with the input image.
  if (mvnc::mvncLoadTensor(graph, input_f16.data(),
                           static_cast<unsigned int>(input_f16.numel() * 2),
                           nullptr) != mvnc::MVNC_OK) {
    std::fprintf(stderr, "mvncLoadTensor failed\n");
    return 1;
  }

  /******************************************
   * Perform other overlapping computations *
   ******************************************/

  // Retrieve the inference result from the NCS.
  void* output = nullptr;
  unsigned int output_size = 0;
  if (mvnc::mvncGetResult(graph, &output, &output_size, nullptr) !=
      mvnc::MVNC_OK) {
    std::fprintf(stderr, "mvncGetResult failed\n");
    return 1;
  }

  const auto* probs_f16 = static_cast<const fp16::half*>(output);
  std::vector<float> probs(output_size / 2);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = static_cast<float>(probs_f16[i]);
  }
  std::printf("\nground-truth class: %d — top-5 predictions:\n",
              sample.label);
  for (const auto& [cls, p] : nn::top_k(probs, 5)) {
    std::printf("  class %2d  confidence %.4f%s\n", cls, p,
                cls == sample.label ? "   <-- correct" : "");
  }

  // --- inference timing, the way the NCSDK reports it ------------------
  const auto ticket = mvnc::last_ticket(graph);
  if (ticket) {
    std::printf("\nsimulated stick timing: transfer %.3f ms | execute "
                "%.3f ms | total %.3f ms\n",
                (ticket->input_done - ticket->issue) * 1e3,
                (ticket->exec_end - ticket->exec_start) * 1e3,
                (ticket->result_ready - ticket->issue) * 1e3);
  }

  mvnc::mvncDeallocateGraph(graph);
  mvnc::mvncCloseDevice(device);
  std::printf("done.\n");
  return 0;
}
