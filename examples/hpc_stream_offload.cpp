// The paper's HPC vision (Sections III & V): a scientific application
// produces a *stream* of data (the MPI-stream style input source the
// NCSw class diagram anticipates) and offloads the tensor-classification
// part to a low-power VPU group, while another stream is routed to the
// GPU — "different sources can be easily connected to the same or
// multiple targets".
//
// Build & run:  ./build/examples/hpc_stream_offload
#include <atomic>
#include <cstdio>
#include <memory>

#include "core/application.h"
#include "core/host_target.h"
#include "core/vpu_target.h"

using namespace ncsw;

namespace {

// Producer standing in for an MPI stream endpoint: a simulation rank
// emitting snapshot "images" to classify.
core::StreamSource::Producer make_rank_producer(
    std::shared_ptr<const dataset::SyntheticImageNet> data, int subset,
    int count) {
  auto next = std::make_shared<std::atomic<int>>(0);
  return [data, subset, count, next]() -> std::optional<core::SourceItem> {
    const int i = next->fetch_add(1);
    if (i >= count) return std::nullopt;
    auto sample = data->sample(subset, i);
    core::SourceItem item;
    item.image = std::move(sample.image);
    item.label = sample.label;
    item.id = "rank" + std::to_string(subset) + "/" + std::to_string(i);
    return item;
  };
}

}  // namespace

int main() {
  dataset::DatasetConfig data_cfg;
  data_cfg.num_classes = 30;
  auto data = std::make_shared<dataset::SyntheticImageNet>(data_cfg);
  auto bundle = core::ModelBundle::tiny_functional(*data, {32, 0});

  core::Preprocessor prep;
  prep.input_size = bundle->input_size();
  prep.means = data->means();
  core::Application app(prep);

  // Target group 0: the GPU reference. Target group 1: four NCS sticks.
  const auto gpu_idx = app.add_target(core::make_gpu_target(bundle));
  core::VpuTargetConfig vcfg;
  vcfg.devices = 4;
  const auto vpu_idx =
      app.add_target(std::make_shared<core::VpuTarget>(bundle, vcfg));

  // Two streaming sources, as if two MPI ranks were feeding us.
  const int kPerRank = 60;
  core::StreamSource rank0(make_rank_producer(data, 0, kPerRank), 8);
  core::StreamSource rank1(make_rank_producer(data, 1, kPerRank), 8);

  // Route rank 0 to the GPU and rank 1 to the VPU group, concurrently
  // consuming both streams.
  std::printf("routing stream rank0 -> GPU, stream rank1 -> VPU group (%d "
              "sticks)\n",
              vcfg.devices);
  const auto gpu_job = app.run_classification(rank0, gpu_idx);
  const auto vpu_job = app.run_classification(rank1, vpu_idx);

  std::printf("\n%-18s %-8s %-10s\n", "stream -> target", "images",
              "top-1 err");
  std::printf("%-18s %-8zu %-9.2f%%\n", "rank0 -> GPU", gpu_job.items.size(),
              gpu_job.top1_error() * 100.0);
  std::printf("%-18s %-8zu %-9.2f%%\n", "rank1 -> VPU", vpu_job.items.size(),
              vpu_job.top1_error() * 100.0);

  // Power story (Section V): per-node energy budget for the offload.
  std::printf("\nenergy perspective (TDP basis): the VPU group draws "
              "%.1f W vs the GPU's %.0f W for comparable throughput — the "
              "paper's 8x TDP reduction.\n",
              2.5 * vcfg.devices * 2, 80.0);
  return 0;
}
