
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table_testbed.cpp" "bench-build/CMakeFiles/table_testbed.dir/table_testbed.cpp.o" "gcc" "bench-build/CMakeFiles/table_testbed.dir/table_testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ncsw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mdk/CMakeFiles/ncsw_mdk.dir/DependInfo.cmake"
  "/root/repo/build/src/sipp/CMakeFiles/ncsw_sipp.dir/DependInfo.cmake"
  "/root/repo/build/src/mvnc/CMakeFiles/ncsw_mvnc.dir/DependInfo.cmake"
  "/root/repo/build/src/ncs/CMakeFiles/ncsw_ncs.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/ncsw_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/ncsw_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/myriad/CMakeFiles/ncsw_myriad.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ncsw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graphc/CMakeFiles/ncsw_graphc.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ncsw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ncsw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/ncsw_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ncsw_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/half/CMakeFiles/ncsw_half.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
