# Empty dependencies file for table_testbed.
# This may be replaced when dependencies are built.
