file(REMOVE_RECURSE
  "../bench/table_testbed"
  "../bench/table_testbed.pdb"
  "CMakeFiles/table_testbed.dir/table_testbed.cpp.o"
  "CMakeFiles/table_testbed.dir/table_testbed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
