# Empty dependencies file for fig7a_top1_error.
# This may be replaced when dependencies are built.
