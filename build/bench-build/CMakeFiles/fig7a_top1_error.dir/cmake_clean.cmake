file(REMOVE_RECURSE
  "../bench/fig7a_top1_error"
  "../bench/fig7a_top1_error.pdb"
  "CMakeFiles/fig7a_top1_error.dir/fig7a_top1_error.cpp.o"
  "CMakeFiles/fig7a_top1_error.dir/fig7a_top1_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_top1_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
