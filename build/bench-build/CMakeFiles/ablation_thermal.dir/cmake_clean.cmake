file(REMOVE_RECURSE
  "../bench/ablation_thermal"
  "../bench/ablation_thermal.pdb"
  "CMakeFiles/ablation_thermal.dir/ablation_thermal.cpp.o"
  "CMakeFiles/ablation_thermal.dir/ablation_thermal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
