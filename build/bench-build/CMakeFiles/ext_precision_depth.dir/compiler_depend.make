# Empty compiler generated dependencies file for ext_precision_depth.
# This may be replaced when dependencies are built.
