file(REMOVE_RECURSE
  "../bench/ext_precision_depth"
  "../bench/ext_precision_depth.pdb"
  "CMakeFiles/ext_precision_depth.dir/ext_precision_depth.cpp.o"
  "CMakeFiles/ext_precision_depth.dir/ext_precision_depth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_precision_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
