file(REMOVE_RECURSE
  "../bench/fig7b_confidence"
  "../bench/fig7b_confidence.pdb"
  "CMakeFiles/fig7b_confidence.dir/fig7b_confidence.cpp.o"
  "CMakeFiles/fig7b_confidence.dir/fig7b_confidence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
