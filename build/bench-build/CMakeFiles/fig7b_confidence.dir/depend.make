# Empty dependencies file for fig7b_confidence.
# This may be replaced when dependencies are built.
