# Empty dependencies file for ablation_usb.
# This may be replaced when dependencies are built.
